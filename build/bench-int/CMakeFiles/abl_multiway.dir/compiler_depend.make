# Empty compiler generated dependencies file for abl_multiway.
# This may be replaced when dependencies are built.
