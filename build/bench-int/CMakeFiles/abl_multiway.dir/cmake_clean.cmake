file(REMOVE_RECURSE
  "../bench/abl_multiway"
  "../bench/abl_multiway.pdb"
  "CMakeFiles/abl_multiway.dir/abl_multiway.cc.o"
  "CMakeFiles/abl_multiway.dir/abl_multiway.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
