# Empty dependencies file for tab_idle_waiting.
# This may be replaced when dependencies are built.
