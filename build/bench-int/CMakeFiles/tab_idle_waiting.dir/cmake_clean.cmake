file(REMOVE_RECURSE
  "../bench/tab_idle_waiting"
  "../bench/tab_idle_waiting.pdb"
  "CMakeFiles/tab_idle_waiting.dir/tab_idle_waiting.cc.o"
  "CMakeFiles/tab_idle_waiting.dir/tab_idle_waiting.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_idle_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
