file(REMOVE_RECURSE
  "../bench/abl_join"
  "../bench/abl_join.pdb"
  "CMakeFiles/abl_join.dir/abl_join.cc.o"
  "CMakeFiles/abl_join.dir/abl_join.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
