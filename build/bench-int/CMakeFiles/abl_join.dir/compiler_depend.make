# Empty compiler generated dependencies file for abl_join.
# This may be replaced when dependencies are built.
