file(REMOVE_RECURSE
  "../bench/abl_simultaneous"
  "../bench/abl_simultaneous.pdb"
  "CMakeFiles/abl_simultaneous.dir/abl_simultaneous.cc.o"
  "CMakeFiles/abl_simultaneous.dir/abl_simultaneous.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_simultaneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
