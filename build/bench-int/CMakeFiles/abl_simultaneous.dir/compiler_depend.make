# Empty compiler generated dependencies file for abl_simultaneous.
# This may be replaced when dependencies are built.
