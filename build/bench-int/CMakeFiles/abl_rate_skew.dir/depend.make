# Empty dependencies file for abl_rate_skew.
# This may be replaced when dependencies are built.
