file(REMOVE_RECURSE
  "../bench/abl_rate_skew"
  "../bench/abl_rate_skew.pdb"
  "CMakeFiles/abl_rate_skew.dir/abl_rate_skew.cc.o"
  "CMakeFiles/abl_rate_skew.dir/abl_rate_skew.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rate_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
