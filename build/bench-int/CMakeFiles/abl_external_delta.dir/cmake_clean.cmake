file(REMOVE_RECURSE
  "../bench/abl_external_delta"
  "../bench/abl_external_delta.pdb"
  "CMakeFiles/abl_external_delta.dir/abl_external_delta.cc.o"
  "CMakeFiles/abl_external_delta.dir/abl_external_delta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_external_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
