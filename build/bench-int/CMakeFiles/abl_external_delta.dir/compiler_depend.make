# Empty compiler generated dependencies file for abl_external_delta.
# This may be replaced when dependencies are built.
