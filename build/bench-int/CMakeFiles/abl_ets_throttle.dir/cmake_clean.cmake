file(REMOVE_RECURSE
  "../bench/abl_ets_throttle"
  "../bench/abl_ets_throttle.pdb"
  "CMakeFiles/abl_ets_throttle.dir/abl_ets_throttle.cc.o"
  "CMakeFiles/abl_ets_throttle.dir/abl_ets_throttle.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ets_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
