file(REMOVE_RECURSE
  "../bench/abl_bursty"
  "../bench/abl_bursty.pdb"
  "CMakeFiles/abl_bursty.dir/abl_bursty.cc.o"
  "CMakeFiles/abl_bursty.dir/abl_bursty.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bursty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
