# Empty compiler generated dependencies file for abl_bursty.
# This may be replaced when dependencies are built.
