file(REMOVE_RECURSE
  "../bench/abl_fanin"
  "../bench/abl_fanin.pdb"
  "CMakeFiles/abl_fanin.dir/abl_fanin.cc.o"
  "CMakeFiles/abl_fanin.dir/abl_fanin.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fanin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
