# Empty compiler generated dependencies file for abl_fanin.
# This may be replaced when dependencies are built.
