file(REMOVE_RECURSE
  "../bench/abl_aggregate"
  "../bench/abl_aggregate.pdb"
  "CMakeFiles/abl_aggregate.dir/abl_aggregate.cc.o"
  "CMakeFiles/abl_aggregate.dir/abl_aggregate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
