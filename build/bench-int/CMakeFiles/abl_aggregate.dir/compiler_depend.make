# Empty compiler generated dependencies file for abl_aggregate.
# This may be replaced when dependencies are built.
