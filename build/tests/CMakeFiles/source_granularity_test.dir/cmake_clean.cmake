file(REMOVE_RECURSE
  "CMakeFiles/source_granularity_test.dir/source_granularity_test.cc.o"
  "CMakeFiles/source_granularity_test.dir/source_granularity_test.cc.o.d"
  "source_granularity_test"
  "source_granularity_test.pdb"
  "source_granularity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_granularity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
