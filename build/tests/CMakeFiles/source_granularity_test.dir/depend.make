# Empty dependencies file for source_granularity_test.
# This may be replaced when dependencies are built.
