file(REMOVE_RECURSE
  "CMakeFiles/ets_gate_test.dir/ets_gate_test.cc.o"
  "CMakeFiles/ets_gate_test.dir/ets_gate_test.cc.o.d"
  "ets_gate_test"
  "ets_gate_test.pdb"
  "ets_gate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ets_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
