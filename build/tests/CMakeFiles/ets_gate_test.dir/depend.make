# Empty dependencies file for ets_gate_test.
# This may be replaced when dependencies are built.
