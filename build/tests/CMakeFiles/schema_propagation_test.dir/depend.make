# Empty dependencies file for schema_propagation_test.
# This may be replaced when dependencies are built.
