file(REMOVE_RECURSE
  "CMakeFiles/schema_propagation_test.dir/schema_propagation_test.cc.o"
  "CMakeFiles/schema_propagation_test.dir/schema_propagation_test.cc.o.d"
  "schema_propagation_test"
  "schema_propagation_test.pdb"
  "schema_propagation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_propagation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
