# Empty compiler generated dependencies file for tuple_buffer_test.
# This may be replaced when dependencies are built.
