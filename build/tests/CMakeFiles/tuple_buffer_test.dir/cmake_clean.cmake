file(REMOVE_RECURSE
  "CMakeFiles/tuple_buffer_test.dir/tuple_buffer_test.cc.o"
  "CMakeFiles/tuple_buffer_test.dir/tuple_buffer_test.cc.o.d"
  "tuple_buffer_test"
  "tuple_buffer_test.pdb"
  "tuple_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
