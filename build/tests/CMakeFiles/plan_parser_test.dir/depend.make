# Empty dependencies file for plan_parser_test.
# This may be replaced when dependencies are built.
