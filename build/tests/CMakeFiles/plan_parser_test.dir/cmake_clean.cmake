file(REMOVE_RECURSE
  "CMakeFiles/plan_parser_test.dir/plan_parser_test.cc.o"
  "CMakeFiles/plan_parser_test.dir/plan_parser_test.cc.o.d"
  "plan_parser_test"
  "plan_parser_test.pdb"
  "plan_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
