file(REMOVE_RECURSE
  "CMakeFiles/value_schema_test.dir/value_schema_test.cc.o"
  "CMakeFiles/value_schema_test.dir/value_schema_test.cc.o.d"
  "value_schema_test"
  "value_schema_test.pdb"
  "value_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
