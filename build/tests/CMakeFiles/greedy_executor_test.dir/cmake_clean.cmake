file(REMOVE_RECURSE
  "CMakeFiles/greedy_executor_test.dir/greedy_executor_test.cc.o"
  "CMakeFiles/greedy_executor_test.dir/greedy_executor_test.cc.o.d"
  "greedy_executor_test"
  "greedy_executor_test.pdb"
  "greedy_executor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/greedy_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
