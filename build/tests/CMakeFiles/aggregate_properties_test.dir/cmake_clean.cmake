file(REMOVE_RECURSE
  "CMakeFiles/aggregate_properties_test.dir/aggregate_properties_test.cc.o"
  "CMakeFiles/aggregate_properties_test.dir/aggregate_properties_test.cc.o.d"
  "aggregate_properties_test"
  "aggregate_properties_test.pdb"
  "aggregate_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
