# Empty compiler generated dependencies file for basic_operators_test.
# This may be replaced when dependencies are built.
