file(REMOVE_RECURSE
  "CMakeFiles/basic_operators_test.dir/basic_operators_test.cc.o"
  "CMakeFiles/basic_operators_test.dir/basic_operators_test.cc.o.d"
  "basic_operators_test"
  "basic_operators_test.pdb"
  "basic_operators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
