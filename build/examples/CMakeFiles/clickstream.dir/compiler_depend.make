# Empty compiler generated dependencies file for clickstream.
# This may be replaced when dependencies are built.
