file(REMOVE_RECURSE
  "CMakeFiles/streamets_run.dir/streamets_run.cpp.o"
  "CMakeFiles/streamets_run.dir/streamets_run.cpp.o.d"
  "streamets_run"
  "streamets_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamets_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
