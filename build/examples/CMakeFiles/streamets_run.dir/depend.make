# Empty dependencies file for streamets_run.
# This may be replaced when dependencies are built.
