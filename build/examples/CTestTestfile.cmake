# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_market_feed "/root/repo/build/examples/market_feed")
set_tests_properties(example_market_feed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_monitor "/root/repo/build/examples/network_monitor")
set_tests_properties(example_network_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_fusion "/root/repo/build/examples/sensor_fusion")
set_tests_properties(example_sensor_fusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clickstream "/root/repo/build/examples/clickstream")
set_tests_properties(example_clickstream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streamets_run "/root/repo/build/examples/streamets_run" "--demo")
set_tests_properties(example_streamets_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
