# Empty dependencies file for dsms.
# This may be replaced when dependencies are built.
