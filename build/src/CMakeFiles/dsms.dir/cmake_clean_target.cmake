file(REMOVE_RECURSE
  "libdsms.a"
)
