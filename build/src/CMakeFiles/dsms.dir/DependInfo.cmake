
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/dsms.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/dsms.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/dsms.dir/common/random.cc.o" "gcc" "src/CMakeFiles/dsms.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dsms.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dsms.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/dsms.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/dsms.dir/common/strings.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/dsms.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/dsms.dir/core/schema.cc.o.d"
  "/root/repo/src/core/stream_buffer.cc" "src/CMakeFiles/dsms.dir/core/stream_buffer.cc.o" "gcc" "src/CMakeFiles/dsms.dir/core/stream_buffer.cc.o.d"
  "/root/repo/src/core/tuple.cc" "src/CMakeFiles/dsms.dir/core/tuple.cc.o" "gcc" "src/CMakeFiles/dsms.dir/core/tuple.cc.o.d"
  "/root/repo/src/core/value.cc" "src/CMakeFiles/dsms.dir/core/value.cc.o" "gcc" "src/CMakeFiles/dsms.dir/core/value.cc.o.d"
  "/root/repo/src/exec/dfs_executor.cc" "src/CMakeFiles/dsms.dir/exec/dfs_executor.cc.o" "gcc" "src/CMakeFiles/dsms.dir/exec/dfs_executor.cc.o.d"
  "/root/repo/src/exec/ets_policy.cc" "src/CMakeFiles/dsms.dir/exec/ets_policy.cc.o" "gcc" "src/CMakeFiles/dsms.dir/exec/ets_policy.cc.o.d"
  "/root/repo/src/exec/exec_stats.cc" "src/CMakeFiles/dsms.dir/exec/exec_stats.cc.o" "gcc" "src/CMakeFiles/dsms.dir/exec/exec_stats.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/dsms.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/dsms.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/greedy_memory_executor.cc" "src/CMakeFiles/dsms.dir/exec/greedy_memory_executor.cc.o" "gcc" "src/CMakeFiles/dsms.dir/exec/greedy_memory_executor.cc.o.d"
  "/root/repo/src/exec/round_robin_executor.cc" "src/CMakeFiles/dsms.dir/exec/round_robin_executor.cc.o" "gcc" "src/CMakeFiles/dsms.dir/exec/round_robin_executor.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/dsms.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/dsms.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/plan_parser.cc" "src/CMakeFiles/dsms.dir/graph/plan_parser.cc.o" "gcc" "src/CMakeFiles/dsms.dir/graph/plan_parser.cc.o.d"
  "/root/repo/src/graph/query_graph.cc" "src/CMakeFiles/dsms.dir/graph/query_graph.cc.o" "gcc" "src/CMakeFiles/dsms.dir/graph/query_graph.cc.o.d"
  "/root/repo/src/metrics/histogram.cc" "src/CMakeFiles/dsms.dir/metrics/histogram.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/histogram.cc.o.d"
  "/root/repo/src/metrics/idle_wait_tracker.cc" "src/CMakeFiles/dsms.dir/metrics/idle_wait_tracker.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/idle_wait_tracker.cc.o.d"
  "/root/repo/src/metrics/latency_recorder.cc" "src/CMakeFiles/dsms.dir/metrics/latency_recorder.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/latency_recorder.cc.o.d"
  "/root/repo/src/metrics/order_validator.cc" "src/CMakeFiles/dsms.dir/metrics/order_validator.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/order_validator.cc.o.d"
  "/root/repo/src/metrics/queue_size_tracker.cc" "src/CMakeFiles/dsms.dir/metrics/queue_size_tracker.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/queue_size_tracker.cc.o.d"
  "/root/repo/src/metrics/stats_report.cc" "src/CMakeFiles/dsms.dir/metrics/stats_report.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/stats_report.cc.o.d"
  "/root/repo/src/metrics/table_printer.cc" "src/CMakeFiles/dsms.dir/metrics/table_printer.cc.o" "gcc" "src/CMakeFiles/dsms.dir/metrics/table_printer.cc.o.d"
  "/root/repo/src/operators/filter.cc" "src/CMakeFiles/dsms.dir/operators/filter.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/filter.cc.o.d"
  "/root/repo/src/operators/grouped_aggregate.cc" "src/CMakeFiles/dsms.dir/operators/grouped_aggregate.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/grouped_aggregate.cc.o.d"
  "/root/repo/src/operators/iwp_operator.cc" "src/CMakeFiles/dsms.dir/operators/iwp_operator.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/iwp_operator.cc.o.d"
  "/root/repo/src/operators/map.cc" "src/CMakeFiles/dsms.dir/operators/map.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/map.cc.o.d"
  "/root/repo/src/operators/multiway_join.cc" "src/CMakeFiles/dsms.dir/operators/multiway_join.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/multiway_join.cc.o.d"
  "/root/repo/src/operators/operator.cc" "src/CMakeFiles/dsms.dir/operators/operator.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/operator.cc.o.d"
  "/root/repo/src/operators/project.cc" "src/CMakeFiles/dsms.dir/operators/project.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/project.cc.o.d"
  "/root/repo/src/operators/reorder.cc" "src/CMakeFiles/dsms.dir/operators/reorder.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/reorder.cc.o.d"
  "/root/repo/src/operators/sink.cc" "src/CMakeFiles/dsms.dir/operators/sink.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/sink.cc.o.d"
  "/root/repo/src/operators/source.cc" "src/CMakeFiles/dsms.dir/operators/source.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/source.cc.o.d"
  "/root/repo/src/operators/split.cc" "src/CMakeFiles/dsms.dir/operators/split.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/split.cc.o.d"
  "/root/repo/src/operators/union_op.cc" "src/CMakeFiles/dsms.dir/operators/union_op.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/union_op.cc.o.d"
  "/root/repo/src/operators/window_aggregate.cc" "src/CMakeFiles/dsms.dir/operators/window_aggregate.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/window_aggregate.cc.o.d"
  "/root/repo/src/operators/window_join.cc" "src/CMakeFiles/dsms.dir/operators/window_join.cc.o" "gcc" "src/CMakeFiles/dsms.dir/operators/window_join.cc.o.d"
  "/root/repo/src/sim/arrival_process.cc" "src/CMakeFiles/dsms.dir/sim/arrival_process.cc.o" "gcc" "src/CMakeFiles/dsms.dir/sim/arrival_process.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/dsms.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/dsms.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/experiment_spec.cc" "src/CMakeFiles/dsms.dir/sim/experiment_spec.cc.o" "gcc" "src/CMakeFiles/dsms.dir/sim/experiment_spec.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/CMakeFiles/dsms.dir/sim/scenario.cc.o" "gcc" "src/CMakeFiles/dsms.dir/sim/scenario.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/dsms.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/dsms.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/trace_loader.cc" "src/CMakeFiles/dsms.dir/sim/trace_loader.cc.o" "gcc" "src/CMakeFiles/dsms.dir/sim/trace_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
