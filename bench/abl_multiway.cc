// Ablation: the idle-waiting problem on an N-ARY window join (the multi-way
// generalization the paper defers in Section 2). One busy stream joined
// with k sparse streams on a shared key: without ETS the join idle-waits on
// every sparse input; on-demand ETS needs up to k round trips per blocked
// tuple. Built directly on the library API (no scenario harness) — also a
// usage example for MultiWayJoin.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/clock.h"
#include "common/strings.h"
#include "exec/dfs_executor.h"
#include "graph/graph_builder.h"
#include "metrics/table_printer.h"
#include "operators/multiway_join.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

struct RunResult {
  double mean_ms = 0.0;
  double idle_pct = 0.0;
  int64_t peak_queue = 0;
  uint64_t ets = 0;
  uint64_t matches = 0;
};

RunResult RunOnce(int sparse_inputs, EtsMode ets_mode, double heartbeat_hz,
                  const bench::BenchOptions& options) {
  GraphBuilder builder;
  std::vector<Source*> sources;
  Source* busy = builder.AddSource("BUSY", TimestampKind::kInternal);
  sources.push_back(busy);
  for (int i = 0; i < sparse_inputs; ++i) {
    sources.push_back(builder.AddSource(StrFormat("SPARSE%d", i),
                                        TimestampKind::kInternal));
  }
  // Cross join with a short busy-side window and ~one-tuple sparse windows,
  // so match counts stay small and the measured latency reflects the
  // idle-waiting problem rather than result-burst drainage.
  std::vector<Duration> windows(static_cast<size_t>(1 + sparse_inputs),
                                20 * kSecond);
  windows[0] = 2 * kSecond;
  MultiWayJoin* join =
      builder.AddMultiWayJoin("MJ", std::move(windows),
                              /*predicate=*/nullptr);
  Sink* sink = builder.AddSink("OUT");
  for (Source* s : sources) builder.Connect(s, join);
  builder.Connect(join, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());

  VirtualClock clock;
  ExecConfig config;
  config.ets.mode = ets_mode;
  DfsExecutor executor(graph->get(), &clock, config);
  Simulation sim(graph->get(), &executor, &clock);
  sim.AddFeed(busy, std::make_unique<PoissonProcess>(50.0, options.seed + 1));
  for (int i = 0; i < sparse_inputs; ++i) {
    sim.AddFeed(sources[static_cast<size_t>(i + 1)],
                std::make_unique<PoissonProcess>(
                    0.05, options.seed + 100 + static_cast<uint64_t>(i)));
    if (heartbeat_hz > 0) {
      sim.AddHeartbeat(sources[static_cast<size_t>(i + 1)],
                       SecondsToDuration(1.0 / heartbeat_hz),
                       /*phase=*/i * 137);
    }
  }
  Duration horizon = options.quick ? 120 * kSecond : 600 * kSecond;
  sim.Run(horizon, /*warmup=*/horizon / 12);

  RunResult r;
  r.mean_ms = sink->latency().mean_ms();
  const IdleWaitTracker* tracker = executor.idle_tracker(join->id());
  if (tracker != nullptr) {
    r.idle_pct = tracker->IdleFraction(0, clock.now()) * 100.0;
  }
  r.peak_queue = sim.queue_tracker().peak_total();
  r.ets = executor.ets_generated();
  r.matches = sink->data_delivered();
  return r;
}

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_multiway: n-ary window join (1 busy + k sparse inputs)",
      "Section 2's deferred multi-way join, treated per Figure 6",
      "A's idle fraction stays ~99% at every fan-in; C stays <1% with ETS "
      "cost growing ~k per blocked tuple");

  TablePrinter table({"inputs", "series", "mean_ms", "idle_pct",
                      "peak_queue", "ets", "matches"});
  for (int sparse : {1, 2, 4}) {
    struct Config {
      const char* label;
      EtsMode mode;
      double heartbeat;
    };
    for (const Config& c :
         {Config{"A:no-ets", EtsMode::kNone, 0.0},
          Config{"B:periodic@10", EtsMode::kNone, 10.0},
          Config{"C:on-demand", EtsMode::kOnDemand, 0.0}}) {
      RunResult r = RunOnce(sparse, c.mode, c.heartbeat, options);
      table.AddRow({StrFormat("%d", 1 + sparse), c.label,
                    StrFormat("%.4f", r.mean_ms),
                    StrFormat("%.4f", r.idle_pct),
                    StrFormat("%lld", static_cast<long long>(r.peak_queue)),
                    StrFormat("%llu", static_cast<unsigned long long>(r.ets)),
                    StrFormat("%llu",
                              static_cast<unsigned long long>(r.matches))});
    }
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
