// Ablation for Section 5's external-timestamp ETS rule (t + τ − δ): how the
// declared skew bound δ degrades on-demand ETS. A larger δ forces weaker
// bounds, so blocked tuples wait ~δ before an ETS can release them; latency
// under C grows roughly linearly with δ.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_external_delta: ETS quality vs external skew bound",
      "Section 5, on-demand ETS for externally timestamped tuples",
      "C latency grows with the skew bound (roughly ~delta), staying far "
      "below A at every delta");

  TablePrinter table({"skew_bound_ms", "series", "mean_ms", "p99_ms",
                      "ets_generated"});

  for (Duration delta : {kMillisecond, 10 * kMillisecond, 50 * kMillisecond,
                         100 * kMillisecond, 500 * kMillisecond, kSecond}) {
    for (ScenarioKind kind :
         {ScenarioKind::kNoEts, ScenarioKind::kOnDemandEts}) {
      ScenarioConfig config;
      bench::ApplyWindow(options, &config);
      config.kind = kind;
      config.ts_kind = TimestampKind::kExternal;
      config.skew_bound = delta;
      ScenarioResult r = RunScenario(config);
      table.AddRow({StrFormat("%.3f", DurationToMillis(delta)),
                    ScenarioKindToString(kind),
                    StrFormat("%.4f", r.mean_latency_ms),
                    StrFormat("%.4f", r.p99_latency_ms),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.ets_generated))});
    }
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
