// Micro-benchmarks (google-benchmark) for the core data path: buffer
// operations, operator steps, TSM bookkeeping, and the plan parser. These
// measure the real CPU costs that the simulation's virtual cost model
// abstracts (see CostModel in exec/executor.h).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/clock.h"
#include "common/random.h"
#include "core/column_batch.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "exec/dfs_executor.h"
#include "exec/sharded_executor.h"
#include "graph/graph_builder.h"
#include "graph/plan_parser.h"
#include "metrics/histogram.h"
#include "operators/filter.h"
#include "operators/multiway_join.h"
#include "operators/union_op.h"
#include "operators/window_aggregate.h"
#include "operators/window_join.h"

namespace dsms {
namespace {

void BM_StreamBufferPushPop(benchmark::State& state) {
  StreamBuffer buffer("b");
  Tuple tuple = Tuple::MakeData(1, {Value(int64_t{42})});
  for (auto _ : state) {
    buffer.Push(tuple);
    benchmark::DoNotOptimize(buffer.Pop());
  }
}
BENCHMARK(BM_StreamBufferPushPop);

void BM_Pcg32(benchmark::State& state) {
  Pcg32 rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.NextUint32());
}
BENCHMARK(BM_Pcg32);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Pcg32 rng(1);
  for (auto _ : state) histogram.Record(rng.NextInt(0, 1 << 20));
  benchmark::DoNotOptimize(histogram.mean());
}
BENCHMARK(BM_HistogramRecord);

void BM_FilterStep(benchmark::State& state) {
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f", [](const Tuple& t) {
    return t.value(0).int64_value() % 2 == 0;
  });
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  int64_t i = 0;
  for (auto _ : state) {
    in.Push(Tuple::MakeData(i, {Value(i)}));
    benchmark::DoNotOptimize(filter.Step(ctx));
    while (!out.empty()) out.Pop();
    ++i;
  }
}
BENCHMARK(BM_FilterStep);

void BM_UnionStep(benchmark::State& state) {
  StreamBuffer in0("i0");
  StreamBuffer in1("i1");
  StreamBuffer out("out");
  Union u("u");
  u.AddInput(&in0);
  u.AddInput(&in1);
  u.AddOutput(&out);
  ManualExecContext ctx;
  Timestamp ts = 0;
  for (auto _ : state) {
    in0.Push(Tuple::MakeData(ts, {Value(ts)}));
    in1.Push(Tuple::MakeData(ts, {Value(ts)}));
    benchmark::DoNotOptimize(u.Step(ctx));
    benchmark::DoNotOptimize(u.Step(ctx));
    while (!out.empty()) out.Pop();
    ++ts;
  }
}
BENCHMARK(BM_UnionStep);

void BM_WindowJoinProbe(benchmark::State& state) {
  const int64_t window_tuples = state.range(0);
  StreamBuffer left("l");
  StreamBuffer right("r");
  StreamBuffer out("out");
  WindowJoin join("j", /*left_window=*/1 << 30, /*right_window=*/1 << 30,
                  WindowJoin::EquiJoin(0, 0));
  join.AddInput(&left);
  join.AddInput(&right);
  join.AddOutput(&out);
  ManualExecContext ctx;
  // Preload the right window with non-matching tuples.
  for (int64_t i = 0; i < window_tuples; ++i) {
    right.Push(Tuple::MakeData(i, {Value(int64_t{-1})}));
    left.Push(Tuple::MakeData(i, {Value(int64_t{-2})}));
    join.Step(ctx);
    join.Step(ctx);
  }
  Timestamp ts = window_tuples;
  for (auto _ : state) {
    // The punctuation raises the right input's TSM so the left tuple is at
    // τ and actually probes the window (otherwise the step would block).
    right.Push(Tuple::MakePunctuation(ts));
    left.Push(Tuple::MakeData(ts, {Value(int64_t{-3})}));
    join.Step(ctx);                            // absorb the punctuation
    benchmark::DoNotOptimize(join.Step(ctx));  // probe
    while (!out.empty()) out.Pop();
    ++ts;
  }
  state.SetItemsProcessed(state.iterations() * window_tuples);
}
BENCHMARK(BM_WindowJoinProbe)->Arg(16)->Arg(256)->Arg(4096);

// Indexed vs scan probes over the same window: the right window holds
// `window` rows spread uniformly over 64 keys and every iteration probes
// with a single key. With the equi fields declared, the StateTable's
// per-block hash index visits only the ~window/64 same-key rows; without
// the declaration the probe scans every row and re-checks the predicate.
// The emitted matches are identical either way — the index changes the
// visit set, never the output (tests/window_join_test.cc holds that line).
void BM_WindowJoinProbeKeyed(benchmark::State& state) {
  const int64_t window_tuples = state.range(0);
  const bool indexed = state.range(1) != 0;
  constexpr int64_t kKeys = 64;
  StreamBuffer left("l");
  StreamBuffer right("r");
  StreamBuffer out("out");
  WindowJoin join("j", /*left_window=*/1 << 30, /*right_window=*/1 << 30,
                  WindowJoin::EquiJoin(0, 0));
  if (indexed) join.set_equi_fields(0, 0);
  join.AddInput(&left);
  join.AddInput(&right);
  join.AddOutput(&out);
  ManualExecContext ctx;
  for (int64_t i = 0; i < window_tuples; ++i) {
    right.Push(Tuple::MakeData(i, {Value(i % kKeys)}));
    left.Push(Tuple::MakeData(i, {Value(kKeys)}));  // never matches
    join.Step(ctx);
    join.Step(ctx);
  }
  Timestamp ts = window_tuples;
  for (auto _ : state) {
    right.Push(Tuple::MakePunctuation(ts));
    left.Push(Tuple::MakeData(ts, {Value(int64_t{7})}));
    join.Step(ctx);                            // absorb the punctuation
    benchmark::DoNotOptimize(join.Step(ctx));  // probe
    while (!out.empty()) out.Pop();
    ++ts;
  }
  state.SetItemsProcessed(state.iterations() * window_tuples);
  state.SetLabel(indexed ? "indexed" : "scan");
}
BENCHMARK(BM_WindowJoinProbeKeyed)
    ->ArgNames({"window", "indexed"})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

// Adaptive vs static probe order on a skewed three-input MJoin. Input 0's
// window is fat — 8 same-key rows per round — while input 2's is almost
// empty, so the adaptive order learns to probe input 2 first and kills
// most candidate combinations before they fan out across the fat window;
// the static order 0..N-1 pays the full 8x intermediate fan-out on every
// fresh input-1 tuple. Output (match set and payloads) is identical in
// both modes; only enumeration cost differs.
void BM_MultiwayJoinSkewedOrder(benchmark::State& state) {
  const bool adaptive = state.range(0) != 0;
  constexpr Duration kWindow = 64;
  constexpr int64_t kFatRows = 8;
  MultiWayJoin join("mj", {kWindow, kWindow, kWindow},
                    MultiWayJoin::EquiJoin(0));
  join.set_equi_field(0);
  join.set_adaptive(adaptive);
  StreamBuffer in0("i0");
  StreamBuffer in1("i1");
  StreamBuffer in2("i2");
  StreamBuffer out("out");
  join.AddInput(&in0);
  join.AddInput(&in1);
  join.AddInput(&in2);
  join.AddOutput(&out);
  ManualExecContext ctx;
  auto drain = [&] {
    for (int guard = 0; guard < 100000; ++guard) {
      if (!join.Step(ctx).more) break;
    }
    while (!out.empty()) out.Pop();
  };
  Timestamp ts = 1;
  // Warm-up rounds let the adaptive order observe the skew and re-sort
  // (it re-evaluates every 16 absorbed punctuations).
  for (int round = 0; round < 64; ++round) {
    for (int64_t r = 0; r < kFatRows; ++r) {
      in0.Push(Tuple::MakeData(ts, {Value(int64_t{7})}));
    }
    in1.Push(Tuple::MakeData(ts, {Value(int64_t{7})}));
    if (round % 8 == 0) in2.Push(Tuple::MakeData(ts, {Value(int64_t{3})}));
    ++ts;
    in0.Push(Tuple::MakePunctuation(ts));
    in1.Push(Tuple::MakePunctuation(ts));
    in2.Push(Tuple::MakePunctuation(ts));
    drain();
  }
  for (auto _ : state) {
    for (int64_t r = 0; r < kFatRows; ++r) {
      in0.Push(Tuple::MakeData(ts, {Value(int64_t{7})}));
    }
    in1.Push(Tuple::MakeData(ts, {Value(int64_t{7})}));
    ++ts;
    in0.Push(Tuple::MakePunctuation(ts));
    in1.Push(Tuple::MakePunctuation(ts));
    in2.Push(Tuple::MakePunctuation(ts));
    drain();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(adaptive ? "adaptive" : "static");
}
BENCHMARK(BM_MultiwayJoinSkewedOrder)
    ->ArgName("adaptive")
    ->Arg(0)
    ->Arg(1);

void BM_DfsExecutorPath(benchmark::State& state) {
  GraphBuilder builder;
  Source* source = builder.AddSource("S", TimestampKind::kInternal);
  auto* f = builder.AddFilter("F", [](const Tuple&) { return true; });
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(source, f);
  builder.Connect(f, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  ExecConfig config;
  config.costs = CostModel{0, 0, 0, 0, 0};  // pure CPU measurement
  DfsExecutor executor(graph->get(), &clock, config);
  Timestamp now = 0;
  for (auto _ : state) {
    source->Ingest({Value(now)}, now);
    executor.RunUntilIdle();
    ++now;
  }
  state.SetLabel("source->filter->sink per tuple");
}
BENCHMARK(BM_DfsExecutorPath);

void BM_TupleSmallLifecycle(benchmark::State& state) {
  // Construct + destroy a data tuple with kInlineCapacity numeric values:
  // the zero-allocation steady-state unit of the whole data path.
  for (auto _ : state) {
    Tuple t = Tuple::MakeData(1, {Value(int64_t{1}), Value(2.0), Value(true),
                                  Value(int64_t{4})});
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TupleSmallLifecycle);

void BM_StreamBufferPushAllDrain(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  StreamBuffer buffer("b");
  std::vector<Tuple> out;
  for (auto _ : state) {
    std::vector<Tuple> in;
    in.reserve(batch);
    for (size_t i = 0; i < batch; ++i) {
      in.push_back(Tuple::MakeData(static_cast<Timestamp>(i),
                                   {Value(static_cast<int64_t>(i))}));
    }
    buffer.PushAll(std::move(in));
    out.clear();
    benchmark::DoNotOptimize(buffer.DrainInto(&out));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_StreamBufferPushAllDrain)->Arg(16)->Arg(256);

/// End-to-end cost of delivering one tuple through a registered-query
/// workload: `chains` independent source->filter->sink queries share one
/// executor, and each round one tuple arrives at one of them (round-robin).
/// This is the scheduling shape the ready queue targets — work discovery
/// should cost O(active operators), not O(graph size). range(1) selects the
/// work-discovery strategy, so ready-queue scheduling (scan=0) can be
/// compared against the retained full-scan reference (scan=1) on one build.
void BM_DfsPipeline(benchmark::State& state) {
  const int num_chains = static_cast<int>(state.range(0));
  GraphBuilder builder;
  std::vector<Source*> sources;
  for (int i = 0; i < num_chains; ++i) {
    Source* s =
        builder.AddSource("S" + std::to_string(i), TimestampKind::kInternal);
    auto* f = builder.AddFilter("F" + std::to_string(i),
                                [](const Tuple&) { return true; });
    Sink* sink = builder.AddSink("OUT" + std::to_string(i));
    builder.Connect(s, f);
    builder.Connect(f, sink);
    sources.push_back(s);
  }
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  ExecConfig config;
  config.costs = CostModel{0, 0, 0, 0, 0};  // pure CPU measurement
  config.scheduler = state.range(1) == 0 ? SchedulerMode::kReadyQueue
                                         : SchedulerMode::kScanReference;
  DfsExecutor executor(graph->get(), &clock, config);
  Timestamp now = 0;
  size_t next_chain = 0;
  for (auto _ : state) {
    sources[next_chain]->Ingest({Value(now)}, now);
    if (++next_chain == sources.size()) next_chain = 0;
    executor.RunUntilIdle();
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DfsPipeline)
    ->ArgNames({"chains", "scan"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({64, 0})
    ->Args({64, 1});

// --- Columnar batch path vs the scalar tuple-at-a-time path --------------
// (see docs/batching.md; these pairs back the batch PR's speedup claims)

/// Scalar baseline: one Step() call — one virtual dispatch, one buffer pop,
/// one std::function predicate call — per row.
void BM_FilterScalar(benchmark::State& state) {
  const int64_t rows = state.range(0);
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f",
                [](const Tuple& t) { return t.value(0).AsDouble() >= 0.5; });
  filter.set_compare_spec(0, FilterCmp::kGe, 0.5);
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  Pcg32 rng(7);
  std::vector<double> values(static_cast<size_t>(rows));
  for (double& v : values) v = rng.NextDouble();
  for (auto _ : state) {
    state.PauseTiming();  // staging the burst is not the path under test
    for (int64_t i = 0; i < rows; ++i) {
      in.Push(Tuple::MakeData(i, {Value(values[static_cast<size_t>(i)])}));
    }
    state.ResumeTiming();
    while (!in.empty()) filter.Step(ctx);
    while (!out.empty()) out.Pop();
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_FilterScalar)->ArgName("rows")->Arg(64)->Arg(1024);

/// Vectorized path: one DrainIntoBatch + one ProcessBatch per burst; the
/// comparison runs as a tight selection loop over the numeric column.
void BM_FilterBatch(benchmark::State& state) {
  const int64_t rows = state.range(0);
  StreamBuffer in("in");
  StreamBuffer out("out");
  Filter filter("f",
                [](const Tuple& t) { return t.value(0).AsDouble() >= 0.5; });
  filter.set_compare_spec(0, FilterCmp::kGe, 0.5);
  filter.AddInput(&in);
  filter.AddOutput(&out);
  ManualExecContext ctx;
  Pcg32 rng(7);
  std::vector<double> values(static_cast<size_t>(rows));
  for (double& v : values) v = rng.NextDouble();
  ColumnBatch batch;
  for (auto _ : state) {
    state.PauseTiming();  // staging the burst is not the path under test
    for (int64_t i = 0; i < rows; ++i) {
      in.Push(Tuple::MakeData(i, {Value(values[static_cast<size_t>(i)])}));
    }
    state.ResumeTiming();
    bool split = false;
    in.DrainIntoBatch(&batch, static_cast<size_t>(rows), &split);
    filter.ProcessBatch(batch, ctx);
    batch.Clear();
    while (!out.empty()) out.Pop();
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_FilterBatch)->ArgName("rows")->Arg(64)->Arg(1024);

void BM_WindowAggScalar(benchmark::State& state) {
  const int64_t rows = state.range(0);
  StreamBuffer in("in");
  StreamBuffer out("out");
  WindowAggregate agg("w", AggKind::kSum, 0, /*window=*/1024, /*slide=*/1024);
  agg.AddInput(&in);
  agg.AddOutput(&out);
  ManualExecContext ctx;
  Timestamp ts = 0;
  for (auto _ : state) {
    state.PauseTiming();  // staging the burst is not the path under test
    for (int64_t i = 0; i < rows; ++i) {
      in.Push(Tuple::MakeData(ts, {Value(1.0)}));
      ++ts;
    }
    state.ResumeTiming();
    while (!in.empty()) agg.Step(ctx);
    while (!out.empty()) out.Pop();
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_WindowAggScalar)->ArgName("rows")->Arg(64)->Arg(1024);

void BM_WindowAggBatch(benchmark::State& state) {
  const int64_t rows = state.range(0);
  StreamBuffer in("in");
  StreamBuffer out("out");
  WindowAggregate agg("w", AggKind::kSum, 0, /*window=*/1024, /*slide=*/1024);
  agg.AddInput(&in);
  agg.AddOutput(&out);
  ManualExecContext ctx;
  ColumnBatch batch;
  Timestamp ts = 0;
  for (auto _ : state) {
    state.PauseTiming();  // staging the burst is not the path under test
    for (int64_t i = 0; i < rows; ++i) {
      in.Push(Tuple::MakeData(ts, {Value(1.0)}));
      ++ts;
    }
    state.ResumeTiming();
    bool split = false;
    in.DrainIntoBatch(&batch, static_cast<size_t>(rows), &split);
    agg.ProcessBatch(batch, ctx);
    batch.Clear();
    while (!out.empty()) out.Pop();
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_WindowAggBatch)->ArgName("rows")->Arg(64)->Arg(1024);

/// The Figure-7 hot path — source -> 95% selection -> window aggregate ->
/// sink — driven through the real executor. batch=0 is the scalar engine;
/// batch=N enables columnar drains of up to N rows. Tuples arrive in bursts
/// of 1024 so a large batch size actually sees full buffers (matching the
/// backlog shape the paper's latency experiment creates on the fast
/// stream). items/s across the batch arg column is the headline
/// batch-vs-scalar comparison of BENCH_core.json.
void BM_Fig7FilterWindowChain(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  constexpr int64_t kBurst = 1024;
  GraphBuilder builder;
  Source* source = builder.AddSource("S", TimestampKind::kInternal);
  Filter* filter = builder.AddFilter("F", [](const Tuple& t) {
    return t.value(0).AsDouble() >= 0.05;  // the paper's 95% selectivity
  });
  filter->set_compare_spec(0, FilterCmp::kGe, 0.05);
  WindowAggregate* agg = builder.AddWindowAggregate(
      "W", AggKind::kSum, 0, /*window=*/1024, /*slide=*/1024);
  Sink* sink = builder.AddSink("OUT");
  builder.Connect(source, filter);
  builder.Connect(filter, agg);
  builder.Connect(agg, sink);
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  ExecConfig config;
  config.costs = CostModel{0, 0, 0, 0, 0};  // pure CPU measurement
  config.batch_size = batch_size;
  DfsExecutor executor(graph->get(), &clock, config);
  Pcg32 rng(7);
  std::vector<double> values(kBurst);
  for (double& v : values) v = rng.NextDouble();
  Timestamp now = 0;
  for (auto _ : state) {
    // Arrival is not the path under test: the burst is staged with the
    // clock paused so both engines are timed on execution alone.
    state.PauseTiming();
    for (int64_t i = 0; i < kBurst; ++i) {
      source->Ingest({Value(values[static_cast<size_t>(i)])}, now);
      ++now;
    }
    state.ResumeTiming();
    executor.RunUntilIdle();
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.SetLabel(batch_size == 0 ? "scalar engine" : "columnar batches");
}
BENCHMARK(BM_Fig7FilterWindowChain)
    ->ArgName("batch")
    ->Arg(0)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024);

// --- Sharded engine: shards=1 vs shards=4 on the figure workloads --------
// (ROADMAP item 1; docs/execution_model.md "Sharded execution"). On this
// one-core bench host the headline is *virtual-time* throughput — the
// virtual_tuples_per_sec counter. Parallel shards burn virtual CPU
// concurrently (the epoch barrier advances the clock by the MAX per-shard
// cost, not the sum), so a balanced 4-shard partition should clear >= 2x
// the scalar engine's virtual throughput on the same workload; wall-clock
// items/s on one core only shows the barrier overhead.

/// Four independent fig7-style chains (source -> 95% filter -> tumbling
/// window sum -> sink), stream ids 0-3 — which FNV-partition one chain per
/// shard at shards=4.
void BM_ShardedFig7Chains(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  constexpr int kChains = 4;
  constexpr int64_t kBurst = 256;  // per chain per round
  GraphBuilder builder;
  std::vector<Source*> sources;
  for (int i = 0; i < kChains; ++i) {
    Source* source = builder.AddSource("S" + std::to_string(i),
                                       TimestampKind::kInternal);
    Filter* filter = builder.AddFilter(
        "F" + std::to_string(i),
        [](const Tuple& t) { return t.value(0).AsDouble() >= 0.05; });
    filter->set_compare_spec(0, FilterCmp::kGe, 0.05);
    WindowAggregate* agg = builder.AddWindowAggregate(
        "W" + std::to_string(i), AggKind::kSum, 0, /*window=*/1024,
        /*slide=*/1024);
    Sink* sink = builder.AddSink("OUT" + std::to_string(i));
    builder.Connect(source, filter);
    builder.Connect(filter, agg);
    builder.Connect(agg, sink);
    sources.push_back(source);
  }
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  ExecConfig config;  // default cost model: virtual time is the measurement
  config.shards = shards;
  config.shard_mode = ShardMode::kParallel;
  std::unique_ptr<Executor> executor;
  if (shards > 1) {
    executor =
        std::make_unique<ShardedExecutor>(graph->get(), &clock, config);
  } else {
    executor = std::make_unique<DfsExecutor>(graph->get(), &clock, config);
  }
  Pcg32 rng(7);
  uint64_t tuples = 0;
  for (auto _ : state) {
    // Staged with the timer paused: arrival is not the path under test.
    state.PauseTiming();
    Timestamp now = clock.now();
    for (int64_t i = 0; i < kBurst; ++i) {
      ++now;
      for (Source* source : sources) {
        source->Ingest({Value(rng.NextDouble())}, now);
      }
    }
    state.ResumeTiming();
    executor->RunUntilIdle();
    tuples += kChains * kBurst;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  const double vseconds = DurationToSeconds(clock.now());
  state.counters["virtual_tuples_per_sec"] =
      vseconds > 0 ? static_cast<double>(tuples) / vseconds : 0;
  state.SetLabel(shards > 1 ? "parallel shards" : "scalar dfs");
}
BENCHMARK(BM_ShardedFig7Chains)->ArgName("shards")->Arg(1)->Arg(4);

/// Four independent fig8-style union pairs (two streams -> filters ->
/// ordered union -> sink). Each pair's streams land on different shards,
/// so every union has one cross-shard input arc — punctuation/ETS hop
/// shard boundaries on the hot path, the fig8 queue-growth shape.
void BM_ShardedFig8Unions(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  constexpr int kPairs = 4;
  constexpr int64_t kBurst = 256;  // per stream per round
  GraphBuilder builder;
  std::vector<Source*> sources;
  for (int i = 0; i < kPairs; ++i) {
    Source* a = builder.AddSource("A" + std::to_string(i),
                                  TimestampKind::kInternal);
    Source* b = builder.AddSource("B" + std::to_string(i),
                                  TimestampKind::kInternal);
    Filter* fa = builder.AddFilter("FA" + std::to_string(i),
                                   [](const Tuple&) { return true; });
    Filter* fb = builder.AddFilter("FB" + std::to_string(i),
                                   [](const Tuple&) { return true; });
    Union* u = builder.AddUnion("U" + std::to_string(i));
    Sink* sink = builder.AddSink("OUT" + std::to_string(i));
    builder.Connect(a, fa);
    builder.Connect(b, fb);
    builder.Connect(fa, u);
    builder.Connect(fb, u);
    builder.Connect(u, sink);
    sources.push_back(a);
    sources.push_back(b);
  }
  auto graph = builder.Build();
  DSMS_CHECK_OK(graph.status());
  VirtualClock clock;
  ExecConfig config;  // default cost model: virtual time is the measurement
  config.ets.mode = EtsMode::kOnDemand;
  config.shards = shards;
  config.shard_mode = ShardMode::kParallel;
  std::unique_ptr<Executor> executor;
  if (shards > 1) {
    executor =
        std::make_unique<ShardedExecutor>(graph->get(), &clock, config);
  } else {
    executor = std::make_unique<DfsExecutor>(graph->get(), &clock, config);
  }
  uint64_t tuples = 0;
  int64_t seq = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Timestamp now = clock.now();
    for (int64_t i = 0; i < kBurst; ++i) {
      ++now;
      for (Source* source : sources) {
        source->Ingest({Value(seq)}, now);
      }
      ++seq;
    }
    state.ResumeTiming();
    executor->RunUntilIdle();
    tuples += static_cast<uint64_t>(sources.size()) * kBurst;
  }
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  const double vseconds = DurationToSeconds(clock.now());
  state.counters["virtual_tuples_per_sec"] =
      vseconds > 0 ? static_cast<double>(tuples) / vseconds : 0;
  state.SetLabel(shards > 1 ? "parallel shards" : "scalar dfs");
}
BENCHMARK(BM_ShardedFig8Unions)->ArgName("shards")->Arg(1)->Arg(4);

void BM_PlanParser(benchmark::State& state) {
  constexpr char kPlan[] = R"(
stream S1 ts=internal
stream S2 ts=internal
filter F1 in=S1 selectivity=0.95 seed=7
filter F2 in=S2 selectivity=0.95 seed=8
union U in=F1,F2
sink OUT in=U
)";
  for (auto _ : state) {
    auto plan = ParsePlan(kPlan);
    benchmark::DoNotOptimize(plan.ok());
  }
}
BENCHMARK(BM_PlanParser);

}  // namespace
}  // namespace dsms

// Hand-rolled BENCHMARK_MAIN so the CLI composes with the rest of bench/:
//   --json PATH (or --json=PATH) expands to google-benchmark's
//     --benchmark_out=PATH --benchmark_out_format=json, matching the --json
//     flag of the figure harnesses;
//   --benchmark_min_time=0.01s is normalized to the suffix-free form the
//     older google-benchmark in CI rejects ("expected to be a double").
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  storage.reserve(static_cast<size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    std::string json_path;
    const std::string kJsonEq = "--json=";
    const std::string kMinTime = "--benchmark_min_time=";
    if (arg.rfind(kJsonEq, 0) == 0) {
      json_path = arg.substr(kJsonEq.size());
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    }
    if (!json_path.empty()) {
      storage.push_back("--benchmark_out=" + json_path);
      storage.push_back("--benchmark_out_format=json");
      continue;
    }
    if (arg.rfind(kMinTime, 0) == 0 && arg.size() > kMinTime.size() &&
        arg.back() == 's') {
      std::string value =
          arg.substr(kMinTime.size(), arg.size() - kMinTime.size() - 1);
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      if (end == value.c_str() + value.size()) {
        storage.push_back(kMinTime + value);
        continue;
      }
    }
    storage.push_back(std::move(arg));
  }
  std::vector<char*> args;
  args.reserve(storage.size());
  for (std::string& s : storage) args.push_back(s.data());
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  // Stamp the JSON context with this binary's own build type (google-
  // benchmark's library_build_type reflects the benchmark *library*, not
  // this translation unit) and refuse to let a debug run pass silently.
  benchmark::AddCustomContext("build_type", dsms::bench::BuildType());
  dsms::bench::WarnIfDebugBuild();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
