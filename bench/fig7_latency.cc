// Reproduces Figure 7 (a)+(b): average output latency of the union query
// (two Poisson streams, 50 and 0.05 tuples/s, 95%-selectivity selections)
// under the four timestamp-management strategies. Line B is swept over the
// heartbeat injection rate into the sparse stream.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "fig7_latency: average output latency (union query)",
      "Figure 7(a) log-scale series A/B/C/D and Figure 7(b) zoom on C vs D",
      "A is seconds-to-tens-of-seconds; B falls as the heartbeat rate rises "
      "but never reaches C; C is within ~0.1 ms of D");

  TablePrinter table({"series", "punct_rate_hz", "mean_ms", "p50_ms",
                      "p99_ms", "max_ms", "tuples_out"});

  auto add_row = [&table](const std::string& series, double rate,
                          const ScenarioResult& r) {
    table.AddRow({series, StrFormat("%.6g", rate),
                  StrFormat("%.4f", r.mean_latency_ms),
                  StrFormat("%.4f", r.p50_latency_ms),
                  StrFormat("%.4f", r.p99_latency_ms),
                  StrFormat("%.4f", r.max_latency_ms),
                  StrFormat("%llu",
                            static_cast<unsigned long long>(
                                r.tuples_delivered))});
  };

  ScenarioConfig base;
  bench::ApplyWindow(options, &base);

  ScenarioConfig a = base;
  a.kind = ScenarioKind::kNoEts;
  ScenarioResult ra = RunScenario(a);
  add_row("A:no-ets", 0.0, ra);

  for (double rate : bench::HeartbeatRates(options.quick)) {
    ScenarioConfig b = base;
    b.kind = ScenarioKind::kPeriodicEts;
    b.heartbeat_rate = rate;
    add_row("B:periodic", rate, RunScenario(b));
  }

  ScenarioConfig c = base;
  c.kind = ScenarioKind::kOnDemandEts;
  // --trace captures the on-demand scenario: it exercises every event kind
  // (NOS rules, idle waits, ETS generation) in one representative run.
  c.trace_path = options.trace_path;
  ScenarioResult rc = RunScenario(c);
  add_row("C:on-demand", 0.0, rc);
  if (!options.trace_path.empty()) {
    std::printf("wrote C:on-demand execution trace to %s\n",
                options.trace_path.c_str());
  }

  ScenarioConfig d = base;
  d.kind = ScenarioKind::kLatent;
  ScenarioResult rd = RunScenario(d);
  add_row("D:latent", 0.0, rd);

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  bench::MaybeWriteJson(options, table);

  std::printf(
      "\nFigure 7(b) zoom: C mean %.4f ms, D mean %.4f ms, C-D = %.4f ms "
      "(paper: ~0.1 ms)\n",
      rc.mean_latency_ms, rd.mean_latency_ms,
      rc.mean_latency_ms - rd.mean_latency_ms);
  std::printf("A / C latency ratio: %.0fx (paper: several orders of "
              "magnitude)\n\n",
              ra.mean_latency_ms / rc.mean_latency_ms);
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
