// Ablation: throttled on-demand ETS. EtsPolicy::min_interval caps how often
// one source may generate ETS; 0 is the paper's behaviour (one ETS whenever
// a backtrack demands one), larger values trade reactivation latency for
// fewer punctuation tuples — interpolating between pure on-demand and the
// economy of low-rate periodic heartbeats, while never paying B's
// worst-case: a throttled ETS still fires at the moment of demand once its
// budget allows, not on a fixed grid.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_ets_throttle: min-interval between ETS from one source",
      "extension of Section 5's generation policy (no figure in the paper)",
      "latency grows ~min_interval/2 once the throttle binds (interval > "
      "fast inter-arrival of 20 ms); punctuation overhead falls "
      "proportionally; at interval=0 this is the paper's scenario C");

  TablePrinter table({"min_interval_ms", "mean_ms", "p99_ms",
                      "ets_generated", "punct_steps", "peak_total"});

  for (Duration interval :
       {Duration{0}, kMillisecond, 10 * kMillisecond, 50 * kMillisecond,
        200 * kMillisecond, kSecond, 5 * kSecond}) {
    ScenarioConfig config;
    bench::ApplyWindow(options, &config);
    config.kind = ScenarioKind::kOnDemandEts;
    config.ets_min_interval = interval;
    ScenarioResult r = RunScenario(config);
    table.AddRow({StrFormat("%.3f", DurationToMillis(interval)),
                  StrFormat("%.4f", r.mean_latency_ms),
                  StrFormat("%.4f", r.p99_latency_ms),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.ets_generated)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.punctuation_steps)),
                  StrFormat("%lld",
                            static_cast<long long>(r.peak_queue_total))});
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
