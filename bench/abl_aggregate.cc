// Extension ablation: punctuation-driven window closing for a tumbling
// count aggregate over a sparse stream (an operator class beyond the
// paper's IWP scope). The latency measured here is the *emission delay*
// past each window's end. On-demand ETS needs scheduler activations to
// fire, which the side component provides; periodic heartbeats bound the
// delay by their period; without punctuation a window waits for the next
// data tuple (~20 s at 0.05 tuples/s).

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_aggregate: window-close delay of a tumbling count(1s) aggregate",
      "extension beyond the paper (Section 7 outlook: punctuation 'has "
      "proven useful in many different roles')",
      "A waits for the next data tuple (seconds); B is bounded by the "
      "heartbeat period; C closes within one scheduler activation of the "
      "window end");

  TablePrinter table({"series", "punct_rate_hz", "mean_delay_ms",
                      "p99_delay_ms", "windows_out", "ets_generated"});
  auto add_row = [&table](const std::string& series, double rate,
                          const ScenarioResult& r) {
    table.AddRow({series, StrFormat("%.6g", rate),
                  StrFormat("%.4f", r.mean_latency_ms),
                  StrFormat("%.4f", r.p99_latency_ms),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.tuples_delivered)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.ets_generated))});
  };

  ScenarioConfig base;
  bench::ApplyWindow(options, &base);
  base.shape = QueryShape::kAggregate;

  ScenarioConfig a = base;
  a.kind = ScenarioKind::kNoEts;
  add_row("A:no-ets", 0.0, RunScenario(a));

  for (double rate : {0.1, 1.0, 10.0, 100.0}) {
    ScenarioConfig b = base;
    b.kind = ScenarioKind::kPeriodicEts;
    b.heartbeat_rate = rate;
    add_row("B:periodic", rate, RunScenario(b));
  }

  ScenarioConfig c = base;
  c.kind = ScenarioKind::kOnDemandEts;
  add_row("C:on-demand", 0.0, RunScenario(c));

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
