// Ablation: n-ary union fan-in. With k sparse inputs, a blocked tuple may
// need up to k ETS round trips (one per lagging input) before it clears the
// relaxed `more` condition. Measures how latency and ETS overhead grow with
// fan-in under on-demand ETS, versus per-stream periodic heartbeats whose
// total punctuation load grows linearly with k.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_fanin: union fan-in sweep (1 fast + k sparse streams)",
      "Section 3.2 n-ary unions (no figure in the paper)",
      "on-demand latency grows mildly (more backtrack/ETS rounds per "
      "blocked tuple); periodic punctuation load grows with k");

  TablePrinter table({"fan_in", "series", "mean_ms", "p99_ms",
                      "ets_generated", "punct_steps", "hops"});

  for (int slow_streams : {1, 2, 4, 8, 16}) {
    for (ScenarioKind kind :
         {ScenarioKind::kPeriodicEts, ScenarioKind::kOnDemandEts}) {
      ScenarioConfig config;
      bench::ApplyWindow(options, &config);
      config.kind = kind;
      config.num_slow_streams = slow_streams;
      if (kind == ScenarioKind::kPeriodicEts) config.heartbeat_rate = 10.0;
      ScenarioResult r = RunScenario(config);
      table.AddRow({StrFormat("%d", 1 + slow_streams),
                    ScenarioKindToString(kind),
                    StrFormat("%.4f", r.mean_latency_ms),
                    StrFormat("%.4f", r.p99_latency_ms),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.ets_generated)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.punctuation_steps)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.exec.backtrack_hops))});
    }
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
