// Reproduces the idle-waiting measurements quoted in Section 6's prose:
// the percentage of total time the union operator spends idle-waiting.
// Paper: A ~ 99%; B at 100 punctuations/s ~ 15%; C < 0.1%.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "tab_idle_waiting: union idle-waiting fraction",
      "Section 6 text (latency-reduction paragraph)",
      "A ~ 99%, B@100/s ~ 15% (falling with rate), C well under 1%, D 0%");

  TablePrinter table({"series", "punct_rate_hz", "idle_pct", "paper_pct",
                      "blocked_intervals"});
  auto add_row = [&table](const std::string& series, double rate,
                          const char* paper, const ScenarioResult& r) {
    table.AddRow({series, StrFormat("%.6g", rate),
                  StrFormat("%.4f", r.idle_fraction * 100.0), paper,
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.blocked_intervals))});
  };

  ScenarioConfig base;
  bench::ApplyWindow(options, &base);

  ScenarioConfig a = base;
  a.kind = ScenarioKind::kNoEts;
  add_row("A:no-ets", 0.0, "~99", RunScenario(a));

  for (double rate : {1.0, 10.0, 100.0, 1000.0}) {
    ScenarioConfig b = base;
    b.kind = ScenarioKind::kPeriodicEts;
    b.heartbeat_rate = rate;
    add_row("B:periodic", rate, rate == 100.0 ? "~15" : "-", RunScenario(b));
  }

  ScenarioConfig c = base;
  c.kind = ScenarioKind::kOnDemandEts;
  c.trace_path = options.trace_path;
  add_row("C:on-demand", 0.0, "<0.1", RunScenario(c));
  if (!options.trace_path.empty()) {
    std::printf("wrote C:on-demand execution trace to %s\n",
                options.trace_path.c_str());
  }

  ScenarioConfig d = base;
  d.kind = ScenarioKind::kLatent;
  add_row("D:latent", 0.0, "0", RunScenario(d));

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  bench::MaybeWriteJson(options, table);
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
