// Ablation for Section 4.1 (simultaneous tuples): TSM registers + relaxed
// `more` versus the basic Figure-1 union, under coarse timestamp
// granularities that make simultaneous tuples common. Both variants run
// with on-demand ETS; the basic union idle-waits (and requires an ETS round
// trip) whenever a buffer empties while simultaneous tuples remain.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_simultaneous: TSM registers vs basic Figure-1 union",
      "design choice of Section 4.1 (no figure in the paper)",
      "the basic union idle-waits whenever a buffer empties (even with ETS "
      "help), and degrades by another order of magnitude as coarse "
      "timestamps make tuples simultaneous; the TSM union stays "
      "sub-millisecond at every granularity");

  TablePrinter table({"granularity", "variant", "mean_ms", "p99_ms",
                      "ets_generated", "punct_steps", "idle_pct"});

  for (Duration granularity :
       {Duration{1}, kMillisecond, 10 * kMillisecond, 100 * kMillisecond,
        kSecond}) {
    for (bool use_tsm : {true, false}) {
      ScenarioConfig config;
      bench::ApplyWindow(options, &config);
      config.kind = ScenarioKind::kOnDemandEts;
      config.timestamp_granularity = granularity;
      config.use_tsm_registers = use_tsm;
      // Two comparable-rate streams maximize simultaneous collisions.
      config.fast_rate = 50.0;
      config.slow_rate = 50.0;
      ScenarioResult r = RunScenario(config);
      table.AddRow({StrFormat("%lldus", static_cast<long long>(granularity)),
                    use_tsm ? "tsm" : "basic",
                    StrFormat("%.4f", r.mean_latency_ms),
                    StrFormat("%.4f", r.p99_latency_ms),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.ets_generated)),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.punctuation_steps)),
                    StrFormat("%.4f", r.idle_fraction * 100.0)});
    }
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
