// Ablation: execution strategy x timestamp management. The paper's
// execution model is depth-first (Section 3.1, "to expedite tuple progress
// toward output"); round-robin and a Chain-style memory-greedy scheduler
// (Babcock et al., the scheduling line of work the paper's conclusion
// cites) are the alternatives. On-demand ETS is integrated with
// backtracking, so this bench checks it composes with non-DFS schedulers
// too, and quantifies the latency/memory trade: scheduling choices move
// buffer occupancy around, but none of them can remove idle-waiting — only
// timestamp management does, which is the paper's point.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_scheduler: DFS vs round-robin execution",
      "Section 3.1 (DFS strategy); scheduling comparison is an extension",
      "on-demand ETS composes with all three executors (identical ETS "
      "counts); idle-waiting is untouched by scheduling choice; DFS matches "
      "or beats the alternatives on this shallow pipeline — its "
      "push-to-sink order is already memory-sound, supporting the paper's "
      "choice");

  auto executor_name = [](ExecutorKind kind) {
    switch (kind) {
      case ExecutorKind::kDfs:
        return "dfs";
      case ExecutorKind::kRoundRobin:
        return "round-robin";
      case ExecutorKind::kGreedyMemory:
        return "greedy-memory";
    }
    return "?";
  };

  TablePrinter table({"executor", "series", "mean_ms", "p99_ms",
                      "ets_generated", "idle_pct"});
  for (ExecutorKind executor :
       {ExecutorKind::kDfs, ExecutorKind::kRoundRobin,
        ExecutorKind::kGreedyMemory}) {
    for (ScenarioKind kind : {ScenarioKind::kNoEts, ScenarioKind::kPeriodicEts,
                              ScenarioKind::kOnDemandEts,
                              ScenarioKind::kLatent}) {
      ScenarioConfig config;
      bench::ApplyWindow(options, &config);
      config.executor = executor;
      config.kind = kind;
      if (kind == ScenarioKind::kPeriodicEts) config.heartbeat_rate = 10.0;
      ScenarioResult r = RunScenario(config);
      table.AddRow({executor_name(executor), ScenarioKindToString(kind),
                    StrFormat("%.4f", r.mean_latency_ms),
                    StrFormat("%.4f", r.p99_latency_ms),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.ets_generated)),
                    StrFormat("%.4f", r.idle_fraction * 100.0)});
    }
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }

  std::printf("\nUnder bursty load (buffer pressure), scenario C:\n");
  TablePrinter pressure({"executor", "mean_ms", "p99_ms", "peak_queue"});
  for (ExecutorKind executor :
       {ExecutorKind::kDfs, ExecutorKind::kRoundRobin,
        ExecutorKind::kGreedyMemory}) {
    ScenarioConfig config;
    bench::ApplyWindow(options, &config);
    config.executor = executor;
    config.kind = ScenarioKind::kOnDemandEts;
    config.arrivals = ArrivalKind::kBursty;
    // Bursts outrun the virtual CPU (~13k tuples/s through 3 data steps of
    // 25 us each), so buffers genuinely back up during each burst.
    config.burst_rate = 30000.0;
    config.mean_burst_length = 100 * kMillisecond;
    ScenarioResult r = RunScenario(config);
    pressure.AddRow({executor_name(executor),
                     StrFormat("%.4f", r.mean_latency_ms),
                     StrFormat("%.4f", r.p99_latency_ms),
                     StrFormat("%lld",
                               static_cast<long long>(r.peak_queue_total))});
  }
  if (options.csv) {
    pressure.PrintCsv(std::cout);
  } else {
    pressure.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
