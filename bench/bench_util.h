#ifndef DSMS_BENCH_BENCH_UTIL_H_
#define DSMS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/flag_help.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms::bench {

/// "release" when compiled with NDEBUG (assertions compiled out), "debug"
/// otherwise. Surfaced in every JSON artifact so a validator can reject
/// debug-build numbers mechanically (see BENCH_core.json's "build_type").
inline const char* BuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// A debug build measures DSMS_CHECK overhead and unoptimized code, not the
/// data path; its numbers are not comparable to anything. Print an
/// unmissable banner so they are never pasted into a results file by
/// accident. (No-op under NDEBUG.)
inline void WarnIfDebugBuild() {
#ifndef NDEBUG
  std::fprintf(stderr,
               "*****************************************************\n"
               "*** WARNING: benchmark compiled WITHOUT NDEBUG    ***\n"
               "*** (debug build: assertions on, optimizer off).  ***\n"
               "*** Numbers below are NOT representative; rebuild ***\n"
               "*** with -DCMAKE_BUILD_TYPE=Release before saving ***\n"
               "*** results. JSON output carries build_type=debug.***\n"
               "*****************************************************\n");
#endif
}

/// Options common to every figure/table harness (see BenchFlags below, the
/// single source of truth that --help renders):
struct BenchOptions {
  bool csv = false;
  bool quick = false;
  uint64_t seed = 42;
  std::string json_path;   // empty: no JSON output
  std::string trace_path;  // empty: no execution trace
};

/// The flag table every bench harness shares; --help renders it through
/// common/flag_help.h.
inline std::vector<FlagHelp> BenchFlags() {
  return {
      {"--csv", "", "emit CSV instead of an aligned table (for plotting)"},
      {"--quick", "",
       "1/5 horizon (CI-friendly); headline numbers are noisier"},
      {"--seed", "N", "override the workload seed"},
      {"--json", "PATH", "also write the series as JSON records to PATH"},
      {"--trace", "PATH",
       "write a Chrome trace of one representative scenario"},
      {"--help", "", "show this message and exit"},
  };
}

/// Strict: an unrecognized argument (or a missing option value) terminates
/// the process with status 2 instead of being silently ignored, so a typo'd
/// sweep flag cannot produce a full run of wrong numbers. --help prints the
/// shared flag listing and exits 0.
inline BenchOptions ParseArgs(int argc, char** argv) {
  WarnIfDebugBuild();
  BenchOptions options;
  // A value-taking flag with nothing after it is reported by name — not as
  // "unknown argument" — so the error points at the actual mistake.
  auto value_of = [&](int* i) -> const char* {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", argv[*i]);
      std::exit(2);
    }
    return argv[++*i];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      options.csv = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed =
          static_cast<uint64_t>(std::strtoull(value_of(&i), nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json_path = value_of(&i);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      options.trace_path = value_of(&i);
    } else if (std::strcmp(argv[i], "--help") == 0) {
      PrintFlagHelp(stdout, argv[0],
                    "figure/table reproduction harness (see EXPERIMENTS.md)",
                    BenchFlags());
      std::exit(0);
    } else {
      std::fprintf(stderr,
                   "unknown argument: %s\n"
                   "usage: %s [--csv] [--quick] [--seed N] [--json PATH] "
                   "[--trace PATH]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  return options;
}

/// The paper's measurement window: 600 s steady state after 30 s warmup
/// (120 s / 10 s with --quick).
inline void ApplyWindow(const BenchOptions& options, ScenarioConfig* config) {
  config->seed = options.seed;
  if (options.quick) {
    config->horizon = 120 * kSecond;
    config->warmup = 10 * kSecond;
  } else {
    config->horizon = 600 * kSecond;
    config->warmup = 30 * kSecond;
  }
}

/// The heartbeat-rate sweep (punctuations/second into the sparse stream)
/// used by the Figure 7/8 reproductions.
inline std::vector<double> HeartbeatRates(bool quick) {
  if (quick) return {0.1, 1.0, 10.0, 100.0};
  return {0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0,
          100.0, 200.0, 500.0, 1000.0};
}

/// Writes the table as a JSON array of row objects to options.json_path if
/// --json was given; exits non-zero if the path is not writable.
inline void MaybeWriteJson(const BenchOptions& options,
                           const TablePrinter& table) {
  if (options.json_path.empty()) return;
  std::ofstream out(options.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 options.json_path.c_str());
    std::exit(2);
  }
  table.PrintJson(out);
}

inline void PrintHeader(const char* title, const char* paper_ref,
                        const char* expectation) {
  std::printf("=== %s ===\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("paper-shape expectation: %s\n\n", expectation);
}

}  // namespace dsms::bench

#endif  // DSMS_BENCH_BENCH_UTIL_H_
