// Ablation: the idle-waiting problem and its ETS remedies on the *window
// join* (Figure 6 semantics) instead of the union. Metrics: latency of
// emitted matches, idle-waiting of the join, and peak queue size. The paper
// treats joins and unions uniformly as IWP operators; this bench confirms
// the same A >> B > C ordering carries over.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_join: window join as the IWP operator",
      "Section 2/4 (join execution rules); no dedicated figure",
      "same ordering as Figures 7/8: A >> B > C, C ~ D");

  TablePrinter table({"series", "punct_rate_hz", "mean_ms", "p99_ms",
                      "peak_total", "idle_pct", "matches"});
  auto add_row = [&table](const std::string& series, double rate,
                          const ScenarioResult& r) {
    table.AddRow({series, StrFormat("%.6g", rate),
                  StrFormat("%.4f", r.mean_latency_ms),
                  StrFormat("%.4f", r.p99_latency_ms),
                  StrFormat("%lld", static_cast<long long>(r.peak_queue_total)),
                  StrFormat("%.4f", r.idle_fraction * 100.0),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.tuples_delivered))});
  };

  ScenarioConfig base;
  bench::ApplyWindow(options, &base);
  base.shape = QueryShape::kJoin;
  base.join_window = 30 * kSecond;  // wide enough that slow tuples match

  ScenarioConfig a = base;
  a.kind = ScenarioKind::kNoEts;
  add_row("A:no-ets", 0.0, RunScenario(a));

  for (double rate : {0.1, 1.0, 10.0, 100.0}) {
    ScenarioConfig b = base;
    b.kind = ScenarioKind::kPeriodicEts;
    b.heartbeat_rate = rate;
    add_row("B:periodic", rate, RunScenario(b));
  }

  ScenarioConfig c = base;
  c.kind = ScenarioKind::kOnDemandEts;
  add_row("C:on-demand", 0.0, RunScenario(c));

  ScenarioConfig d = base;
  d.kind = ScenarioKind::kLatent;
  add_row("D:latent", 0.0, RunScenario(d));

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
