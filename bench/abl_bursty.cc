// Ablation for bursty, non-stationary traffic (Section 1: "a goal that is
// very hard to achieve when the traffic is not stationary and if A or B are
// bursty"): the fast stream is a two-state MMPP. Periodic heartbeats must
// be provisioned for the burst rate (wasteful when idle) or the idle rate
// (laggy in bursts); on-demand ETS adapts per tuple.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "common/time.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_bursty: MMPP fast stream (bursts 500/s for ~200 ms, idle 1/s)",
      "Section 1 motivation (bursty/non-stationary traffic)",
      "every fixed heartbeat rate leaves a latency/overhead compromise; "
      "on-demand matches the best fixed rate's latency at a fraction of "
      "the punctuation overhead");

  TablePrinter table({"series", "punct_rate_hz", "mean_ms", "p99_ms",
                      "max_ms", "punct_steps", "peak_total"});
  auto add_row = [&table](const std::string& series, double rate,
                          const ScenarioResult& r) {
    table.AddRow({series, StrFormat("%.6g", rate),
                  StrFormat("%.4f", r.mean_latency_ms),
                  StrFormat("%.4f", r.p99_latency_ms),
                  StrFormat("%.4f", r.max_latency_ms),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.punctuation_steps)),
                  StrFormat("%lld",
                            static_cast<long long>(r.peak_queue_total))});
  };

  ScenarioConfig base;
  bench::ApplyWindow(options, &base);
  base.arrivals = ArrivalKind::kBursty;

  ScenarioConfig a = base;
  a.kind = ScenarioKind::kNoEts;
  add_row("A:no-ets", 0.0, RunScenario(a));

  for (double rate : {1.0, 10.0, 100.0, 1000.0}) {
    ScenarioConfig b = base;
    b.kind = ScenarioKind::kPeriodicEts;
    b.heartbeat_rate = rate;
    add_row("B:periodic", rate, RunScenario(b));
  }

  ScenarioConfig c = base;
  c.kind = ScenarioKind::kOnDemandEts;
  add_row("C:on-demand", 0.0, RunScenario(c));

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
