// Ablation for the paper's motivating argument (Section 1): periodic
// heartbeats need their rate tuned to the *other* stream's rate, while
// on-demand ETS adapts by construction. We sweep the slow stream's rate and
// compare a fixed-rate heartbeat (B) against on-demand (C): B is wasteful
// when the fast stream is slow and too sparse when it is fast; C tracks the
// demand exactly.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "abl_rate_skew: fixed heartbeat rate vs on-demand across rate skews",
      "Section 1 motivation ('the best results can be expected when the "
      "frequency of tuples in A matches those in B')",
      "B@10/s latency ~50 ms regardless of skew; C latency stays "
      "sub-millisecond and its ETS count tracks the fast rate");

  TablePrinter table({"fast_rate_hz", "slow_rate_hz", "series", "mean_ms",
                      "ets_or_hb_per_s", "punct_steps"});

  const double kHeartbeatRate = 10.0;
  struct RatePair {
    double fast;
    double slow;
  };
  for (RatePair rates : {RatePair{1.0, 0.05}, RatePair{10.0, 0.05},
                         RatePair{50.0, 0.05}, RatePair{200.0, 0.05},
                         RatePair{50.0, 0.005}, RatePair{50.0, 0.5},
                         RatePair{50.0, 5.0}}) {
    for (ScenarioKind kind :
         {ScenarioKind::kPeriodicEts, ScenarioKind::kOnDemandEts}) {
      ScenarioConfig config;
      bench::ApplyWindow(options, &config);
      config.kind = kind;
      config.fast_rate = rates.fast;
      config.slow_rate = rates.slow;
      if (kind == ScenarioKind::kPeriodicEts) {
        config.heartbeat_rate = kHeartbeatRate;
      }
      ScenarioResult r = RunScenario(config);
      double horizon_s = DurationToSeconds(config.horizon);
      double per_s = kind == ScenarioKind::kPeriodicEts
                         ? kHeartbeatRate
                         : static_cast<double>(r.ets_generated) / horizon_s;
      table.AddRow({StrFormat("%.6g", rates.fast),
                    StrFormat("%.6g", rates.slow),
                    ScenarioKindToString(kind),
                    StrFormat("%.4f", r.mean_latency_ms),
                    StrFormat("%.3f", per_s),
                    StrFormat("%llu", static_cast<unsigned long long>(
                                          r.punctuation_steps))});
    }
  }

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf("\n");
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
