// Reproduces Figure 8 (a)+(b): peak total queue size (number of tuples
// buffered across all arcs) of the union query under strategies A/B/C, with
// B swept over the heartbeat rate. The paper's line B is U-shaped: moderate
// heartbeat rates shrink the idle-waiting backlog, but very high rates make
// punctuation itself occupy buffers during data bursts.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/strings.h"
#include "metrics/table_printer.h"
#include "sim/scenario.h"

namespace dsms {
namespace {

int Run(const bench::BenchOptions& options) {
  bench::PrintHeader(
      "fig8_memory: peak total queue size (union query)",
      "Figure 8(a)(b) series A/B/C (and D for reference)",
      "A peaks in the thousands of tuples; C is 2+ orders of magnitude "
      "lower; B improves with rate, then worsens at very high rates");

  TablePrinter table({"series", "punct_rate_hz", "peak_total", "peak_data",
                      "punct_steps"});
  auto add_row = [&table](const std::string& series, double rate,
                          const ScenarioResult& r) {
    table.AddRow({series, StrFormat("%.6g", rate),
                  StrFormat("%lld", static_cast<long long>(r.peak_queue_total)),
                  StrFormat("%lld", static_cast<long long>(r.peak_queue_data)),
                  StrFormat("%llu", static_cast<unsigned long long>(
                                        r.punctuation_steps))});
  };

  ScenarioConfig base;
  bench::ApplyWindow(options, &base);
  // Memory pressure at high punctuation rates shows when punctuation
  // competes with data bursts for CPU; use the bursty fast stream for the
  // high-rate tail, as the paper's discussion implies ("punctuation tuples
  // produced at high rates tend to occupy memory, when bursts of data
  // tuples are being processed").
  base.arrivals = ArrivalKind::kBursty;

  ScenarioConfig a = base;
  a.kind = ScenarioKind::kNoEts;
  ScenarioResult ra = RunScenario(a);
  add_row("A:no-ets", 0.0, ra);

  for (double rate : bench::HeartbeatRates(options.quick)) {
    ScenarioConfig b = base;
    b.kind = ScenarioKind::kPeriodicEts;
    b.heartbeat_rate = rate;
    add_row("B:periodic", rate, RunScenario(b));
  }

  ScenarioConfig c = base;
  c.kind = ScenarioKind::kOnDemandEts;
  c.trace_path = options.trace_path;
  ScenarioResult rc = RunScenario(c);
  add_row("C:on-demand", 0.0, rc);
  if (!options.trace_path.empty()) {
    std::printf("wrote C:on-demand execution trace to %s\n",
                options.trace_path.c_str());
  }

  ScenarioConfig d = base;
  d.kind = ScenarioKind::kLatent;
  add_row("D:latent", 0.0, RunScenario(d));

  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  bench::MaybeWriteJson(options, table);

  std::printf("\nA / C peak-queue ratio: %.0fx (paper: >2 orders of "
              "magnitude)\n\n",
              static_cast<double>(ra.peak_queue_total) /
                  static_cast<double>(rc.peak_queue_total));
  return 0;
}

}  // namespace
}  // namespace dsms

int main(int argc, char** argv) {
  return dsms::Run(dsms::bench::ParseArgs(argc, argv));
}
