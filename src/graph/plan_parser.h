#ifndef DSMS_GRAPH_PLAN_PARSER_H_
#define DSMS_GRAPH_PLAN_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/time.h"
#include "graph/query_graph.h"

namespace dsms {

/// A parsed textual query plan: the validated graph plus a name -> operator
/// index for attaching feeds, callbacks and metrics.
struct ParsedPlan {
  std::unique_ptr<QueryGraph> graph;
  std::map<std::string, Operator*> operators;

  Operator* Find(const std::string& name) const;
};

/// Parses the small declarative plan language that stands in for Stream
/// Mill's ESL. One statement per line; `#` starts a comment. Operators must
/// be declared before they are referenced. Grammar (arguments are
/// `key=value` pairs; `in=` takes a comma-separated list of producers):
///
///   stream    NAME [ts=internal|external|latent] [skew=DUR]
///                  [granularity=DUR]        (internal stamp quantization,
///                                            >= 1us; ts=internal only)
///                  [schema=name:type,name:type,...]
///                  (types: int64,double,string,bool; declaring a schema
///                   turns on type checking for the downstream pipeline)
///   filter    NAME in=P (selectivity=X [seed=N] | field=N op=CMP value=V)
///                  CMP one of lt,le,gt,ge,eq,ne
///   project   NAME in=P fields=0,2,...
///   union     NAME in=P1,P2[,...]          (ordered mode inferred from the
///                                           sources' timestamp kinds)
///   join      NAME in=L,R [window=DUR] [left_window=DUR] [right_window=DUR]
///                  [left_field=N right_field=M]   (equi-join; else cross)
///   mjoin     NAME in=A,B,C[,...] window=DUR [key=N]
///                  (n-ary window join; key= makes it an all-inputs
///                   equi-join on value index N, else cross product)
///   aggregate NAME in=P fn=count|sum|avg|min|max [field=N] window=DUR
///                  [slide=DUR]
///   gaggregate NAME in=P fn=... key=N [field=M] window=DUR [slide=DUR]
///                  (GROUP BY value index N)
///   reorder   NAME in=P slack=DUR
///   copy      NAME in=P                     (fan-out; connect by listing it
///                                            as `in=` of several consumers)
///   sink      NAME in=P
///
/// Durations: integer with unit suffix us|ms|s|m (bare integers are
/// microseconds), e.g. `window=2s`, `slack=50ms`.
///
/// Returns the validated plan or the first parse/validation error with its
/// line number.
Result<ParsedPlan> ParsePlan(std::string_view text);

/// Parses "2s" / "150ms" / "50us" / "42" (microseconds) / "1m".
Status ParseDuration(std::string_view text, Duration* out);

}  // namespace dsms

#endif  // DSMS_GRAPH_PLAN_PARSER_H_
