#include "graph/query_graph.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "common/strings.h"
#include "core/tuple.h"
#include "storage/state_store.h"

namespace dsms {
namespace {

/// Upstream timestamp discipline of an operator's output, folded over the
/// graph during validation.
enum class Discipline {
  kUnknown = 0,
  kTimestamped = 1,
  kLatent = 2,
  kMixed = 3,
};

Discipline Join(Discipline a, Discipline b) {
  if (a == Discipline::kUnknown) return b;
  if (b == Discipline::kUnknown) return a;
  if (a == b) return a;
  return Discipline::kMixed;
}

}  // namespace

QueryGraph::~QueryGraph() = default;

Operator* QueryGraph::AddOperator(std::unique_ptr<Operator> op) {
  DSMS_CHECK(op != nullptr);
  DSMS_CHECK(!validated_);
  op->set_id(num_operators());
  operators_.push_back(std::move(op));
  return operators_.back().get();
}

StreamBuffer* QueryGraph::Connect(Operator* producer, Operator* consumer) {
  DSMS_CHECK(producer != nullptr);
  DSMS_CHECK(consumer != nullptr);
  DSMS_CHECK(!validated_);
  auto buffer = std::make_unique<StreamBuffer>(producer->name() + "->" +
                                               consumer->name());
  buffer->set_id(num_buffers());
  StreamBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  buffer_producer_.push_back(producer->id());
  buffer_consumer_.push_back(consumer->id());
  producer->AddOutput(raw);
  consumer->AddInput(raw);
  return raw;
}

Status QueryGraph::ConfigureStateStore(const StorageConfig& config) {
  if (state_store_ != nullptr) {
    return FailedPreconditionError("state store already configured");
  }
  auto store = std::make_unique<StateStore>(config);
  DSMS_RETURN_IF_ERROR(store->Init());
  state_store_ = std::move(store);
  for (const std::unique_ptr<Operator>& op : operators_) {
    op->BindStateStore(state_store_.get());
  }
  return OkStatus();
}

Operator* QueryGraph::op(int id) const {
  DSMS_CHECK_GE(id, 0);
  DSMS_CHECK_LT(id, num_operators());
  return operators_[static_cast<size_t>(id)].get();
}

StreamBuffer* QueryGraph::buffer(int id) const {
  DSMS_CHECK_GE(id, 0);
  DSMS_CHECK_LT(id, num_buffers());
  return buffers_[static_cast<size_t>(id)].get();
}

int QueryGraph::producer_of(int buffer_id) const {
  DSMS_CHECK_GE(buffer_id, 0);
  DSMS_CHECK_LT(buffer_id, num_buffers());
  return buffer_producer_[static_cast<size_t>(buffer_id)];
}

int QueryGraph::consumer_of(int buffer_id) const {
  DSMS_CHECK_GE(buffer_id, 0);
  DSMS_CHECK_LT(buffer_id, num_buffers());
  return buffer_consumer_[static_cast<size_t>(buffer_id)];
}

std::vector<Source*> QueryGraph::sources() const {
  std::vector<Source*> result;
  for (const auto& op : operators_) {
    if (auto* source = dynamic_cast<Source*>(op.get())) {
      result.push_back(source);
    }
  }
  return result;
}

std::vector<Sink*> QueryGraph::sinks() const {
  std::vector<Sink*> result;
  for (const auto& op : operators_) {
    if (auto* sink = dynamic_cast<Sink*>(op.get())) {
      result.push_back(sink);
    }
  }
  return result;
}

std::vector<Operator*> QueryGraph::successors(const Operator* op) const {
  std::vector<Operator*> result;
  for (int i = 0; i < op->num_outputs(); ++i) {
    int consumer = consumer_of(op->output(i)->id());
    result.push_back(this->op(consumer));
  }
  return result;
}

Operator* QueryGraph::predecessor(const Operator* op, int index) const {
  return this->op(producer_of(op->input(index)->id()));
}

bool QueryGraph::IsLastBeforeSink(const Operator* op) const {
  if (op->num_outputs() == 0) return false;
  for (Operator* succ : successors(op)) {
    if (dynamic_cast<Sink*>(succ) == nullptr) return false;
  }
  return true;
}

std::vector<std::vector<int>> QueryGraph::Components() const {
  int n = num_operators();
  std::vector<int> component(static_cast<size_t>(n), -1);
  // Undirected adjacency via the arcs.
  std::vector<std::vector<int>> adjacency(static_cast<size_t>(n));
  for (int b = 0; b < num_buffers(); ++b) {
    int p = producer_of(b);
    int c = consumer_of(b);
    adjacency[static_cast<size_t>(p)].push_back(c);
    adjacency[static_cast<size_t>(c)].push_back(p);
  }
  std::vector<std::vector<int>> components;
  for (int start = 0; start < n; ++start) {
    if (component[static_cast<size_t>(start)] >= 0) continue;
    int label = static_cast<int>(components.size());
    components.emplace_back();
    std::vector<int> stack = {start};
    component[static_cast<size_t>(start)] = label;
    while (!stack.empty()) {
      int v = stack.back();
      stack.pop_back();
      components[static_cast<size_t>(label)].push_back(v);
      for (int next : adjacency[static_cast<size_t>(v)]) {
        if (component[static_cast<size_t>(next)] < 0) {
          component[static_cast<size_t>(next)] = label;
          stack.push_back(next);
        }
      }
    }
  }
  return components;
}

void QueryGraph::ReplaceBufferListeners(BufferListener* listener) {
  for (const auto& buffer : buffers_) buffer->ReplaceListeners(listener);
}

void QueryGraph::AddBufferListener(BufferListener* listener) {
  for (const auto& buffer : buffers_) buffer->AddListener(listener);
}

void QueryGraph::SetBufferBound(size_t limit, OverloadPolicy policy) {
  for (const auto& buffer : buffers_) buffer->set_capacity_limit(limit, policy);
}

bool QueryGraph::DownstreamBlocked(const Operator* op) const {
  std::vector<const Operator*> pending = {op};
  std::vector<bool> visited(operators_.size(), false);
  while (!pending.empty()) {
    const Operator* current = pending.back();
    pending.pop_back();
    if (current->id() >= 0 && current->id() < num_operators()) {
      if (visited[current->id()]) continue;
      visited[current->id()] = true;
    }
    for (int i = 0; i < current->num_outputs(); ++i) {
      if (current->output(i)->BlocksProducer()) return true;
    }
    for (Operator* next : successors(current)) pending.push_back(next);
  }
  return false;
}

size_t QueryGraph::MaxBufferHighWaterMark() const {
  size_t max_hwm = 0;
  for (const auto& buffer : buffers_) {
    max_hwm = std::max(max_hwm, buffer->high_water_mark());
  }
  return max_hwm;
}

uint64_t QueryGraph::TotalShedTuples() const {
  uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->shed_tuples();
  return total;
}

uint64_t QueryGraph::TotalVetoedPushes() const {
  uint64_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->vetoed_pushes();
  return total;
}

size_t QueryGraph::TotalBufferedTuples() const {
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->size();
  return total;
}

bool QueryGraph::AnyDataBuffered() const {
  for (const auto& buffer : buffers_) {
    if (buffer->data_size() > 0) return true;
  }
  return false;
}

Status QueryGraph::ValidateArities() const {
  for (const auto& op : operators_) {
    if (op->num_inputs() < op->min_inputs() ||
        op->num_inputs() > op->max_inputs()) {
      return InvalidArgumentError(StrFormat(
          "operator %s has %d inputs, requires [%d, %d]", op->name().c_str(),
          op->num_inputs(), op->min_inputs(), op->max_inputs()));
    }
    if (op->num_outputs() < op->min_outputs() ||
        op->num_outputs() > op->max_outputs()) {
      return InvalidArgumentError(StrFormat(
          "operator %s has %d outputs, requires [%d, %d]", op->name().c_str(),
          op->num_outputs(), op->min_outputs(), op->max_outputs()));
    }
  }
  return OkStatus();
}

Status QueryGraph::ValidateAcyclic() const {
  // Iterative three-color DFS over producer->consumer edges.
  int n = num_operators();
  enum : char { kWhite = 0, kGray = 1, kBlack = 2 };
  std::vector<char> color(static_cast<size_t>(n), kWhite);
  for (int start = 0; start < n; ++start) {
    if (color[static_cast<size_t>(start)] != kWhite) continue;
    // Stack of (operator id, next successor index).
    std::vector<std::pair<int, int>> stack = {{start, 0}};
    color[static_cast<size_t>(start)] = kGray;
    while (!stack.empty()) {
      auto& [v, next_index] = stack.back();
      Operator* vertex = op(v);
      if (next_index >= vertex->num_outputs()) {
        color[static_cast<size_t>(v)] = kBlack;
        stack.pop_back();
        continue;
      }
      int succ = consumer_of(vertex->output(next_index)->id());
      ++next_index;
      char& succ_color = color[static_cast<size_t>(succ)];
      if (succ_color == kGray) {
        return InvalidArgumentError(
            StrFormat("query graph has a cycle through operator %s",
                      op(succ)->name().c_str()));
      }
      if (succ_color == kWhite) {
        succ_color = kGray;
        stack.emplace_back(succ, 0);
      }
    }
  }
  return OkStatus();
}

Status QueryGraph::ValidateTimestampKinds() const {
  // Fold each operator's output discipline in topological order (the graph
  // is already known acyclic). Memoized recursion via explicit worklist:
  // compute by repeated passes (graphs are small; O(V*E) worst case).
  int n = num_operators();
  std::vector<Discipline> out(static_cast<size_t>(n), Discipline::kUnknown);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      Operator* o = op(i);
      Discipline d;
      if (const auto* source = dynamic_cast<const Source*>(o)) {
        d = source->timestamp_kind() == TimestampKind::kLatent
                ? Discipline::kLatent
                : Discipline::kTimestamped;
      } else if (o->stamps_latent()) {
        d = Discipline::kTimestamped;
      } else {
        d = Discipline::kUnknown;
        for (int j = 0; j < o->num_inputs(); ++j) {
          int pred = producer_of(o->input(j)->id());
          d = Join(d, out[static_cast<size_t>(pred)]);
        }
      }
      if (d != out[static_cast<size_t>(i)]) {
        out[static_cast<size_t>(i)] = d;
        changed = true;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    Operator* o = op(i);
    for (int j = 0; j < o->num_inputs(); ++j) {
      int pred = producer_of(o->input(j)->id());
      Discipline d = out[static_cast<size_t>(pred)];
      if (d == Discipline::kMixed && o->is_iwp()) {
        return InvalidArgumentError(StrFormat(
            "operator %s mixes latent and timestamped lineages on input %d",
            o->name().c_str(), j));
      }
      if (o->requires_timestamped_input() && d == Discipline::kLatent) {
        return InvalidArgumentError(StrFormat(
            "operator %s requires timestamped input but input %d is latent "
            "(use unordered mode for scenario-D graphs)",
            o->name().c_str(), j));
      }
      if (o->requires_latent_input() && d == Discipline::kTimestamped) {
        return InvalidArgumentError(StrFormat(
            "operator %s is in unordered (latent) mode but input %d carries "
            "timestamps",
            o->name().c_str(), j));
      }
    }
  }
  return OkStatus();
}

Status QueryGraph::ValidateSchemas() {
  // Topological fold (the graph is already known acyclic): derive every
  // operator's output schema from its inputs'. Iterate to a fixed point the
  // same way as the discipline pass; schemas only ever go from unknown to
  // known, so this terminates in <= V rounds.
  int n = num_operators();
  output_schemas_.assign(static_cast<size_t>(n), std::nullopt);
  std::vector<bool> derived(static_cast<size_t>(n), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      Operator* o = op(i);
      std::vector<std::optional<Schema>> inputs;
      inputs.reserve(static_cast<size_t>(o->num_inputs()));
      bool preds_ready = true;
      for (int j = 0; j < o->num_inputs(); ++j) {
        int pred = producer_of(o->input(j)->id());
        preds_ready = preds_ready && derived[static_cast<size_t>(pred)];
        inputs.push_back(output_schemas_[static_cast<size_t>(pred)]);
      }
      if (derived[static_cast<size_t>(i)] || !preds_ready) continue;
      Result<std::optional<Schema>> schema = o->DeriveSchema(inputs);
      if (!schema.ok()) return schema.status();
      output_schemas_[static_cast<size_t>(i)] = *schema;
      derived[static_cast<size_t>(i)] = true;
      changed = true;
    }
  }
  return OkStatus();
}

const std::optional<Schema>& QueryGraph::output_schema(int op_id) const {
  DSMS_CHECK(validated_);
  DSMS_CHECK_GE(op_id, 0);
  DSMS_CHECK_LT(op_id, num_operators());
  return output_schemas_[static_cast<size_t>(op_id)];
}

Status QueryGraph::Validate() {
  if (operators_.empty()) {
    return FailedPreconditionError("query graph has no operators");
  }
  DSMS_RETURN_IF_ERROR(ValidateArities());
  DSMS_RETURN_IF_ERROR(ValidateAcyclic());
  DSMS_RETURN_IF_ERROR(ValidateTimestampKinds());
  DSMS_RETURN_IF_ERROR(ValidateSchemas());
  validated_ = true;
  return OkStatus();
}

std::string QueryGraph::ToString() const {
  std::string result = StrFormat("QueryGraph{%d operators, %d buffers}\n",
                                 num_operators(), num_buffers());
  for (int b = 0; b < num_buffers(); ++b) {
    result += StrFormat("  %s -> %s  [%s, %zu queued]\n",
                        op(producer_of(b))->name().c_str(),
                        op(consumer_of(b))->name().c_str(),
                        buffer(b)->name().c_str(), buffer(b)->size());
  }
  return result;
}

}  // namespace dsms
