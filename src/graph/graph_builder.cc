#include "graph/graph_builder.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dsms {

GraphBuilder::GraphBuilder() : graph_(std::make_unique<QueryGraph>()) {}

Source* GraphBuilder::AddSource(std::string name, TimestampKind kind,
                                Duration skew_bound) {
  return graph_->Add(std::make_unique<Source>(std::move(name),
                                              next_stream_id_++, kind,
                                              skew_bound));
}

Sink* GraphBuilder::AddSink(std::string name) {
  return graph_->Add(std::make_unique<Sink>(std::move(name)));
}

Filter* GraphBuilder::AddFilter(std::string name,
                                Filter::Predicate predicate) {
  return graph_->Add(
      std::make_unique<Filter>(std::move(name), std::move(predicate)));
}

RandomDropFilter* GraphBuilder::AddRandomDropFilter(std::string name,
                                                    double selectivity,
                                                    uint64_t seed) {
  return graph_->Add(
      std::make_unique<RandomDropFilter>(std::move(name), selectivity, seed));
}

Project* GraphBuilder::AddProject(std::string name,
                                  std::vector<int> keep_indices) {
  return graph_->Add(
      std::make_unique<Project>(std::move(name), std::move(keep_indices)));
}

MapOp* GraphBuilder::AddMap(std::string name, MapOp::Transform transform) {
  return graph_->Add(
      std::make_unique<MapOp>(std::move(name), std::move(transform)));
}

CopyOp* GraphBuilder::AddCopy(std::string name) {
  return graph_->Add(std::make_unique<CopyOp>(std::move(name)));
}

Union* GraphBuilder::AddUnion(std::string name, bool ordered,
                              bool use_tsm_registers) {
  return graph_->Add(
      std::make_unique<Union>(std::move(name), ordered, use_tsm_registers));
}

WindowJoin* GraphBuilder::AddWindowJoin(std::string name, Duration left_window,
                                        Duration right_window,
                                        WindowJoin::Predicate predicate,
                                        bool ordered) {
  return graph_->Add(std::make_unique<WindowJoin>(
      std::move(name), left_window, right_window, std::move(predicate),
      ordered));
}

WindowAggregate* GraphBuilder::AddWindowAggregate(std::string name,
                                                  AggKind kind, int field,
                                                  Duration window,
                                                  Duration slide) {
  return graph_->Add(std::make_unique<WindowAggregate>(std::move(name), kind,
                                                       field, window, slide));
}

GroupedWindowAggregate* GraphBuilder::AddGroupedWindowAggregate(
    std::string name, AggKind kind, int key_field, int agg_field,
    Duration window, Duration slide) {
  return graph_->Add(std::make_unique<GroupedWindowAggregate>(
      std::move(name), kind, key_field, agg_field, window, slide));
}

MultiWayJoin* GraphBuilder::AddMultiWayJoin(std::string name,
                                            std::vector<Duration> windows,
                                            MultiWayJoin::Predicate predicate,
                                            bool ordered) {
  return graph_->Add(std::make_unique<MultiWayJoin>(
      std::move(name), std::move(windows), std::move(predicate), ordered));
}

Split* GraphBuilder::AddSplit(std::string name,
                              std::vector<Split::Predicate> predicates) {
  return graph_->Add(
      std::make_unique<Split>(std::move(name), std::move(predicates)));
}

Reorder* GraphBuilder::AddReorder(std::string name, Duration slack) {
  return graph_->Add(std::make_unique<Reorder>(std::move(name), slack));
}

void GraphBuilder::Connect(Operator* producer, Operator* consumer) {
  graph_->Connect(producer, consumer);
}

Result<std::unique_ptr<QueryGraph>> GraphBuilder::Build() {
  DSMS_CHECK(graph_ != nullptr);  // Build() consumed twice.
  Status status = graph_->Validate();
  if (!status.ok()) return status;
  return std::move(graph_);
}

}  // namespace dsms
