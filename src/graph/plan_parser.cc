#include "graph/plan_parser.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"
#include "graph/graph_builder.h"
#include "operators/filter.h"
#include "operators/grouped_aggregate.h"
#include "operators/multiway_join.h"
#include "operators/source.h"
#include "operators/window_aggregate.h"
#include "operators/window_join.h"

namespace dsms {

Operator* ParsedPlan::Find(const std::string& name) const {
  auto it = operators.find(name);
  return it == operators.end() ? nullptr : it->second;
}

Status ParseDuration(std::string_view text, Duration* out) {
  text = StripWhitespace(text);
  if (text.empty()) return InvalidArgumentError("empty duration");
  Duration multiplier = 1;
  if (text.size() >= 2 && text.substr(text.size() - 2) == "us") {
    multiplier = 1;
    text.remove_suffix(2);
  } else if (text.size() >= 2 && text.substr(text.size() - 2) == "ms") {
    multiplier = kMillisecond;
    text.remove_suffix(2);
  } else if (text.back() == 's') {
    multiplier = kSecond;
    text.remove_suffix(1);
  } else if (text.back() == 'm') {
    multiplier = 60 * kSecond;
    text.remove_suffix(1);
  }
  double number = 0.0;
  if (!ParseDouble(text, &number) || number < 0) {
    return InvalidArgumentError("bad duration: '" + std::string(text) + "'");
  }
  *out = static_cast<Duration>(number * static_cast<double>(multiplier) + 0.5);
  return OkStatus();
}

namespace {

struct Statement {
  int line = 0;
  std::string type;
  std::string name;
  std::vector<std::string> inputs;
  std::map<std::string, std::string> args;
};

Status ParseStatement(int line_number, std::string_view line,
                      Statement* statement) {
  std::vector<std::string> tokens;
  for (const std::string& piece : StrSplit(line, ' ')) {
    std::string_view token = StripWhitespace(piece);
    if (!token.empty()) tokens.emplace_back(token);
  }
  if (tokens.size() < 2) {
    return InvalidArgumentError(
        StrFormat("line %d: expected 'TYPE NAME key=value ...'", line_number));
  }
  statement->line = line_number;
  statement->type = tokens[0];
  statement->name = tokens[1];
  for (size_t i = 2; i < tokens.size(); ++i) {
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 > tokens[i].size()) {
      return InvalidArgumentError(StrFormat(
          "line %d: malformed argument '%s'", line_number, tokens[i].c_str()));
    }
    std::string key = tokens[i].substr(0, eq);
    std::string value = tokens[i].substr(eq + 1);
    if (key == "in") {
      for (const std::string& input : StrSplit(value, ',')) {
        if (!input.empty()) statement->inputs.push_back(input);
      }
    } else {
      statement->args[key] = value;
    }
  }
  return OkStatus();
}

class PlanAssembler {
 public:
  Result<ParsedPlan> Assemble(const std::vector<Statement>& statements);

 private:
  Status AddStatement(const Statement& s);
  Status ResolveInputs(const Statement& s, std::vector<Operator*>* inputs);
  /// True if every source feeding `name` is latent (IWP ordered inference).
  Status UpstreamLatent(const Statement& s,
                        const std::vector<Operator*>& inputs, bool* latent);

  Status GetDuration(const Statement& s, const std::string& key,
                     Duration default_value, bool required, Duration* out);
  Status GetDouble(const Statement& s, const std::string& key,
                   double default_value, bool required, double* out);
  Status GetInt(const Statement& s, const std::string& key,
                int64_t default_value, bool required, int64_t* out);

  GraphBuilder builder_;
  std::map<std::string, Operator*> by_name_;
  std::map<std::string, bool> latent_;  // name -> all-latent lineage
};

Status PlanAssembler::GetDuration(const Statement& s, const std::string& key,
                                  Duration default_value, bool required,
                                  Duration* out) {
  auto it = s.args.find(key);
  if (it == s.args.end()) {
    if (required) {
      return InvalidArgumentError(
          StrFormat("line %d: missing %s=", s.line, key.c_str()));
    }
    *out = default_value;
    return OkStatus();
  }
  Status status = ParseDuration(it->second, out);
  if (!status.ok()) {
    return InvalidArgumentError(
        StrFormat("line %d: %s", s.line, status.message().c_str()));
  }
  return OkStatus();
}

Status PlanAssembler::GetDouble(const Statement& s, const std::string& key,
                                double default_value, bool required,
                                double* out) {
  auto it = s.args.find(key);
  if (it == s.args.end()) {
    if (required) {
      return InvalidArgumentError(
          StrFormat("line %d: missing %s=", s.line, key.c_str()));
    }
    *out = default_value;
    return OkStatus();
  }
  if (!ParseDouble(it->second, out)) {
    return InvalidArgumentError(StrFormat("line %d: bad number for %s",
                                          s.line, key.c_str()));
  }
  return OkStatus();
}

Status PlanAssembler::GetInt(const Statement& s, const std::string& key,
                             int64_t default_value, bool required,
                             int64_t* out) {
  auto it = s.args.find(key);
  if (it == s.args.end()) {
    if (required) {
      return InvalidArgumentError(
          StrFormat("line %d: missing %s=", s.line, key.c_str()));
    }
    *out = default_value;
    return OkStatus();
  }
  if (!ParseInt64(it->second, out)) {
    return InvalidArgumentError(StrFormat("line %d: bad integer for %s",
                                          s.line, key.c_str()));
  }
  return OkStatus();
}

Status PlanAssembler::ResolveInputs(const Statement& s,
                                    std::vector<Operator*>* inputs) {
  for (const std::string& name : s.inputs) {
    auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      return InvalidArgumentError(StrFormat(
          "line %d: unknown input '%s' (operators must be declared before "
          "use)",
          s.line, name.c_str()));
    }
    inputs->push_back(it->second);
  }
  return OkStatus();
}

Status PlanAssembler::UpstreamLatent(const Statement& s,
                                     const std::vector<Operator*>& inputs,
                                     bool* latent) {
  bool any_latent = false;
  bool any_timestamped = false;
  for (const std::string& name : s.inputs) {
    if (latent_[name]) {
      any_latent = true;
    } else {
      any_timestamped = true;
    }
  }
  (void)inputs;
  if (any_latent && any_timestamped) {
    return InvalidArgumentError(StrFormat(
        "line %d: operator %s mixes latent and timestamped inputs", s.line,
        s.name.c_str()));
  }
  *latent = any_latent;
  return OkStatus();
}

Status PlanAssembler::AddStatement(const Statement& s) {
  if (by_name_.count(s.name) > 0) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate operator name '%s'", s.line,
                  s.name.c_str()));
  }
  std::vector<Operator*> inputs;
  DSMS_RETURN_IF_ERROR(ResolveInputs(s, &inputs));

  Operator* op = nullptr;
  bool latent = false;

  if (s.type == "stream") {
    if (!inputs.empty()) {
      return InvalidArgumentError(
          StrFormat("line %d: stream takes no in=", s.line));
    }
    TimestampKind kind = TimestampKind::kInternal;
    auto it = s.args.find("ts");
    if (it != s.args.end()) {
      if (it->second == "internal") {
        kind = TimestampKind::kInternal;
      } else if (it->second == "external") {
        kind = TimestampKind::kExternal;
      } else if (it->second == "latent") {
        kind = TimestampKind::kLatent;
      } else {
        return InvalidArgumentError(
            StrFormat("line %d: bad ts= value '%s'", s.line,
                      it->second.c_str()));
      }
    }
    Duration skew = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "skew", 0, false, &skew));
    if (skew < 0) {
      return InvalidArgumentError(
          StrFormat("line %d: skew must be >= 0", s.line));
    }
    // Validate here, not in Source::set_timestamp_granularity: a bad value
    // in a config file is the user's mistake (a parse error), not a
    // programming error, so it must surface as a Status — never the
    // DSMS_CHECK abort the setter keeps for real API misuse.
    Duration granularity = 1;
    DSMS_RETURN_IF_ERROR(
        GetDuration(s, "granularity", 1, false, &granularity));
    if (granularity < 1) {
      return InvalidArgumentError(StrFormat(
          "line %d: granularity must be >= 1 microsecond (got %lld)",
          s.line, static_cast<long long>(granularity)));
    }
    if (kind != TimestampKind::kInternal && granularity != 1) {
      return InvalidArgumentError(StrFormat(
          "line %d: granularity only applies to ts=internal streams",
          s.line));
    }
    Source* source = builder_.AddSource(s.name, kind, skew);
    source->set_timestamp_granularity(granularity);
    auto schema_arg = s.args.find("schema");
    if (schema_arg != s.args.end()) {
      std::vector<Field> fields;
      for (const std::string& piece : StrSplit(schema_arg->second, ',')) {
        std::vector<std::string> parts = StrSplit(piece, ':');
        if (parts.size() != 2 || parts[0].empty()) {
          return InvalidArgumentError(StrFormat(
              "line %d: bad schema field '%s' (want name:type)", s.line,
              piece.c_str()));
        }
        ValueType type;
        if (parts[1] == "int64") {
          type = ValueType::kInt64;
        } else if (parts[1] == "double") {
          type = ValueType::kDouble;
        } else if (parts[1] == "string") {
          type = ValueType::kString;
        } else if (parts[1] == "bool") {
          type = ValueType::kBool;
        } else {
          return InvalidArgumentError(StrFormat(
              "line %d: unknown field type '%s'", s.line, parts[1].c_str()));
        }
        fields.push_back(Field{parts[0], type});
      }
      source->set_schema(Schema(std::move(fields)));
    }
    op = source;
    latent = kind == TimestampKind::kLatent;
  } else if (s.type == "filter") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: filter needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    if (s.args.count("selectivity") > 0) {
      double selectivity = 0.0;
      DSMS_RETURN_IF_ERROR(
          GetDouble(s, "selectivity", 0.0, true, &selectivity));
      if (selectivity < 0.0 || selectivity > 1.0) {
        return InvalidArgumentError(
            StrFormat("line %d: selectivity out of [0,1]", s.line));
      }
      int64_t seed = 1;
      DSMS_RETURN_IF_ERROR(GetInt(s, "seed", 1, false, &seed));
      op = builder_.AddRandomDropFilter(s.name, selectivity,
                                        static_cast<uint64_t>(seed));
    } else {
      int64_t field = 0;
      double value = 0.0;
      DSMS_RETURN_IF_ERROR(GetInt(s, "field", 0, true, &field));
      DSMS_RETURN_IF_ERROR(GetDouble(s, "value", 0.0, true, &value));
      auto it = s.args.find("op");
      if (it == s.args.end()) {
        return InvalidArgumentError(
            StrFormat("line %d: missing op=", s.line));
      }
      const std::string& cmp = it->second;
      int f = static_cast<int>(field);
      Filter::Predicate predicate;
      FilterCmp batch_cmp;
      if (cmp == "lt") {
        batch_cmp = FilterCmp::kLt;
        predicate = [f, value](const Tuple& t) {
          return t.value(f).AsDouble() < value;
        };
      } else if (cmp == "le") {
        batch_cmp = FilterCmp::kLe;
        predicate = [f, value](const Tuple& t) {
          return t.value(f).AsDouble() <= value;
        };
      } else if (cmp == "gt") {
        batch_cmp = FilterCmp::kGt;
        predicate = [f, value](const Tuple& t) {
          return t.value(f).AsDouble() > value;
        };
      } else if (cmp == "ge") {
        batch_cmp = FilterCmp::kGe;
        predicate = [f, value](const Tuple& t) {
          return t.value(f).AsDouble() >= value;
        };
      } else if (cmp == "eq") {
        batch_cmp = FilterCmp::kEq;
        predicate = [f, value](const Tuple& t) {
          return t.value(f).AsDouble() == value;
        };
      } else if (cmp == "ne") {
        batch_cmp = FilterCmp::kNe;
        predicate = [f, value](const Tuple& t) {
          return t.value(f).AsDouble() != value;
        };
      } else {
        return InvalidArgumentError(StrFormat(
            "line %d: bad op= '%s' (want lt,le,gt,ge,eq,ne)", s.line,
            cmp.c_str()));
      }
      Filter* filter = builder_.AddFilter(s.name, std::move(predicate));
      filter->set_required_numeric_field(f);
      // Declarative form of the same predicate: lets the batch kernel run
      // the comparison over a column instead of row-wise Predicate calls.
      filter->set_compare_spec(f, batch_cmp, value);
      op = filter;
    }
  } else if (s.type == "project") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: project needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    auto it = s.args.find("fields");
    if (it == s.args.end()) {
      return InvalidArgumentError(
          StrFormat("line %d: missing fields=", s.line));
    }
    std::vector<int> fields;
    for (const std::string& piece : StrSplit(it->second, ',')) {
      int64_t index = 0;
      if (!ParseInt64(piece, &index) || index < 0) {
        return InvalidArgumentError(
            StrFormat("line %d: bad field index '%s'", s.line,
                      piece.c_str()));
      }
      fields.push_back(static_cast<int>(index));
    }
    op = builder_.AddProject(s.name, std::move(fields));
  } else if (s.type == "union") {
    if (inputs.size() < 2) {
      return InvalidArgumentError(
          StrFormat("line %d: union needs >= 2 inputs", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    op = builder_.AddUnion(s.name, /*ordered=*/!latent);
  } else if (s.type == "join") {
    if (inputs.size() != 2) {
      return InvalidArgumentError(
          StrFormat("line %d: join needs exactly 2 inputs", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    Duration window = 0;
    DSMS_RETURN_IF_ERROR(
        GetDuration(s, "window", kSecond, false, &window));
    Duration left_window = 0;
    Duration right_window = 0;
    DSMS_RETURN_IF_ERROR(
        GetDuration(s, "left_window", window, false, &left_window));
    DSMS_RETURN_IF_ERROR(
        GetDuration(s, "right_window", window, false, &right_window));
    WindowJoin::Predicate predicate;  // null = cross product
    int equi_left = -1;
    int equi_right = -1;
    if (s.args.count("left_field") > 0 || s.args.count("right_field") > 0) {
      int64_t left_field = 0;
      int64_t right_field = 0;
      DSMS_RETURN_IF_ERROR(GetInt(s, "left_field", 0, true, &left_field));
      DSMS_RETURN_IF_ERROR(GetInt(s, "right_field", 0, true, &right_field));
      equi_left = static_cast<int>(left_field);
      equi_right = static_cast<int>(right_field);
      predicate = WindowJoin::EquiJoin(equi_left, equi_right);
    }
    WindowJoin* join =
        builder_.AddWindowJoin(s.name, left_window, right_window,
                               std::move(predicate), /*ordered=*/!latent);
    if (equi_left >= 0) join->set_equi_fields(equi_left, equi_right);
    op = join;
    latent = false;  // Unordered joins stamp on the fly.
  } else if (s.type == "mjoin") {
    if (inputs.size() < 2) {
      return InvalidArgumentError(
          StrFormat("line %d: mjoin needs >= 2 inputs", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    Duration window = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "window", 0, true, &window));
    std::vector<Duration> windows(inputs.size(), window);
    MultiWayJoin::Predicate predicate;  // null = cross product
    int equi_field = -1;
    if (s.args.count("key") > 0) {
      int64_t key = 0;
      DSMS_RETURN_IF_ERROR(GetInt(s, "key", 0, true, &key));
      equi_field = static_cast<int>(key);
      predicate = MultiWayJoin::EquiJoin(equi_field);
    }
    MultiWayJoin* join = builder_.AddMultiWayJoin(
        s.name, std::move(windows), std::move(predicate),
        /*ordered=*/!latent);
    if (equi_field >= 0) join->set_equi_field(equi_field);
    op = join;
    latent = false;  // Unordered joins stamp on the fly.
  } else if (s.type == "gaggregate") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: gaggregate needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    auto it = s.args.find("fn");
    if (it == s.args.end()) {
      return InvalidArgumentError(StrFormat("line %d: missing fn=", s.line));
    }
    AggKind kind;
    if (it->second == "count") {
      kind = AggKind::kCount;
    } else if (it->second == "sum") {
      kind = AggKind::kSum;
    } else if (it->second == "avg") {
      kind = AggKind::kAvg;
    } else if (it->second == "min") {
      kind = AggKind::kMin;
    } else if (it->second == "max") {
      kind = AggKind::kMax;
    } else {
      return InvalidArgumentError(
          StrFormat("line %d: bad fn= '%s'", s.line, it->second.c_str()));
    }
    int64_t key = 0;
    DSMS_RETURN_IF_ERROR(GetInt(s, "key", 0, true, &key));
    int64_t field = 0;
    DSMS_RETURN_IF_ERROR(GetInt(s, "field", 0, false, &field));
    Duration window = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "window", 0, true, &window));
    Duration slide = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "slide", window, false, &slide));
    op = builder_.AddGroupedWindowAggregate(
        s.name, kind, static_cast<int>(key), static_cast<int>(field), window,
        slide);
    latent = false;  // Grouped aggregates stamp on the fly.
  } else if (s.type == "aggregate") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: aggregate needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    auto it = s.args.find("fn");
    if (it == s.args.end()) {
      return InvalidArgumentError(StrFormat("line %d: missing fn=", s.line));
    }
    AggKind kind;
    if (it->second == "count") {
      kind = AggKind::kCount;
    } else if (it->second == "sum") {
      kind = AggKind::kSum;
    } else if (it->second == "avg") {
      kind = AggKind::kAvg;
    } else if (it->second == "min") {
      kind = AggKind::kMin;
    } else if (it->second == "max") {
      kind = AggKind::kMax;
    } else {
      return InvalidArgumentError(
          StrFormat("line %d: bad fn= '%s'", s.line, it->second.c_str()));
    }
    int64_t field = 0;
    DSMS_RETURN_IF_ERROR(GetInt(s, "field", 0, false, &field));
    Duration window = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "window", 0, true, &window));
    Duration slide = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "slide", window, false, &slide));
    op = builder_.AddWindowAggregate(s.name, kind, static_cast<int>(field),
                                     window, slide);
    latent = false;  // Aggregates stamp on the fly.
  } else if (s.type == "reorder") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: reorder needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    Duration slack = 0;
    DSMS_RETURN_IF_ERROR(GetDuration(s, "slack", 0, true, &slack));
    op = builder_.AddReorder(s.name, slack);
  } else if (s.type == "copy") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: copy needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    op = builder_.AddCopy(s.name);
  } else if (s.type == "sink") {
    if (inputs.size() != 1) {
      return InvalidArgumentError(
          StrFormat("line %d: sink needs exactly one input", s.line));
    }
    DSMS_RETURN_IF_ERROR(UpstreamLatent(s, inputs, &latent));
    op = builder_.AddSink(s.name);
  } else {
    return InvalidArgumentError(StrFormat(
        "line %d: unknown statement type '%s'", s.line, s.type.c_str()));
  }

  for (Operator* input : inputs) builder_.Connect(input, op);
  by_name_[s.name] = op;
  latent_[s.name] = latent;
  return OkStatus();
}

Result<ParsedPlan> PlanAssembler::Assemble(
    const std::vector<Statement>& statements) {
  for (const Statement& s : statements) {
    Status status = AddStatement(s);
    if (!status.ok()) return status;
  }
  Result<std::unique_ptr<QueryGraph>> graph = builder_.Build();
  if (!graph.ok()) return graph.status();
  ParsedPlan plan;
  plan.graph = std::move(graph).value();
  plan.operators = std::move(by_name_);
  return plan;
}

}  // namespace

Result<ParsedPlan> ParsePlan(std::string_view text) {
  std::vector<Statement> statements;
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string_view line = raw_line;
    size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = StripWhitespace(line);
    if (line.empty()) continue;
    Statement statement;
    Status status = ParseStatement(line_number, line, &statement);
    if (!status.ok()) return status;
    statements.push_back(std::move(statement));
  }
  if (statements.empty()) {
    return InvalidArgumentError("empty plan");
  }
  PlanAssembler assembler;
  return assembler.Assemble(statements);
}

}  // namespace dsms
