#ifndef DSMS_GRAPH_GRAPH_BUILDER_H_
#define DSMS_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/tuple.h"
#include "graph/query_graph.h"
#include "operators/filter.h"
#include "operators/grouped_aggregate.h"
#include "operators/map.h"
#include "operators/multiway_join.h"
#include "operators/project.h"
#include "operators/reorder.h"
#include "operators/split.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "operators/window_aggregate.h"
#include "operators/window_join.h"

namespace dsms {

/// Fluent construction of query graphs:
///
///   GraphBuilder b;
///   Source* s1 = b.AddSource("S1", TimestampKind::kInternal);
///   Source* s2 = b.AddSource("S2", TimestampKind::kInternal);
///   auto* f1 = b.AddRandomDropFilter("F1", 0.95, /*seed=*/1);
///   auto* f2 = b.AddRandomDropFilter("F2", 0.95, /*seed=*/2);
///   auto* u = b.AddUnion("U");
///   auto* out = b.AddSink("OUT");
///   b.Connect(s1, f1); b.Connect(s2, f2);
///   b.Connect(f1, u);  b.Connect(f2, u);
///   b.Connect(u, out);
///   Result<std::unique_ptr<QueryGraph>> graph = b.Build();
///
/// Build() validates and transfers ownership; the builder is then empty.
/// Stream ids for sources are assigned in creation order (0, 1, ...).
class GraphBuilder {
 public:
  GraphBuilder();

  Source* AddSource(std::string name, TimestampKind kind,
                    Duration skew_bound = 0);
  Sink* AddSink(std::string name);
  Filter* AddFilter(std::string name, Filter::Predicate predicate);
  RandomDropFilter* AddRandomDropFilter(std::string name, double selectivity,
                                        uint64_t seed);
  Project* AddProject(std::string name, std::vector<int> keep_indices);
  MapOp* AddMap(std::string name, MapOp::Transform transform);
  CopyOp* AddCopy(std::string name);
  Union* AddUnion(std::string name, bool ordered = true,
                  bool use_tsm_registers = true);
  WindowJoin* AddWindowJoin(std::string name, Duration left_window,
                            Duration right_window,
                            WindowJoin::Predicate predicate,
                            bool ordered = true);
  WindowAggregate* AddWindowAggregate(std::string name, AggKind kind,
                                      int field, Duration window,
                                      Duration slide);
  GroupedWindowAggregate* AddGroupedWindowAggregate(std::string name,
                                                    AggKind kind,
                                                    int key_field,
                                                    int agg_field,
                                                    Duration window,
                                                    Duration slide);
  MultiWayJoin* AddMultiWayJoin(std::string name,
                                std::vector<Duration> windows,
                                MultiWayJoin::Predicate predicate,
                                bool ordered = true);
  Split* AddSplit(std::string name, std::vector<Split::Predicate> predicates);
  Reorder* AddReorder(std::string name, Duration slack);

  void Connect(Operator* producer, Operator* consumer);

  /// Validates and returns the graph, or the validation error.
  Result<std::unique_ptr<QueryGraph>> Build();

 private:
  std::unique_ptr<QueryGraph> graph_;
  int32_t next_stream_id_ = 0;
};

}  // namespace dsms

#endif  // DSMS_GRAPH_GRAPH_BUILDER_H_
