#ifndef DSMS_GRAPH_QUERY_GRAPH_H_
#define DSMS_GRAPH_QUERY_GRAPH_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/schema.h"
#include "core/stream_buffer.h"
#include "operators/operator.h"
#include "operators/sink.h"
#include "operators/source.h"

namespace dsms {

class StateStore;
struct StorageConfig;

/// The continuous-query operator graph of Section 3: nodes are query
/// operators (plus source and sink nodes), directed arcs are the buffers
/// connecting them. The graph owns both. A graph may have several weakly
/// connected components; each component is a scheduling unit (Section 3).
///
/// Construction: AddOperator to create nodes, Connect to create arcs, then
/// Validate once; executors require a validated graph.
class QueryGraph {
 public:
  QueryGraph() = default;
  /// Out-of-line: the state store member is an incomplete type here.
  ~QueryGraph();

  QueryGraph(const QueryGraph&) = delete;
  QueryGraph& operator=(const QueryGraph&) = delete;

  /// Takes ownership of `op`, assigns its id, and returns a raw handle that
  /// remains valid for the graph's lifetime.
  Operator* AddOperator(std::unique_ptr<Operator> op);

  /// Typed convenience for `graph.Add(std::make_unique<Union>("u"))`.
  template <typename T>
  T* Add(std::unique_ptr<T> op) {
    T* raw = op.get();
    AddOperator(std::move(op));
    return raw;
  }

  /// Creates the buffer arc `producer -> consumer` and wires both ends.
  /// The buffer is named "<producer>-><consumer>".
  StreamBuffer* Connect(Operator* producer, Operator* consumer);

  /// Checks arities, connectivity, acyclicity, timestamp-kind consistency
  /// (an IWP operator must not mix latent and timestamped source lineages),
  /// and — where sources declare schemas — propagates and type-checks
  /// schemas through every operator. Must be called (and succeed) before
  /// execution.
  Status Validate();

  /// The schema of `op_id`'s output as derived during Validate();
  /// std::nullopt when upstream is untyped. Requires validated().
  const std::optional<Schema>& output_schema(int op_id) const;

  bool validated() const { return validated_; }

  int num_operators() const { return static_cast<int>(operators_.size()); }
  Operator* op(int id) const;
  int num_buffers() const { return static_cast<int>(buffers_.size()); }
  StreamBuffer* buffer(int id) const;

  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return operators_;
  }

  /// Producer/consumer operator of an arc (by buffer id); -1 if unset.
  int producer_of(int buffer_id) const;
  int consumer_of(int buffer_id) const;

  /// All Source / Sink nodes, in insertion order.
  std::vector<Source*> sources() const;
  std::vector<Sink*> sinks() const;

  /// Downstream operators of `op` (consumers of its output arcs).
  std::vector<Operator*> successors(const Operator* op) const;
  /// The operator feeding input `index` of `op`.
  Operator* predecessor(const Operator* op, int index) const;

  /// True if `op`'s only successor... — an operator is "last before the
  /// sink" (the Encore special case of Section 3.1) when every successor is
  /// a Sink node.
  bool IsLastBeforeSink(const Operator* op) const;

  /// Weakly connected components as lists of operator ids; each is a
  /// scheduling unit.
  std::vector<std::vector<int>> Components() const;

  /// Replaces every arc's listeners with `listener` (nullptr detaches all).
  void ReplaceBufferListeners(BufferListener* listener);

  /// Registers an additional listener on every arc (metrics and validators
  /// compose).
  void AddBufferListener(BufferListener* listener);

  /// Installs the same capacity bound + overload policy on every arc
  /// (limit 0 restores the unbounded default; see OverloadPolicy).
  void SetBufferBound(size_t limit, OverloadPolicy policy);

  /// True if any arc on a path downstream of `op` is full under
  /// OverloadPolicy::kBlockSource. Backpressure propagates: a full arc
  /// anywhere below a source must pause that source, not just a full
  /// first-hop arc (in-flight tuples keep draining toward the full arc).
  bool DownstreamBlocked(const Operator* op) const;

  /// Largest occupancy any single arc ever reached.
  size_t MaxBufferHighWaterMark() const;

  /// Tuples discarded across all arcs by the kShedOldest overload policy.
  uint64_t TotalShedTuples() const;

  /// Pushes vetoed across all arcs by enforcement listeners.
  uint64_t TotalVetoedPushes() const;

  /// Sum of all arc buffer sizes right now.
  size_t TotalBufferedTuples() const;

  /// True if any arc buffer holds a data tuple.
  bool AnyDataBuffered() const;

  /// Creates the graph's spillable state store (storage/state_store.h) with
  /// `config` and binds it to every operator (BindStateStore). Call after
  /// all operators are added and before execution / state restore; at most
  /// once. Initializes the spill directory when spilling is enabled.
  Status ConfigureStateStore(const StorageConfig& config);

  /// The configured state store, or nullptr when ConfigureStateStore was
  /// never called (operators then keep all state in memory, unbudgeted).
  StateStore* state_store() const { return state_store_.get(); }

  /// Multi-line structural dump for debugging.
  std::string ToString() const;

 private:
  Status ValidateArities() const;
  Status ValidateAcyclic() const;
  Status ValidateTimestampKinds() const;
  Status ValidateSchemas();

  /// Declared before operators_ so it outlives them: operator destructors
  /// (via ~StateTable) unregister their tables from the store.
  std::unique_ptr<StateStore> state_store_;
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<std::unique_ptr<StreamBuffer>> buffers_;
  std::vector<int> buffer_producer_;  // by buffer id
  std::vector<int> buffer_consumer_;  // by buffer id
  std::vector<std::optional<Schema>> output_schemas_;  // by operator id
  bool validated_ = false;
};

}  // namespace dsms

#endif  // DSMS_GRAPH_QUERY_GRAPH_H_
