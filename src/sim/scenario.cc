#include "sim/scenario.h"

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"
#include "exec/dfs_executor.h"
#include "exec/greedy_memory_executor.h"
#include "exec/round_robin_executor.h"
#include "exec/sharded_executor.h"
#include "graph/graph_builder.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "operators/iwp_operator.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"

namespace dsms {
namespace {

TimestampKind EffectiveTsKind(const ScenarioConfig& config) {
  return config.kind == ScenarioKind::kLatent ? TimestampKind::kLatent
                                              : config.ts_kind;
}

std::unique_ptr<ArrivalProcess> MakeFastProcess(const ScenarioConfig& config) {
  switch (config.arrivals) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonProcess>(config.fast_rate,
                                              config.seed * 31 + 1);
    case ArrivalKind::kConstant:
      return std::make_unique<ConstantRateProcess>(config.fast_rate);
    case ArrivalKind::kBursty:
      return std::make_unique<BurstyProcess>(
          config.burst_rate, config.idle_rate, config.mean_burst_length,
          config.mean_idle_length, config.seed * 31 + 1);
  }
  return nullptr;
}

std::unique_ptr<ArrivalProcess> MakeSlowProcess(const ScenarioConfig& config,
                                                int index) {
  uint64_t seed = config.seed * 31 + 100 + static_cast<uint64_t>(index);
  if (config.arrivals == ArrivalKind::kConstant) {
    return std::make_unique<ConstantRateProcess>(config.slow_rate);
  }
  return std::make_unique<PoissonProcess>(config.slow_rate, seed);
}

/// Order-sensitive FNV-1a digest over tuple contents; shared by the arc
/// TraceRecorder and the sink-output digest.
class FnvDigest {
 public:
  uint64_t hash() const { return hash_; }

  void Mix(uint64_t word) {
    // FNV-1a, one byte at a time.
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (i * 8)) & 0xFFu;
      hash_ *= 1099511628211ULL;
    }
  }

  void MixTuple(const Tuple& tuple) {
    Mix(static_cast<uint64_t>(tuple.kind()));
    Mix(static_cast<uint64_t>(tuple.timestamp_kind()));
    Mix(tuple.has_timestamp() ? 1u : 0u);
    if (tuple.has_timestamp()) Mix(static_cast<uint64_t>(tuple.timestamp()));
    Mix(static_cast<uint64_t>(tuple.arrival_time()));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(tuple.source_id())));
    Mix(tuple.sequence());
    Mix(static_cast<uint64_t>(tuple.num_values()));
    for (const Value& v : tuple.values()) MixValue(v);
  }

  void MixValue(const Value& v) {
    Mix(static_cast<uint64_t>(v.type()));
    switch (v.type()) {
      case ValueType::kInt64:
        Mix(static_cast<uint64_t>(v.int64_value()));
        break;
      case ValueType::kDouble: {
        double d = v.double_value();
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
        std::memcpy(&bits, &d, sizeof(bits));
        Mix(bits);
        break;
      }
      case ValueType::kBool:
        Mix(v.bool_value() ? 1u : 0u);
        break;
      case ValueType::kString: {
        const std::string& s = v.string_value();
        Mix(s.size());
        for (char c : s) Mix(static_cast<uint64_t>(static_cast<uint8_t>(c)));
        break;
      }
    }
  }

 private:
  uint64_t hash_ = 14695981039346656037ULL;
};

/// Buffer listener folding every push/pop (arc id + full tuple contents)
/// into an FNV-1a digest. Equal digests mean two runs moved byte-identical
/// tuples through the same arcs in the same order.
class TraceRecorder : public BufferListener {
 public:
  uint64_t hash() const { return digest_.hash(); }
  uint64_t events() const { return events_; }

  void OnPush(const StreamBuffer& buffer, const Tuple& tuple) override {
    Record(0x50u, buffer, tuple);
  }
  void OnPop(const StreamBuffer& buffer, const Tuple& tuple) override {
    Record(0x0Fu, buffer, tuple);
  }

 private:
  void Record(uint64_t tag, const StreamBuffer& buffer, const Tuple& tuple) {
    ++events_;
    digest_.Mix(tag);
    digest_.Mix(static_cast<uint64_t>(buffer.id()));
    digest_.MixTuple(tuple);
  }

  FnvDigest digest_;
  uint64_t events_ = 0;
};

}  // namespace

const char* ScenarioKindToString(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kNoEts:
      return "A:no-ets";
    case ScenarioKind::kPeriodicEts:
      return "B:periodic";
    case ScenarioKind::kOnDemandEts:
      return "C:on-demand";
    case ScenarioKind::kLatent:
      return "D:latent";
  }
  return "unknown";
}

std::string ScenarioResult::ToString() const {
  std::string text = StrFormat(
      "latency(ms) mean=%.4f p50=%.4f p99=%.4f max=%.4f | out=%llu | "
      "peak_queue=%lld (data %lld) | idle=%.4f%% (%llu intervals) | "
      "ets=%llu punct_steps=%llu punct_sink=%llu",
      mean_latency_ms, p50_latency_ms, p99_latency_ms, max_latency_ms,
      static_cast<unsigned long long>(tuples_delivered),
      static_cast<long long>(peak_queue_total),
      static_cast<long long>(peak_queue_data), idle_fraction * 100.0,
      static_cast<unsigned long long>(blocked_intervals),
      static_cast<unsigned long long>(ets_generated),
      static_cast<unsigned long long>(punctuation_steps),
      static_cast<unsigned long long>(punctuation_eliminated));
  if (fault_events > 0 || watchdog_ets > 0 || shed_tuples > 0 ||
      quarantined > 0 || dropped_late > 0 || late_absorbed > 0) {
    text += StrFormat(
        " | faults=%llu watchdog_ets=%llu%s shed=%llu quarantined=%llu "
        "dropped=%llu late_absorbed=%llu hwm=%llu",
        static_cast<unsigned long long>(fault_events),
        static_cast<unsigned long long>(watchdog_ets),
        degraded ? " (degraded)" : "",
        static_cast<unsigned long long>(shed_tuples),
        static_cast<unsigned long long>(quarantined),
        static_cast<unsigned long long>(dropped_late),
        static_cast<unsigned long long>(late_absorbed),
        static_cast<unsigned long long>(max_buffer_hwm));
  }
  if (frontier_violations > 0 || frontier_lease_expiries > 0 ||
      frontier_transitions > 0) {
    text += StrFormat(
        " | frontier: violations=%llu lease_expiries=%llu revivals=%llu "
        "quarantines=%llu quarantined_now=%llu degraded_now=%llu",
        static_cast<unsigned long long>(frontier_violations),
        static_cast<unsigned long long>(frontier_lease_expiries),
        static_cast<unsigned long long>(frontier_revivals),
        static_cast<unsigned long long>(frontier_quarantines),
        static_cast<unsigned long long>(frontier_quarantined_now),
        static_cast<unsigned long long>(frontier_degraded_now));
  }
  return text;
}

ScenarioResult RunScenario(const ScenarioConfig& config) {
  TimestampKind ts_kind = EffectiveTsKind(config);
  bool ordered = ts_kind != TimestampKind::kLatent;

  GraphBuilder builder;
  std::vector<Source*> sources;
  Operator* measured = nullptr;  // The IWP / window operator under study.
  Sink* sink = nullptr;

  if (config.shape == QueryShape::kUnion) {
    DSMS_CHECK_GE(config.num_slow_streams, 1);
    Source* fast =
        builder.AddSource("S1", ts_kind, config.skew_bound);
    sources.push_back(fast);
    auto* f1 = builder.AddRandomDropFilter("F1", config.selectivity,
                                           config.seed * 7 + 11);
    builder.Connect(fast, f1);
    Union* u = builder.AddUnion("U", ordered, config.use_tsm_registers);
    builder.Connect(f1, u);
    for (int i = 0; i < config.num_slow_streams; ++i) {
      Source* slow = builder.AddSource(StrFormat("S%d", i + 2), ts_kind,
                                       config.skew_bound);
      sources.push_back(slow);
      auto* f = builder.AddRandomDropFilter(StrFormat("F%d", i + 2),
                                            config.selectivity,
                                            config.seed * 7 + 13 +
                                                static_cast<uint64_t>(i));
      builder.Connect(slow, f);
      builder.Connect(f, u);
    }
    sink = builder.AddSink("OUT");
    builder.Connect(u, sink);
    measured = u;
  } else if (config.shape == QueryShape::kJoin) {
    Source* fast = builder.AddSource("S1", ts_kind, config.skew_bound);
    Source* slow = builder.AddSource("S2", ts_kind, config.skew_bound);
    sources.push_back(fast);
    sources.push_back(slow);
    auto* f1 = builder.AddRandomDropFilter("F1", config.selectivity,
                                           config.seed * 7 + 11);
    auto* f2 = builder.AddRandomDropFilter("F2", config.selectivity,
                                           config.seed * 7 + 13);
    builder.Connect(fast, f1);
    builder.Connect(slow, f2);
    WindowJoin* join = builder.AddWindowJoin(
        "J", config.join_window, config.join_window,
        /*predicate=*/nullptr, ordered);
    builder.Connect(f1, join);
    builder.Connect(f2, join);
    sink = builder.AddSink("OUT");
    builder.Connect(join, sink);
    measured = join;
  } else {  // kAggregate
    // A busy side component shares the scheduler: every one of its
    // activations gives the executor a chance to resume the aggregate's
    // pending backtrack and close due windows (on-demand ETS is driven by
    // execution, so an otherwise-idle DSMS cannot close windows by itself —
    // see DESIGN.md).
    Source* side = builder.AddSource("SIDE", ts_kind, config.skew_bound);
    Sink* side_sink = builder.AddSink("SIDE_OUT");
    builder.Connect(side, side_sink);
    sources.push_back(side);

    Source* slow = builder.AddSource("S1", ts_kind, config.skew_bound);
    sources.push_back(slow);
    auto* f1 = builder.AddRandomDropFilter("F1", config.selectivity,
                                           config.seed * 7 + 11);
    builder.Connect(slow, f1);
    WindowAggregate* agg = builder.AddWindowAggregate(
        "AGG", AggKind::kCount, /*field=*/0, config.agg_window,
        config.agg_slide);
    builder.Connect(f1, agg);
    sink = builder.AddSink("OUT");
    builder.Connect(agg, sink);
    measured = agg;
  }

  for (Source* source : sources) {
    source->set_timestamp_granularity(config.timestamp_granularity);
  }

  Result<std::unique_ptr<QueryGraph>> graph_or = builder.Build();
  DSMS_CHECK_OK(graph_or.status());
  std::unique_ptr<QueryGraph> graph = std::move(graph_or).value();
  if (config.buffer_capacity > 0) {
    graph->SetBufferBound(config.buffer_capacity, config.overload);
  }
  if (!config.state_spill_dir.empty() || config.state_mem_budget > 0) {
    StorageConfig storage_config;
    storage_config.mem_budget = config.state_mem_budget;
    storage_config.spill_dir = config.state_spill_dir;
    storage_config.granularity = config.state_granularity;
    storage_config.overload = config.overload;
    DSMS_CHECK_OK(graph->ConfigureStateStore(storage_config));
  }

  ExecConfig exec_config;
  exec_config.costs = config.costs;
  exec_config.ets.mode = config.kind == ScenarioKind::kOnDemandEts
                             ? EtsMode::kOnDemand
                             : EtsMode::kNone;
  exec_config.ets.min_interval = config.ets_min_interval;
  exec_config.watchdog.silence_horizon = config.watchdog_horizon;
  exec_config.frontier.mode = config.frontier_mode;
  exec_config.frontier.lease = config.lease;
  exec_config.scheduler = config.scheduler;
  exec_config.batch_size = config.batch_size;
  exec_config.shards = config.shards;
  exec_config.shard_mode = config.shard_mode;
  exec_config.shard_seed = config.seed;

  VirtualClock clock;
  std::unique_ptr<Tracer> tracer;
  if (!config.trace_path.empty()) {
    tracer = std::make_unique<Tracer>(&clock, config.trace_capacity);
    exec_config.tracer = tracer.get();
  }
  // Only the DFS strategy shards (its schedule is what the deterministic
  // mode replicates); shards > 1 with another executor is a config error.
  DSMS_CHECK(config.shards == 1 || config.executor == ExecutorKind::kDfs);
  std::unique_ptr<Executor> executor;
  switch (config.executor) {
    case ExecutorKind::kDfs:
      if (config.shards > 1) {
        executor = std::make_unique<ShardedExecutor>(graph.get(), &clock,
                                                     exec_config);
      } else {
        executor =
            std::make_unique<DfsExecutor>(graph.get(), &clock, exec_config);
      }
      break;
    case ExecutorKind::kRoundRobin:
      executor = std::make_unique<RoundRobinExecutor>(
          graph.get(), &clock, exec_config, config.rr_quantum);
      break;
    case ExecutorKind::kGreedyMemory:
      executor = std::make_unique<GreedyMemoryExecutor>(graph.get(), &clock,
                                                        exec_config);
      break;
  }

  // Self-check every delivery for timestamp-order violations; the paper's
  // operators are order-preserving by construction, so any violation is an
  // implementation bug worth failing loudly in tests. The same callback
  // folds every delivered tuple into the sink-output digest — the oracle
  // the batch-equivalence suite compares against the scalar path.
  uint64_t order_violations = 0;
  auto sink_digest = std::make_shared<FnvDigest>();
  auto last_ts = std::make_shared<Timestamp>(kMinTimestamp);
  sink->set_callback([last_ts, &order_violations, sink_digest,
                      ordered](const Tuple& t, Timestamp) {
    if (ordered && t.has_timestamp()) {
      if (t.timestamp() < *last_ts) ++order_violations;
      *last_ts = t.timestamp();
    }
    sink_digest->MixTuple(t);
  });

  TraceRecorder trace;
  Simulation sim(graph.get(), executor.get(), &clock);
  sim.set_violation_policy(config.violations);
  if (tracer != nullptr) sim.AttachTracer(tracer.get());
  // The Simulation constructor owns listener replacement; the recorder must
  // compose with (not clobber) its metrics listeners, so attach afterwards.
  if (config.record_trace) graph->AddBufferListener(&trace);
  for (size_t i = 0; i < sources.size(); ++i) {
    // sources[0] is the fast stream in every shape (the side component for
    // kAggregate); all others are slow streams.
    std::unique_ptr<ArrivalProcess> process =
        i == 0 ? MakeFastProcess(config)
               : MakeSlowProcess(config, static_cast<int>(i));
    sim.AddFeed(sources[i], std::move(process), Simulation::SequencePayload(),
                /*jitter_seed=*/config.seed * 131 + i);
  }
  auto clamp_target = [&sources](int target) {
    if (target < 0) target = 0;
    if (target >= static_cast<int>(sources.size())) {
      target = static_cast<int>(sources.size()) - 1;
    }
    return static_cast<size_t>(target);
  };
  if (config.fault.enabled()) {
    sim.InjectFault(sources[clamp_target(config.fault_target)], config.fault,
                    /*run_seed=*/config.seed);
  }
  for (const FaultSpec& extra : config.extra_faults) {
    if (!extra.enabled()) continue;
    // Each extra fault aims at its own FaultSpec::source index; at most one
    // fault per source (a later injection replaces an earlier one).
    sim.InjectFault(sources[clamp_target(extra.source)], extra,
                    /*run_seed=*/config.seed);
  }
  if (config.kind == ScenarioKind::kPeriodicEts &&
      config.heartbeat_rate > 0.0) {
    Duration period = SecondsToDuration(1.0 / config.heartbeat_rate);
    if (period < 1) period = 1;
    for (size_t i = 0; i < sources.size(); ++i) {
      bool is_fast = i == 0;
      if (is_fast && !config.heartbeat_fast) continue;
      // Stagger phases so heartbeats on different streams do not collide.
      sim.AddHeartbeat(sources[i], period,
                       static_cast<Duration>(i) * (period / 7 + 1));
    }
  }

  sim.Run(config.horizon, config.warmup);

  ScenarioResult result;
  const LatencyRecorder& latency = sink->latency();
  result.mean_latency_ms = latency.mean_us() / 1000.0;
  result.p50_latency_ms = latency.histogram().Quantile(0.5) / 1000.0;
  result.p99_latency_ms = latency.p99_us() / 1000.0;
  result.max_latency_ms = static_cast<double>(latency.max_us()) / 1000.0;
  result.tuples_delivered = latency.count();
  result.peak_queue_total = sim.queue_tracker().peak_total();
  result.peak_queue_data = sim.queue_tracker().peak_data();
  if (const IdleWaitTracker* tracker =
          executor->idle_tracker(measured->id())) {
    result.idle_fraction = tracker->IdleFraction(0, clock.now());
    result.blocked_intervals =
        static_cast<uint64_t>(tracker->blocked_intervals());
  }
  result.ets_generated = executor->ets_generated();
  result.punctuation_steps = executor->stats().punctuation_steps;
  result.punctuation_eliminated = sink->punctuation_eliminated();
  result.order_violations = order_violations;
  result.buffer_order_violations = sim.order_validator().violations();
  result.fault_events = sim.fault_events();
  result.watchdog_ets = executor->stats().watchdog_ets;
  for (Source* source : sources) result.degraded |= source->degraded();
  result.shed_tuples = graph->TotalShedTuples();
  result.quarantined = sim.order_validator().quarantined();
  result.dropped_late = sim.order_validator().dropped();
  if (auto* iwp = dynamic_cast<IwpOperator*>(measured)) {
    result.late_absorbed = iwp->late_data_absorbed();
  }
  result.max_buffer_hwm = static_cast<uint64_t>(graph->MaxBufferHighWaterMark());
  {
    const FrontierTracker& frontier = *executor->frontier();
    result.frontier_violations = frontier.violations();
    result.frontier_lease_expiries = frontier.lease_expiries();
    result.frontier_revivals = frontier.revivals();
    result.frontier_quarantines = frontier.quarantines();
    result.frontier_transitions = frontier.transitions();
    result.frontier_quarantined_now =
        frontier.CountInState(SourceHealth::kQuarantined);
    result.frontier_degraded_now =
        frontier.num_participants() -
        frontier.CountInState(SourceHealth::kHealthy);
    result.frontier_bound = frontier.CheckpointFrontier();
  }
  if (auto* sharded = dynamic_cast<ShardedExecutor*>(executor.get())) {
    result.shards_used = static_cast<uint64_t>(sharded->num_shards());
    result.shard_hops = sharded->shard_hops();
    result.shard_epochs = sharded->epochs();
  }
  result.trace_hash = trace.hash();
  result.trace_events = trace.events();
  result.sink_digest = sink_digest->hash();
  if (graph->state_store() != nullptr) {
    result.storage = graph->state_store()->stats();
  }
  result.exec = executor->stats();

  if (tracer != nullptr) {
    std::ofstream out(config.trace_path);
    if (out.good()) {
      tracer->WriteChromeTrace(out);
    } else {
      DSMS_LOG(Error) << "cannot write trace to " << config.trace_path;
    }
  }
  return result;
}

void ScenarioResult::PublishTo(MetricsRegistry* registry,
                               const std::string& prefix) const {
  DSMS_CHECK(registry != nullptr);
  registry->SetGauge(prefix + ".latency.mean_ms", mean_latency_ms);
  registry->SetGauge(prefix + ".latency.p50_ms", p50_latency_ms);
  registry->SetGauge(prefix + ".latency.p99_ms", p99_latency_ms);
  registry->SetGauge(prefix + ".latency.max_ms", max_latency_ms);
  registry->SetCounter(prefix + ".tuples_delivered", tuples_delivered);
  registry->SetGauge(prefix + ".peak_queue_total",
                     static_cast<double>(peak_queue_total));
  registry->SetGauge(prefix + ".peak_queue_data",
                     static_cast<double>(peak_queue_data));
  registry->SetGauge(prefix + ".idle_fraction", idle_fraction);
  registry->SetCounter(prefix + ".blocked_intervals", blocked_intervals);
  registry->SetCounter(prefix + ".ets_generated", ets_generated);
  registry->SetCounter(prefix + ".punctuation_steps", punctuation_steps);
  registry->SetCounter(prefix + ".punctuation_eliminated",
                       punctuation_eliminated);
  registry->SetCounter(prefix + ".order_violations", order_violations);
  registry->SetCounter(prefix + ".buffer_order_violations",
                       buffer_order_violations);
  registry->SetCounter(prefix + ".fault_events", fault_events);
  registry->SetCounter(prefix + ".watchdog_ets", watchdog_ets);
  registry->SetGauge(prefix + ".degraded", degraded ? 1.0 : 0.0);
  registry->SetCounter(prefix + ".shed_tuples", shed_tuples);
  registry->SetCounter(prefix + ".quarantined", quarantined);
  registry->SetCounter(prefix + ".dropped_late", dropped_late);
  registry->SetCounter(prefix + ".late_absorbed", late_absorbed);
  registry->SetCounter(prefix + ".max_buffer_hwm", max_buffer_hwm);
  registry->SetCounter(prefix + ".frontier.violations", frontier_violations);
  registry->SetCounter(prefix + ".frontier.lease_expiries",
                       frontier_lease_expiries);
  registry->SetCounter(prefix + ".frontier.revivals", frontier_revivals);
  registry->SetCounter(prefix + ".frontier.quarantines",
                       frontier_quarantines);
  registry->SetCounter(prefix + ".frontier.transitions",
                       frontier_transitions);
  registry->SetGauge(prefix + ".frontier.quarantined_now",
                     static_cast<double>(frontier_quarantined_now));
  registry->SetGauge(prefix + ".frontier.degraded_now",
                     static_cast<double>(frontier_degraded_now));
  registry->SetGauge(prefix + ".frontier.bound",
                     static_cast<double>(frontier_bound));
  registry->SetGauge(prefix + ".exec.shard.shards",
                     static_cast<double>(shards_used));
  registry->SetCounter(prefix + ".exec.shard.hops", shard_hops);
  registry->SetCounter(prefix + ".exec.shard.epochs", shard_epochs);
  storage.PublishTo(registry, prefix + ".storage");
  exec.PublishTo(registry, prefix + ".exec");
}

}  // namespace dsms
