#ifndef DSMS_SIM_EVENT_QUEUE_H_
#define DSMS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/time.h"

namespace dsms {

/// A discrete-event calendar: actions scheduled at virtual times, fired in
/// time order (FIFO among equal times). The simulation driver pops due
/// events between executor steps.
class EventQueue {
 public:
  /// `action` runs when the event fires; it receives the *current* virtual
  /// time (which may be later than the scheduled time if the executor was
  /// busy — exactly like a busy DSMS input wrapper draining its socket
  /// late).
  using Action = std::function<void(Timestamp now)>;

  EventQueue() = default;

  void Schedule(Timestamp time, Action action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Scheduled time of the earliest event. Requires !empty().
  Timestamp NextTime() const;

  /// Fires all events with scheduled time <= now, in order. Returns the
  /// number fired. Actions may schedule new events (including due ones,
  /// which fire in the same call).
  int FireDue(Timestamp now);

 private:
  struct Event {
    Timestamp time;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace dsms

#endif  // DSMS_SIM_EVENT_QUEUE_H_
