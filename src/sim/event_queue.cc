#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace dsms {

void EventQueue::Schedule(Timestamp time, Action action) {
  DSMS_CHECK(action != nullptr);
  heap_.push(Event{time, next_seq_++, std::move(action)});
}

Timestamp EventQueue::NextTime() const {
  DSMS_CHECK(!heap_.empty());
  return heap_.top().time;
}

int EventQueue::FireDue(Timestamp now) {
  int fired = 0;
  while (!heap_.empty() && heap_.top().time <= now) {
    // Copy out before pop so the action may schedule further events.
    Action action = heap_.top().action;
    heap_.pop();
    action(now);
    ++fired;
  }
  return fired;
}

}  // namespace dsms
