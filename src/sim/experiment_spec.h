#ifndef DSMS_SIM_EXPERIMENT_SPEC_H_
#define DSMS_SIM_EXPERIMENT_SPEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "exec/ets_policy.h"
#include "exec/exec_stats.h"
#include "graph/plan_parser.h"
#include "net/net_fault_spec.h"
#include "recovery/wal.h"
#include "sim/arrival_process.h"
#include "sim/scenario.h"
#include "sim/simulation.h"
#include "storage/state_store.h"

namespace dsms {

/// A self-contained experiment description: a query plan (the statements of
/// graph/plan_parser.h) plus execution statements, all in one text file:
///
///   feed NAME process=poisson rate=50 [seed=N] [payload=seq]
///   feed NAME process=constant rate=10
///   feed NAME process=bursty burst_rate=500 idle_rate=1
///        burst_len=200ms idle_len=5s [seed=N]
///   feed NAME trace=/path/to/arrivals.txt
///   feed NAME ... payload=randint lo=0 hi=100 fields=2
///   heartbeat NAME period=100ms [phase=10ms]
///   fault NAME kind=stall|death|burst|disorder|skew|dup-punct|
///       regress-punct|flap
///       [start=60s] [duration=60s] [factor=4] [prob=0.25]
///       [magnitude=2s] [period=1s] [seed=N]
///   run [horizon=600s] [warmup=30s] [ets=on-demand|none]
///       [executor=dfs|round-robin] [quantum=8] [ets_min_interval=DUR]
///       [lease=DUR] [buffer_cap=N] [overload=grow|block|shed]
///       [violations=count|drop|quarantine]
///   batch size=N
///   state mem_budget=SIZE spill_dir=PATH [granularity=DUR]
///   trace path=/tmp/run.trace.json [capacity=262144]
///   wal dir=/path/to/waldir [sync=none|interval|every_frame]
///       [sync_interval_bytes=N] [segment_bytes=N]
///   checkpoint horizon=5s [keep=2]
///   crash at=30s
///   netfault kind=split|coalesce|slowloris|rst|half-open|reconnect-storm|
///       dup-hello|garbage
///       [at=1s] [seed=N] [count=3] [chunk=BYTES] [gap=1ms] [bytes=64]
///       [stale=1]
///
/// `feed`, `heartbeat` and `fault` reference `stream` operators declared in
/// the plan; `run` and `trace` may appear at most once (defaults apply
/// otherwise). `netfault` arms a wire-level fault (net/net_fault_spec.h)
/// against the feeder-server socket path; it is consumed by
/// `streamets_feed --chaos` and the chaos tests, not by the in-process
/// Simulation (which has no sockets to corrupt). `trace` records an execution trace of the run and writes it
/// to `path` as Chrome trace-event JSON (open in Perfetto). This is what
/// the `streamets_run` example binary executes.
struct FeedSpec {
  enum class Kind { kPoisson, kConstant, kBursty, kTrace };
  enum class Payload { kSequence, kRandInt };

  std::string source;
  Kind kind = Kind::kPoisson;
  double rate = 1.0;
  double burst_rate = 100.0;
  double idle_rate = 1.0;
  Duration burst_length = 200 * kMillisecond;
  Duration idle_length = 5 * kSecond;
  std::string trace_path;
  uint64_t seed = 1;
  Payload payload = Payload::kSequence;
  int64_t randint_lo = 0;
  int64_t randint_hi = 100;
  int payload_fields = 1;
};

struct HeartbeatSpec {
  std::string source;
  Duration period = kSecond;
  Duration phase = 0;
};

/// A fault armed against one named stream (see sim/fault_injector.h).
struct FaultTargetSpec {
  std::string source;
  FaultSpec spec;
};

struct RunSpec {
  Duration horizon = 600 * kSecond;
  Duration warmup = 0;
  EtsMode ets = EtsMode::kOnDemand;
  ExecutorKind executor = ExecutorKind::kDfs;
  int quantum = 8;
  Duration ets_min_interval = 0;
  /// Robustness knobs; defaults leave the engine in its fault-intolerant
  /// (but byte-identical to seed) configuration.
  ///
  /// `lease=DUR` is the frontier lease duration (source-liveness horizon);
  /// `watchdog=DUR` still parses as a deprecated alias for one release and
  /// logs a warning. When both appear, lease wins.
  Duration lease = 0;
  Duration watchdog = 0;  // DEPRECATED alias of lease
  size_t buffer_cap = 0;
  OverloadPolicy overload = OverloadPolicy::kGrow;
  ViolationPolicy violations = ViolationPolicy::kCount;
  /// Columnar batch size (`batch size=N` statement); 0 = scalar execution.
  size_t batch = 0;
  /// Worker shards (`run shards=N`, DFS only); 1 = classic single-shard
  /// execution. `mode=deterministic|parallel` picks the shard discipline
  /// (see ShardMode; deterministic is byte-identical to shards=1).
  int shards = 1;
  ShardMode shard_mode = ShardMode::kDeterministic;
};

/// Spillable state store configuration (`state` statement; see
/// docs/state_store.md):
///
///   state mem_budget=SIZE spill_dir=PATH [granularity=DUR]
///
/// SIZE accepts a plain byte count or a k/m/g suffix (e.g. 64k, 16m).
/// Window/join state beyond `mem_budget` hot bytes spills to block files
/// under `spill_dir`; `granularity` is the time-bucket width of state
/// blocks. Disk-overload behaviour follows the run statement's `overload=`
/// policy. Without this statement all state stays in memory, unbudgeted.
struct StorageSpec {
  bool enabled = false;
  uint64_t mem_budget = 0;
  std::string spill_dir;
  Duration granularity = kSecond;
};

/// Execution-trace output of a run (`trace` statement); empty path = off.
struct TraceSpec {
  std::string path;
  size_t capacity = 1 << 18;
};

/// Crash-recovery configuration (consumed by examples/streamets_serve; the
/// in-process Simulation has no crash to recover from):
///
///   wal dir=PATH [sync=none|interval|every_frame]
///       [sync_interval_bytes=N] [segment_bytes=N]
///   checkpoint horizon=DUR [keep=N]          (requires wal)
///   crash at=DUR                             (chaos: abort mid-run)
///
/// With none of these present the server behaves byte-identically to the
/// pre-recovery engine (see docs/recovery.md).
struct RecoverySpec {
  bool wal = false;
  std::string dir;
  WalSyncPolicy sync = WalSyncPolicy::kNone;
  uint64_t sync_interval_bytes = 64 * 1024;
  uint64_t segment_bytes = 4 * 1024 * 1024;
  bool checkpoint = false;
  Duration checkpoint_horizon = 0;
  int keep = 2;
  /// Virtual time at which the server aborts itself; 0 = never.
  Timestamp crash_at = 0;
};

struct Experiment {
  ParsedPlan plan;
  std::vector<FeedSpec> feeds;
  std::vector<HeartbeatSpec> heartbeats;
  std::vector<FaultTargetSpec> faults;
  RunSpec run;
  TraceSpec trace;
  RecoverySpec recovery;
  StorageSpec storage;
  /// Wire-level faults armed against the socket path (`netfault`
  /// statements); applied by the chaos feeder/proxy, ignored by the
  /// in-process simulation.
  std::vector<NetFaultSpec> netfaults;
};

/// Parses a combined plan + experiment text. Feed/heartbeat source names
/// are resolved against the plan (must name `stream` statements).
Result<Experiment> ParseExperiment(std::string_view text);

/// As above, but with `require_feeds=false` an experiment without `feed`
/// statements is accepted. A network server (examples/streamets_serve)
/// takes its input from live connections, not simulated feeds, so a
/// plan+run file with no feed section is a valid configuration for it.
Result<Experiment> ParseExperiment(std::string_view text, bool require_feeds);

/// Payload generator for one feed, identical to what RunExperiment installs.
/// Exposed so the network load generator (net/feed_schedule.h) can replay
/// the exact tuple contents a Simulation of the same spec would produce.
Simulation::PayloadFn MakeFeedPayload(const FeedSpec& feed);

/// Arrival process for one feed, identical to what RunExperiment installs.
Result<std::unique_ptr<ArrivalProcess>> MakeArrivalProcess(
    const FeedSpec& feed);

/// Seed of the per-feed external-timestamp jitter RNG. The simulation and
/// the network feeder must derive it identically or externally stamped
/// replays diverge.
inline uint64_t FeedJitterSeed(const FeedSpec& feed) {
  return feed.seed * 31 + 7;
}

/// Per-sink results of an experiment run.
struct SinkReport {
  std::string name;
  uint64_t tuples = 0;
  double mean_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

struct ExperimentReport {
  Timestamp end_time = 0;
  std::vector<SinkReport> sinks;
  int64_t peak_queue_total = 0;
  uint64_t ets_generated = 0;
  /// Robustness: fault activity and which defenses absorbed it.
  uint64_t fault_events = 0;
  uint64_t watchdog_ets = 0;
  bool degraded = false;
  uint64_t shed_tuples = 0;
  uint64_t quarantined = 0;
  uint64_t dropped_late = 0;
  uint64_t buffer_order_violations = 0;
  uint64_t max_buffer_hwm = 0;
  /// Sharded execution (run shards=N > 1; all zero otherwise).
  uint64_t shards_used = 0;
  uint64_t shard_hops = 0;
  uint64_t shard_epochs = 0;
  /// State-store activity (zeros when no `state` statement configured one).
  StorageStats storage;
  ExecStats exec;
  /// Per-operator counters (metrics/stats_report.h), pre-rendered.
  std::string operator_stats;
  /// Degraded-mode summary (RobustnessReportString); empty when the run
  /// stayed on the happy path.
  std::string robustness;

  /// Publishes every field into `registry` under "experiment." /
  /// "sink.<name>." names — the unified snapshot path for rendering
  /// (MetricsRegistry::PrintTable / PrintJson). Fields stay the accessors.
  void PublishTo(MetricsRegistry* registry) const;
};

/// Builds the executor and simulation described by `experiment`, runs it,
/// and collects the report. The experiment's graph is consumed (buffers
/// retain final state, usable for further inspection).
Result<ExperimentReport> RunExperiment(Experiment* experiment);

}  // namespace dsms

#endif  // DSMS_SIM_EXPERIMENT_SPEC_H_
