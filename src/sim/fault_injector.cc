#include "sim/fault_injector.h"

#include <string>

#include "common/strings.h"

namespace dsms {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDeath:
      return "death";
    case FaultKind::kBurst:
      return "burst";
    case FaultKind::kDisorder:
      return "disorder";
    case FaultKind::kSkewViolation:
      return "skew";
    case FaultKind::kDuplicatePunct:
      return "dup-punct";
    case FaultKind::kRegressingPunct:
      return "regress-punct";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kDiskStall:
      return "disk-stall";
    case FaultKind::kDiskFail:
      return "disk-fail";
  }
  return "unknown";
}

Result<FaultKind> ParseFaultKind(const std::string& text) {
  if (text == "none") return FaultKind::kNone;
  if (text == "stall") return FaultKind::kStall;
  if (text == "death") return FaultKind::kDeath;
  if (text == "burst") return FaultKind::kBurst;
  if (text == "disorder") return FaultKind::kDisorder;
  if (text == "skew") return FaultKind::kSkewViolation;
  if (text == "dup-punct") return FaultKind::kDuplicatePunct;
  if (text == "regress-punct") return FaultKind::kRegressingPunct;
  if (text == "flap") return FaultKind::kFlap;
  if (text == "disk-stall" || text == "disk_stall") {
    return FaultKind::kDiskStall;
  }
  if (text == "disk-fail" || text == "disk_fail") return FaultKind::kDiskFail;
  return InvalidArgumentError(
      StrFormat("unknown fault kind '%s' (expected none|stall|death|burst|"
                "disorder|skew|dup-punct|regress-punct|flap|disk-stall|"
                "disk-fail)",
                text.c_str()));
}

FaultInjector::FaultInjector(const FaultSpec& spec, uint64_t run_seed)
    : spec_(spec), rng_(spec.seed ^ (run_seed * 0x9e3779b97f4a7c15ULL),
                        /*stream=*/0xfa17ULL) {}

bool FaultInjector::InWindow(Timestamp now) const {
  if (!spec_.enabled()) return false;
  if (now < spec_.start) return false;
  if (spec_.kind == FaultKind::kDeath) return true;  // Dead is dead.
  return now < spec_.start + spec_.duration;
}

int FaultInjector::ArrivalMultiplicity(Timestamp now) {
  if (!InWindow(now)) return 1;
  switch (spec_.kind) {
    case FaultKind::kStall:
    case FaultKind::kDeath:
      ++stats_.suppressed_arrivals;
      return 0;
    case FaultKind::kBurst:
      stats_.duplicated_arrivals +=
          spec_.burst_factor > 1 ? spec_.burst_factor - 1 : 0;
      return spec_.burst_factor > 1 ? spec_.burst_factor : 1;
    case FaultKind::kFlap: {
      // Dead/alive phases of punct_period each, dead first, deterministic
      // from the phase parity alone: suppressing only during dead phases
      // makes the source repeatedly die and revive inside the window.
      const Duration period = spec_.punct_period > 0 ? spec_.punct_period : 1;
      const bool dead = ((now - spec_.start) / period) % 2 == 0;
      if (dead) {
        ++stats_.suppressed_arrivals;
        return 0;
      }
      return 1;
    }
    default:
      return 1;
  }
}

Timestamp FaultInjector::PerturbTimestamp(Timestamp app_ts, Timestamp now,
                                          Duration skew_bound, bool* faulty) {
  *faulty = false;
  if (!InWindow(now)) return app_ts;
  switch (spec_.kind) {
    case FaultKind::kDisorder:
      if (rng_.NextBernoulli(spec_.probability)) {
        ++stats_.perturbed_timestamps;
        *faulty = true;
        return app_ts - spec_.magnitude;
      }
      return app_ts;
    case FaultKind::kSkewViolation:
      if (rng_.NextBernoulli(spec_.probability)) {
        ++stats_.perturbed_timestamps;
        *faulty = true;
        // Beyond the declared δ: the tuple pretends to be older than the
        // skew contract allows, so bounds derived from δ were wrong.
        return now - skew_bound - spec_.magnitude;
      }
      return app_ts;
    default:
      return app_ts;
  }
}

}  // namespace dsms
