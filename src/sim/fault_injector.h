#ifndef DSMS_SIM_FAULT_INJECTOR_H_
#define DSMS_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "common/time.h"

namespace dsms {

/// Faults the simulation can inject at a source's input wrapper. Each models
/// a concrete production failure of a stream producer or its network path;
/// DESIGN.md ("Failure model") maps every kind to the runtime defense that
/// is expected to absorb it.
enum class FaultKind {
  kNone = 0,
  /// Producer stops sending for a window, then resumes (network partition,
  /// GC pause upstream). Arrivals inside the window are suppressed.
  kStall = 1,
  /// Producer stops forever at `start` (process death).
  kDeath = 2,
  /// Producer floods: every arrival in the window is delivered
  /// `burst_factor` times (replay storm, catch-up after a partition).
  kBurst = 3,
  /// Timestamp disorder: with probability `probability`, an arrival in the
  /// window carries an application timestamp `magnitude` in the past,
  /// violating the stream's monotonicity contract.
  kDisorder = 4,
  /// Skew violation: with probability `probability`, an external arrival's
  /// app timestamp lags the wall clock by more than the declared δ
  /// (by `magnitude`), breaking the bound the ETS formula relies on.
  kSkewViolation = 5,
  /// Broken heartbeat logic restating old bounds: a punctuation equal to
  /// the stream's current promise is injected every `punct_period` in the
  /// window (harmless but wasteful — the engine must not amplify it).
  kDuplicatePunct = 6,
  /// Broken heartbeat logic moving backwards: a punctuation `magnitude`
  /// BELOW the stream's current promise every `punct_period` in the window
  /// (an order violation downstream must catch or tolerate).
  kRegressingPunct = 7,
  /// Flapping producer: inside the window the source alternates dead and
  /// alive phases of `punct_period` each (dead first), repeatedly dying and
  /// reviving — the pattern that must be absorbed by the frontier tracker's
  /// quarantine/re-admission lifecycle without ETS regression.
  kFlap = 8,
  /// Degraded disk under the state store (storage/): every spilled-block
  /// write and load inside the window costs an extra `magnitude` of
  /// virtual time, charged to the step that triggered the I/O. Routed to
  /// StateStore::ArmFault, not to a source wrapper.
  kDiskStall = 9,
  /// Failing disk under the state store: spill writes inside the window
  /// fail with probability `probability`; the store sheds the victim
  /// block's rows (OverloadPolicy::kShedOldest) or keeps it hot over
  /// budget (any other policy). Loads stay fail-stop (CRC-guarded).
  kDiskFail = 10,
};

const char* FaultKindToString(FaultKind kind);

/// Parses the spelling used by experiment plans:
/// none|stall|death|burst|disorder|skew|dup-punct|regress-punct|flap|
/// disk-stall|disk-fail (underscore aliases accepted for the disk kinds).
Result<FaultKind> ParseFaultKind(const std::string& text);

/// True for kinds that target the storage tier instead of a source's input
/// wrapper (Simulation routes these to the graph's StateStore).
inline bool IsDiskFault(FaultKind kind) {
  return kind == FaultKind::kDiskStall || kind == FaultKind::kDiskFail;
}

/// One fault, aimed at one source of the scenario graph. All fields have
/// usable defaults so plan text only names what it changes. Deterministic:
/// the injector derives its RNG from (seed, scenario seed) only.
struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// Index of the target source in the scenario's source list.
  int source = 1;
  /// Fault window [start, start + duration) in virtual time. kDeath ignores
  /// duration (dead is dead).
  Timestamp start = 60 * kSecond;
  Duration duration = 60 * kSecond;
  /// kBurst: copies delivered per arrival inside the window.
  int burst_factor = 4;
  /// kDisorder/kSkewViolation: per-arrival perturbation probability.
  double probability = 0.25;
  /// kDisorder/kSkewViolation/kRegressingPunct: how far (in virtual time)
  /// the timestamp is pushed into the past.
  Duration magnitude = 2 * kSecond;
  /// kDuplicatePunct/kRegressingPunct: injection period inside the window.
  /// kFlap: length of each dead/alive phase.
  Duration punct_period = kSecond;
  /// Mixed with the scenario seed; two runs with equal seeds inject
  /// identically.
  uint64_t seed = 1;

  bool enabled() const { return kind != FaultKind::kNone; }
};

/// What a FaultInjector actually did during a run (surfaced in
/// ScenarioResult and StatsReport so a fault is visible, not silent).
struct FaultStats {
  uint64_t suppressed_arrivals = 0;   // kStall / kDeath
  uint64_t duplicated_arrivals = 0;   // kBurst (extra copies)
  uint64_t perturbed_timestamps = 0;  // kDisorder / kSkewViolation
  uint64_t bogus_punctuations = 0;    // kDuplicatePunct / kRegressingPunct

  uint64_t total() const {
    return suppressed_arrivals + duplicated_arrivals + perturbed_timestamps +
           bogus_punctuations;
  }
};

/// Deterministic per-source fault driver. The Simulation consults it at
/// every arrival delivery (and from a periodic event for the punctuation
/// faults); the injector decides suppress/duplicate/perturb and keeps its
/// own stats. Composable: each injector owns one FaultSpec, one per source.
class FaultInjector {
 public:
  FaultInjector(const FaultSpec& spec, uint64_t run_seed);

  const FaultSpec& spec() const { return spec_; }
  const FaultStats& stats() const { return stats_; }

  /// True while `now` lies inside the fault window (kDeath: forever past
  /// start).
  bool InWindow(Timestamp now) const;

  /// How many copies of the arrival at `now` to deliver: 0 suppresses
  /// (stall/death), burst_factor floods, 1 is a normal delivery. Updates
  /// stats.
  int ArrivalMultiplicity(Timestamp now);

  /// Possibly perturbs the application timestamp of an arrival at `now`.
  /// Returns the timestamp to use and sets `*faulty` when it must bypass
  /// the source's monotonicity checks (IngestFaulty). `app_ts` is the
  /// honest timestamp the wrapper would have used; `skew_bound` the
  /// stream's declared δ.
  Timestamp PerturbTimestamp(Timestamp app_ts, Timestamp now,
                             Duration skew_bound, bool* faulty);

  /// True when this fault injects bogus punctuation on a period (the
  /// Simulation schedules the periodic event).
  bool InjectsPunctuation() const {
    return spec_.kind == FaultKind::kDuplicatePunct ||
           spec_.kind == FaultKind::kRegressingPunct;
  }

  void CountBogusPunctuation() { ++stats_.bogus_punctuations; }

 private:
  FaultSpec spec_;
  Pcg32 rng_;
  FaultStats stats_;
};

}  // namespace dsms

#endif  // DSMS_SIM_FAULT_INJECTOR_H_
