#include "sim/simulation.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/tuple.h"
#include "operators/sink.h"

namespace dsms {

Simulation::Simulation(QueryGraph* graph, Executor* executor,
                       VirtualClock* clock)
    : graph_(graph), executor_(executor), clock_(clock) {
  DSMS_CHECK(graph != nullptr);
  DSMS_CHECK(executor != nullptr);
  DSMS_CHECK(clock != nullptr);
  graph_->ReplaceBufferListeners(&queue_tracker_);
  graph_->AddBufferListener(&order_validator_);
}

Simulation::~Simulation() { graph_->ReplaceBufferListeners(nullptr); }

Simulation::PayloadFn Simulation::SequencePayload() {
  return [](uint64_t seq, Timestamp now) {
    (void)now;
    return std::vector<Value>{Value(static_cast<int64_t>(seq))};
  };
}

void Simulation::AddFeed(Source* source,
                         std::unique_ptr<ArrivalProcess> process,
                         PayloadFn payload, uint64_t jitter_seed) {
  DSMS_CHECK(source != nullptr);
  DSMS_CHECK(process != nullptr);
  auto feed = std::make_unique<Feed>();
  feed->source = source;
  feed->process = std::move(process);
  feed->payload = std::move(payload);
  feed->jitter_rng = Pcg32(jitter_seed, /*stream=*/0x177e7);
  Feed* raw = feed.get();
  feeds_.push_back(std::move(feed));
  ScheduleNextArrival(raw, clock_->now());
}

void Simulation::ScheduleNextArrival(Feed* feed, Timestamp after) {
  Duration gap = feed->process->NextGap();
  if (gap < 0) return;  // Trace exhausted.
  events_.Schedule(after + gap,
                   [this, feed](Timestamp now) { DeliverArrival(feed, now); });
}

void Simulation::DeliverArrival(Feed* feed, Timestamp now) {
  Source* source = feed->source;
  std::vector<Value> values = feed->payload(feed->seq, now);
  if (source->timestamp_kind() == TimestampKind::kExternal) {
    Duration skew = source->skew_bound();
    Duration jitter =
        skew > 0 ? feed->jitter_rng.NextInt(0, skew - 1) : 0;
    Timestamp app_ts = now - jitter;
    // Application timestamps are nondecreasing by assumption, and can never
    // fall below what the stream has already promised (tuples may also have
    // been ingested out-of-band before the feed started).
    app_ts = std::max(app_ts, feed->last_app_ts);
    if (source->promised_bound() != kMinTimestamp) {
      app_ts = std::max(app_ts, source->promised_bound());
    }
    feed->last_app_ts = app_ts;
    source->IngestExternal(app_ts, std::move(values), now);
  } else {
    source->Ingest(std::move(values), now);
  }
  ++feed->seq;
  // The next gap counts from the scheduled cadence; using `now` (delivery)
  // keeps rates honest even when delivery lags.
  ScheduleNextArrival(feed, now);
}

void Simulation::AddHeartbeat(Source* source, Duration period,
                              Duration phase) {
  DSMS_CHECK(source != nullptr);
  DSMS_CHECK_GT(period, 0);
  // Self-rescheduling event: the callback re-schedules itself through a
  // pointer to its Simulation-owned storage (a shared_ptr self-capture
  // would be a reference cycle and leak). For external streams the
  // heartbeat must be conservative: it can only promise now − δ
  // (Section 5).
  auto* tick = heartbeats_
                   .emplace_back(
                       std::make_unique<std::function<void(Timestamp)>>())
                   .get();
  *tick = [this, source, period, tick](Timestamp now) {
    Timestamp bound = source->timestamp_kind() == TimestampKind::kExternal
                          ? now - source->skew_bound()
                          : now;
    source->InjectPunctuation(bound);
    events_.Schedule(now + period, *tick);
  };
  events_.Schedule(clock_->now() + phase + period, *tick);
}

void Simulation::ResetSteadyStateMetrics() {
  for (Sink* sink : graph_->sinks()) sink->mutable_latency().Reset();
  queue_tracker_.ResetPeak();
}

void Simulation::Run(Timestamp end_time, Timestamp warmup) {
  while (clock_->now() < end_time) {
    events_delivered_ += events_.FireDue(clock_->now());
    if (!warmup_applied_ && warmup > 0 && clock_->now() >= warmup) {
      warmup_applied_ = true;
      ResetSteadyStateMetrics();
    }
    if (executor_->RunStep()) continue;
    if (events_.empty()) break;
    Timestamp next = events_.NextTime();
    if (next >= end_time) break;
    // An idle probe (failed ETS sweep) may still have advanced the clock
    // past the event; in that case the next FireDue delivers it.
    if (next > clock_->now()) clock_->AdvanceTo(next);
  }
  if (clock_->now() < end_time) clock_->AdvanceTo(end_time);
}

}  // namespace dsms
