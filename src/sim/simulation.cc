#include "sim/simulation.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/tuple.h"
#include "obs/trace_wiring.h"
#include "operators/sink.h"
#include "storage/state_store.h"

namespace dsms {

Simulation::Simulation(QueryGraph* graph, Executor* executor,
                       VirtualClock* clock)
    : graph_(graph), executor_(executor), clock_(clock) {
  DSMS_CHECK(graph != nullptr);
  DSMS_CHECK(executor != nullptr);
  DSMS_CHECK(clock != nullptr);
  graph_->ReplaceBufferListeners(&queue_tracker_);
  graph_->AddBufferListener(&order_validator_);
}

Simulation::~Simulation() { graph_->ReplaceBufferListeners(nullptr); }

void Simulation::AttachTracer(Tracer* tracer) {
  DSMS_CHECK(tracer != nullptr);
  DSMS_CHECK(tracer_ == nullptr);
  tracer_ = tracer;
  AnnotateTracks(*graph_, tracer);
  occupancy_tracer_ =
      std::make_unique<BufferOccupancyTracer>(tracer, graph_->num_buffers());
  graph_->AddBufferListener(occupancy_tracer_.get());
}

Simulation::PayloadFn Simulation::SequencePayload() {
  return [](uint64_t seq, Timestamp now) {
    (void)now;
    return std::vector<Value>{Value(static_cast<int64_t>(seq))};
  };
}

void Simulation::AddFeed(Source* source,
                         std::unique_ptr<ArrivalProcess> process,
                         PayloadFn payload, uint64_t jitter_seed) {
  DSMS_CHECK(source != nullptr);
  DSMS_CHECK(process != nullptr);
  auto feed = std::make_unique<Feed>();
  feed->source = source;
  feed->process = std::move(process);
  feed->payload = std::move(payload);
  feed->jitter_rng = Pcg32(jitter_seed, /*stream=*/0x177e7);
  Feed* raw = feed.get();
  feeds_.push_back(std::move(feed));
  ScheduleNextArrival(raw, clock_->now());
}

void Simulation::ScheduleNextArrival(Feed* feed, Timestamp after) {
  Duration gap = feed->process->NextGap();
  if (gap < 0) return;  // Trace exhausted.
  events_.Schedule(after + gap,
                   [this, feed](Timestamp now) { DeliverArrival(feed, now); });
}

void Simulation::DeliverArrival(Feed* feed, Timestamp now) {
  Source* source = feed->source;
  // Producer-side backpressure (OverloadPolicy::kBlockSource): when any arc
  // downstream of the source is at capacity the wrapper holds the arrival
  // and retries shortly — the discrete-event analogue of a producer blocked
  // on a full socket. The check walks the whole downstream path because
  // tuples already past the first hop keep draining toward the full arc.
  // No tuple is lost and no further arrival is scheduled until this one
  // lands, so the source's offered rate genuinely drops.
  // (Bounds are installed uniformly by SetBufferBound, so the source's own
  // arc is a cheap gate for whether the downstream walk can matter at all.)
  if (source->output()->overload_policy() == OverloadPolicy::kBlockSource &&
      source->output()->capacity_limit() > 0 &&
      graph_->DownstreamBlocked(source)) {
    events_.Schedule(now + kMillisecond, [this, feed](Timestamp retry_now) {
      DeliverArrival(feed, retry_now);
    });
    return;
  }
  int copies = 1;
  if (feed->fault != nullptr) copies = feed->fault->ArrivalMultiplicity(now);
  if (tracer_ != nullptr && copies != 1) {
    tracer_->RecordFault(source->id(),
                         static_cast<uint8_t>(feed->fault->spec().kind),
                         copies);
  }
  for (int c = 0; c < copies; ++c) IngestOne(feed, now);
  // The next gap counts from the scheduled cadence; using `now` (delivery)
  // keeps rates honest even when delivery lags.
  ScheduleNextArrival(feed, now);
}

void Simulation::IngestOne(Feed* feed, Timestamp now) {
  Source* source = feed->source;
  std::vector<Value> values = feed->payload(feed->seq, now);
  ++feed->seq;
  if (source->timestamp_kind() == TimestampKind::kExternal) {
    Duration skew = source->skew_bound();
    Duration jitter =
        skew > 0 ? feed->jitter_rng.NextInt(0, skew - 1) : 0;
    Timestamp app_ts = now - jitter;
    // Application timestamps are nondecreasing by assumption, and can never
    // fall below what the stream has already promised (tuples may also have
    // been ingested out-of-band before the feed started).
    app_ts = std::max(app_ts, feed->last_app_ts);
    if (source->promised_bound() != kMinTimestamp) {
      app_ts = std::max(app_ts, source->promised_bound());
    }
    if (feed->fault != nullptr) {
      bool faulty = false;
      Timestamp perturbed =
          feed->fault->PerturbTimestamp(app_ts, now, skew, &faulty);
      if (faulty) {
        // The broken producer's timestamp bypasses the wrapper's clamp and
        // the source's monotonicity checks; last_app_ts keeps tracking the
        // honest stream so recovery after the fault window is seamless.
        feed->last_app_ts = app_ts;
        if (tracer_ != nullptr) {
          tracer_->RecordFault(source->id(),
                               static_cast<uint8_t>(feed->fault->spec().kind),
                               perturbed);
        }
        source->IngestFaulty(perturbed, std::move(values), now);
        return;
      }
    }
    feed->last_app_ts = app_ts;
    source->IngestExternal(app_ts, std::move(values), now);
  } else {
    if (feed->fault != nullptr) {
      bool faulty = false;
      Timestamp perturbed =
          feed->fault->PerturbTimestamp(now, now, /*skew_bound=*/0, &faulty);
      if (faulty) {
        if (tracer_ != nullptr) {
          tracer_->RecordFault(source->id(),
                               static_cast<uint8_t>(feed->fault->spec().kind),
                               perturbed);
        }
        source->IngestFaulty(perturbed, std::move(values), now);
        return;
      }
    }
    source->Ingest(std::move(values), now);
  }
}

void Simulation::InjectFault(Source* source, const FaultSpec& spec,
                             uint64_t run_seed) {
  DSMS_CHECK(source != nullptr);
  if (IsDiskFault(spec.kind)) {
    // Disk faults perturb the state store's spill/load path, not a source's
    // arrival process; `source` only names the fault for reporting.
    StateStore* store = graph_->state_store();
    DSMS_CHECK(store != nullptr);  // disk faults need a configured store
    store->ArmFault(spec, run_seed);
    return;
  }
  auto injector = std::make_unique<FaultInjector>(spec, run_seed);
  FaultInjector* raw = injector.get();
  faults_[source] = std::move(injector);
  for (auto& feed : feeds_) {
    if (feed->source == source) feed->fault = raw;
  }
  if (!spec.enabled() || !raw->InjectsPunctuation()) return;
  // Punctuation faults are their own periodic event (the broken heartbeat
  // logic they model runs besides the data path). Same self-rescheduling
  // shape as AddHeartbeat.
  auto* tick = heartbeats_
                   .emplace_back(
                       std::make_unique<std::function<void(Timestamp)>>())
                   .get();
  *tick = [this, source, raw, tick](Timestamp now) {
    const FaultSpec& fs = raw->spec();
    if (raw->InWindow(now) && source->promised_bound() != kMinTimestamp) {
      Timestamp bound = source->promised_bound();
      if (fs.kind == FaultKind::kRegressingPunct) bound -= fs.magnitude;
      if (tracer_ != nullptr) {
        tracer_->RecordFault(source->id(), static_cast<uint8_t>(fs.kind),
                             bound);
      }
      source->InjectFaultyPunctuation(bound);
      raw->CountBogusPunctuation();
    }
    if (now + fs.punct_period < fs.start + fs.duration) {
      events_.Schedule(now + fs.punct_period, *tick);
    }
  };
  events_.Schedule(spec.start, *tick);
}

const FaultStats* Simulation::fault_stats(const Source* source) const {
  auto it = faults_.find(source);
  return it == faults_.end() ? nullptr : &it->second->stats();
}

uint64_t Simulation::fault_events() const {
  uint64_t total = 0;
  for (const auto& entry : faults_) total += entry.second->stats().total();
  if (graph_->state_store() != nullptr) {
    total += graph_->state_store()->fault_events();
  }
  return total;
}

void Simulation::AddHeartbeat(Source* source, Duration period,
                              Duration phase) {
  DSMS_CHECK(source != nullptr);
  DSMS_CHECK_GT(period, 0);
  // Self-rescheduling event: the callback re-schedules itself through a
  // pointer to its Simulation-owned storage (a shared_ptr self-capture
  // would be a reference cycle and leak). For external streams the
  // heartbeat must be conservative: it can only promise now − δ
  // (Section 5).
  auto* tick = heartbeats_
                   .emplace_back(
                       std::make_unique<std::function<void(Timestamp)>>())
                   .get();
  *tick = [this, source, period, tick](Timestamp now) {
    Timestamp bound = source->timestamp_kind() == TimestampKind::kExternal
                          ? now - source->skew_bound()
                          : now;
    source->InjectPunctuation(bound);
    events_.Schedule(now + period, *tick);
  };
  events_.Schedule(clock_->now() + phase + period, *tick);
}

void Simulation::ResetSteadyStateMetrics() {
  for (Sink* sink : graph_->sinks()) sink->mutable_latency().Reset();
  queue_tracker_.ResetPeak();
}

void Simulation::Run(Timestamp end_time, Timestamp warmup) {
  while (clock_->now() < end_time) {
    events_delivered_ += events_.FireDue(clock_->now());
    if (!warmup_applied_ && warmup > 0 && clock_->now() >= warmup) {
      warmup_applied_ = true;
      ResetSteadyStateMetrics();
    }
    if (executor_->RunStep()) continue;
    if (events_.empty()) break;
    Timestamp next = events_.NextTime();
    if (next >= end_time) break;
    // An idle probe (failed ETS sweep) may still have advanced the clock
    // past the event; in that case the next FireDue delivers it.
    if (next > clock_->now()) clock_->AdvanceTo(next);
  }
  if (clock_->now() < end_time) clock_->AdvanceTo(end_time);
  // With lease expiry armed (frontier tracker or legacy watchdog), give it
  // one shot at the horizon: a source whose events dried up mid-run (death
  // fault) only crosses its lease once the clock has jumped here, and
  // without this drain its idle-waiting consumers would hold their buffered
  // tuples forever. Leases off (the default) leave the original behaviour
  // untouched.
  if (executor_->liveness_enabled()) {
    executor_->RunUntilIdle();
  }
}

}  // namespace dsms
