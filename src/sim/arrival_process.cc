#include "sim/arrival_process.h"

#include <utility>
#include <vector>

#include "common/check.h"

namespace dsms {

PoissonProcess::PoissonProcess(double rate_per_second, uint64_t seed)
    : rate_(rate_per_second), rng_(seed, /*stream=*/0xa771) {
  DSMS_CHECK_GT(rate_per_second, 0.0);
}

Duration PoissonProcess::NextGap() { return rng_.NextExponentialGap(rate_); }

ConstantRateProcess::ConstantRateProcess(double rate_per_second) {
  DSMS_CHECK_GT(rate_per_second, 0.0);
  gap_ = SecondsToDuration(1.0 / rate_per_second);
  if (gap_ < 1) gap_ = 1;
}

Duration ConstantRateProcess::NextGap() { return gap_; }

BurstyProcess::BurstyProcess(double burst_rate, double idle_rate,
                             Duration mean_burst_length,
                             Duration mean_idle_length, uint64_t seed)
    : rng_(seed, /*stream=*/0xb0457) {
  DSMS_CHECK_GT(burst_rate, 0.0);
  DSMS_CHECK_GT(idle_rate, 0.0);
  DSMS_CHECK_GT(mean_burst_length, 0);
  DSMS_CHECK_GT(mean_idle_length, 0);
  rate_[0] = burst_rate;
  rate_[1] = idle_rate;
  mean_dwell_[0] = mean_burst_length;
  mean_dwell_[1] = mean_idle_length;
  time_left_in_state_ = rng_.NextExponentialGap(
      1.0 / DurationToSeconds(mean_dwell_[0]));
}

Duration BurstyProcess::NextGap() {
  Duration total = 0;
  for (;;) {
    Duration gap = rng_.NextExponentialGap(rate_[state_]);
    if (gap <= time_left_in_state_) {
      time_left_in_state_ -= gap;
      return total + gap;
    }
    // The state flips before the next arrival in this state would occur;
    // consume the remaining dwell and resample in the new state.
    total += time_left_in_state_;
    state_ = 1 - state_;
    time_left_in_state_ =
        rng_.NextExponentialGap(1.0 / DurationToSeconds(mean_dwell_[state_]));
  }
}

TraceProcess::TraceProcess(std::vector<Timestamp> arrival_times)
    : times_(std::move(arrival_times)) {
  Timestamp prev = -1;
  for (Timestamp t : times_) {
    DSMS_CHECK_GT(t, prev);
    prev = t;
  }
}

Duration TraceProcess::NextGap() {
  if (index_ >= times_.size()) return -1;
  Timestamp t = times_[index_++];
  Duration gap = t - previous_;
  previous_ = t;
  return gap > 0 ? gap : 1;
}

}  // namespace dsms
