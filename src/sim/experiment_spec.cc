#include "sim/experiment_spec.h"

#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/value.h"
#include "exec/dfs_executor.h"
#include "exec/greedy_memory_executor.h"
#include "exec/round_robin_executor.h"
#include "exec/sharded_executor.h"
#include "metrics/stats_report.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "sim/arrival_process.h"
#include "sim/simulation.h"
#include "sim/trace_loader.h"

namespace dsms {
namespace {

/// A tokenized experiment statement: `type key=value ...` with an optional
/// leading name token (feed/heartbeat have one; run does not).
struct ExpStatement {
  int line = 0;
  std::string type;
  std::string name;
  std::map<std::string, std::string> args;
};

Status ParseExpStatement(int line_number, std::string_view line,
                         bool has_name, ExpStatement* out) {
  std::vector<std::string> tokens;
  for (const std::string& piece : StrSplit(line, ' ')) {
    std::string_view token = StripWhitespace(piece);
    if (!token.empty()) tokens.emplace_back(token);
  }
  size_t arg_start = has_name ? 2 : 1;
  if (tokens.size() < arg_start) {
    return InvalidArgumentError(
        StrFormat("line %d: malformed statement", line_number));
  }
  out->line = line_number;
  out->type = tokens[0];
  if (has_name) out->name = tokens[1];
  for (size_t i = arg_start; i < tokens.size(); ++i) {
    size_t eq = tokens[i].find('=');
    if (eq == std::string::npos || eq == 0) {
      return InvalidArgumentError(StrFormat(
          "line %d: malformed argument '%s'", line_number, tokens[i].c_str()));
    }
    out->args[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
  }
  return OkStatus();
}

Status GetArgDouble(const ExpStatement& s, const std::string& key,
                    double default_value, bool required, double* out) {
  auto it = s.args.find(key);
  if (it == s.args.end()) {
    if (required) {
      return InvalidArgumentError(
          StrFormat("line %d: missing %s=", s.line, key.c_str()));
    }
    *out = default_value;
    return OkStatus();
  }
  if (!ParseDouble(it->second, out)) {
    return InvalidArgumentError(
        StrFormat("line %d: bad number for %s", s.line, key.c_str()));
  }
  return OkStatus();
}

Status GetArgInt(const ExpStatement& s, const std::string& key,
                 int64_t default_value, int64_t* out) {
  auto it = s.args.find(key);
  if (it == s.args.end()) {
    *out = default_value;
    return OkStatus();
  }
  if (!ParseInt64(it->second, out)) {
    return InvalidArgumentError(
        StrFormat("line %d: bad integer for %s", s.line, key.c_str()));
  }
  return OkStatus();
}

Status GetArgDuration(const ExpStatement& s, const std::string& key,
                      Duration default_value, Duration* out) {
  auto it = s.args.find(key);
  if (it == s.args.end()) {
    *out = default_value;
    return OkStatus();
  }
  Status status = ParseDuration(it->second, out);
  if (!status.ok()) {
    return InvalidArgumentError(
        StrFormat("line %d: %s", s.line, status.message().c_str()));
  }
  return OkStatus();
}

Status ParseFeed(const ExpStatement& s, FeedSpec* feed) {
  feed->source = s.name;
  if (s.args.count("trace") > 0) {
    feed->kind = FeedSpec::Kind::kTrace;
    feed->trace_path = s.args.at("trace");
  } else {
    auto it = s.args.find("process");
    std::string process = it == s.args.end() ? "poisson" : it->second;
    if (process == "poisson") {
      feed->kind = FeedSpec::Kind::kPoisson;
      DSMS_RETURN_IF_ERROR(GetArgDouble(s, "rate", 0, true, &feed->rate));
    } else if (process == "constant") {
      feed->kind = FeedSpec::Kind::kConstant;
      DSMS_RETURN_IF_ERROR(GetArgDouble(s, "rate", 0, true, &feed->rate));
    } else if (process == "bursty") {
      feed->kind = FeedSpec::Kind::kBursty;
      DSMS_RETURN_IF_ERROR(
          GetArgDouble(s, "burst_rate", 100, false, &feed->burst_rate));
      DSMS_RETURN_IF_ERROR(
          GetArgDouble(s, "idle_rate", 1, false, &feed->idle_rate));
      DSMS_RETURN_IF_ERROR(GetArgDuration(s, "burst_len",
                                          200 * kMillisecond,
                                          &feed->burst_length));
      DSMS_RETURN_IF_ERROR(
          GetArgDuration(s, "idle_len", 5 * kSecond, &feed->idle_length));
    } else {
      return InvalidArgumentError(StrFormat(
          "line %d: unknown process '%s'", s.line, process.c_str()));
    }
  }
  int64_t seed = 1;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "seed", 1, &seed));
  feed->seed = static_cast<uint64_t>(seed);

  auto payload = s.args.find("payload");
  if (payload != s.args.end() && payload->second == "randint") {
    feed->payload = FeedSpec::Payload::kRandInt;
    DSMS_RETURN_IF_ERROR(GetArgInt(s, "lo", 0, &feed->randint_lo));
    DSMS_RETURN_IF_ERROR(GetArgInt(s, "hi", 100, &feed->randint_hi));
    int64_t fields = 1;
    DSMS_RETURN_IF_ERROR(GetArgInt(s, "fields", 1, &fields));
    feed->payload_fields = static_cast<int>(fields);
    if (feed->randint_lo > feed->randint_hi || feed->payload_fields < 1) {
      return InvalidArgumentError(
          StrFormat("line %d: bad randint payload spec", s.line));
    }
  } else if (payload != s.args.end() && payload->second != "seq") {
    return InvalidArgumentError(StrFormat("line %d: unknown payload '%s'",
                                          s.line, payload->second.c_str()));
  }
  return OkStatus();
}

Status ParseFault(const ExpStatement& s, FaultTargetSpec* fault) {
  fault->source = s.name;
  auto kind = s.args.find("kind");
  if (kind == s.args.end()) {
    return InvalidArgumentError(StrFormat("line %d: missing kind=", s.line));
  }
  Result<FaultKind> parsed = ParseFaultKind(kind->second);
  if (!parsed.ok()) {
    return InvalidArgumentError(
        StrFormat("line %d: %s", s.line, parsed.status().message().c_str()));
  }
  fault->spec.kind = *parsed;
  DSMS_RETURN_IF_ERROR(
      GetArgDuration(s, "start", fault->spec.start, &fault->spec.start));
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "duration", fault->spec.duration,
                                      &fault->spec.duration));
  int64_t factor = fault->spec.burst_factor;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "factor", factor, &factor));
  if (factor < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: factor must be >= 1", s.line));
  }
  fault->spec.burst_factor = static_cast<int>(factor);
  DSMS_RETURN_IF_ERROR(GetArgDouble(s, "prob", fault->spec.probability,
                                    false, &fault->spec.probability));
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "magnitude", fault->spec.magnitude,
                                      &fault->spec.magnitude));
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "period", fault->spec.punct_period,
                                      &fault->spec.punct_period));
  if (fault->spec.punct_period <= 0) {
    return InvalidArgumentError(
        StrFormat("line %d: period must be positive", s.line));
  }
  int64_t seed = static_cast<int64_t>(fault->spec.seed);
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "seed", seed, &seed));
  fault->spec.seed = static_cast<uint64_t>(seed);
  return OkStatus();
}

Status ParseRun(const ExpStatement& s, RunSpec* run) {
  DSMS_RETURN_IF_ERROR(
      GetArgDuration(s, "horizon", 600 * kSecond, &run->horizon));
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "warmup", 0, &run->warmup));
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "ets_min_interval", 0,
                                      &run->ets_min_interval));
  auto ets = s.args.find("ets");
  if (ets != s.args.end()) {
    if (ets->second == "on-demand") {
      run->ets = EtsMode::kOnDemand;
    } else if (ets->second == "none") {
      run->ets = EtsMode::kNone;
    } else {
      return InvalidArgumentError(
          StrFormat("line %d: bad ets= '%s'", s.line, ets->second.c_str()));
    }
  }
  auto executor = s.args.find("executor");
  if (executor != s.args.end()) {
    if (executor->second == "dfs") {
      run->executor = ExecutorKind::kDfs;
    } else if (executor->second == "round-robin") {
      run->executor = ExecutorKind::kRoundRobin;
    } else if (executor->second == "greedy-memory") {
      run->executor = ExecutorKind::kGreedyMemory;
    } else {
      return InvalidArgumentError(StrFormat(
          "line %d: bad executor= '%s'", s.line, executor->second.c_str()));
    }
  }
  int64_t quantum = 8;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "quantum", 8, &quantum));
  if (quantum < 1) {
    return InvalidArgumentError(StrFormat("line %d: quantum must be >= 1",
                                          s.line));
  }
  run->quantum = static_cast<int>(quantum);
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "lease", 0, &run->lease));
  if (run->lease < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: lease must be >= 0", s.line));
  }
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "watchdog", 0, &run->watchdog));
  if (run->watchdog < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: watchdog must be >= 0", s.line));
  }
  if (s.args.count("watchdog") > 0) {
    // One-release deprecation window: the executor aliases the two knobs,
    // so old plans keep their exact behaviour while they migrate.
    DSMS_LOG(Warning) << "line " << s.line
                      << ": run watchdog= is deprecated; use lease= (the "
                         "frontier lease duration — same semantics)";
  }
  int64_t buffer_cap = 0;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "buffer_cap", 0, &buffer_cap));
  if (buffer_cap < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: buffer_cap must be >= 0", s.line));
  }
  run->buffer_cap = static_cast<size_t>(buffer_cap);
  auto overload = s.args.find("overload");
  if (overload != s.args.end()) {
    if (overload->second == "grow") {
      run->overload = OverloadPolicy::kGrow;
    } else if (overload->second == "block") {
      run->overload = OverloadPolicy::kBlockSource;
    } else if (overload->second == "shed") {
      run->overload = OverloadPolicy::kShedOldest;
    } else {
      return InvalidArgumentError(StrFormat(
          "line %d: bad overload= '%s' (expected grow|block|shed)", s.line,
          overload->second.c_str()));
    }
  }
  int64_t shards = 1;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "shards", 1, &shards));
  if (shards < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: shards must be >= 1", s.line));
  }
  run->shards = static_cast<int>(shards);
  if (run->shards > 1 && run->executor != ExecutorKind::kDfs) {
    return InvalidArgumentError(StrFormat(
        "line %d: shards=%d requires executor=dfs (only the DFS strategy "
        "shards)",
        s.line, run->shards));
  }
  auto mode = s.args.find("mode");
  if (mode != s.args.end()) {
    if (mode->second == "deterministic") {
      run->shard_mode = ShardMode::kDeterministic;
    } else if (mode->second == "parallel") {
      run->shard_mode = ShardMode::kParallel;
    } else {
      return InvalidArgumentError(StrFormat(
          "line %d: bad mode= '%s' (expected deterministic|parallel)", s.line,
          mode->second.c_str()));
    }
  }
  auto violations = s.args.find("violations");
  if (violations != s.args.end()) {
    if (violations->second == "count") {
      run->violations = ViolationPolicy::kCount;
    } else if (violations->second == "drop") {
      run->violations = ViolationPolicy::kDropLate;
    } else if (violations->second == "quarantine") {
      run->violations = ViolationPolicy::kQuarantine;
    } else {
      return InvalidArgumentError(StrFormat(
          "line %d: bad violations= '%s' (expected count|drop|quarantine)",
          s.line, violations->second.c_str()));
    }
  }
  return OkStatus();
}

Status ParseBatch(const ExpStatement& s, RunSpec* run) {
  int64_t size = 0;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "size", 0, &size));
  if (size < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: missing or non-positive size=", s.line));
  }
  run->batch = static_cast<size_t>(size);
  return OkStatus();
}

Status ParseTrace(const ExpStatement& s, TraceSpec* trace) {
  auto path = s.args.find("path");
  if (path == s.args.end() || path->second.empty()) {
    return InvalidArgumentError(StrFormat("line %d: missing path=", s.line));
  }
  trace->path = path->second;
  int64_t capacity = static_cast<int64_t>(trace->capacity);
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "capacity", capacity, &capacity));
  if (capacity < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: capacity must be >= 1", s.line));
  }
  trace->capacity = static_cast<size_t>(capacity);
  return OkStatus();
}

Status ParseWal(const ExpStatement& s, RecoverySpec* recovery) {
  recovery->wal = true;
  auto dir = s.args.find("dir");
  if (dir == s.args.end() || dir->second.empty()) {
    return InvalidArgumentError(StrFormat("line %d: missing dir=", s.line));
  }
  recovery->dir = dir->second;
  auto sync = s.args.find("sync");
  if (sync != s.args.end()) {
    if (sync->second == "none") {
      recovery->sync = WalSyncPolicy::kNone;
    } else if (sync->second == "interval") {
      recovery->sync = WalSyncPolicy::kInterval;
    } else if (sync->second == "every_frame") {
      recovery->sync = WalSyncPolicy::kEveryFrame;
    } else {
      return InvalidArgumentError(StrFormat(
          "line %d: bad sync= '%s' (expected none|interval|every_frame)",
          s.line, sync->second.c_str()));
    }
  }
  int64_t sync_interval =
      static_cast<int64_t>(recovery->sync_interval_bytes);
  DSMS_RETURN_IF_ERROR(
      GetArgInt(s, "sync_interval_bytes", sync_interval, &sync_interval));
  if (sync_interval < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: sync_interval_bytes must be >= 1", s.line));
  }
  recovery->sync_interval_bytes = static_cast<uint64_t>(sync_interval);
  int64_t segment = static_cast<int64_t>(recovery->segment_bytes);
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "segment_bytes", segment, &segment));
  if (segment < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: segment_bytes must be >= 1", s.line));
  }
  recovery->segment_bytes = static_cast<uint64_t>(segment);
  return OkStatus();
}

Status ParseCheckpoint(const ExpStatement& s, RecoverySpec* recovery) {
  recovery->checkpoint = true;
  DSMS_RETURN_IF_ERROR(
      GetArgDuration(s, "horizon", 0, &recovery->checkpoint_horizon));
  if (recovery->checkpoint_horizon <= 0) {
    return InvalidArgumentError(
        StrFormat("line %d: missing or non-positive horizon=", s.line));
  }
  int64_t keep = recovery->keep;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "keep", keep, &keep));
  if (keep < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: keep must be >= 1", s.line));
  }
  recovery->keep = static_cast<int>(keep);
  return OkStatus();
}

/// Parses "4096", "64k", "16m", "2g" (binary multiples, suffix
/// case-insensitive) into bytes.
bool ParseByteSize(const std::string& text, uint64_t* out) {
  if (text.empty()) return false;
  std::string digits = text;
  uint64_t multiplier = 1;
  const char last = digits.back();
  if (last == 'k' || last == 'K') {
    multiplier = 1024;
  } else if (last == 'm' || last == 'M') {
    multiplier = 1024 * 1024;
  } else if (last == 'g' || last == 'G') {
    multiplier = 1024 * 1024 * 1024;
  }
  if (multiplier != 1) digits.pop_back();
  int64_t value = 0;
  if (!ParseInt64(digits, &value) || value < 0) return false;
  *out = static_cast<uint64_t>(value) * multiplier;
  return true;
}

Status ParseState(const ExpStatement& s, StorageSpec* storage) {
  storage->enabled = true;
  auto budget = s.args.find("mem_budget");
  if (budget == s.args.end() ||
      !ParseByteSize(budget->second, &storage->mem_budget) ||
      storage->mem_budget == 0) {
    return InvalidArgumentError(StrFormat(
        "line %d: missing or bad mem_budget= (bytes, k/m/g suffix ok)",
        s.line));
  }
  auto dir = s.args.find("spill_dir");
  if (dir == s.args.end() || dir->second.empty()) {
    return InvalidArgumentError(
        StrFormat("line %d: missing spill_dir=", s.line));
  }
  storage->spill_dir = dir->second;
  DSMS_RETURN_IF_ERROR(
      GetArgDuration(s, "granularity", kSecond, &storage->granularity));
  if (storage->granularity <= 0) {
    return InvalidArgumentError(
        StrFormat("line %d: granularity must be positive", s.line));
  }
  return OkStatus();
}

Status ParseCrash(const ExpStatement& s, RecoverySpec* recovery) {
  Duration at = 0;
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "at", 0, &at));
  if (at <= 0) {
    return InvalidArgumentError(
        StrFormat("line %d: missing or non-positive at=", s.line));
  }
  recovery->crash_at = at;
  return OkStatus();
}

Status ParseNetFault(const ExpStatement& s, NetFaultSpec* fault) {
  auto kind = s.args.find("kind");
  if (kind == s.args.end()) {
    return InvalidArgumentError(
        StrFormat("line %d: missing kind=", s.line));
  }
  std::optional<NetFaultKind> parsed = ParseNetFaultKind(kind->second);
  if (!parsed.has_value() || *parsed == NetFaultKind::kNone) {
    return InvalidArgumentError(StrFormat(
        "line %d: bad kind= '%s' (expected split|coalesce|slowloris|rst|"
        "half-open|reconnect-storm|dup-hello|garbage)",
        s.line, kind->second.c_str()));
  }
  fault->kind = *parsed;
  Duration at = 0;
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "at", 0, &at));
  if (at < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: at must be non-negative", s.line));
  }
  fault->at = at;
  int64_t seed = static_cast<int64_t>(fault->seed);
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "seed", seed, &seed));
  fault->seed = static_cast<uint64_t>(seed);
  int64_t count = fault->count;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "count", count, &count));
  if (count < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: count must be >= 1", s.line));
  }
  fault->count = static_cast<int>(count);
  int64_t chunk = static_cast<int64_t>(fault->chunk);
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "chunk", chunk, &chunk));
  if (chunk < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: chunk must be non-negative", s.line));
  }
  fault->chunk = static_cast<size_t>(chunk);
  DSMS_RETURN_IF_ERROR(GetArgDuration(s, "gap", fault->gap, &fault->gap));
  if (fault->gap < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: gap must be non-negative", s.line));
  }
  int64_t bytes = static_cast<int64_t>(fault->bytes);
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "bytes", bytes, &bytes));
  if (bytes < 1) {
    return InvalidArgumentError(
        StrFormat("line %d: bytes must be >= 1", s.line));
  }
  fault->bytes = static_cast<size_t>(bytes);
  int64_t stale = fault->stale;
  DSMS_RETURN_IF_ERROR(GetArgInt(s, "stale", stale, &stale));
  if (stale < 0) {
    return InvalidArgumentError(
        StrFormat("line %d: stale must be non-negative", s.line));
  }
  fault->stale = static_cast<int>(stale);
  return OkStatus();
}

}  // namespace

Simulation::PayloadFn MakeFeedPayload(const FeedSpec& feed) {
  if (feed.payload == FeedSpec::Payload::kSequence) {
    return Simulation::SequencePayload();
  }
  auto rng = std::make_shared<Pcg32>(feed.seed * 977 + 5);
  int64_t lo = feed.randint_lo;
  int64_t hi = feed.randint_hi;
  int fields = feed.payload_fields;
  return [rng, lo, hi, fields](uint64_t, Timestamp) {
    std::vector<Value> values;
    values.reserve(static_cast<size_t>(fields));
    for (int i = 0; i < fields; ++i) values.emplace_back(rng->NextInt(lo, hi));
    return values;
  };
}

Result<std::unique_ptr<ArrivalProcess>> MakeArrivalProcess(
    const FeedSpec& feed) {
  switch (feed.kind) {
    case FeedSpec::Kind::kPoisson:
      if (feed.rate <= 0) {
        return InvalidArgumentError("feed " + feed.source +
                                    ": rate must be positive");
      }
      return std::unique_ptr<ArrivalProcess>(
          std::make_unique<PoissonProcess>(feed.rate, feed.seed));
    case FeedSpec::Kind::kConstant:
      if (feed.rate <= 0) {
        return InvalidArgumentError("feed " + feed.source +
                                    ": rate must be positive");
      }
      return std::unique_ptr<ArrivalProcess>(
          std::make_unique<ConstantRateProcess>(feed.rate));
    case FeedSpec::Kind::kBursty:
      return std::unique_ptr<ArrivalProcess>(std::make_unique<BurstyProcess>(
          feed.burst_rate, feed.idle_rate, feed.burst_length,
          feed.idle_length, feed.seed));
    case FeedSpec::Kind::kTrace: {
      Result<std::vector<Timestamp>> trace =
          LoadArrivalTrace(feed.trace_path);
      if (!trace.ok()) return trace.status();
      return std::unique_ptr<ArrivalProcess>(
          std::make_unique<TraceProcess>(*trace));
    }
  }
  return InternalError("unreachable feed kind");
}

Result<Experiment> ParseExperiment(std::string_view text) {
  return ParseExperiment(text, /*require_feeds=*/true);
}

Result<Experiment> ParseExperiment(std::string_view text,
                                   bool require_feeds) {
  std::vector<std::string> plan_lines;
  std::vector<ExpStatement> feeds;
  std::vector<ExpStatement> heartbeats;
  std::vector<ExpStatement> faults;
  std::vector<ExpStatement> runs;
  std::vector<ExpStatement> batches;
  std::vector<ExpStatement> traces;
  std::vector<ExpStatement> wals;
  std::vector<ExpStatement> checkpoints;
  std::vector<ExpStatement> crashes;
  std::vector<ExpStatement> states;
  std::vector<ExpStatement> netfaults;

  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string_view line = raw_line;
    size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    ExpStatement statement;
    if (StartsWith(stripped, "feed ")) {
      Status status =
          ParseExpStatement(line_number, stripped, /*has_name=*/true,
                            &statement);
      if (!status.ok()) return status;
      feeds.push_back(std::move(statement));
    } else if (StartsWith(stripped, "heartbeat ")) {
      Status status =
          ParseExpStatement(line_number, stripped, /*has_name=*/true,
                            &statement);
      if (!status.ok()) return status;
      heartbeats.push_back(std::move(statement));
    } else if (StartsWith(stripped, "fault ")) {
      Status status =
          ParseExpStatement(line_number, stripped, /*has_name=*/true,
                            &statement);
      if (!status.ok()) return status;
      faults.push_back(std::move(statement));
    } else if (stripped == "run" || StartsWith(stripped, "run ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      runs.push_back(std::move(statement));
    } else if (stripped == "batch" || StartsWith(stripped, "batch ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      batches.push_back(std::move(statement));
    } else if (StartsWith(stripped, "trace ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      traces.push_back(std::move(statement));
    } else if (stripped == "wal" || StartsWith(stripped, "wal ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      wals.push_back(std::move(statement));
    } else if (stripped == "checkpoint" ||
               StartsWith(stripped, "checkpoint ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      checkpoints.push_back(std::move(statement));
    } else if (stripped == "crash" || StartsWith(stripped, "crash ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      crashes.push_back(std::move(statement));
    } else if (stripped == "state" || StartsWith(stripped, "state ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      states.push_back(std::move(statement));
    } else if (stripped == "netfault" || StartsWith(stripped, "netfault ")) {
      Status status = ParseExpStatement(line_number, stripped,
                                        /*has_name=*/false, &statement);
      if (!status.ok()) return status;
      netfaults.push_back(std::move(statement));
    } else {
      plan_lines.push_back(raw_line);
    }
  }

  if (runs.size() > 1) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate run statement", runs[1].line));
  }
  if (batches.size() > 1) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate batch statement", batches[1].line));
  }
  if (traces.size() > 1) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate trace statement", traces[1].line));
  }
  if (wals.size() > 1) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate wal statement", wals[1].line));
  }
  if (checkpoints.size() > 1) {
    return InvalidArgumentError(StrFormat(
        "line %d: duplicate checkpoint statement", checkpoints[1].line));
  }
  if (crashes.size() > 1) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate crash statement", crashes[1].line));
  }
  if (states.size() > 1) {
    return InvalidArgumentError(
        StrFormat("line %d: duplicate state statement", states[1].line));
  }

  Result<ParsedPlan> plan = ParsePlan(StrJoin(plan_lines, "\n"));
  if (!plan.ok()) return plan.status();

  Experiment experiment;
  experiment.plan = std::move(*plan);

  auto check_stream = [&experiment](const ExpStatement& s) -> Status {
    Operator* op = experiment.plan.Find(s.name);
    if (op == nullptr || dynamic_cast<Source*>(op) == nullptr) {
      return InvalidArgumentError(StrFormat(
          "line %d: '%s' does not name a stream", s.line, s.name.c_str()));
    }
    return OkStatus();
  };

  for (const ExpStatement& s : feeds) {
    DSMS_RETURN_IF_ERROR(check_stream(s));
    FeedSpec feed;
    DSMS_RETURN_IF_ERROR(ParseFeed(s, &feed));
    experiment.feeds.push_back(std::move(feed));
  }
  for (const ExpStatement& s : heartbeats) {
    DSMS_RETURN_IF_ERROR(check_stream(s));
    HeartbeatSpec heartbeat;
    heartbeat.source = s.name;
    DSMS_RETURN_IF_ERROR(
        GetArgDuration(s, "period", kSecond, &heartbeat.period));
    if (heartbeat.period <= 0) {
      return InvalidArgumentError(
          StrFormat("line %d: period must be positive", s.line));
    }
    DSMS_RETURN_IF_ERROR(GetArgDuration(s, "phase", 0, &heartbeat.phase));
    experiment.heartbeats.push_back(heartbeat);
  }
  for (const ExpStatement& s : faults) {
    DSMS_RETURN_IF_ERROR(check_stream(s));
    FaultTargetSpec fault;
    fault.source = s.name;
    DSMS_RETURN_IF_ERROR(ParseFault(s, &fault));
    experiment.faults.push_back(std::move(fault));
  }
  if (!runs.empty()) {
    DSMS_RETURN_IF_ERROR(ParseRun(runs[0], &experiment.run));
  }
  if (!batches.empty()) {
    DSMS_RETURN_IF_ERROR(ParseBatch(batches[0], &experiment.run));
  }
  if (!traces.empty()) {
    DSMS_RETURN_IF_ERROR(ParseTrace(traces[0], &experiment.trace));
  }
  if (!wals.empty()) {
    DSMS_RETURN_IF_ERROR(ParseWal(wals[0], &experiment.recovery));
  }
  if (!checkpoints.empty()) {
    DSMS_RETURN_IF_ERROR(
        ParseCheckpoint(checkpoints[0], &experiment.recovery));
    if (!experiment.recovery.wal) {
      return InvalidArgumentError(
          StrFormat("line %d: checkpoint requires a wal statement",
                    checkpoints[0].line));
    }
  }
  if (!crashes.empty()) {
    DSMS_RETURN_IF_ERROR(ParseCrash(crashes[0], &experiment.recovery));
  }
  if (!states.empty()) {
    DSMS_RETURN_IF_ERROR(ParseState(states[0], &experiment.storage));
  }
  for (const ExpStatement& s : netfaults) {
    NetFaultSpec fault;
    DSMS_RETURN_IF_ERROR(ParseNetFault(s, &fault));
    experiment.netfaults.push_back(fault);
  }
  if (require_feeds && experiment.feeds.empty()) {
    return InvalidArgumentError("experiment declares no feeds");
  }
  return experiment;
}

Result<ExperimentReport> RunExperiment(Experiment* experiment) {
  QueryGraph* graph = experiment->plan.graph.get();
  if (graph == nullptr || !graph->validated()) {
    return FailedPreconditionError("experiment has no validated plan");
  }

  VirtualClock clock;
  std::unique_ptr<Tracer> tracer;
  if (!experiment->trace.path.empty()) {
    tracer = std::make_unique<Tracer>(&clock, experiment->trace.capacity);
  }
  ExecConfig config;
  config.tracer = tracer.get();
  config.ets.mode = experiment->run.ets;
  config.ets.min_interval = experiment->run.ets_min_interval;
  // lease= wins over the deprecated watchdog= alias; whichever is set, the
  // Executor constructor aliases the other to it.
  if (experiment->run.lease > 0) {
    config.frontier.lease.duration = experiment->run.lease;
  } else {
    config.watchdog.silence_horizon = experiment->run.watchdog;
  }
  config.batch_size = experiment->run.batch;
  if (experiment->run.buffer_cap > 0) {
    graph->SetBufferBound(experiment->run.buffer_cap,
                          experiment->run.overload);
  }
  config.shards = experiment->run.shards;
  config.shard_mode = experiment->run.shard_mode;
  if (experiment->storage.enabled && graph->state_store() == nullptr) {
    StorageConfig storage_config;
    storage_config.mem_budget = experiment->storage.mem_budget;
    storage_config.spill_dir = experiment->storage.spill_dir;
    storage_config.granularity = experiment->storage.granularity;
    storage_config.overload = experiment->run.overload;
    DSMS_RETURN_IF_ERROR(graph->ConfigureStateStore(storage_config));
  }
  std::unique_ptr<Executor> executor;
  switch (experiment->run.executor) {
    case ExecutorKind::kDfs:
      if (experiment->run.shards > 1) {
        executor = std::make_unique<ShardedExecutor>(graph, &clock, config);
      } else {
        executor = std::make_unique<DfsExecutor>(graph, &clock, config);
      }
      break;
    case ExecutorKind::kRoundRobin:
      executor = std::make_unique<RoundRobinExecutor>(
          graph, &clock, config, experiment->run.quantum);
      break;
    case ExecutorKind::kGreedyMemory:
      executor =
          std::make_unique<GreedyMemoryExecutor>(graph, &clock, config);
      break;
  }

  Simulation sim(graph, executor.get(), &clock);
  if (tracer != nullptr) sim.AttachTracer(tracer.get());
  sim.set_violation_policy(experiment->run.violations);
  for (const FeedSpec& feed : experiment->feeds) {
    auto* source = dynamic_cast<Source*>(experiment->plan.Find(feed.source));
    DSMS_CHECK(source != nullptr);  // Checked during parse.
    Result<std::unique_ptr<ArrivalProcess>> process =
        MakeArrivalProcess(feed);
    if (!process.ok()) return process.status();
    sim.AddFeed(source, std::move(*process), MakeFeedPayload(feed),
                FeedJitterSeed(feed));
  }
  for (const HeartbeatSpec& heartbeat : experiment->heartbeats) {
    auto* source =
        dynamic_cast<Source*>(experiment->plan.Find(heartbeat.source));
    DSMS_CHECK(source != nullptr);
    sim.AddHeartbeat(source, heartbeat.period, heartbeat.phase);
  }
  for (const FaultTargetSpec& fault : experiment->faults) {
    auto* source =
        dynamic_cast<Source*>(experiment->plan.Find(fault.source));
    DSMS_CHECK(source != nullptr);
    if (IsDiskFault(fault.spec.kind) && graph->state_store() == nullptr) {
      return InvalidArgumentError(
          "disk faults require a state statement (no state store configured)");
    }
    sim.InjectFault(source, fault.spec);
  }

  sim.Run(experiment->run.horizon, experiment->run.warmup);

  ExperimentReport report;
  report.end_time = clock.now();
  for (Sink* sink : graph->sinks()) {
    SinkReport sr;
    sr.name = sink->name();
    sr.tuples = sink->data_delivered();
    sr.mean_latency_ms = sink->latency().mean_ms();
    sr.p99_latency_ms = sink->latency().p99_us() / 1000.0;
    report.sinks.push_back(std::move(sr));
  }
  report.peak_queue_total = sim.queue_tracker().peak_total();
  report.ets_generated = executor->ets_generated();
  report.fault_events = sim.fault_events();
  report.watchdog_ets = executor->stats().watchdog_ets;
  for (Source* source : graph->sources()) {
    if (source->degraded()) report.degraded = true;
  }
  report.shed_tuples = graph->TotalShedTuples();
  report.quarantined = sim.order_validator().quarantined();
  report.dropped_late = sim.order_validator().dropped();
  report.buffer_order_violations = sim.order_validator().violations();
  report.max_buffer_hwm = graph->MaxBufferHighWaterMark();
  if (auto* sharded = dynamic_cast<ShardedExecutor*>(executor.get())) {
    report.shards_used = static_cast<uint64_t>(sharded->num_shards());
    report.shard_hops = sharded->shard_hops();
    report.shard_epochs = sharded->epochs();
  }
  if (graph->state_store() != nullptr) {
    report.storage = graph->state_store()->stats();
  }
  report.exec = executor->stats();
  report.operator_stats = OperatorStatsString(*graph);
  report.robustness = RobustnessReportString(*graph, &sim.order_validator());

  if (tracer != nullptr) {
    std::ofstream out(experiment->trace.path,
                      std::ios::out | std::ios::trunc);
    if (out) {
      tracer->WriteChromeTrace(out);
    } else {
      DSMS_LOG(Error) << "cannot write trace to " << experiment->trace.path;
    }
  }
  return report;
}

void ExperimentReport::PublishTo(MetricsRegistry* registry) const {
  DSMS_CHECK(registry != nullptr);
  registry->SetGauge("experiment.end_time_s", DurationToSeconds(end_time));
  for (const SinkReport& sink : sinks) {
    const std::string prefix = "sink." + sink.name;
    registry->SetCounter(prefix + ".tuples", sink.tuples);
    registry->SetGauge(prefix + ".mean_latency_ms", sink.mean_latency_ms);
    registry->SetGauge(prefix + ".p99_latency_ms", sink.p99_latency_ms);
  }
  registry->SetCounter("experiment.peak_queue_total",
                       static_cast<uint64_t>(peak_queue_total));
  registry->SetCounter("experiment.ets_generated", ets_generated);
  registry->SetCounter("experiment.fault_events", fault_events);
  // Deprecated spelling and its frontier-era replacement, bound to the same
  // count so JSON consumers can migrate on their own schedule.
  registry->SetCounter("experiment.watchdog_ets", watchdog_ets);
  registry->SetCounter("experiment.frontier.lease_expired_ets", watchdog_ets);
  registry->SetGauge("experiment.degraded", degraded ? 1.0 : 0.0);
  registry->SetCounter("experiment.shed_tuples", shed_tuples);
  registry->SetCounter("experiment.quarantined", quarantined);
  registry->SetCounter("experiment.dropped_late", dropped_late);
  registry->SetCounter("experiment.buffer_order_violations",
                       buffer_order_violations);
  registry->SetCounter("experiment.max_buffer_hwm", max_buffer_hwm);
  registry->SetGauge("exec.shard.shards", static_cast<double>(shards_used));
  registry->SetCounter("exec.shard.hops", shard_hops);
  registry->SetCounter("exec.shard.epochs", shard_epochs);
  storage.PublishTo(registry, "storage");
  // The `--metrics` JSON output keeps the deprecated `exec.watchdog_ets`
  // alias; aggregation paths (ScenarioResult) omit it.
  exec.PublishTo(registry, "exec", /*include_deprecated=*/true);
}

}  // namespace dsms
