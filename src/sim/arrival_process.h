#ifndef DSMS_SIM_ARRIVAL_PROCESS_H_
#define DSMS_SIM_ARRIVAL_PROCESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/time.h"

namespace dsms {

/// Generator of inter-arrival gaps for one stream. Stateful and seeded:
/// the same process object always yields the same arrival pattern.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// Returns the gap to the next arrival (> 0), or a negative value when
  /// the process is exhausted (finite traces).
  virtual Duration NextGap() = 0;
};

/// Poisson arrivals — the paper's workload ("input data tuples were randomly
/// generated under a Poisson arrival process with the desired average
/// arrival rates").
class PoissonProcess : public ArrivalProcess {
 public:
  PoissonProcess(double rate_per_second, uint64_t seed);
  Duration NextGap() override;

 private:
  double rate_;
  Pcg32 rng_;
};

/// Deterministic constant-rate arrivals.
class ConstantRateProcess : public ArrivalProcess {
 public:
  explicit ConstantRateProcess(double rate_per_second);
  Duration NextGap() override;

 private:
  Duration gap_;
};

/// Two-state Markov-modulated Poisson process: bursts at `burst_rate`
/// alternate with quiet periods at `idle_rate`; exponential dwell times.
/// Models the paper's motivating "bursty, non-stationary traffic" for which
/// a fixed heartbeat period cannot be tuned.
class BurstyProcess : public ArrivalProcess {
 public:
  BurstyProcess(double burst_rate, double idle_rate,
                Duration mean_burst_length, Duration mean_idle_length,
                uint64_t seed);
  Duration NextGap() override;

 private:
  double rate_[2];       // [0]=burst, [1]=idle
  Duration mean_dwell_[2];
  int state_ = 0;
  Duration time_left_in_state_;
  Pcg32 rng_;
};

/// Replays a fixed list of arrival times (strictly increasing); exhausts
/// afterwards. Used by tests and trace-driven examples.
class TraceProcess : public ArrivalProcess {
 public:
  explicit TraceProcess(std::vector<Timestamp> arrival_times);
  Duration NextGap() override;

 private:
  std::vector<Timestamp> times_;
  size_t index_ = 0;
  Timestamp previous_ = 0;
};

}  // namespace dsms

#endif  // DSMS_SIM_ARRIVAL_PROCESS_H_
