#ifndef DSMS_SIM_SIMULATION_H_
#define DSMS_SIM_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/time.h"
#include "core/value.h"
#include "exec/executor.h"
#include "graph/query_graph.h"
#include "metrics/order_validator.h"
#include "metrics/queue_size_tracker.h"
#include "operators/source.h"
#include "sim/arrival_process.h"
#include "sim/event_queue.h"
#include "sim/fault_injector.h"

namespace dsms {

class Tracer;
class BufferOccupancyTracer;

/// Discrete-event simulation driver: wires arrival processes (standing in
/// for Stream Mill's input wrappers) and periodic heartbeat injectors
/// (scenario B, after Johnson et al.) to the Sources of a query graph, and
/// interleaves event delivery with executor steps on a shared virtual clock.
///
/// Timing semantics: an event *scheduled* at time t is *delivered* at the
/// first step boundary with clock >= t (a busy executor delays delivery,
/// like a busy DSMS process servicing its input socket late). Tuples are
/// stamped and their latency measured from the delivery instant.
///
/// A QueueSizeTracker is attached to every arc of the graph for the
/// peak-total-queue-size metric of Figure 8.
class Simulation {
 public:
  /// Payload generator: receives the per-feed arrival ordinal and the
  /// delivery time.
  using PayloadFn = std::function<std::vector<Value>(uint64_t seq,
                                                     Timestamp now)>;

  /// Neither graph, executor nor clock are owned; all must outlive the
  /// simulation. The executor must run over `graph` and share `clock`.
  Simulation(QueryGraph* graph, Executor* executor, VirtualClock* clock);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Returns a payload of one int64 value equal to the arrival ordinal.
  static PayloadFn SequencePayload();

  /// Attaches an arrival process to `source`. For external-timestamp
  /// sources, each tuple's application timestamp is the delivery time minus
  /// a uniform jitter in [0, source->skew_bound()), monotonically clamped —
  /// so the source's declared skew bound δ truly bounds the skew.
  void AddFeed(Source* source, std::unique_ptr<ArrivalProcess> process,
               PayloadFn payload = SequencePayload(), uint64_t jitter_seed = 1);

  /// Periodic heartbeat punctuation into `source` every `period`, starting
  /// at `phase` (scenario B; the punctuation carries the delivery time).
  void AddHeartbeat(Source* source, Duration period, Duration phase = 0);

  /// Arms a deterministic fault against `source`'s feed (see
  /// sim/fault_injector.h). Arrival faults (stall/death/burst/disorder/skew)
  /// intercept the feed attached to the same source; punctuation faults
  /// schedule their own periodic event. Call after AddFeed. One fault per
  /// source; later calls on the same source replace the earlier one.
  void InjectFault(Source* source, const FaultSpec& spec,
                   uint64_t run_seed = 0);

  /// Attaches an execution tracer: names its operator/arc tracks after the
  /// graph, installs a buffer-occupancy listener, and records fault
  /// injections as they fire. The executor's hooks are configured
  /// separately (ExecConfig::tracer). `tracer` must outlive the simulation;
  /// call at most once, before Run.
  void AttachTracer(Tracer* tracer);

  /// Stats of the injector armed for `source` (nullptr when none).
  const FaultStats* fault_stats(const Source* source) const;

  /// Sum of every armed injector's event count (how often a fault actually
  /// fired; 0 means the run was fault-free even if injectors were armed).
  uint64_t fault_events() const;

  /// Policy for tuples that violate an arc's timestamp order (default
  /// kCount — observe only; see metrics/order_validator.h).
  void set_violation_policy(ViolationPolicy policy) {
    order_validator_.set_policy(policy);
  }

  /// Runs until the virtual clock reaches `end_time`. May be called
  /// repeatedly with increasing horizons. If `warmup` is positive (and not
  /// yet applied), latency and peak-queue metrics are reset when the clock
  /// first passes it, so steady-state figures exclude ramp-up.
  void Run(Timestamp end_time, Timestamp warmup = 0);

  const QueueSizeTracker& queue_tracker() const { return queue_tracker_; }

  /// Always-on invariant checker: counts per-arc timestamp-order
  /// violations (must be 0; see metrics/order_validator.h).
  const OrderValidator& order_validator() const { return order_validator_; }

  EventQueue& events() { return events_; }
  Timestamp now() const { return clock_->now(); }
  uint64_t events_delivered() const { return events_delivered_; }

 private:
  struct Feed {
    Source* source;
    std::unique_ptr<ArrivalProcess> process;
    PayloadFn payload;
    Pcg32 jitter_rng;
    uint64_t seq = 0;
    Timestamp last_app_ts = kMinTimestamp;
    /// Armed fault, if any (owned by faults_; keyed by source).
    FaultInjector* fault = nullptr;
  };

  void ScheduleNextArrival(Feed* feed, Timestamp after);
  void DeliverArrival(Feed* feed, Timestamp now);
  void ResetSteadyStateMetrics();

  /// Delivers one (possibly perturbed) tuple into `feed`'s source.
  void IngestOne(Feed* feed, Timestamp now);

  QueryGraph* graph_;
  Executor* executor_;
  VirtualClock* clock_;
  EventQueue events_;
  QueueSizeTracker queue_tracker_;
  OrderValidator order_validator_;
  /// Execution tracer (not owned); null when tracing is off.
  Tracer* tracer_ = nullptr;
  /// Buffer high-water listener, present iff tracer_ is attached.
  std::unique_ptr<BufferOccupancyTracer> occupancy_tracer_;
  std::vector<std::unique_ptr<Feed>> feeds_;
  /// Armed fault injectors, keyed by target source.
  std::map<const Source*, std::unique_ptr<FaultInjector>> faults_;
  /// Self-rescheduling heartbeat callbacks; owned here (not by the event
  /// queue) so the recursive capture is a plain pointer, not a shared_ptr
  /// cycle.
  std::vector<std::unique_ptr<std::function<void(Timestamp)>>> heartbeats_;
  uint64_t events_delivered_ = 0;
  bool warmup_applied_ = false;
};

}  // namespace dsms

#endif  // DSMS_SIM_SIMULATION_H_
