#include "sim/trace_loader.h"

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "graph/plan_parser.h"

namespace dsms {

Result<std::vector<Timestamp>> ParseArrivalTrace(std::string_view text) {
  std::vector<Timestamp> times;
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string_view line = raw_line;
    size_t comment = line.find('#');
    if (comment != std::string_view::npos) line = line.substr(0, comment);
    line = StripWhitespace(line);
    if (line.empty()) continue;
    Duration t = 0;
    Status status = ParseDuration(line, &t);
    if (!status.ok()) {
      return InvalidArgumentError(StrFormat("trace line %d: %s", line_number,
                                            status.message().c_str()));
    }
    if (!times.empty() && t <= times.back()) {
      return InvalidArgumentError(StrFormat(
          "trace line %d: arrival times must be strictly increasing",
          line_number));
    }
    times.push_back(t);
  }
  if (times.empty()) return InvalidArgumentError("empty arrival trace");
  return times;
}

Result<std::vector<Timestamp>> LoadArrivalTrace(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return NotFoundError("cannot open trace file: " + path);
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseArrivalTrace(contents.str());
}

}  // namespace dsms
