#ifndef DSMS_SIM_TRACE_LOADER_H_
#define DSMS_SIM_TRACE_LOADER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace dsms {

/// Parses an arrival trace: one arrival time per line, as a duration
/// expression with optional unit suffix (`1500us`, `2.5ms`, `3s`; bare
/// integers are microseconds), `#` comments and blank lines ignored.
/// Times must be strictly increasing. Feed the result to TraceProcess.
Result<std::vector<Timestamp>> ParseArrivalTrace(std::string_view text);

/// ParseArrivalTrace over a file's contents.
Result<std::vector<Timestamp>> LoadArrivalTrace(const std::string& path);

}  // namespace dsms

#endif  // DSMS_SIM_TRACE_LOADER_H_
