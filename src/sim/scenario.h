#ifndef DSMS_SIM_SCENARIO_H_
#define DSMS_SIM_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "exec/exec_stats.h"
#include "exec/executor.h"
#include "metrics/order_validator.h"
#include "sim/fault_injector.h"
#include "storage/state_store.h"

namespace dsms {

class MetricsRegistry;

/// The four timestamp-management strategies compared in Section 6.
enum class ScenarioKind {
  kNoEts = 0,       // A: internally timestamped, no punctuation at all
  kPeriodicEts = 1, // B: internal timestamps + periodic heartbeats [9]
  kOnDemandEts = 2, // C: internal timestamps + on-demand ETS (this paper)
  kLatent = 3,      // D: latent timestamps (optimal baseline)
};

const char* ScenarioKindToString(ScenarioKind kind);

enum class ExecutorKind {
  kDfs = 0,
  kRoundRobin = 1,
  kGreedyMemory = 2,
};

/// Query graph shapes used by the experiments and ablations.
enum class QueryShape {
  /// The paper's graph: N streams -> selection each -> union -> sink.
  kUnion = 0,
  /// Two streams -> selection each -> symmetric window join -> sink.
  kJoin = 1,
  /// One stream -> selection -> tumbling/sliding window aggregate -> sink.
  kAggregate = 2,
};

enum class ArrivalKind {
  kPoisson = 0,
  kConstant = 1,
  kBursty = 2,  // fast stream bursty (MMPP); slow streams stay Poisson
};

/// Full parameterization of one experiment run. Defaults reproduce the
/// paper's setup: Poisson 50 / 0.05 tuples/s, 95% selectivity filters,
/// binary union, internal timestamps, DFS execution.
struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kOnDemandEts;
  ExecutorKind executor = ExecutorKind::kDfs;
  QueryShape shape = QueryShape::kUnion;
  ArrivalKind arrivals = ArrivalKind::kPoisson;

  double fast_rate = 50.0;   // tuples/s on stream 1
  double slow_rate = 0.05;   // tuples/s on each further stream
  int num_slow_streams = 1;  // union fan-in = 1 + num_slow_streams
  double selectivity = 0.95;

  /// B only: heartbeat punctuations per second injected into each slow
  /// stream (the sparse side, as in the paper).
  double heartbeat_rate = 0.0;
  /// B only: also inject heartbeats into the fast stream.
  bool heartbeat_fast = false;

  /// kInternal (paper's main experiments) or kExternal (δ ablation).
  /// Ignored when kind == kLatent.
  TimestampKind ts_kind = TimestampKind::kInternal;
  Duration skew_bound = 0;  // δ for external timestamps

  /// Internal-timestamp granularity (Section 4.1 ablation): coarse values
  /// produce simultaneous tuples.
  Duration timestamp_granularity = 1;

  /// false selects the basic Figure-1 union (no TSM registers), the
  /// baseline for bench/abl_simultaneous.
  bool use_tsm_registers = true;

  Duration join_window = 2 * kSecond;   // per side, kJoin
  Duration agg_window = kSecond;        // kAggregate
  Duration agg_slide = kSecond;

  // MMPP parameters for ArrivalKind::kBursty (applied to the fast stream).
  double burst_rate = 500.0;
  double idle_rate = 1.0;
  Duration mean_burst_length = 200 * kMillisecond;
  Duration mean_idle_length = 5 * kSecond;

  CostModel costs;
  Duration ets_min_interval = 0;
  int rr_quantum = 8;

  /// Work discovery strategy (kReadyQueue is the optimized default;
  /// kScanReference reproduces the original O(n) scans and serves as the
  /// oracle for trace-equivalence tests).
  SchedulerMode scheduler = SchedulerMode::kReadyQueue;

  /// Maximum rows per columnar batch; 0 (the default) keeps the scalar
  /// tuple-at-a-time path. See ExecConfig::batch_size and docs/batching.md.
  size_t batch_size = 0;

  /// When true, every buffer push/pop in the run is folded into
  /// ScenarioResult::trace_hash (FNV-1a over the full tuple contents and
  /// arc id). Two runs with equal hashes executed byte-identical tuple
  /// movements in the same order.
  bool record_trace = false;

  /// When non-empty, the run records an execution trace (operator steps,
  /// NOS rules, ETS generations, idle-waits, buffer high-water marks,
  /// fault injections) and writes it to this path as Chrome trace-event
  /// JSON (load in Perfetto / chrome://tracing). Empty = tracing off; the
  /// run is then byte-identical to an untraced one.
  std::string trace_path;
  /// Ring capacity of the execution tracer (newest events win once full).
  size_t trace_capacity = 1 << 18;

  // --- robustness: fault injection and graceful degradation ---
  // (all defaults keep the run byte-identical to the pre-robustness engine)

  /// Fault armed against sources[fault_target] (kNone = no injection).
  FaultSpec fault;
  /// Index into the scenario's source list (clamped); default 1 targets the
  /// first slow stream — the one whose silence wedges the IWP operator.
  int fault_target = 1;
  /// Additional faults, each aimed at its own FaultSpec::source index in
  /// the scenario's source list (clamped). Composes with `fault` for
  /// multi-bad-source chaos runs: at most one fault per source.
  std::vector<FaultSpec> extra_faults;
  /// DEPRECATED: source-liveness silence horizon (0 = off). Alias of
  /// `lease.duration` — see FrontierPolicy; kept so older configs and the
  /// legacy-watchdog oracle runs keep working.
  Duration watchdog_horizon = 0;
  /// Frontier coordination: tracker vs legacy-watchdog oracle, and the
  /// lease/lifecycle hysteresis config. lease.duration 0 defers to
  /// watchdog_horizon (the executor aliases the two).
  FrontierMode frontier_mode = FrontierMode::kTracker;
  LeasePolicy lease;
  /// Per-arc capacity bound (0 = unbounded) and what to do at the limit.
  size_t buffer_capacity = 0;
  OverloadPolicy overload = OverloadPolicy::kGrow;
  /// What the per-arc OrderValidator does with order-violating tuples.
  ViolationPolicy violations = ViolationPolicy::kCount;

  /// Worker shards for sharded multicore execution (ExecConfig::shards);
  /// 1 (the default) keeps the classic single-shard executors. Only
  /// ExecutorKind::kDfs shards. `shard_mode` picks deterministic cooperative
  /// interleaving (byte-identical to shards=1) or free-running threads; the
  /// per-shard Pcg32 streams are seeded from `seed` (ExecConfig::shard_seed),
  /// so DSMS_TEST_SEED reproduces sharded runs too.
  int shards = 1;
  ShardMode shard_mode = ShardMode::kDeterministic;

  /// Spillable state store (storage/state_store.h): with a non-empty spill
  /// dir the graph gets a StateStore and window/join state beyond
  /// `state_mem_budget` hot bytes spills to block files there (budget 0 =
  /// store attached but never spills). Empty dir (the default) keeps all
  /// state in memory, unbudgeted — byte-identical to the pre-storage
  /// engine. Disk-fault injection (kDiskStall/kDiskFail) requires the
  /// store.
  std::string state_spill_dir;
  uint64_t state_mem_budget = 0;
  Duration state_granularity = kSecond;

  uint64_t seed = 42;
  Duration horizon = 600 * kSecond;
  Duration warmup = 30 * kSecond;
};

/// Headline measurements of one run; see bench/ for how these map onto the
/// paper's figures.
struct ScenarioResult {
  // Output latency at the sink (Figure 7).
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  uint64_t tuples_delivered = 0;

  // Queue occupancy across all arcs (Figure 8).
  int64_t peak_queue_total = 0;
  int64_t peak_queue_data = 0;

  // Idle-waiting of the graph's IWP operator (Section 6 text).
  double idle_fraction = 0.0;
  uint64_t blocked_intervals = 0;

  // Punctuation machinery.
  uint64_t ets_generated = 0;
  uint64_t punctuation_steps = 0;
  uint64_t punctuation_eliminated = 0;

  // Self-checks (both must be 0 for timestamped scenarios): delivered
  // tuples whose timestamp was below a previously delivered one, and
  // per-arc pushes that violated a buffer's running timestamp bound.
  uint64_t order_violations = 0;
  uint64_t buffer_order_violations = 0;

  // Robustness: what the injected fault did and what absorbed it.
  uint64_t fault_events = 0;      // injector actions (0 = fault never fired)
  uint64_t watchdog_ets = 0;      // lease-expiry fallback ETS (deprecated
                                  // spelling; = frontier_lease_expired_ets)
  bool degraded = false;          // some source ran on fallback bounds
  uint64_t shed_tuples = 0;       // dropped by kShedOldest overload policy
  uint64_t quarantined = 0;       // moved to the dead-letter buffer
  uint64_t dropped_late = 0;      // vetoed by kDropLate
  uint64_t late_absorbed = 0;     // late data consumed by the IWP operator
  uint64_t max_buffer_hwm = 0;    // largest single-arc occupancy ever

  // Frontier coordination service (tentpole of the robustness milestone):
  // what the tracker saw and did. All zero when no fault fired and leases
  // never expired.
  uint64_t frontier_violations = 0;        // punctuation/skew/disorder/flap
  uint64_t frontier_lease_expiries = 0;    // lease-expiry (watchdog) fires
  uint64_t frontier_revivals = 0;          // silent sources that came back
  uint64_t frontier_quarantines = 0;       // healthy->...->quarantined trips
  uint64_t frontier_transitions = 0;       // all lifecycle state changes
  uint64_t frontier_quarantined_now = 0;   // sources quarantined at the end
  uint64_t frontier_degraded_now = 0;      // sources not healthy at the end
  /// The tracker's checkpoint frontier at the end of the run (min promise
  /// over trusted sources; kMinTimestamp when nothing ever promised).
  Timestamp frontier_bound = kMinTimestamp;

  // Sharded execution (config.shards > 1; all zero otherwise).
  uint64_t shards_used = 0;   // worker shards the run executed on
  uint64_t shard_hops = 0;    // shard-boundary crossings (exec.shard.hops)
  uint64_t shard_epochs = 0;  // epoch barriers passed (exec.shard.epochs)

  /// Populated when config.record_trace: FNV-1a digest and event count of
  /// every buffer push/pop in the run (see ScenarioConfig::record_trace).
  uint64_t trace_hash = 0;
  uint64_t trace_events = 0;

  /// Always populated: order-sensitive FNV-1a digest of every data tuple
  /// delivered at the primary sink (kind, timestamps, payload — not the
  /// virtual delivery time). Equal digests mean byte-identical sink output;
  /// the oracle of tests/batch_exec_test.cc.
  uint64_t sink_digest = 0;

  /// State-store activity (all zero when no store was configured).
  StorageStats storage;

  ExecStats exec;

  std::string ToString() const;

  /// Publishes every field into `registry` as gauges/counters under
  /// `prefix` (e.g. "scenario.mean_latency_ms"). The struct's fields stay
  /// the accessors; the registry is the unified snapshot path.
  void PublishTo(MetricsRegistry* registry, const std::string& prefix) const;
};

/// Builds the configured graph, wires feeds and heartbeats, runs the
/// simulation for config.horizon, and collects results. Deterministic per
/// config (all randomness is seeded from config.seed).
ScenarioResult RunScenario(const ScenarioConfig& config);

}  // namespace dsms

#endif  // DSMS_SIM_SCENARIO_H_
