#include "storage/block_file.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "recovery/crc32.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

constexpr char kBlockMagic[8] = {'D', 'S', 'M', 'S', 'B', 'L', 'K', '1'};

std::string SerializeBlock(const BlockFileContents& block) {
  StateWriter w;
  w.U64(block.block_id);
  w.Ts(block.bucket_start);
  w.Ts(block.bucket_end);
  w.Ts(block.min_ts);
  w.Ts(block.max_ts);
  w.U32(static_cast<uint32_t>(block.rows.size()));
  for (const Tuple& row : block.rows) w.Tup(row);
  return w.Take();
}

bool DeserializeBlock(const std::string& body, BlockFileContents* block) {
  StateReader r(body);
  block->block_id = r.U64();
  block->bucket_start = r.Ts();
  block->bucket_end = r.Ts();
  block->min_ts = r.Ts();
  block->max_ts = r.Ts();
  uint32_t n = r.U32();
  block->rows.clear();
  block->rows.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) block->rows.push_back(r.Tup());
  return r.ok() && r.remaining() == 0;
}

}  // namespace

std::string BlockFilePath(const std::string& dir, uint64_t block_id) {
  return StrFormat("%s/block-%020llu.blk", dir.c_str(),
                   static_cast<unsigned long long>(block_id));
}

bool ParseBlockFileName(const std::string& name, uint64_t* block_id) {
  // "block-" + 20 digits + ".blk"
  if (name.size() != 6 + 20 + 4) return false;
  if (name.compare(0, 6, "block-") != 0) return false;
  if (name.compare(26, 4, ".blk") != 0) return false;
  uint64_t v = 0;
  for (size_t i = 6; i < 26; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *block_id = v;
  return true;
}

Status WriteBlockFile(const std::string& dir, const BlockFileContents& block) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return InternalError(
        StrFormat("mkdir %s: %s", dir.c_str(), strerror(errno)));
  }
  const std::string body = SerializeBlock(block);
  std::string bytes(kBlockMagic, sizeof(kBlockMagic));
  StateWriter header;
  header.U64(body.size());
  header.U32(Crc32(body.data(), body.size()));
  bytes += header.data();
  bytes += body;

  const std::string final_path = BlockFilePath(dir, block.block_id);
  const std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) {
    return InternalError(
        StrFormat("open %s: %s", tmp_path.c_str(), strerror(errno)));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return InternalError(
          StrFormat("write %s: %s", tmp_path.c_str(), strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  // The block must be durable before the rename publishes it: checkpoints
  // reference spilled blocks by id, so a visible-but-unflushed block would
  // break the kill -9 recovery contract the same way a torn checkpoint
  // would.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return InternalError(StrFormat("fsync: %s", strerror(errno)));
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return InternalError(
        StrFormat("rename %s: %s", final_path.c_str(), strerror(errno)));
  }
  return OkStatus();
}

Result<BlockFileContents> ReadBlockFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return InternalError(
        StrFormat("open %s: %s", path.c_str(), strerror(errno)));
  }
  std::string bytes;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      bytes.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return InternalError(
          StrFormat("read %s: %s", path.c_str(), strerror(errno)));
    }
    break;
  }
  ::close(fd);
  if (bytes.size() < 20 ||
      memcmp(bytes.data(), kBlockMagic, sizeof(kBlockMagic)) != 0) {
    return InternalError(StrFormat("%s: not a block file", path.c_str()));
  }
  StateReader header(bytes.data() + 8, 12);
  uint64_t body_len = header.U64();
  uint32_t crc = header.U32();
  if (bytes.size() != 20 + body_len) {
    return InternalError(StrFormat("%s: truncated block", path.c_str()));
  }
  if (Crc32(bytes.data() + 20, body_len) != crc) {
    return InternalError(StrFormat("%s: block crc mismatch", path.c_str()));
  }
  BlockFileContents block;
  if (!DeserializeBlock(bytes.substr(20), &block)) {
    return InternalError(StrFormat("%s: malformed block body", path.c_str()));
  }
  return block;
}

Status ListBlockFiles(const std::string& dir,
                      std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return OkStatus();
    return InternalError(
        StrFormat("opendir %s: %s", dir.c_str(), strerror(errno)));
  }
  while (dirent* entry = ::readdir(d)) {
    uint64_t id = 0;
    if (ParseBlockFileName(entry->d_name, &id)) {
      out->emplace_back(id, dir + "/" + entry->d_name);
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return OkStatus();
}

}  // namespace dsms
