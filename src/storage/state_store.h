#ifndef DSMS_STORAGE_STATE_STORE_H_
#define DSMS_STORAGE_STATE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/time.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"
#include "sim/fault_injector.h"

namespace dsms {

class MetricsRegistry;
class Operator;
class StateReader;
class StateStore;
class StateWriter;

/// Configuration of the spillable state tier, set from the plan DSL's
/// `state mem_budget=… spill_dir=… granularity=…` statement.
struct StorageConfig {
  /// Hot-tier budget in bytes across every table of the graph; 0 means
  /// unlimited (nothing is ever spilled, the store only partitions and
  /// indexes).
  uint64_t mem_budget = 0;
  /// Directory for spilled block files; required when mem_budget > 0.
  std::string spill_dir;
  /// Width of one time bucket: state tuples land in the block covering
  /// [t, t + granularity) so expiry and eviction work on whole blocks.
  Duration granularity = kSecond;
  /// What to do when a spill write fails (disk_fail fault): kShedOldest
  /// drops the victim block's rows, anything else keeps the block hot over
  /// budget (degrading to in-memory until the disk heals).
  OverloadPolicy overload = OverloadPolicy::kBlockSource;
};

/// Counters and gauges of the storage tier, aggregated across every table
/// registered with a store. Published as storage.* through MetricsRegistry.
struct StorageStats {
  // Gauges (current residency).
  uint64_t hot_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t blocks_resident = 0;
  uint64_t blocks_spilled = 0;
  // Counters (lifetime).
  uint64_t spills = 0;          // block files written
  uint64_t loads = 0;           // block files read back
  uint64_t evictions = 0;       // blocks dropped from the hot tier
  uint64_t spill_failures = 0;  // disk_fail write failures absorbed
  uint64_t shed_rows = 0;       // rows dropped by kShedOldest on disk_fail
  uint64_t purged_blocks = 0;   // whole-block IWP expiries
  uint64_t index_probes = 0;    // keyed probes answered by a hash index
  uint64_t index_hits = 0;      // rows the indexes delivered
  uint64_t stalls = 0;          // disk_stall penalties charged
  Duration stall_time = 0;      // total virtual time lost to disk stalls

  void PublishTo(MetricsRegistry* registry, const std::string& prefix) const;
};

/// Time-partitioned state container for one join input: an ordered list of
/// blocks, one per `[t, t + granularity)` bucket, each holding the bucket's
/// tuples in insertion order plus (when a key field is declared) a per-block
/// hash index from key hash to row positions.
///
/// Only the newest block (the tail) accepts appends; older blocks are sealed
/// and immutable, which is what makes them safely spillable: a sealed
/// block's rows never change, so its on-disk image stays valid across any
/// number of load/evict cycles. Expiry advances a live prefix inside the
/// oldest block and drops/unlinks whole blocks below the frontier — the
/// O(1) IWP purge the time partitioning exists for.
///
/// A table works standalone (never spills, no budget) until Bind() attaches
/// it to a StateStore; the operators use it unconditionally so the indexed
/// probe path is exercised even in pure in-memory mode.
///
/// Key contract: when a key field is declared, keyed probes return exactly
/// the in-band rows whose key equals the probe key (hash collisions are
/// re-verified here), in insertion order — byte-identical emission order to
/// the linear scan they replace. The caller's predicate must therefore
/// imply key equality, which is what set_equi_fields declares.
class StateTable {
 public:
  StateTable() = default;
  ~StateTable();

  StateTable(const StateTable&) = delete;
  StateTable& operator=(const StateTable&) = delete;

  /// Display name used in trace/debug output ("L", "R", "in2"...).
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const { return name_; }

  /// Declares the equi-join key field; -1 (default) disables indexing.
  /// Must be set before the first Append.
  void set_key_field(int field);
  int key_field() const { return key_field_; }

  /// Attaches the table to a store (nullptr detaches: hot-only mode) and
  /// names the owning operator for trace events and fault accounting.
  void Bind(StateStore* store, Operator* owner);

  /// Establishes the virtual time of the running operator step, used for
  /// fault windows and trace stamps of any disk work the step triggers.
  void BeginStep(Timestamp now) { now_ = now; }

  /// Virtual time lost to injected disk stalls since the last call; the
  /// operator adds it to StepResult::storage_stall so the executor charges
  /// it like any other step cost.
  Duration TakeStall();

  /// Appends one tuple: opens a new tail block when the tuple's bucket is
  /// past the current tail (sealing the tail), otherwise extends the tail
  /// (late tuples widen the tail's timestamp range instead of reopening a
  /// sealed block).
  void Append(Tuple tuple);

  /// Invokes `fn` for every live row with timestamp in [lo, hi], in
  /// insertion order. With `key` non-null and a declared key field, only
  /// rows whose key equals `*key` are delivered (via the per-block hash
  /// indexes). Spilled blocks overlapping the band are loaded back first
  /// (counted, traced, and stall-charged under an active disk_stall fault),
  /// and — when the store is over budget — dropped again as soon as their
  /// rows have been delivered (evict-behind: the file is still valid, so
  /// the drop is free), keeping the peak residency of a band that spans the
  /// whole window near the budget instead of the window size.
  /// Row lifetime: a delivered row stays valid for the duration of the
  /// `fn` callback, including nested probes on sibling tables (multi-way
  /// join) — eviction never touches the block currently being delivered or
  /// any block another in-flight probe is pointing at (blocks already
  /// resident before this probe are only moved by Append / Expire /
  /// MaybeEvict, never mid-probe).
  void Probe(Timestamp lo, Timestamp hi, const Value* key,
             const std::function<void(const Tuple&)>& fn);

  /// Expires every row with timestamp < cutoff under prefix-stop semantics
  /// (stop at the first live row, like the deque pop_front loop this
  /// replaces): whole blocks below the cutoff are dropped in O(1) —
  /// spilled ones by unlink, without loading them — and a partially expired
  /// hot block advances its live prefix. A partially expired *spilled*
  /// block is left untouched: its dead prefix provably fails every future
  /// band check, so it costs nothing until the whole block expires.
  void Expire(Timestamp cutoff);

  /// Asks the bound store to enforce the memory budget (no-op standalone).
  /// Only called from operator safe points — never while a probe holds row
  /// pointers.
  void MaybeEvict();

  /// Live (unexpired) rows across all blocks, resident or spilled.
  size_t size() const { return live_rows_; }
  /// Estimated bytes of resident rows.
  uint64_t hot_bytes() const { return hot_bytes_; }

  size_t num_blocks() const { return blocks_.size(); }
  size_t num_spilled_blocks() const;
  uint64_t spilled_bytes() const;

  uint64_t index_probes() const { return index_probes_; }
  uint64_t index_hits() const { return index_hits_; }

  /// Serializes the table: sealed spilled blocks as descriptors referencing
  /// their immutable file by id (checkpoint size O(hot state)); resident
  /// blocks inline.
  void SaveState(StateWriter& w) const;

  /// Inverse of SaveState. Spilled descriptors re-register their block file
  /// with the bound store (claiming it against orphan GC); inline blocks
  /// are restored hot with no disk image (any stale file for them is GC'd).
  void LoadState(StateReader& r);

  /// Drops all state (hot rows and disk references; files are released to
  /// the store for unlink).
  void Clear();

 private:
  friend class StateStore;

  struct Block {
    uint64_t id = 0;
    Timestamp bucket_start = 0;
    Timestamp bucket_end = 0;
    Timestamp min_ts = kMaxTimestamp;
    Timestamp max_ts = kMinTimestamp;
    /// Full insertion sequence of the bucket (empty while spilled).
    std::vector<Tuple> rows;
    /// Rows at the front that are logically expired (metadata, kept out of
    /// the immutable file).
    uint32_t expired_prefix = 0;
    /// Row count / byte estimate, valid even while spilled.
    uint32_t nrows = 0;
    uint64_t bytes = 0;
    bool sealed = false;
    /// Rows are on disk only.
    bool spilled = false;
    /// An up-to-date immutable file exists for this block (a spilled block
    /// always has one; a resident block keeps it after a load so a later
    /// eviction is a free drop, not a rewrite).
    bool disk_valid = false;
    /// key hash -> row positions, insertion order (resident + keyed only).
    std::map<uint64_t, std::vector<uint32_t>> index;
  };

  Block* tail() { return blocks_.empty() ? nullptr : blocks_.back().get(); }
  void IndexRow(Block& block, uint32_t row);
  void BuildIndex(Block& block);
  /// Ensures `block` is resident, loading its file if needed.
  void EnsureResident(Block& block);
  /// Releases a fully expired block (hot drop or store unlink).
  void PurgeBlock(Block& block);

  std::string name_;
  int key_field_ = -1;
  StateStore* store_ = nullptr;
  Operator* owner_ = nullptr;
  Timestamp now_ = 0;
  Duration pending_stall_ = 0;
  std::vector<std::unique_ptr<Block>> blocks_;
  /// Block id allocator for standalone (unbound) tables; bound tables draw
  /// graph-unique ids from the store.
  uint64_t local_next_block_id_ = 1;
  size_t live_rows_ = 0;
  uint64_t hot_bytes_ = 0;
  uint64_t index_probes_ = 0;
  uint64_t index_hits_ = 0;
};

/// Owner of the graph's spillable state: allocates block ids, enforces the
/// global memory budget by evicting the sealed blocks farthest below the
/// could-result-in frontier (smallest max timestamp — exactly the blocks
/// the IWP purge will drop first anyway), arbitrates disk faults, and ties
/// spilled blocks into the checkpoint lifecycle (manifest, per-checkpoint
/// references, deferred unlink, orphan GC on restore).
///
/// Owned by the QueryGraph (declared before the operators so it outlives
/// their tables). All entry points take one recursive mutex, so the
/// parallel sharded executor can step bound operators concurrently; in
/// deterministic and scalar modes the lock is uncontended.
class StateStore {
 public:
  explicit StateStore(StorageConfig config);
  ~StateStore() = default;

  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  const StorageConfig& config() const { return config_; }
  bool spill_enabled() const {
    return config_.mem_budget > 0 && !config_.spill_dir.empty();
  }

  /// Creates the spill directory. Call once before execution.
  Status Init();

  /// Scoped lock for compound operations that hold row pointers across
  /// several table calls (the multi-way join's recursive probe). Recursive,
  /// so the nested per-call locking stays cheap and safe.
  class Guard {
   public:
    explicit Guard(StateStore* store) : store_(store) {
      if (store_ != nullptr) store_->mu_.lock();
    }
    ~Guard() {
      if (store_ != nullptr) store_->mu_.unlock();
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    StateStore* store_;
  };

  /// Arms a disk fault (kDiskStall / kDiskFail). Routed here by
  /// Simulation::InjectFault; one fault at a time, later calls replace.
  void ArmFault(const FaultSpec& spec, uint64_t run_seed);

  /// How often the armed disk fault actually fired.
  uint64_t fault_events() const { return fault_events_; }

  /// Aggregated stats across the store and every registered table.
  StorageStats stats() const;

  // --- checkpoint integration ---

  /// Store-level manifest (block id allocator) riding in
  /// CheckpointImage::storage_blob next to the tables' own sections.
  void SaveManifest(StateWriter& w) const;
  void RestoreManifest(StateReader& r);

  /// Records that checkpoint `checkpoint_id` references every block that is
  /// spilled right now, forgets references held by checkpoints pruned by
  /// keep-N, and unlinks any deferred file no retained checkpoint needs
  /// anymore. Call after the checkpoint file is durably written.
  void OnCheckpoint(uint64_t checkpoint_id, int keep);

  /// Unlinks every block file in the spill directory that no restored table
  /// claimed. Call once after RestoreGraph (also on a fresh start, where it
  /// clears stale files from a previous incarnation).
  void GcOrphanFiles();

  /// Pins every file claimed by LoadState since the last GcOrphanFiles under
  /// `checkpoint_id` (the restored image's id) in the per-checkpoint
  /// reference map. Until keep-N pruning drops that entry, a restored block
  /// that fully expires defers its unlink instead of deleting a file the
  /// restored image still references — without this, a second crash before
  /// the next durable checkpoint would restore descriptors pointing at
  /// missing files and fail-stop on every restart. Call after the LoadState
  /// pass and before GcOrphanFiles (which clears the claim set).
  void PinRestoredClaims(uint64_t checkpoint_id);

 private:
  friend class StateTable;

  void Register(StateTable* table);
  void Unregister(StateTable* table);
  uint64_t AllocateBlockId() { return next_block_id_++; }

  /// Evicts sealed resident blocks (smallest max_ts first, block id as the
  /// deterministic tie-break) until hot bytes fit the budget. Stall/fault
  /// penalties are charged to `caller`, the table whose append triggered
  /// the pass.
  void EnforceBudget(StateTable* caller);

  /// Writes `block` of `table` out (or drops it when its file is already
  /// valid). Returns false when a disk_fail fault swallowed the write and
  /// the policy kept the block hot. Fault windows and stall penalties are
  /// evaluated against `caller` — the table whose operator is actually
  /// stepping — not the victim: the victim's now_/pending_stall_ belong to
  /// its own operator's step, which may be running concurrently on another
  /// shard without the store lock.
  bool EvictBlock(StateTable* caller, StateTable* table,
                  StateTable::Block& block);

  /// Evict-behind for a wide probe: `block` was loaded back by the running
  /// probe of `table` and its rows have all been delivered. When the store
  /// is over budget, drop it again — its file is still valid, so this is a
  /// free drop, never a write (and thus never a disk fault). Keeps a
  /// probe's peak residency near the budget instead of the full window.
  void EvictBehind(StateTable* table, StateTable::Block& block);

  /// Loads `block` of `table` back into memory. Fail-stop on I/O or CRC
  /// errors.
  void LoadBlock(StateTable* table, StateTable::Block& block);

  /// A spilled block fully expired (or was dropped): unlink its file now,
  /// or defer while a retained checkpoint still references it.
  void ReleaseBlockFile(uint64_t block_id);

  /// LoadState descriptors claim their files against the restore-time GC.
  void ClaimRestoredFile(uint64_t block_id);

  /// True and counted when the armed fault of `kind` fires at `now`.
  bool FaultFires(FaultKind kind, Timestamp now);
  /// Adds the armed stall penalty to `table` when a disk_stall is active.
  void ChargeStallIfFaulted(StateTable* table);

  StorageConfig config_;
  mutable std::recursive_mutex mu_;
  std::vector<StateTable*> tables_;
  uint64_t next_block_id_ = 1;

  FaultSpec fault_;
  Pcg32 fault_rng_;
  uint64_t fault_events_ = 0;

  // Lifetime counters for work done at store level.
  uint64_t spills_ = 0;
  uint64_t loads_ = 0;
  uint64_t evictions_ = 0;
  uint64_t spill_failures_ = 0;
  uint64_t shed_rows_ = 0;
  uint64_t purged_blocks_ = 0;
  uint64_t stalls_ = 0;
  Duration stall_time_ = 0;

  /// checkpoint id -> spilled block ids it references.
  std::map<uint64_t, std::set<uint64_t>> checkpoint_refs_;
  /// Dead blocks whose files are retained for a referencing checkpoint.
  std::set<uint64_t> pending_unlink_;
  /// Files claimed by LoadState since the last GcOrphanFiles().
  std::set<uint64_t> restored_claims_;
};

/// Deterministic per-tuple byte estimate used for budget accounting: a pure
/// function of the tuple's content, so eviction decisions replay
/// identically across runs and after recovery.
uint64_t EstimateTupleBytes(const Tuple& tuple);

/// Hash of a Value consistent with operator== (type tag + payload; doubles
/// by bit pattern). Collisions are tolerated — keyed probes re-verify with
/// operator==.
uint64_t HashValue(const Value& value);

}  // namespace dsms

#endif  // DSMS_STORAGE_STATE_STORE_H_
