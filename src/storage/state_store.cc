#include "storage/state_store.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "operators/operator.h"
#include "recovery/state_codec.h"
#include "storage/block_file.h"

namespace dsms {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// Bucket index of `ts` under `granularity`, as a floor division so
/// negative timestamps land in the bucket below zero, not astride it.
int64_t BucketOf(Timestamp ts, Duration granularity) {
  int64_t q = ts / granularity;
  if (ts % granularity < 0) --q;
  return q;
}

}  // namespace

uint64_t HashValue(const Value& value) {
  uint64_t hash = kFnvOffset;
  uint8_t tag = static_cast<uint8_t>(value.type());
  hash = FnvMix(hash, &tag, 1);
  switch (value.type()) {
    case ValueType::kInt64: {
      int64_t v = value.int64_value();
      hash = FnvMix(hash, &v, sizeof(v));
      break;
    }
    case ValueType::kDouble: {
      // Bit pattern, so the hash is ==-consistent (distinct NaNs differ,
      // but NaN != NaN anyway).
      double d = value.double_value();
      uint64_t bits;
      memcpy(&bits, &d, sizeof(bits));
      hash = FnvMix(hash, &bits, sizeof(bits));
      break;
    }
    case ValueType::kString: {
      const std::string& s = value.string_value();
      hash = FnvMix(hash, s.data(), s.size());
      break;
    }
    case ValueType::kBool: {
      uint8_t b = value.bool_value() ? 1 : 0;
      hash = FnvMix(hash, &b, 1);
      break;
    }
  }
  return hash;
}

uint64_t EstimateTupleBytes(const Tuple& tuple) {
  uint64_t bytes = sizeof(Tuple);
  const InlinedValues& values = tuple.values();
  if (values.size() > InlinedValues::kInlineCapacity) {
    bytes += values.size() * sizeof(Value);
  }
  for (const Value& v : values) {
    if (v.is_string()) bytes += v.string_value().size() + sizeof(std::string);
  }
  return bytes;
}

// ---------------------------------------------------------------- StateTable

StateTable::~StateTable() {
  if (store_ != nullptr) store_->Unregister(this);
}

void StateTable::set_key_field(int field) {
  DSMS_CHECK(blocks_.empty());
  key_field_ = field;
}

void StateTable::Bind(StateStore* store, Operator* owner) {
  if (store_ != nullptr && store_ != store) store_->Unregister(this);
  owner_ = owner;
  if (store_ != store) {
    store_ = store;
    if (store_ != nullptr) store_->Register(this);
  }
}

Duration StateTable::TakeStall() {
  Duration d = pending_stall_;
  pending_stall_ = 0;
  return d;
}

void StateTable::IndexRow(Block& block, uint32_t row) {
  if (key_field_ < 0) return;
  const Tuple& tuple = block.rows[row];
  if (key_field_ >= tuple.num_values()) return;  // malformed row: scan path
  block.index[HashValue(tuple.value(key_field_))].push_back(row);
}

void StateTable::BuildIndex(Block& block) {
  block.index.clear();
  if (key_field_ < 0) return;
  for (uint32_t i = 0; i < block.rows.size(); ++i) IndexRow(block, i);
}

void StateTable::Append(Tuple tuple) {
  DSMS_CHECK(tuple.has_timestamp());
  StateStore::Guard guard(store_);
  Timestamp ts = tuple.timestamp();
  Duration granularity =
      store_ != nullptr ? store_->config().granularity : kSecond;
  int64_t bucket = BucketOf(ts, granularity);
  Timestamp bucket_start = bucket * granularity;

  Block* t = tail();
  if (t == nullptr || bucket_start > t->bucket_start) {
    if (t != nullptr) t->sealed = true;
    auto block = std::make_unique<Block>();
    block->id = store_ != nullptr ? store_->AllocateBlockId()
                                  : local_next_block_id_++;
    block->bucket_start = bucket_start;
    block->bucket_end = bucket_start + granularity;
    blocks_.push_back(std::move(block));
    t = tail();
  }
  // Late tuples (below the tail's bucket) extend the tail rather than
  // reopening a sealed, possibly spilled block: sealed blocks stay
  // immutable, and the band checks at probe time make placement a pure
  // storage concern.
  uint64_t bytes = EstimateTupleBytes(tuple);
  t->min_ts = std::min(t->min_ts, ts);
  t->max_ts = std::max(t->max_ts, ts);
  t->rows.push_back(std::move(tuple));
  t->nrows = static_cast<uint32_t>(t->rows.size());
  t->bytes += bytes;
  hot_bytes_ += bytes;
  ++live_rows_;
  IndexRow(*t, t->nrows - 1);
}

void StateTable::EnsureResident(Block& block) {
  if (!block.spilled) return;
  DSMS_CHECK(store_ != nullptr);
  store_->LoadBlock(this, block);
}

void StateTable::Probe(Timestamp lo, Timestamp hi, const Value* key,
                       const std::function<void(const Tuple&)>& fn) {
  StateStore::Guard guard(store_);
  const bool keyed = key != nullptr && key_field_ >= 0;
  uint64_t key_hash = keyed ? HashValue(*key) : 0;
  for (auto& block_ptr : blocks_) {
    Block& block = *block_ptr;
    if (block.nrows == 0) continue;
    // Time pruning on metadata only: disjoint blocks are skipped without
    // loading them — the point of partitioning state by time.
    if (block.max_ts < lo || block.min_ts > hi) continue;
    const bool loaded_here = block.spilled;
    EnsureResident(block);
    if (keyed) {
      ++index_probes_;
      auto it = block.index.find(key_hash);
      if (it != block.index.end()) {
        for (uint32_t row : it->second) {
          if (row < block.expired_prefix) continue;
          const Tuple& stored = block.rows[row];
          Timestamp sts = stored.timestamp();
          if (sts < lo || sts > hi) continue;
          if (!(stored.value(key_field_) == *key)) continue;  // collision
          ++index_hits_;
          fn(stored);
        }
      }
    } else {
      for (uint32_t row = block.expired_prefix; row < block.rows.size();
           ++row) {
        const Tuple& stored = block.rows[row];
        Timestamp sts = stored.timestamp();
        if (sts < lo || sts > hi) continue;
        fn(stored);
      }
    }
    // Evict-behind: a block this probe had to load back is done delivering
    // (every fn call above returned, so no caller holds pointers into it);
    // if the load pushed the store over budget, drop it again now rather
    // than letting a window-spanning probe accumulate the whole window hot.
    if (loaded_here) store_->EvictBehind(this, block);
  }
}

void StateTable::PurgeBlock(Block& block) {
  size_t live = block.nrows - block.expired_prefix;
  live_rows_ -= live;
  if (block.spilled) {
    DSMS_CHECK(store_ != nullptr);
    store_->ReleaseBlockFile(block.id);
  } else {
    hot_bytes_ -= block.bytes;
    if (block.disk_valid && store_ != nullptr) {
      store_->ReleaseBlockFile(block.id);
    }
  }
}

void StateTable::Expire(Timestamp cutoff) {
  StateStore::Guard guard(store_);
  while (!blocks_.empty()) {
    Block& block = *blocks_.front();
    if (block.sealed && (block.nrows == 0 || block.max_ts < cutoff)) {
      // Whole-block purge: O(1) drop for hot blocks, O(1) unlink for
      // spilled ones — never a load.
      PurgeBlock(block);
      if (store_ != nullptr) ++store_->purged_blocks_;
      blocks_.erase(blocks_.begin());
      continue;
    }
    if (block.spilled) return;  // partially live on disk: leave it alone
    while (block.expired_prefix < block.rows.size() &&
           block.rows[block.expired_prefix].timestamp() < cutoff) {
      ++block.expired_prefix;
      --live_rows_;
    }
    // Prefix-stop: the first live row ends the pass, matching the
    // pop_front loop this replaces.
    return;
  }
}

void StateTable::MaybeEvict() {
  if (store_ != nullptr) store_->EnforceBudget(this);
}

size_t StateTable::num_spilled_blocks() const {
  size_t n = 0;
  for (const auto& block : blocks_) n += block->spilled ? 1 : 0;
  return n;
}

uint64_t StateTable::spilled_bytes() const {
  uint64_t bytes = 0;
  for (const auto& block : blocks_) {
    if (block->spilled) bytes += block->bytes;
  }
  return bytes;
}

void StateTable::SaveState(StateWriter& w) const {
  StateStore::Guard guard(store_);
  w.U32(static_cast<uint32_t>(blocks_.size()));
  for (const auto& block_ptr : blocks_) {
    const Block& block = *block_ptr;
    w.U64(block.id);
    w.Bool(block.spilled);
    w.Ts(block.bucket_start);
    w.Ts(block.bucket_end);
    w.Ts(block.min_ts);
    w.Ts(block.max_ts);
    w.U32(block.expired_prefix);
    if (block.spilled) {
      // Descriptor only: the checkpoint references the immutable file by
      // id, so checkpoint size is O(hot state).
      w.U32(block.nrows);
      w.U64(block.bytes);
    } else {
      w.U32(static_cast<uint32_t>(block.rows.size()));
      for (const Tuple& row : block.rows) w.Tup(row);
    }
    w.Bool(block.sealed);
  }
}

void StateTable::LoadState(StateReader& r) {
  Clear();
  StateStore::Guard guard(store_);
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    auto block = std::make_unique<Block>();
    block->id = r.U64();
    bool spilled = r.Bool();
    block->bucket_start = r.Ts();
    block->bucket_end = r.Ts();
    block->min_ts = r.Ts();
    block->max_ts = r.Ts();
    block->expired_prefix = r.U32();
    if (spilled) {
      block->nrows = r.U32();
      block->bytes = r.U64();
      block->spilled = true;
      block->disk_valid = true;
      if (!r.ok()) return;
      // A spilled descriptor without a bound store is a plan/config
      // mismatch (the restored plan lost its `state` statement); state
      // cannot be reconstructed, so fail loudly.
      DSMS_CHECK(store_ != nullptr);
      store_->ClaimRestoredFile(block->id);
    } else {
      uint32_t rows = r.U32();
      block->rows.reserve(rows);
      for (uint32_t j = 0; j < rows && r.ok(); ++j) {
        block->rows.push_back(r.Tup());
      }
      block->nrows = static_cast<uint32_t>(block->rows.size());
      for (const Tuple& row : block->rows) {
        block->bytes += EstimateTupleBytes(row);
      }
      // Restored inline: any file left for this id may predate appends
      // that happened before the checkpoint (a tail spilled after the
      // cut), so it is not trusted — orphan GC removes it.
      block->disk_valid = false;
      hot_bytes_ += block->bytes;
      BuildIndex(*block);
    }
    block->sealed = r.Bool();
    if (spilled) block->sealed = true;
    if (!r.ok()) return;
    live_rows_ += block->nrows - block->expired_prefix;
    blocks_.push_back(std::move(block));
  }
}

void StateTable::Clear() {
  StateStore::Guard guard(store_);
  for (auto& block : blocks_) {
    if ((block->spilled || block->disk_valid) && store_ != nullptr) {
      store_->ReleaseBlockFile(block->id);
    }
  }
  blocks_.clear();
  live_rows_ = 0;
  hot_bytes_ = 0;
}

// ---------------------------------------------------------------- StateStore

StateStore::StateStore(StorageConfig config)
    : config_(std::move(config)), fault_rng_(0, 0xd15cULL) {
  DSMS_CHECK_GT(config_.granularity, 0);
}

Status StateStore::Init() {
  if (config_.spill_dir.empty()) return OkStatus();
  if (::mkdir(config_.spill_dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return InternalError(StrFormat("mkdir %s: %s", config_.spill_dir.c_str(),
                                   strerror(errno)));
  }
  return OkStatus();
}

void StateStore::Register(StateTable* table) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tables_.push_back(table);
}

void StateStore::Unregister(StateTable* table) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  tables_.erase(std::remove(tables_.begin(), tables_.end(), table),
                tables_.end());
}

void StateStore::ArmFault(const FaultSpec& spec, uint64_t run_seed) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  fault_ = spec;
  // Same derivation shape as FaultInjector, distinct stream so a disk
  // fault and an arrival fault with equal seeds stay independent.
  fault_rng_ = Pcg32(spec.seed ^ (run_seed * 0x9e3779b97f4a7c15ULL),
                     0xd15cULL);
}

bool StateStore::FaultFires(FaultKind kind, Timestamp now) {
  if (fault_.kind != kind) return false;
  if (now < fault_.start || now >= fault_.start + fault_.duration) {
    return false;
  }
  if (kind == FaultKind::kDiskFail &&
      !fault_rng_.NextBernoulli(fault_.probability)) {
    return false;
  }
  ++fault_events_;
  return true;
}

void StateStore::ChargeStallIfFaulted(StateTable* table) {
  if (!FaultFires(FaultKind::kDiskStall, table->now_)) return;
  table->pending_stall_ += fault_.magnitude;
  ++stalls_;
  stall_time_ += fault_.magnitude;
}

void StateStore::LoadBlock(StateTable* table, StateTable::Block& block) {
  DSMS_CHECK(block.spilled);
  Result<BlockFileContents> contents =
      ReadBlockFile(BlockFilePath(config_.spill_dir, block.id));
  // Fail-stop: Result aborts on error — a missing or corrupt referenced
  // block cannot be papered over without breaking replay identity.
  BlockFileContents file = std::move(contents.value());
  DSMS_CHECK_EQ(file.rows.size(), block.nrows);
  block.rows = std::move(file.rows);
  block.spilled = false;  // disk_valid stays: the file remains usable
  table->hot_bytes_ += block.bytes;
  table->BuildIndex(block);
  ++loads_;
  ChargeStallIfFaulted(table);
  if (table->owner_ != nullptr && table->owner_->tracer() != nullptr) {
    table->owner_->tracer()->RecordStateLoad(
        table->owner_->id(), static_cast<int64_t>(block.id), block.nrows);
  }
}

bool StateStore::EvictBlock(StateTable* caller, StateTable* table,
                            StateTable::Block& block) {
  DSMS_CHECK(!block.spilled);
  DSMS_CHECK(block.sealed);
  if (!block.disk_valid) {
    if (FaultFires(FaultKind::kDiskFail, caller->now_)) {
      ++spill_failures_;
      if (config_.overload == OverloadPolicy::kShedOldest) {
        // Disk unwritable and memory over budget: shed the victim's rows,
        // mirroring the buffer policy of the same name. The block stays as
        // an empty tombstone so ids and ordering are untouched.
        size_t live = block.nrows - block.expired_prefix;
        shed_rows_ += live;
        table->live_rows_ -= live;
        table->hot_bytes_ -= block.bytes;
        block.rows.clear();
        block.rows.shrink_to_fit();
        block.index.clear();
        block.nrows = 0;
        block.expired_prefix = 0;
        block.bytes = 0;
        return true;
      }
      // Any other policy degrades to in-memory: keep the block hot (over
      // budget) and stop evicting until the disk heals.
      return false;
    }
    BlockFileContents file;
    file.block_id = block.id;
    file.bucket_start = block.bucket_start;
    file.bucket_end = block.bucket_end;
    file.min_ts = block.min_ts;
    file.max_ts = block.max_ts;
    file.rows = std::move(block.rows);
    DSMS_CHECK_OK(WriteBlockFile(config_.spill_dir, file));
    block.rows.clear();
    block.disk_valid = true;
    ++spills_;
    // The penalty lands on the caller — the step actually running — even
    // when the victim belongs to another operator: the victim's
    // now_/pending_stall_ are owned by its own (possibly concurrent) step.
    ChargeStallIfFaulted(caller);
    if (table->owner_ != nullptr && table->owner_->tracer() != nullptr) {
      table->owner_->tracer()->RecordStateSpill(
          table->owner_->id(), static_cast<int64_t>(block.id), block.nrows);
    }
  }
  block.rows.clear();
  block.rows.shrink_to_fit();
  block.index.clear();
  block.spilled = true;
  table->hot_bytes_ -= block.bytes;
  ++evictions_;
  return true;
}

void StateStore::EnforceBudget(StateTable* caller) {
  if (!spill_enabled()) return;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (;;) {
    uint64_t hot = 0;
    for (StateTable* table : tables_) hot += table->hot_bytes_;
    if (hot <= config_.mem_budget) return;
    // Victim: the sealed resident block farthest below the could-result-in
    // frontier — smallest max timestamp, block id as a deterministic
    // tie-break. The unsealed tail is never evicted, so the rows a running
    // probe can point at stay put.
    StateTable* victim_table = nullptr;
    StateTable::Block* victim = nullptr;
    for (StateTable* table : tables_) {
      for (auto& block : table->blocks_) {
        if (block->spilled || !block->sealed || block->nrows == 0) continue;
        if (victim == nullptr || block->max_ts < victim->max_ts ||
            (block->max_ts == victim->max_ts && block->id < victim->id)) {
          victim = block.get();
          victim_table = table;
        }
      }
    }
    if (victim == nullptr) return;  // everything evictable already is
    if (!EvictBlock(caller, victim_table, *victim)) {
      return;  // disk_fail: hold hot
    }
  }
}

void StateStore::EvictBehind(StateTable* table, StateTable::Block& block) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!spill_enabled()) return;
  // Only a sealed block with a still-valid file qualifies — exactly what a
  // load leaves behind — so the drop is free and fault-free.
  if (block.spilled || !block.sealed || !block.disk_valid) return;
  uint64_t hot = 0;
  for (StateTable* t : tables_) hot += t->hot_bytes_;
  if (hot <= config_.mem_budget) return;
  block.rows.clear();
  block.rows.shrink_to_fit();
  block.index.clear();
  block.spilled = true;
  table->hot_bytes_ -= block.bytes;
  ++evictions_;
}

void StateStore::ReleaseBlockFile(uint64_t block_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (const auto& [ckpt, refs] : checkpoint_refs_) {
    if (refs.count(block_id) > 0) {
      // A retained checkpoint still references the file; unlink is
      // deferred until that checkpoint is pruned (OnCheckpoint).
      pending_unlink_.insert(block_id);
      return;
    }
  }
  ::unlink(BlockFilePath(config_.spill_dir, block_id).c_str());
}

void StateStore::ClaimRestoredFile(uint64_t block_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  restored_claims_.insert(block_id);
}

void StateStore::PinRestoredClaims(uint64_t checkpoint_id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (restored_claims_.empty()) return;
  // The restored image is the only durable fallback until the next
  // checkpoint lands: treat it like any retained checkpoint so a restored
  // block that expires defers unlink (ReleaseBlockFile) instead of deleting
  // a file that image still references. OnCheckpoint's keep-N prune
  // releases the pin on the same schedule as the on-disk image itself.
  checkpoint_refs_[checkpoint_id].insert(restored_claims_.begin(),
                                         restored_claims_.end());
}

void StateStore::SaveManifest(StateWriter& w) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  w.U64(next_block_id_);
}

void StateStore::RestoreManifest(StateReader& r) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  uint64_t next = r.U64();
  if (r.ok()) next_block_id_ = next;
}

void StateStore::OnCheckpoint(uint64_t checkpoint_id, int keep) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::set<uint64_t>& refs = checkpoint_refs_[checkpoint_id];
  refs.clear();
  for (StateTable* table : tables_) {
    for (const auto& block : table->blocks_) {
      if (block->spilled) refs.insert(block->id);
    }
  }
  if (keep > 0) {
    while (checkpoint_refs_.size() > static_cast<size_t>(keep)) {
      checkpoint_refs_.erase(checkpoint_refs_.begin());
    }
  }
  for (auto it = pending_unlink_.begin(); it != pending_unlink_.end();) {
    bool referenced = false;
    for (const auto& [ckpt, ids] : checkpoint_refs_) {
      if (ids.count(*it) > 0) {
        referenced = true;
        break;
      }
    }
    if (referenced) {
      ++it;
    } else {
      ::unlink(BlockFilePath(config_.spill_dir, *it).c_str());
      it = pending_unlink_.erase(it);
    }
  }
}

void StateStore::GcOrphanFiles() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (config_.spill_dir.empty()) return;
  std::vector<std::pair<uint64_t, std::string>> files;
  if (!ListBlockFiles(config_.spill_dir, &files).ok()) return;
  for (const auto& [id, path] : files) {
    if (restored_claims_.count(id) == 0) ::unlink(path.c_str());
  }
  restored_claims_.clear();
}

StorageStats StateStore::stats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  StorageStats s;
  for (const StateTable* table : tables_) {
    s.hot_bytes += table->hot_bytes_;
    s.spilled_bytes += table->spilled_bytes();
    s.blocks_spilled += table->num_spilled_blocks();
    s.blocks_resident += table->blocks_.size() - table->num_spilled_blocks();
    s.index_probes += table->index_probes_;
    s.index_hits += table->index_hits_;
  }
  s.spills = spills_;
  s.loads = loads_;
  s.evictions = evictions_;
  s.spill_failures = spill_failures_;
  s.shed_rows = shed_rows_;
  s.purged_blocks = purged_blocks_;
  s.stalls = stalls_;
  s.stall_time = stall_time_;
  return s;
}

void StorageStats::PublishTo(MetricsRegistry* registry,
                             const std::string& prefix) const {
  registry->SetGauge(prefix + ".hot_bytes", static_cast<double>(hot_bytes));
  registry->SetGauge(prefix + ".spilled_bytes",
                     static_cast<double>(spilled_bytes));
  registry->SetGauge(prefix + ".blocks_resident",
                     static_cast<double>(blocks_resident));
  registry->SetGauge(prefix + ".blocks_spilled",
                     static_cast<double>(blocks_spilled));
  registry->SetCounter(prefix + ".spills", spills);
  registry->SetCounter(prefix + ".loads", loads);
  registry->SetCounter(prefix + ".evictions", evictions);
  registry->SetCounter(prefix + ".spill_failures", spill_failures);
  registry->SetCounter(prefix + ".shed_rows", shed_rows);
  registry->SetCounter(prefix + ".purged_blocks", purged_blocks);
  registry->SetCounter(prefix + ".index_probes", index_probes);
  registry->SetCounter(prefix + ".index_hits", index_hits);
  registry->SetCounter(prefix + ".stalls", stalls);
  registry->SetCounter(prefix + ".stall_time_us",
                       static_cast<uint64_t>(stall_time));
}

}  // namespace dsms
