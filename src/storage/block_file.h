#ifndef DSMS_STORAGE_BLOCK_FILE_H_
#define DSMS_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/tuple.h"

namespace dsms {

/// Payload of one spilled state block: the full insertion sequence of the
/// block's bucket. Files are immutable — a block is only ever written once
/// (when first evicted), reloaded verbatim, and unlinked whole; the live
/// expiry prefix is operator metadata kept outside the file, so load/evict
/// cycles never rewrite it.
struct BlockFileContents {
  uint64_t block_id = 0;
  Timestamp bucket_start = 0;
  Timestamp bucket_end = 0;
  Timestamp min_ts = kMaxTimestamp;
  Timestamp max_ts = kMinTimestamp;
  std::vector<Tuple> rows;
};

/// "<dir>/block-<id 20 digits>.blk".
std::string BlockFilePath(const std::string& dir, uint64_t block_id);

/// Parses a directory entry name of the layout above; false for foreign
/// files (orphan GC uses this to skip anything it does not own).
bool ParseBlockFileName(const std::string& name, uint64_t* block_id);

/// Atomically writes `block` as its canonical file in `dir` (write-temp +
/// fsync + rename, same discipline as checkpoints): a crash mid-write leaves
/// only an ignored .tmp file, never a half block under the final name.
/// File layout: magic "DSMSBLK1", u64 body length, u32 crc32(body), body.
Status WriteBlockFile(const std::string& dir, const BlockFileContents& block);

/// Reads and CRC-validates one block file. Loads are fail-stop: a corrupt
/// block means the durable tier lied, and no graceful answer exists that
/// preserves byte-identical replay.
Result<BlockFileContents> ReadBlockFile(const std::string& path);

/// All block files in `dir` as (id, full path), sorted by id. Missing
/// directory is an empty listing, not an error.
Status ListBlockFiles(const std::string& dir,
                      std::vector<std::pair<uint64_t, std::string>>* out);

}  // namespace dsms

#endif  // DSMS_STORAGE_BLOCK_FILE_H_
