#include "common/random.h"

#include <cmath>
#include <cstdint>

#include "common/check.h"
#include "common/time.h"

namespace dsms {

Pcg32::Pcg32(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Pcg32::NextUint32() {
  uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  uint32_t xorshifted =
      static_cast<uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  uint32_t rot = static_cast<uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint32_t Pcg32::NextBelow(uint32_t bound) {
  DSMS_CHECK_GT(bound, 0u);
  // Unbiased rejection sampling (the classic PCG bounded-rand recipe).
  uint32_t threshold = -bound % bound;
  for (;;) {
    uint32_t r = NextUint32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextDouble() {
  // 53 random bits into [0, 1).
  uint64_t hi = NextUint32();
  uint64_t lo = NextUint32();
  uint64_t bits = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits) * (1.0 / 9007199254740992.0);
}

double Pcg32::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Pcg32::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Duration Pcg32::NextExponentialGap(double events_per_second) {
  DSMS_CHECK_GT(events_per_second, 0.0);
  // Inverse transform sampling; 1 - U avoids log(0).
  double u = NextDouble();
  double seconds = -std::log(1.0 - u) / events_per_second;
  Duration gap = SecondsToDuration(seconds);
  return gap < 1 ? 1 : gap;
}

int64_t Pcg32::NextInt(int64_t lo, int64_t hi) {
  DSMS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    uint64_t r = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
    return static_cast<int64_t>(r);
  }
  if (span <= UINT32_MAX) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint32_t>(span)));
  }
  // Rare: span exceeds 32 bits. Compose two draws; slight bias is acceptable
  // for workload generation but not used by any experiment today.
  uint64_t r = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return lo + static_cast<int64_t>(r % span);
}

}  // namespace dsms
