#include "common/logging.h"

#include <cstdio>

namespace dsms {
namespace {

LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_log_level), level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), file_, line_,
               stream_.str().c_str());
}

}  // namespace internal_logging
}  // namespace dsms
