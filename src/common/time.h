#ifndef DSMS_COMMON_TIME_H_
#define DSMS_COMMON_TIME_H_

#include <cstdint>
#include <limits>

namespace dsms {

/// All times in the library are integral microseconds on a single virtual
/// timeline that starts at 0 when a simulation starts. `Timestamp` is a point
/// on that timeline; `Duration` is a difference of two points.
using Timestamp = int64_t;
using Duration = int64_t;

/// Sentinel meaning "no timestamp observed yet"; orders before every valid
/// timestamp. TSM registers start here.
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();

/// Sentinel ordering after every valid timestamp.
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000;
inline constexpr Duration kSecond = 1000 * 1000;

/// Converts a duration expressed in (possibly fractional) seconds to
/// microseconds, rounding to nearest (ties away from zero). The adjustment
/// must follow the sign: a cast truncates toward zero, so adding +0.5
/// unconditionally would round negative durations toward +inf
/// (e.g. -1.2us -> -1, not -2... and -0.6us -> 0 instead of -1).
constexpr Duration SecondsToDuration(double seconds) {
  const double scaled = seconds * static_cast<double>(kSecond);
  return static_cast<Duration>(scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5);
}

/// Converts a microsecond duration to fractional seconds.
constexpr double DurationToSeconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts a microsecond duration to fractional milliseconds.
constexpr double DurationToMillis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace dsms

#endif  // DSMS_COMMON_TIME_H_
