#ifndef DSMS_COMMON_CHECK_H_
#define DSMS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Failure discipline: the library does not use exceptions (per the style
/// guide). Recoverable, caller-visible errors are reported via Status /
/// Result. Violations of internal invariants — programmer errors — abort via
/// the DSMS_CHECK family, in both debug and release builds.

#if defined(__GNUC__) || defined(__clang__)
#define DSMS_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define DSMS_PREDICT_FALSE(x) (x)
#endif

#define DSMS_CHECK(condition)                                          \
  do {                                                                 \
    if (DSMS_PREDICT_FALSE(!(condition))) {                            \
      std::fprintf(stderr, "%s:%d: DSMS_CHECK failed: %s\n", __FILE__, \
                   __LINE__, #condition);                              \
      std::abort();                                                    \
    }                                                                  \
  } while (false)

#define DSMS_CHECK_OK(status_expr)                                        \
  do {                                                                    \
    ::dsms::Status dsms_check_ok_status = (status_expr);                  \
    if (!dsms_check_ok_status.ok()) {                                     \
      std::fprintf(stderr, "%s:%d: DSMS_CHECK_OK failed: %s\n", __FILE__, \
                   __LINE__, dsms_check_ok_status.ToString().c_str());    \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#define DSMS_CHECK_EQ(a, b) DSMS_CHECK((a) == (b))
#define DSMS_CHECK_NE(a, b) DSMS_CHECK((a) != (b))
#define DSMS_CHECK_LT(a, b) DSMS_CHECK((a) < (b))
#define DSMS_CHECK_LE(a, b) DSMS_CHECK((a) <= (b))
#define DSMS_CHECK_GT(a, b) DSMS_CHECK((a) > (b))
#define DSMS_CHECK_GE(a, b) DSMS_CHECK((a) >= (b))

#endif  // DSMS_COMMON_CHECK_H_
