#ifndef DSMS_COMMON_STRINGS_H_
#define DSMS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace dsms {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char delimiter);

/// Returns `text` with leading/trailing ASCII whitespace removed.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Parses a decimal double. Returns false (leaving *out untouched) on any
/// trailing garbage or empty input.
bool ParseDouble(std::string_view text, double* out);

/// Parses a decimal int64. Returns false on overflow or trailing garbage.
bool ParseInt64(std::string_view text, int64_t* out);

/// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Appends `text` to `out` as a quoted JSON string, escaping quotes,
/// backslashes and all control characters (RFC 8259). Every JSON emitter in
/// the tree goes through this so a newline in an operator name can never
/// produce invalid JSON.
void AppendJsonQuoted(std::string* out, std::string_view text);

/// Convenience: AppendJsonQuoted into a fresh string.
std::string JsonQuote(std::string_view text);

///// Strict RFC 8259 JSON number grammar: -?(0|[1-9][0-9]*)(.[0-9]+)?
/// ([eE][+-]?[0-9]+)?. Rejects "1.", ".5", "+1", "inf", "nan" and every
/// other strtod-ism JSON forbids.
bool IsStrictJsonNumber(std::string_view text);

}  // namespace dsms

#endif  // DSMS_COMMON_STRINGS_H_
