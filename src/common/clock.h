#ifndef DSMS_COMMON_CLOCK_H_
#define DSMS_COMMON_CLOCK_H_

#include "common/check.h"
#include "common/time.h"

namespace dsms {

/// The virtual timeline shared by the executor (which advances it by
/// per-step CPU costs) and the simulation driver (which advances it across
/// idle gaps to the next arrival event). Replaces the wall clock of the
/// paper's testbed; see DESIGN.md for the substitution rationale.
class VirtualClock {
 public:
  explicit VirtualClock(Timestamp start = 0) : now_(start) {}

  Timestamp now() const { return now_; }

  /// Advances by a non-negative duration (operator step cost).
  void Advance(Duration d) {
    DSMS_CHECK_GE(d, 0);
    now_ += d;
  }

  /// Jumps forward to `t` (next event); never moves backwards.
  void AdvanceTo(Timestamp t) {
    DSMS_CHECK_GE(t, now_);
    now_ = t;
  }

 private:
  Timestamp now_;
};

}  // namespace dsms

#endif  // DSMS_COMMON_CLOCK_H_
