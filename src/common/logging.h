#ifndef DSMS_COMMON_LOGGING_H_
#define DSMS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dsms {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the minimum level that is emitted to stderr. Defaults to kWarning so
/// benchmarks and tests stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits its accumulated message on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dsms

#define DSMS_LOG(severity)                                              \
  ::dsms::internal_logging::LogMessage(::dsms::LogLevel::k##severity,   \
                                       __FILE__, __LINE__)

#endif  // DSMS_COMMON_LOGGING_H_
