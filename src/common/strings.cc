#include "common/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <string>
#include <string_view>
#include <vector>

namespace dsms {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(pieces[i]);
  }
  return result;
}

}  // namespace dsms
