#include "common/strings.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <string>
#include <string_view>
#include <vector>

namespace dsms {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::vector<std::string> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(pieces[i]);
  }
  return result;
}

void AppendJsonQuoted(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char ch : text) {
    switch (ch) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out->append(StrFormat("\\u%04x", ch));
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  AppendJsonQuoted(&out, text);
  return out;
}

bool IsStrictJsonNumber(std::string_view text) {
  size_t i = 0;
  auto digits = [&text, &i]() {
    size_t start = i;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') ++i;
    return i > start;
  };
  if (i < text.size() && text[i] == '-') ++i;
  // Integer part: 0, or a nonzero digit followed by any digits.
  if (i >= text.size()) return false;
  if (text[i] == '0') {
    ++i;
  } else if (text[i] >= '1' && text[i] <= '9') {
    digits();
  } else {
    return false;
  }
  if (i < text.size() && text[i] == '.') {
    ++i;
    if (!digits()) return false;
  }
  if (i < text.size() && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < text.size() && (text[i] == '+' || text[i] == '-')) ++i;
    if (!digits()) return false;
  }
  return i == text.size();
}

}  // namespace dsms
