#ifndef DSMS_COMMON_STATUS_H_
#define DSMS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dsms {

/// Canonical error codes, modeled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
  /// The operation was deliberately cut short (e.g. a scheduled chaos
  /// crash); distinct from kInternal so callers can branch on it.
  kAborted = 9,
};

/// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// Lightweight success-or-error result used throughout the library instead of
/// exceptions. An OK status carries no message; error statuses carry a code
/// and a free-form message for diagnostics.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` should not
  /// be kOk; use the default constructor (or `OkStatus()`) for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns e.g. "OK" or "INVALID_ARGUMENT: window must be positive".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

inline Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status AbortedError(std::string message);

/// A value-or-error holder, a minimal analogue of absl::StatusOr<T>.
/// Accessing `value()` on an error Result aborts the process (see
/// common/check.h for the failure discipline used by this library).
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so functions
  /// can `return value;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)), has_value_(true) {}

  /// Constructs a Result holding an error. Intentionally implicit so
  /// functions can `return InvalidArgumentError(...);`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)), value_(), has_value_(false) {}

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  T value_;
  bool has_value_;
};

namespace internal_status {
[[noreturn]] void DieBecauseResultError(const Status& status);
}  // namespace internal_status

template <typename T>
void Result<T>::AbortIfError() const {
  if (!has_value_) internal_status::DieBecauseResultError(status_);
}

}  // namespace dsms

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define DSMS_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::dsms::Status dsms_return_if_error_status = (expr);  \
    if (!dsms_return_if_error_status.ok()) {              \
      return dsms_return_if_error_status;                 \
    }                                                     \
  } while (false)

#endif  // DSMS_COMMON_STATUS_H_
