#ifndef DSMS_COMMON_RANDOM_H_
#define DSMS_COMMON_RANDOM_H_

#include <cstdint>

#include "common/time.h"

namespace dsms {

/// PCG32 pseudo-random generator (O'Neill, pcg-random.org; minimal variant).
/// Deterministic across platforms, which the simulation relies on: every
/// experiment in bench/ is reproducible bit-for-bit from its seed.
class Pcg32 {
 public:
  /// Seeds the generator. Two generators with equal (seed, stream) produce
  /// identical sequences; distinct streams are statistically independent.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Returns the next 32 uniformly distributed bits.
  uint32_t NextUint32();

  /// Returns a uniform integer in [0, bound) using unbiased rejection.
  /// `bound` must be positive.
  uint32_t NextBelow(uint32_t bound);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Samples Exp(rate): the inter-arrival gap of a Poisson process with
  /// `rate` events per second, returned as a positive microsecond duration
  /// (at least 1 microsecond so virtual time always advances).
  Duration NextExponentialGap(double events_per_second);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Raw generator state, so a checkpoint can resume the exact sequence
  /// (recovery/): two generators with equal (state, inc) produce identical
  /// futures.
  uint64_t state() const { return state_; }
  uint64_t inc() const { return inc_; }
  void RestoreState(uint64_t state, uint64_t inc) {
    state_ = state;
    inc_ = inc;
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace dsms

#endif  // DSMS_COMMON_RANDOM_H_
