#include "common/status.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace dsms {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status AbortedError(std::string message) {
  return Status(StatusCode::kAborted, std::move(message));
}

namespace internal_status {

void DieBecauseResultError(const Status& status) {
  std::fprintf(stderr, "Result accessed while holding an error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace dsms
