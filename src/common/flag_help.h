#ifndef DSMS_COMMON_FLAG_HELP_H_
#define DSMS_COMMON_FLAG_HELP_H_

#include <cstdio>
#include <cstring>
#include <vector>

namespace dsms {

/// One command-line flag for the shared --help renderer: the flag itself,
/// its value placeholder ("" for boolean flags), and a one-line description.
struct FlagHelp {
  const char* flag;
  const char* value;
  const char* description;
};

/// Prints a uniform usage banner: one line of summary, then one aligned row
/// per flag. Every binary that hand-rolls argument parsing (the bench
/// harnesses, streamets_run, streamets_serve, streamets_feed) renders its
/// --help through this so the flag listings stay consistent.
inline void PrintFlagHelp(std::FILE* out, const char* program,
                          const char* summary,
                          const std::vector<FlagHelp>& flags) {
  std::fprintf(out, "usage: %s [flags]\n%s\n\nflags:\n", program, summary);
  size_t width = 0;
  for (const FlagHelp& f : flags) {
    size_t w = std::strlen(f.flag);
    if (f.value[0] != '\0') w += 1 + std::strlen(f.value);
    if (w > width) width = w;
  }
  for (const FlagHelp& f : flags) {
    char left[64];
    if (f.value[0] != '\0') {
      std::snprintf(left, sizeof(left), "%s %s", f.flag, f.value);
    } else {
      std::snprintf(left, sizeof(left), "%s", f.flag);
    }
    std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width), left,
                 f.description);
  }
}

}  // namespace dsms

#endif  // DSMS_COMMON_FLAG_HELP_H_
