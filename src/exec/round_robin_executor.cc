#include "exec/round_robin_executor.h"

#include "common/check.h"
#include "obs/tracer.h"
#include "operators/operator.h"

namespace dsms {

RoundRobinExecutor::RoundRobinExecutor(QueryGraph* graph, VirtualClock* clock,
                                       ExecConfig config, int quantum)
    : Executor(graph, clock, config), quantum_(quantum) {
  DSMS_CHECK_GE(quantum, 1);
}

void RoundRobinExecutor::AdvanceCursor() {
  cursor_ = (cursor_ + 1) % graph_->num_operators();
  used_in_quantum_ = 0;
}

void RoundRobinExecutor::MarkBlockedIwp(Operator* op) {
  // An IWP operator that is blocked while holding data is idle-waiting even
  // though it is never stepped; account for it as we pass by.
  if (op->is_iwp() && !op->HasWork() && op->HasPendingData()) {
    SetIdleBlocked(op, true);
  }
}

bool RoundRobinExecutor::StepOperator(Operator* op) {
  StepResult result;
  if (!TryBatchStep(op, &result)) {
    result = op->Step(ctx_);
    ChargeStep(*op, result);
    if (config_.batch_size > 0) ++stats_.batch_fallback_steps;
  }
  UpdateIdleTracker(op, result);
  // A batch spends one quantum unit regardless of its row count: the
  // quantum bounds consecutive *scheduling decisions*, not rows.
  ++used_in_quantum_;
  if (!result.more || used_in_quantum_ >= quantum_) {
    AdvanceCursor();
  } else if (tracer_ != nullptr) {
    // Staying on the same operator inside the quantum is round-robin's
    // Encore.
    tracer_->RecordNosRule(op->id(), NosRule::kEncore, op->id());
  }
  return true;
}

bool RoundRobinExecutor::RunStep() {
  if (!use_ready_queue()) return RunStepScan();

  // Visit candidates in cyclic order starting at the cursor. Operators
  // without a non-empty input can neither be stepped nor be idle-waiting
  // with pending data, so skipping them wholesale preserves the reference
  // scan's behavior (selection, quantum resets, and idle accounting alike).
  int id = ready_.NextCandidate(cursor_);
  bool wrapped = false;
  while (true) {
    if (id < 0) {
      if (wrapped) break;
      wrapped = true;
      id = ready_.NextCandidate(0);
      continue;
    }
    if (wrapped && id >= cursor_) break;
    Operator* op = graph_->op(id);
    if (op->HasWork()) {
      if (id != cursor_) {
        // The reference scan advanced the cursor to this operator one hop
        // at a time, zeroing the quantum along the way.
        cursor_ = id;
        used_in_quantum_ = 0;
      }
      return StepOperator(op);
    }
    MarkBlockedIwp(op);
    id = ready_.NextCandidate(id + 1);
  }
  // Full cycle found nothing runnable; the reference scan ends with the
  // cursor back where it started and the quantum reset.
  used_in_quantum_ = 0;
  ++stats_.work_scans;
  Operator* resumed = TryEtsSweep();
  if (resumed == nullptr) resumed = TryWatchdog();
  if (resumed != nullptr) {
    cursor_ = resumed->id();
    used_in_quantum_ = 0;
    return true;
  }
  ++stats_.idle_returns;
  return false;
}

bool RoundRobinExecutor::RunStepScan() {
  int n = graph_->num_operators();
  for (int scanned = 0; scanned < n; ++scanned) {
    Operator* op = graph_->op(cursor_);
    if (op->HasWork() && used_in_quantum_ < quantum_) return StepOperator(op);
    MarkBlockedIwp(op);
    AdvanceCursor();
  }
  ++stats_.work_scans;
  Operator* resumed = TryEtsSweep();
  if (resumed == nullptr) resumed = TryWatchdog();
  if (resumed != nullptr) {
    cursor_ = resumed->id();
    used_in_quantum_ = 0;
    return true;
  }
  ++stats_.idle_returns;
  return false;
}

}  // namespace dsms
