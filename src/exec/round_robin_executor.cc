#include "exec/round_robin_executor.h"

#include "common/check.h"
#include "operators/operator.h"

namespace dsms {

RoundRobinExecutor::RoundRobinExecutor(QueryGraph* graph, VirtualClock* clock,
                                       ExecConfig config, int quantum)
    : Executor(graph, clock, config), quantum_(quantum) {
  DSMS_CHECK_GE(quantum, 1);
}

void RoundRobinExecutor::AdvanceCursor() {
  cursor_ = (cursor_ + 1) % graph_->num_operators();
  used_in_quantum_ = 0;
}

bool RoundRobinExecutor::RunStep() {
  int n = graph_->num_operators();
  for (int scanned = 0; scanned < n; ++scanned) {
    Operator* op = graph_->op(cursor_);
    if (op->HasWork() && used_in_quantum_ < quantum_) {
      StepResult result = op->Step(ctx_);
      ChargeStep(result);
      UpdateIdleTracker(op, result);
      ++used_in_quantum_;
      if (!result.more || used_in_quantum_ >= quantum_) AdvanceCursor();
      return true;
    }
    // An IWP operator that is blocked while holding data is idle-waiting
    // even though it is never stepped; account for it as we pass by.
    if (op->is_iwp() && !op->HasWork() && op->HasPendingData()) {
      auto it = idle_trackers_.find(op->id());
      if (it != idle_trackers_.end()) it->second.MarkBlocked(clock_->now());
    }
    AdvanceCursor();
  }
  ++stats_.work_scans;
  Operator* resumed = TryEtsSweep();
  if (resumed != nullptr) {
    cursor_ = resumed->id();
    used_in_quantum_ = 0;
    return true;
  }
  ++stats_.idle_returns;
  return false;
}

}  // namespace dsms
