#ifndef DSMS_EXEC_GREEDY_MEMORY_EXECUTOR_H_
#define DSMS_EXEC_GREEDY_MEMORY_EXECUTOR_H_

#include <vector>

#include "common/clock.h"
#include "exec/executor.h"
#include "graph/query_graph.h"

namespace dsms {

/// Memory-greedy scheduling in the spirit of Chain (Babcock et al.,
/// SIGMOD'03 — the operator-scheduling line of work the paper's conclusion
/// contrasts with timestamp management). Each activation runs the runnable
/// operator with the best expected buffer-shrinkage per step:
///
///   priority(op) = expected(tuples consumed − tuples kept buffered)
///
/// estimated online from the operator's lifetime counters (a filter that
/// has dropped 95% of its input scores ~1.0 −0.05; a sink scores 1; a
/// fan-out copy scores negatively). Ties break toward operators closer to
/// the sink (drain before admitting more).
///
/// On-demand ETS composes exactly as with the other executors: when nothing
/// is runnable, the pending backtrack of any ETS-wanting operator is
/// resumed at its blocking source (TryEtsSweep).
///
/// This executor minimizes buffer occupancy, not latency — the
/// bench/abl_scheduler comparison quantifies the trade against DFS.
class GreedyMemoryExecutor : public Executor {
 public:
  GreedyMemoryExecutor(QueryGraph* graph, VirtualClock* clock,
                       ExecConfig config);

  bool RunStep() override;

 private:
  /// Expected net buffered-tuple reduction of one step of `op`.
  double Priority(const Operator& op) const;

  /// Distance (in arcs) from each operator to the nearest sink; the
  /// tie-breaker favoring drainage.
  std::vector<int> depth_to_sink_;
};

}  // namespace dsms

#endif  // DSMS_EXEC_GREEDY_MEMORY_EXECUTOR_H_
