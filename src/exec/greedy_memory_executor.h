#ifndef DSMS_EXEC_GREEDY_MEMORY_EXECUTOR_H_
#define DSMS_EXEC_GREEDY_MEMORY_EXECUTOR_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "exec/executor.h"
#include "graph/query_graph.h"

namespace dsms {

/// Memory-greedy scheduling in the spirit of Chain (Babcock et al.,
/// SIGMOD'03 — the operator-scheduling line of work the paper's conclusion
/// contrasts with timestamp management). Each activation runs the runnable
/// operator with the best expected buffer-shrinkage per step:
///
///   priority(op) = expected(tuples consumed − tuples kept buffered)
///
/// estimated online from the operator's lifetime counters (a filter that
/// has dropped 95% of its input scores ~1.0 −0.05; a sink scores 1; a
/// fan-out copy scores negatively). Ties break toward operators closer to
/// the sink (drain before admitting more), then toward lower operator ids.
///
/// Selection is a lazy max-heap over the ready candidates: the ReadyTracker
/// marks an operator dirty whenever a buffer event or a step could have
/// changed its runnability or priority; each RunStep re-pushes only dirty
/// candidates (version-stamped) and pops until a fresh, runnable entry
/// surfaces. This reproduces the reference full scan's argmax exactly —
/// priorities only change when an operator steps, and every step marks the
/// stepped operator dirty.
///
/// On-demand ETS composes exactly as with the other executors: when nothing
/// is runnable, the pending backtrack of any ETS-wanting operator is
/// resumed at its blocking source (TryEtsSweep).
///
/// This executor minimizes buffer occupancy, not latency — the
/// bench/abl_scheduler comparison quantifies the trade against DFS.
class GreedyMemoryExecutor : public Executor {
 public:
  GreedyMemoryExecutor(QueryGraph* graph, VirtualClock* clock,
                       ExecConfig config);

  bool RunStep() override;

 private:
  struct HeapEntry {
    double priority;
    int depth;
    int id;
    uint64_t version;
  };
  /// "Worse-than" ordering for std::priority_queue: highest priority first,
  /// then smallest depth-to-sink, then smallest id — the same total order
  /// the reference scan's strictly-better update rule induces.
  struct WorseThan {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      if (a.depth != b.depth) return a.depth > b.depth;
      return a.id > b.id;
    }
  };

  /// Expected net buffered-tuple reduction of one step of `op`.
  double Priority(const Operator& op) const;

  bool RunStepScan();
  void RefreshDirty();
  Operator* PopBest();
  void StepAndAccount(Operator* op);

  /// Distance (in arcs) from each operator to the nearest sink; the
  /// tie-breaker favoring drainage.
  std::vector<int> depth_to_sink_;

  /// Lazy-heap state (kReadyQueue mode only).
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, WorseThan> heap_;
  std::vector<uint64_t> versions_;
  std::vector<int> iwp_ids_;
};

}  // namespace dsms

#endif  // DSMS_EXEC_GREEDY_MEMORY_EXECUTOR_H_
