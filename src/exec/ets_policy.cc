#include "exec/ets_policy.h"

#include <optional>

#include "common/time.h"
#include "frontier/frontier_tracker.h"
#include "obs/tracer.h"
#include "recovery/state_codec.h"

namespace dsms {

const char* EtsModeToString(EtsMode mode) {
  switch (mode) {
    case EtsMode::kNone:
      return "none";
    case EtsMode::kOnDemand:
      return "on-demand";
  }
  return "unknown";
}

bool EtsGate::MaybeGenerate(Source* source, Timestamp now,
                            bool downstream_idle_waiting,
                            Timestamp release_bound) {
  if (policy_.mode != EtsMode::kOnDemand) return false;
  if (!downstream_idle_waiting) return false;
  if (policy_.min_interval > 0) {
    auto it = last_generation_.find(source->stream_id());
    if (it != last_generation_.end() &&
        now - it->second < policy_.min_interval) {
      return false;
    }
  }
  std::optional<Timestamp> ets = frontier_ != nullptr
                                     ? frontier_->ProposeEts(source, now)
                                     : source->ComputeEts(now);
  if (!ets.has_value()) return false;
  if (*ets < release_bound) return false;  // Could not unblock anything.
  if (!source->EmitEts(now)) return false;
  ++generated_;
  last_generation_[source->stream_id()] = now;
  if (tracer_ != nullptr) {
    tracer_->RecordEts(source->id(), EtsOrigin::kOnDemand, *ets);
  }
  return true;
}

bool EtsGate::GenerateFallback(Source* source, Timestamp now) {
  if (!source->EmitFallbackEts(now)) return false;
  ++fallback_generated_;
  last_generation_[source->stream_id()] = now;
  if (tracer_ != nullptr) {
    // After a successful emit the promised bound is the emitted ETS value.
    tracer_->RecordEts(source->id(), EtsOrigin::kWatchdog,
                       source->promised_bound());
  }
  return true;
}

void EtsGate::SaveState(StateWriter& w) const {
  w.U64(generated_);
  w.U64(fallback_generated_);
  w.U32(static_cast<uint32_t>(last_generation_.size()));
  for (const auto& [stream, when] : last_generation_) {
    w.I64(stream);
    w.Ts(when);
  }
}

void EtsGate::LoadState(StateReader& r) {
  generated_ = r.U64();
  fallback_generated_ = r.U64();
  last_generation_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int32_t stream = static_cast<int32_t>(r.I64());
    last_generation_[stream] = r.Ts();
  }
}

}  // namespace dsms
