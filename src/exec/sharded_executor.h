#ifndef DSMS_EXEC_SHARDED_EXECUTOR_H_
#define DSMS_EXEC_SHARDED_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/ready_tracker.h"
#include "core/stream_buffer.h"
#include "exec/executor.h"
#include "exec/shard_partitioner.h"
#include "graph/query_graph.h"
#include "operators/operator.h"

namespace dsms {

/// Sharded multicore execution engine (ROADMAP item 1; docs/
/// execution_model.md, "Sharded execution"). The query graph is
/// hash-partitioned across N shards by source stream id (ShardPartitioner);
/// every shard owns a contiguous-by-id slice of the operator table, its own
/// ReadyTracker, and per-shard step accounting. Punctuation and ETS flow
/// across shard boundaries along the graph's own arcs — a cross-shard arc
/// carries them shard-to-shard, and the fan-in operator's TSM registers
/// perform the min-frontier merge that preserves IWP ordering end to end.
/// Every operator holds a could-result-in subscription on the frontier
/// tracker for its ancestor streams, so lease/quarantine semantics and
/// CheckpointFrontier() work unchanged under partitioning.
///
/// Two scheduling modes (ShardMode):
///
///  - kDeterministic: all shards interleave cooperatively on one thread.
///    Control crosses shard boundaries at NOS granularity (each crossing is
///    one shard hop / kShardHop event), and each idle return is a
///    virtual-time epoch barrier at which the driver delivers the next
///    external events to every shard. Scheduling decisions replicate the
///    single-shard DFS executor exactly — the per-shard ready scans combine
///    into the same global first-candidate choice — so sink output, traces,
///    and ExecStats are byte-identical to DfsExecutor at any shard count.
///
///  - kParallel: one free-running std::thread per shard, bulk-synchronous.
///    Each RunStep() is one superstep: workers drain their inbound lock-free
///    SPSC hop queues (cross-shard arcs divert producer pushes into these
///    queues; the consumer shard applies the buffer bookkeeping on its own
///    thread), then round-robin their local candidates until the whole
///    fleet is quiescent. At the barrier the main thread merges per-shard
///    stats, advances the virtual clock by the *maximum* per-shard cost
///    (shards burn virtual CPU concurrently), and runs the ETS sweep /
///    frontier poll. Not byte-identical to the scalar schedule; conservation
///    and ordering invariants hold, and the mode is TSan-clean.
///
/// Checkpoints serialize per-shard executor blobs through
/// ExportStrategyState (cursor, epoch/hop counters, per-shard step counts);
/// restore requires the same shard count and mode.
class ShardedExecutor : public Executor, private BufferDiverter {
 public:
  /// `config.shards` >= 2 selects this executor; `config.shard_mode` picks
  /// the discipline, `config.shard_seed` seeds the per-shard Pcg32 streams
  /// (shard s draws from Pcg32(shard_seed ^ s) — deterministic at any shard
  /// count from one seed, which is how DSMS_TEST_SEED reproduces
  /// chaos-matrix failures identically).
  ShardedExecutor(QueryGraph* graph, VirtualClock* clock, ExecConfig config);
  ~ShardedExecutor() override;

  bool RunStep() override;

  const ShardPlan& plan() const { return plan_; }
  ShardMode mode() const { return mode_; }
  int num_shards() const { return plan_.num_shards; }

  /// Operator the deterministic DFS cursor is parked on; -1 when idle (and
  /// always -1 in parallel mode, where there is no global cursor).
  int current() const { return current_; }

  /// Shard-boundary crossings: NOS transitions between operators of
  /// different shards (deterministic) or tuples through hop queues
  /// (parallel). The exec.shard.hops metric.
  uint64_t shard_hops() const { return shard_hops_; }
  /// Epoch barriers passed: idle returns (deterministic) or supersteps
  /// (parallel). The exec.shard.epochs metric.
  uint64_t epochs() const { return epochs_; }
  /// Operator steps executed on `shard`.
  uint64_t shard_steps(int shard) const { return shard_steps_[shard]; }

 protected:
  std::vector<int64_t> ExportStrategyState() const override;
  void ImportStrategyState(const std::vector<int64_t>& state) override;

 private:
  /// Per-shard execution clock for parallel workers: virtual time is the
  /// epoch's start plus the cost this shard has accumulated this superstep.
  class ShardClock : public ExecContext {
   public:
    Timestamp now() const override { return epoch_start_ + cost_; }
    void Reset(Timestamp epoch_start) {
      epoch_start_ = epoch_start;
      cost_ = 0;
    }
    void Charge(Duration cost) { cost_ += cost; }
    Duration cost() const { return cost_; }

   private:
    Timestamp epoch_start_ = 0;
    Duration cost_ = 0;
  };

  /// Lock-free SPSC ring for one cross-shard arc, with a producer-local
  /// spill so a full ring can never deadlock the producer (the spill is
  /// retried before every later push to keep the arc FIFO).
  struct HopQueue {
    static constexpr size_t kRingSize = 1024;  // power of two
    std::vector<Tuple> slots{std::vector<Tuple>(kRingSize)};
    std::atomic<uint64_t> head{0};  // consumer side
    std::atomic<uint64_t> tail{0};  // producer side
    std::vector<Tuple> spill;       // producer side only
    size_t spill_head = 0;
    StreamBuffer* buffer = nullptr;  // destination arc
    int consumer_op = -1;
    int from_shard = 0;
    int to_shard = 0;

    bool TryPush(Tuple&& tuple);
    bool TryPop(Tuple* tuple);
  };

  /// Mutable per-shard state. Workers touch only their own entry during a
  /// superstep; the main thread merges at the barrier.
  struct ShardState {
    ExecStats stats;       // merged into Executor::stats_ at the barrier
    ShardClock ctx;        // parallel-mode execution context
    Duration cost = 0;     // virtual CPU burned this superstep
    uint64_t steps = 0;    // operator steps this superstep
    uint64_t hops_in = 0;  // tuples delivered from inbound queues
    int cursor = 0;        // round-robin position over local candidates
    Pcg32 rng;             // idle-backoff jitter: Pcg32(shard_seed ^ shard)
  };

  // --- deterministic mode ---
  int FindWork();
  bool RunDeterministicStep();
  /// Accounts a NOS transition `from` -> `to`; counts a shard hop and
  /// records kShardHop when the operators live on different shards.
  void NoteTransition(int from_op, int to_op);

  // --- parallel mode ---
  bool RunSuperstep();
  void EnsureWorkers();
  void WorkerLoop(int shard);
  void RunShardSuperstep(int shard);
  bool FlushSpill(HopQueue* queue);
  bool DrainInbound(int shard);
  bool StepOneCandidate(int shard);
  void StepOperator(int shard, Operator* op);
  bool ShardHasLocalWork(int shard) const;

  // BufferDiverter: producer-side interception of cross-shard pushes.
  bool Divert(StreamBuffer* buffer, Tuple&& tuple) override;

  ShardPlan plan_;
  ShardMode mode_;
  int current_ = -1;

  /// Per-shard candidate sets. Every buffer notifies the tracker of its
  /// consumer's shard, so each tracker holds exactly the global candidate
  /// set restricted to that shard (their union is DfsExecutor's ready_).
  std::vector<ReadyTracker> shard_trackers_;
  std::vector<ShardState> shard_state_;

  uint64_t shard_hops_ = 0;
  uint64_t epochs_ = 0;
  std::vector<uint64_t> shard_steps_;

  // Parallel-mode machinery. Workers are spawned lazily on the first
  // superstep and joined in the destructor.
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<HopQueue>> hop_queues_;
  std::vector<HopQueue*> queue_of_buffer_;      // by buffer id; null = local
  std::vector<std::vector<HopQueue*>> inbound_;  // by shard
  std::vector<std::vector<HopQueue*>> outbound_;  // by shard
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  uint64_t epoch_go_ = 0;        // under barrier_mutex_
  int workers_done_ = 0;         // under barrier_mutex_
  bool shutdown_ = false;        // under barrier_mutex_
  std::atomic<bool> superstep_done_{false};
  std::atomic<int> idle_workers_{0};
  std::atomic<uint64_t> hops_pushed_{0};
  std::atomic<uint64_t> hops_popped_{0};
  Timestamp epoch_start_ = 0;
  /// Serializes global listener dispatch (QueueSizeTracker, OrderValidator,
  /// tracer-fed listeners) across shard threads; installed on every buffer
  /// in parallel mode.
  std::mutex notify_mutex_;
};

}  // namespace dsms

#endif  // DSMS_EXEC_SHARDED_EXECUTOR_H_
