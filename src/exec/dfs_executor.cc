#include "exec/dfs_executor.h"

#include "common/check.h"
#include "obs/tracer.h"

namespace dsms {

DfsExecutor::DfsExecutor(QueryGraph* graph, VirtualClock* clock,
                         ExecConfig config)
    : Executor(graph, clock, config) {}

int DfsExecutor::FindWork() {
  ++stats_.work_scans;
  if (!use_ready_queue()) {
    for (const auto& op : graph_->operators()) {
      if (op->HasWork()) return op->id();
    }
    return -1;
  }
  // Only operators with a non-empty input can have work (sources never do);
  // probing candidates in id order selects the same operator the full scan
  // would.
  for (int id = ready_.NextCandidate(0); id >= 0;
       id = ready_.NextCandidate(id + 1)) {
    if (graph_->op(id)->HasWork()) return id;
  }
  return -1;
}

bool DfsExecutor::RunStep() {
  if (current_ < 0) {
    current_ = FindWork();
    if (current_ < 0) {
      Operator* resumed = TryEtsSweep();
      if (resumed == nullptr) resumed = TryWatchdog();
      if (resumed == nullptr) {
        ++stats_.idle_returns;
        return false;
      }
      current_ = resumed->id();
    }
  }

  Operator* op = graph_->op(current_);
  StepResult result;
  if (!TryBatchStep(op, &result)) {
    result = op->Step(ctx_);
    ChargeStep(*op, result);
    if (config_.batch_size > 0) ++stats_.batch_fallback_steps;
  }
  UpdateIdleTracker(op, result);

  // Next-Operator-Selection.
  if (result.yield && op->num_outputs() > 0) {
    current_ = FirstSuccessorWithInput(op)->id();  // Forward
    if (tracer_ != nullptr) {
      tracer_->RecordNosRule(op->id(), NosRule::kForward, current_);
    }
    return true;
  }
  if (result.more) {
    if (tracer_ != nullptr) {
      tracer_->RecordNosRule(op->id(), NosRule::kEncore, op->id());
    }
    return true;  // Encore: next := self
  }
  if (op->num_inputs() == 0) {
    // A source relay step with nothing buffered; nothing upstream to visit.
    current_ = -1;
    return true;
  }
  Operator* next =
      BacktrackToWork(op, result.blocked_input, result.idle_waiting);
  current_ = next == nullptr ? -1 : next->id();
  return true;
}

}  // namespace dsms
