#include "exec/greedy_memory_executor.h"

#include <deque>
#include <vector>

#include "common/check.h"
#include "operators/operator.h"

namespace dsms {

GreedyMemoryExecutor::GreedyMemoryExecutor(QueryGraph* graph,
                                           VirtualClock* clock,
                                           ExecConfig config)
    : Executor(graph, clock, config) {
  // Reverse BFS from the sinks over producer->consumer arcs.
  int n = graph->num_operators();
  depth_to_sink_.assign(static_cast<size_t>(n), n + 1);
  std::deque<int> frontier;
  for (int i = 0; i < n; ++i) {
    if (graph->op(i)->num_outputs() == 0) {
      depth_to_sink_[static_cast<size_t>(i)] = 0;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    int v = frontier.front();
    frontier.pop_front();
    Operator* op = graph->op(v);
    for (int j = 0; j < op->num_inputs(); ++j) {
      int pred = graph->producer_of(op->input(j)->id());
      if (depth_to_sink_[static_cast<size_t>(pred)] >
          depth_to_sink_[static_cast<size_t>(v)] + 1) {
        depth_to_sink_[static_cast<size_t>(pred)] =
            depth_to_sink_[static_cast<size_t>(v)] + 1;
        frontier.push_back(pred);
      }
    }
  }
  if (use_ready_queue()) {
    versions_.assign(static_cast<size_t>(n), 0);
    ready_.set_track_dirty(true);
    // The base constructor seeded the candidate set before dirty tracking
    // was on; mark everything dirty once so the first RunStep builds the
    // heap from scratch.
    for (int i = 0; i < n; ++i) ready_.MarkDirty(i);
    for (int i = 0; i < n; ++i) {
      if (graph->op(i)->is_iwp()) iwp_ids_.push_back(i);
    }
  }
}

double GreedyMemoryExecutor::Priority(const Operator& op) const {
  // One step consumes ~1 buffered tuple and emits `out_rate` tuples into
  // downstream buffers (estimated from lifetime counters; optimistic 0
  // before any observation, so new operators get tried).
  const OperatorStats& stats = op.stats();
  uint64_t in = stats.data_in + stats.punctuation_in;
  uint64_t out = stats.data_out + stats.punctuation_out;
  double out_rate = in == 0 ? 0.0
                            : static_cast<double>(out) /
                                  static_cast<double>(in);
  if (op.num_outputs() == 0) out_rate = 0.0;  // sinks retire tuples
  return 1.0 - out_rate;
}

void GreedyMemoryExecutor::RefreshDirty() {
  for (int id : ready_.dirty()) {
    ++versions_[static_cast<size_t>(id)];
    if (!ready_.IsCandidate(id)) continue;
    Operator* op = graph_->op(id);
    heap_.push(HeapEntry{Priority(*op), depth_to_sink_[static_cast<size_t>(id)],
                         id, versions_[static_cast<size_t>(id)]});
  }
  ready_.ClearDirty();
}

Operator* GreedyMemoryExecutor::PopBest() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    if (top.version != versions_[static_cast<size_t>(top.id)]) continue;
    Operator* op = graph_->op(top.id);
    // A candidate whose HasWork() is currently false stays out of the heap
    // until a buffer event re-dirties it (any event that could flip
    // HasWork() marks the operator dirty).
    if (!ready_.IsCandidate(top.id) || !op->HasWork()) continue;
    return op;
  }
  return nullptr;
}

void GreedyMemoryExecutor::StepAndAccount(Operator* op) {
  StepResult result = op->Step(ctx_);
  ChargeStep(*op, result);
  UpdateIdleTracker(op, result);
  // The step changed this operator's lifetime counters (its priority) even
  // when no buffer event fired; force a heap refresh.
  ready_.MarkDirty(op->id());
}

bool GreedyMemoryExecutor::RunStep() {
  if (!use_ready_queue()) return RunStepScan();
  // Blocked IWP operators are never selected (no HasWork); the reference
  // scan accounts for their idle-waiting on every activation.
  for (int id : iwp_ids_) {
    if (!ready_.IsCandidate(id)) continue;
    Operator* op = graph_->op(id);
    if (!op->HasWork() && op->HasPendingData()) {
      SetIdleBlocked(op, true);
    }
  }
  RefreshDirty();
  Operator* best = PopBest();
  ++stats_.work_scans;
  if (best == nullptr) {
    Operator* resumed = TryEtsSweep();
    if (resumed == nullptr) resumed = TryWatchdog();
    if (resumed == nullptr) {
      ++stats_.idle_returns;
      return false;
    }
    best = resumed;
  }
  StepAndAccount(best);
  return true;
}

bool GreedyMemoryExecutor::RunStepScan() {
  Operator* best = nullptr;
  double best_priority = 0.0;
  int best_depth = 0;
  for (const auto& op : graph_->operators()) {
    // Blocked IWP operators are never selected (no HasWork); account for
    // their idle-waiting as we pass by.
    if (op->is_iwp() && !op->HasWork() && op->HasPendingData()) {
      SetIdleBlocked(op.get(), true);
    }
    if (!op->HasWork()) continue;
    double priority = Priority(*op);
    int depth = depth_to_sink_[static_cast<size_t>(op->id())];
    if (best == nullptr || priority > best_priority ||
        (priority == best_priority && depth < best_depth)) {
      best = op.get();
      best_priority = priority;
      best_depth = depth;
    }
  }
  ++stats_.work_scans;
  if (best == nullptr) {
    Operator* resumed = TryEtsSweep();
    if (resumed == nullptr) resumed = TryWatchdog();
    if (resumed == nullptr) {
      ++stats_.idle_returns;
      return false;
    }
    best = resumed;
  }
  StepResult result = best->Step(ctx_);
  ChargeStep(*best, result);
  UpdateIdleTracker(best, result);
  return true;
}

}  // namespace dsms
