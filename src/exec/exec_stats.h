#ifndef DSMS_EXEC_EXEC_STATS_H_
#define DSMS_EXEC_EXEC_STATS_H_

#include <cstdint>
#include <string>

namespace dsms {

class MetricsRegistry;

/// Counters maintained by executors; one instance per executor run.
struct ExecStats {
  /// Operator steps that consumed a data tuple.
  uint64_t data_steps = 0;
  /// Operator steps that consumed a punctuation tuple.
  uint64_t punctuation_steps = 0;
  /// Operator steps that consumed nothing (blocked probes).
  uint64_t empty_steps = 0;
  /// Backtrack walks initiated (Backtrack NOS rule firings).
  uint64_t backtracks = 0;
  /// Individual hops taken during backtrack walks.
  uint64_t backtrack_hops = 0;
  /// On-demand ETS punctuations generated at sources.
  uint64_t ets_generated = 0;
  /// Fallback ETS punctuations emitted by the source-liveness watchdog
  /// (degraded mode: a silent source was drained via the skew contract).
  uint64_t watchdog_ets = 0;
  /// Times control returned to the scheduler with nothing runnable.
  uint64_t idle_returns = 0;
  /// Scans over the operator table looking for runnable work.
  uint64_t work_scans = 0;
  /// Columnar batches drained and processed (batch mode only).
  uint64_t batches = 0;
  /// Data rows carried by those batches (batch_rows / batches = mean batch
  /// occupancy; every such row is also counted in data_steps).
  uint64_t batch_rows = 0;
  /// Batch drains stopped early by a punctuation mid-buffer (the ordering
  /// cut a batch is never allowed to span).
  uint64_t batch_punct_splits = 0;
  /// Steps that fell back to the scalar path while batch mode was on
  /// (operator without a kernel, punctuation at the front, fan-in).
  uint64_t batch_fallback_steps = 0;

  uint64_t total_steps() const {
    return data_steps + punctuation_steps + empty_steps;
  }

  friend bool operator==(const ExecStats& a, const ExecStats& b) {
    return a.data_steps == b.data_steps &&
           a.punctuation_steps == b.punctuation_steps &&
           a.empty_steps == b.empty_steps && a.backtracks == b.backtracks &&
           a.backtrack_hops == b.backtrack_hops &&
           a.ets_generated == b.ets_generated &&
           a.watchdog_ets == b.watchdog_ets &&
           a.idle_returns == b.idle_returns && a.work_scans == b.work_scans &&
           a.batches == b.batches && a.batch_rows == b.batch_rows &&
           a.batch_punct_splits == b.batch_punct_splits &&
           a.batch_fallback_steps == b.batch_fallback_steps;
  }
  friend bool operator!=(const ExecStats& a, const ExecStats& b) {
    return !(a == b);
  }

  std::string ToString() const;

  /// Registers every counter as a live view under `prefix` (e.g.
  /// "exec.data_steps"): the registry reads this struct at snapshot time,
  /// so this object must outlive the registry's snapshots. The struct's
  /// fields remain the accessors; the registry is the reporting path.
  ///
  /// `include_deprecated` additionally emits the deprecated `watchdog_ets`
  /// key, which aliases `frontier.lease_expired_ets` (same field). Only the
  /// `--metrics` JSON output path opts in; aggregation paths must not, or
  /// summing all counters double-counts lease ETS.
  void BindTo(MetricsRegistry* registry, const std::string& prefix,
              bool include_deprecated = false) const;

  /// Copies every counter into the registry under `prefix` (a point-in-time
  /// snapshot; safe after this struct dies). See BindTo for
  /// `include_deprecated`.
  void PublishTo(MetricsRegistry* registry, const std::string& prefix,
                 bool include_deprecated = false) const;
};

}  // namespace dsms

#endif  // DSMS_EXEC_EXEC_STATS_H_
