#ifndef DSMS_EXEC_DFS_EXECUTOR_H_
#define DSMS_EXEC_DFS_EXECUTOR_H_

#include "common/clock.h"
#include "exec/executor.h"
#include "graph/query_graph.h"
#include "operators/operator.h"

namespace dsms {

/// The depth-first execution strategy of Section 3.1 — "basically equivalent
/// to a first-in-first-out strategy: tuples are sent to the next operator
/// down the path as soon as they are produced" — implemented with the three
/// Next-Operator-Selection rules:
///
///   Forward:   if yield then next := succ
///   Encore:    else if more then next := self
///   Backtrack: else next := pred_j (the predecessor feeding the blocking
///              input) and repeat the NOS step on pred_j
///
/// extended with on-demand ETS generation when backtracking reaches an empty
/// source while an idle-waiting operator holds blocked data (Section 4).
///
/// Differences from the paper's presentation, both behaviour-preserving:
///  - sink nodes are schedulable operators here, so the "last operator
///    before the Sink ignores Forward" special case falls out naturally
///    (Forward enters the sink, which drains via Encore);
///  - when a blocked component is re-activated by the scheduler after time
///    passed, the executor resumes the pending backtrack at the blocking
///    source directly (TryEtsSweep) instead of replaying the walk.
class DfsExecutor : public Executor {
 public:
  DfsExecutor(QueryGraph* graph, VirtualClock* clock, ExecConfig config);

  bool RunStep() override;

  /// Operator the DFS cursor is parked on; -1 when idle.
  int current() const { return current_; }

 protected:
  std::vector<int64_t> ExportStrategyState() const override {
    return {current_};
  }
  void ImportStrategyState(const std::vector<int64_t>& state) override {
    if (state.size() == 1) current_ = static_cast<int>(state[0]);
  }

 private:
  /// Scans for an operator with processable input (a component whose source
  /// buffers received tuples, or leftover work). Returns -1 if none.
  int FindWork();

  int current_ = -1;
};

}  // namespace dsms

#endif  // DSMS_EXEC_DFS_EXECUTOR_H_
