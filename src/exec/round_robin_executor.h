#ifndef DSMS_EXEC_ROUND_ROBIN_EXECUTOR_H_
#define DSMS_EXEC_ROUND_ROBIN_EXECUTOR_H_

#include "common/clock.h"
#include "exec/executor.h"
#include "graph/query_graph.h"

namespace dsms {

/// Baseline scheduling strategy (extension; the paper considers DFS and
/// notes operator scheduling as orthogonal related work): visits operators
/// cyclically and gives each runnable operator a quantum of steps before
/// moving on. On-demand ETS composes with it: when a full cycle finds
/// nothing runnable, the pending backtrack of any idle-waiting IWP operator
/// is resumed at its blocking source (TryEtsSweep).
///
/// Compared with DFS, tuples are not pushed to the output as soon as
/// produced, so output latency is typically higher at equal cost — measured
/// by bench/abl_scheduler.
class RoundRobinExecutor : public Executor {
 public:
  /// `quantum`: max consecutive steps per operator visit (>= 1).
  RoundRobinExecutor(QueryGraph* graph, VirtualClock* clock, ExecConfig config,
                     int quantum = 8);

  bool RunStep() override;

 protected:
  std::vector<int64_t> ExportStrategyState() const override {
    return {cursor_, used_in_quantum_};
  }
  void ImportStrategyState(const std::vector<int64_t>& state) override {
    if (state.size() == 2) {
      cursor_ = static_cast<int>(state[0]);
      used_in_quantum_ = static_cast<int>(state[1]);
    }
  }

 private:
  void AdvanceCursor();
  void MarkBlockedIwp(Operator* op);
  bool StepOperator(Operator* op);
  /// Reference O(n) scan (SchedulerMode::kScanReference).
  bool RunStepScan();

  int quantum_;
  int cursor_ = 0;
  int used_in_quantum_ = 0;
};

}  // namespace dsms

#endif  // DSMS_EXEC_ROUND_ROBIN_EXECUTOR_H_
