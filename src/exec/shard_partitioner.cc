#include "exec/shard_partitioner.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "graph/query_graph.h"
#include "operators/source.h"

namespace dsms {
namespace {

/// Set-union of two ascending vectors into `dst`; returns true on growth.
bool MergeAscending(std::vector<int32_t>* dst, const std::vector<int32_t>& src) {
  const size_t before = dst->size();
  std::vector<int32_t> merged;
  merged.reserve(dst->size() + src.size());
  std::set_union(dst->begin(), dst->end(), src.begin(), src.end(),
                 std::back_inserter(merged));
  *dst = std::move(merged);
  return dst->size() != before;
}

}  // namespace

uint32_t ShardPartitioner::HashStream(int32_t stream_id) {
  uint32_t hash = 2166136261u;
  uint32_t bytes = static_cast<uint32_t>(stream_id);
  for (int i = 0; i < 4; ++i) {
    hash ^= (bytes >> (8 * i)) & 0xffu;
    hash *= 16777619u;
  }
  return hash;
}

ShardPlan ShardPartitioner::Partition(const QueryGraph& graph,
                                      int num_shards) {
  DSMS_CHECK(graph.validated());
  DSMS_CHECK_GE(num_shards, 1);
  ShardPlan plan;
  plan.num_shards = num_shards;
  const int num_ops = graph.num_operators();
  plan.op_shard.assign(num_ops, -1);
  plan.upstream_streams.assign(num_ops, {});

  // Sources anchor the partitioning: hash of the stream id mod N.
  for (Source* source : graph.sources()) {
    plan.op_shard[source->id()] = static_cast<int>(
        HashStream(source->stream_id()) % static_cast<uint32_t>(num_shards));
    plan.upstream_streams[source->id()].push_back(source->stream_id());
  }

  // First-input lineage, iterated to fixpoint (operator ids are not
  // guaranteed topological; the graph is a validated DAG so this
  // terminates). An input-less non-source node — none exist today — would
  // home on shard 0.
  bool progress = true;
  while (progress) {
    progress = false;
    for (const auto& op : graph.operators()) {
      if (plan.op_shard[op->id()] >= 0) continue;
      if (op->num_inputs() == 0) {
        plan.op_shard[op->id()] = 0;
        progress = true;
        continue;
      }
      const int pred = graph.producer_of(op->input(0)->id());
      if (pred >= 0 && plan.op_shard[pred] >= 0) {
        plan.op_shard[op->id()] = plan.op_shard[pred];
        progress = true;
      }
    }
  }
  for (int id = 0; id < num_ops; ++id) {
    DSMS_CHECK_GE(plan.op_shard[id], 0);
  }

  plan.shard_ops.assign(num_shards, {});
  for (int id = 0; id < num_ops; ++id) {
    plan.shard_ops[plan.op_shard[id]].push_back(id);  // ids ascend
  }

  const int num_buffers = graph.num_buffers();
  plan.arc_crosses.assign(num_buffers, 0);
  for (int b = 0; b < num_buffers; ++b) {
    const int producer = graph.producer_of(b);
    const int consumer = graph.consumer_of(b);
    if (producer >= 0 && consumer >= 0 &&
        plan.op_shard[producer] != plan.op_shard[consumer]) {
      plan.arc_crosses[b] = 1;
      plan.cross_arcs.push_back(b);
    }
  }

  // Could-result-in closure: an operator's subscription set is the union of
  // its predecessors' sets, propagated to fixpoint over the arcs.
  progress = true;
  while (progress) {
    progress = false;
    for (int b = 0; b < num_buffers; ++b) {
      const int producer = graph.producer_of(b);
      const int consumer = graph.consumer_of(b);
      if (producer < 0 || consumer < 0) continue;
      progress |= MergeAscending(&plan.upstream_streams[consumer],
                                 plan.upstream_streams[producer]);
    }
  }
  return plan;
}

std::string ShardPlan::ToString() const {
  std::string out = StrFormat("shards=%d cross_arcs=%d\n", num_shards,
                              static_cast<int>(cross_arcs.size()));
  for (int s = 0; s < num_shards; ++s) {
    out += StrFormat("  shard %d:", s);
    for (int id : shard_ops[s]) out += StrFormat(" %d", id);
    out += "\n";
  }
  return out;
}

}  // namespace dsms
