#ifndef DSMS_EXEC_ETS_POLICY_H_
#define DSMS_EXEC_ETS_POLICY_H_

#include <cstdint>
#include <map>

#include "common/time.h"
#include "operators/source.h"

namespace dsms {

class FrontierTracker;
class StateReader;
class StateWriter;
class Tracer;

/// Whether the executor generates Enabling Time-Stamps on demand.
enum class EtsMode {
  /// Never generate ETS at sources (scenarios A and B; in B, punctuation is
  /// injected periodically from outside, see sim/HeartbeatInjector).
  kNone = 0,
  /// Generate an ETS when backtracking reaches an empty source while an IWP
  /// operator downstream is idle-waiting (scenario C, the paper's
  /// contribution).
  kOnDemand = 1,
};

const char* EtsModeToString(EtsMode mode);

/// Configuration of on-demand ETS generation.
struct EtsPolicy {
  EtsMode mode = EtsMode::kNone;

  /// Optional throttle: minimum virtual time between two ETS generated at
  /// the same source. 0 = unthrottled (the paper's behaviour); larger values
  /// trade reactivation latency for fewer punctuation tuples.
  Duration min_interval = 0;
};

/// Stateful gate applying an EtsPolicy. The executor consults it every time
/// a backtrack reaches an empty source; generation additionally requires
/// that the walk actually passed an idle-waiting operator (the "on-demand"
/// guard — without it an empty graph would livelock producing ETS forever)
/// and that the source can produce a strictly advancing bound
/// (Source::ComputeEts).
class EtsGate {
 public:
  explicit EtsGate(EtsPolicy policy) : policy_(policy) {}

  /// Attempts ETS generation at `source` at virtual time `now`;
  /// `downstream_idle_waiting` reports whether the backtrack walk passed an
  /// operator holding back results, and `release_bound` is the smallest
  /// bound that would actually release them (the ETS is suppressed if the
  /// source cannot promise that much yet — generating a weaker bound could
  /// not unblock anything and would busy-spin the backtrack loop). Returns
  /// true if a punctuation was pushed into the source's output buffer.
  bool MaybeGenerate(Source* source, Timestamp now,
                     bool downstream_idle_waiting, Timestamp release_bound);

  /// Liveness-watchdog path: emits a fallback ETS at a source the watchdog
  /// declared silent. Deliberately bypasses both the mode check (the
  /// watchdog is a safety net, not scenario policy — it must work even under
  /// EtsMode::kNone) and the min_interval throttle (a throttle tuned for
  /// steady-state punctuation volume must not suppress the only mechanism
  /// that drains a stalled stream). Returns true if a punctuation was
  /// pushed; records the generation time so the regular path stays
  /// throttled relative to it.
  bool GenerateFallback(Source* source, Timestamp now);

  uint64_t generated() const { return generated_; }
  uint64_t fallback_generated() const { return fallback_generated_; }
  const EtsPolicy& policy() const { return policy_; }

  /// Execution tracer recording kEtsGenerated events (both origins flow
  /// through this gate, so one hook covers every executor); null = off.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Frontier coordination service: when attached, the candidate ETS bound
  /// is served by a frontier query (FrontierTracker::ProposeEts) instead of
  /// being read off the source directly. The answer is identical by
  /// construction — the tracker and the source share one promise state —
  /// so attaching the tracker never changes execution; it centralizes where
  /// bounds are asked for. Null = query the source (legacy layering).
  void set_frontier(FrontierTracker* frontier) { frontier_ = frontier; }

  /// Checkpoint support (recovery/): counters and per-source throttle
  /// state, so a restarted gate keeps the min_interval promise.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 private:
  EtsPolicy policy_;
  Tracer* tracer_ = nullptr;
  FrontierTracker* frontier_ = nullptr;
  uint64_t generated_ = 0;
  uint64_t fallback_generated_ = 0;
  std::map<int32_t, Timestamp> last_generation_;  // keyed by stream id
};

}  // namespace dsms

#endif  // DSMS_EXEC_ETS_POLICY_H_
