#include "exec/exec_stats.h"

#include <string>
#include <utility>

#include "common/strings.h"
#include "obs/metrics_registry.h"

namespace dsms {
namespace {

/// The one name->field table both registry plumbings share.
template <typename Fn>
void ForEachCounter(const ExecStats& stats, const std::string& prefix,
                    bool include_deprecated, Fn&& fn) {
  fn(prefix + ".data_steps", &stats.data_steps);
  fn(prefix + ".punctuation_steps", &stats.punctuation_steps);
  fn(prefix + ".empty_steps", &stats.empty_steps);
  fn(prefix + ".backtracks", &stats.backtracks);
  fn(prefix + ".backtrack_hops", &stats.backtrack_hops);
  fn(prefix + ".ets_generated", &stats.ets_generated);
  // `watchdog_ets` is the deprecated spelling kept for JSON consumers only;
  // `frontier.lease_expired_ets` is the canonical name under the frontier
  // coordination service. The alias backs the same field, so emitting both
  // unconditionally made any consumer that sums all counters double-count
  // lease ETS — the deprecated key is therefore opt-in.
  if (include_deprecated) {
    fn(prefix + ".watchdog_ets", &stats.watchdog_ets);
  }
  fn(prefix + ".frontier.lease_expired_ets", &stats.watchdog_ets);
  fn(prefix + ".idle_returns", &stats.idle_returns);
  fn(prefix + ".work_scans", &stats.work_scans);
  fn(prefix + ".batch.batches", &stats.batches);
  fn(prefix + ".batch.rows", &stats.batch_rows);
  fn(prefix + ".batch.punct_splits", &stats.batch_punct_splits);
  fn(prefix + ".batch.fallback_steps", &stats.batch_fallback_steps);
}

}  // namespace

std::string ExecStats::ToString() const {
  return StrFormat(
      "data_steps=%llu punct_steps=%llu empty_steps=%llu backtracks=%llu "
      "hops=%llu ets=%llu watchdog_ets=%llu idle_returns=%llu scans=%llu "
      "batches=%llu batch_rows=%llu batch_splits=%llu batch_fallbacks=%llu",
      static_cast<unsigned long long>(data_steps),
      static_cast<unsigned long long>(punctuation_steps),
      static_cast<unsigned long long>(empty_steps),
      static_cast<unsigned long long>(backtracks),
      static_cast<unsigned long long>(backtrack_hops),
      static_cast<unsigned long long>(ets_generated),
      static_cast<unsigned long long>(watchdog_ets),
      static_cast<unsigned long long>(idle_returns),
      static_cast<unsigned long long>(work_scans),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batch_rows),
      static_cast<unsigned long long>(batch_punct_splits),
      static_cast<unsigned long long>(batch_fallback_steps));
}

void ExecStats::BindTo(MetricsRegistry* registry, const std::string& prefix,
                       bool include_deprecated) const {
  ForEachCounter(*this, prefix, include_deprecated,
                 [registry](std::string name, const uint64_t* field) {
                   registry->RegisterView(std::move(name), [field]() {
                     return static_cast<double>(*field);
                   });
                 });
}

void ExecStats::PublishTo(MetricsRegistry* registry, const std::string& prefix,
                          bool include_deprecated) const {
  ForEachCounter(*this, prefix, include_deprecated,
                 [registry](std::string name, const uint64_t* field) {
                   registry->SetCounter(name, *field);
                 });
}

}  // namespace dsms
