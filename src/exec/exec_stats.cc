#include "exec/exec_stats.h"

#include <string>

#include "common/strings.h"

namespace dsms {

std::string ExecStats::ToString() const {
  return StrFormat(
      "data_steps=%llu punct_steps=%llu empty_steps=%llu backtracks=%llu "
      "hops=%llu ets=%llu watchdog_ets=%llu idle_returns=%llu scans=%llu",
      static_cast<unsigned long long>(data_steps),
      static_cast<unsigned long long>(punctuation_steps),
      static_cast<unsigned long long>(empty_steps),
      static_cast<unsigned long long>(backtracks),
      static_cast<unsigned long long>(backtrack_hops),
      static_cast<unsigned long long>(ets_generated),
      static_cast<unsigned long long>(watchdog_ets),
      static_cast<unsigned long long>(idle_returns),
      static_cast<unsigned long long>(work_scans));
}

}  // namespace dsms
