#ifndef DSMS_EXEC_EXECUTOR_H_
#define DSMS_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/time.h"
#include "core/column_batch.h"
#include "core/ready_tracker.h"
#include "exec/ets_policy.h"
#include "exec/exec_stats.h"
#include "frontier/frontier_tracker.h"
#include "graph/query_graph.h"
#include "metrics/idle_wait_tracker.h"
#include "operators/operator.h"

namespace dsms {

class StateReader;
class StateWriter;
class Tracer;

/// Virtual CPU cost model: how much the clock advances per operator step.
/// Defaults are calibrated so the reproduced figures land in the paper's
/// regime (see EXPERIMENTS.md); every bench states the values it uses.
struct CostModel {
  /// Step that consumed a data tuple.
  Duration data_step = 25;
  /// Step that consumed a punctuation tuple.
  Duration punctuation_step = 20;
  /// Step that consumed nothing (blocked/empty probe).
  Duration empty_step = 2;
  /// One hop of a backtrack walk (scheduling overhead).
  Duration backtrack_hop = 2;
  /// Generating one ETS at a source.
  Duration ets_generation = 5;
};

/// How executors discover runnable operators.
enum class SchedulerMode {
  /// Incrementally maintained candidate set (ReadyTracker): buffers report
  /// empty<->non-empty transitions and executors only probe operators with
  /// at least one non-empty input. The default.
  kReadyQueue = 0,
  /// Full O(n) operator-table scans, byte-for-byte the original behavior.
  /// Kept as the oracle for the trace-equivalence tests.
  kScanReference = 1,
};

/// DEPRECATED source-liveness watchdog knob. The per-executor watchdog has
/// been replaced by the frontier tracker's renewable leases (see
/// FrontierPolicy and docs/frontier.md): a non-zero silence_horizon is
/// aliased onto LeasePolicy::duration by the Executor constructor, so
/// existing configs and plan files keep working for one release. The legacy
/// code path itself survives only as the FrontierMode::kLegacyWatchdog
/// oracle.
struct WatchdogPolicy {
  /// Virtual time a source may stay silent before its lease expires;
  /// 0 disables lease expiry. Alias of FrontierPolicy::lease.duration.
  Duration silence_horizon = 0;
};

/// How the sharded executor schedules its shards (exec/sharded_executor.h).
enum class ShardMode {
  /// All shards interleave cooperatively on one thread, handing control
  /// across shard boundaries at NOS granularity with a virtual-time epoch
  /// barrier at every idle return. Byte-identical to single-shard DFS
  /// execution — the mode the trace-equivalence and chaos byte-identity
  /// suites run.
  kDeterministic = 0,
  /// One free-running std::thread per shard with lock-free SPSC cross-shard
  /// queues, synchronized at bulk-synchronous superstep barriers. Real
  /// parallelism; not byte-identical to the scalar schedule.
  kParallel = 1,
};

const char* ShardModeToString(ShardMode mode);

/// Execution configuration shared by all executors.
struct ExecConfig {
  CostModel costs;
  EtsPolicy ets;
  WatchdogPolicy watchdog;
  /// Frontier coordination: lease durations, lifecycle hysteresis, and the
  /// tracker/legacy-watchdog mode switch. The Executor constructor aliases
  /// watchdog.silence_horizon and frontier.lease.duration onto each other
  /// (whichever is set wins), so either knob arms lease expiry.
  FrontierPolicy frontier;
  SchedulerMode scheduler = SchedulerMode::kReadyQueue;
  /// Maximum rows per columnar batch; 0 (the default) disables batch mode.
  /// When > 0, executors drain up to this many consecutive data tuples into
  /// a ColumnBatch and hand it to operators with a batch kernel
  /// (Operator::SupportsBatch); everything else falls back to the scalar
  /// step path. Batches never span a punctuation (docs/batching.md).
  size_t batch_size = 0;
  /// Execution tracer (owned by the caller, must outlive the executor);
  /// null (the default) disables tracing — every hook is one null check.
  Tracer* tracer = nullptr;
  /// Number of worker shards for the sharded executor; 1 (the default)
  /// means unsharded execution. Streams hash-partition across shards by
  /// stream id (exec/shard_partitioner.h). Only the DFS strategy shards.
  int shards = 1;
  /// Shard scheduling discipline; ignored when shards == 1.
  ShardMode shard_mode = ShardMode::kDeterministic;
  /// Base seed for the per-shard Pcg32 streams (parallel-mode idle backoff
  /// jitter). Shard s draws from Pcg32(shard_seed ^ s), so a run reproduces
  /// identically at any shard count from one seed — DSMS_TEST_SEED flows in
  /// here through the test harness.
  uint64_t shard_seed = 0;
};

/// Common machinery for executors: cost charging, idle-waiting trackers for
/// IWP operators, and the on-demand ETS walk. Concrete strategies (DFS,
/// round-robin) implement RunStep.
///
/// Protocol with the simulation driver: RunStep() performs one operator step
/// (advancing the virtual clock by its cost) and returns true; when nothing
/// is runnable — even after an ETS attempt — it returns false and the driver
/// advances the clock to the next external event.
class Executor {
 public:
  /// `graph` must be validated and outlive the executor; `clock` is shared
  /// with the simulation driver. In kReadyQueue mode the constructor wires
  /// every graph buffer to this executor's ReadyTracker (and seeds it from
  /// already-buffered tuples); the destructor detaches. At most one
  /// ready-queue executor may be live per graph at a time.
  Executor(QueryGraph* graph, VirtualClock* clock, ExecConfig config);
  virtual ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Executes one step; returns false when idle (see class comment).
  virtual bool RunStep() = 0;

  /// Runs steps until idle. Returns the number of steps executed.
  uint64_t RunUntilIdle();

  const ExecStats& stats() const { return stats_; }
  uint64_t ets_generated() const { return ets_gate_.generated(); }
  Timestamp now() const { return clock_->now(); }
  const ExecConfig& config() const { return config_; }

  /// The frontier coordination service every graph source participates in.
  /// Drivers (IngestServer) use it for checkpoint-frontier reads and
  /// connection revocation; tests and metrics read its lifecycle state.
  FrontierTracker* frontier() { return &frontier_; }
  const FrontierTracker& frontier() const { return frontier_; }

  /// True when lease expiry (or the legacy watchdog oracle) is armed — the
  /// gate drivers consult before draining a run to quiescence.
  bool liveness_enabled() const {
    return config_.frontier.lease.duration > 0 ||
           config_.watchdog.silence_horizon > 0;
  }

  /// Idle-waiting tracker of an IWP operator (by operator id); null for
  /// non-IWP operators.
  const IdleWaitTracker* idle_tracker(int op_id) const;

  // --- checkpoint support (recovery/) ---
  /// Serializes the executor's behavior-affecting state: ExecStats, the ETS
  /// gate (counters + throttle), watchdog fire times, and the concrete
  /// strategy's cursor (ExportStrategyState). IdleWaitTrackers are
  /// metrics-only and deliberately not saved (docs/recovery.md).
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

 protected:
  /// Strategy-specific scheduling cursor as a flat int64 vector (DFS:
  /// current operator; round-robin: cursor + used quantum). The default
  /// (empty) is correct for strategies whose next decision is derived
  /// fresh from buffer state (greedy-memory rebuilds its lazy heap).
  virtual std::vector<int64_t> ExportStrategyState() const { return {}; }
  virtual void ImportStrategyState(const std::vector<int64_t>& state) {
    (void)state;
  }
  class ClockContext : public ExecContext {
   public:
    explicit ClockContext(VirtualClock* clock) : clock_(clock) {}
    Timestamp now() const override { return clock_->now(); }

   private:
    VirtualClock* clock_;
  };

  /// Advances the clock per the cost model, bumps step counters, and (when
  /// tracing) records the step slice for `op`'s track.
  void ChargeStep(const Operator& op, const StepResult& result);

  /// Batch fast path: when batch mode is on (config_.batch_size > 0), `op`
  /// has a batch kernel, a single input, and data at the front, drains up
  /// to batch_size consecutive data tuples into the scratch batch, runs the
  /// kernel, charges data_step per row, and synthesizes `result` as if the
  /// rows had been stepped one by one. Returns false (leaving `result`
  /// untouched) when any precondition fails — callers then run the scalar
  /// step. Never consumes punctuation: a punctuation at the front or
  /// mid-buffer is left for the scalar path, so batching cannot reorder
  /// tuples across an ordering cut.
  bool TryBatchStep(Operator* op, StepResult* result);

  /// Updates the IWP idle tracker for `op` after a step.
  void UpdateIdleTracker(Operator* op, const StepResult& result);

  /// Transitions `op`'s idle tracker to `blocked` (no-op for non-IWP
  /// operators), recording idle-wait begin/end trace events on actual state
  /// changes. All executor paths that mark idle-waiting go through here so
  /// the trace's B/E pairs balance.
  void SetIdleBlocked(Operator* op, bool blocked);

  /// First successor of `op` whose input arc is non-empty; falls back to
  /// the first successor. Requires num_outputs >= 1.
  Operator* FirstSuccessorWithInput(Operator* op) const;

  /// Walks upstream from (`op`, `blocked_input`) to a source, applying the
  /// Backtrack NOS rule of Section 3.2 at every hop. Returns the operator to
  /// execute next (an Encore/Forward target found on the way, or the
  /// successor of a source that has buffered tuples or just produced an
  /// on-demand ETS), or nullptr when control must return to the scheduler.
  /// `wants_ets` seeds the idle-waiting flag (true when the walk starts at
  /// an idle-waiting IWP operator).
  Operator* BacktrackToWork(Operator* op, int blocked_input, bool wants_ets);

  /// When nothing is runnable: resume every idle-waiting IWP operator's
  /// backtrack at its blocking source and try to generate ETS. Returns an
  /// operator made runnable by a generated ETS, or nullptr.
  Operator* TryEtsSweep();

  /// Last-resort liveness check, consulted only after TryEtsSweep failed:
  /// if an IWP operator is idle-waiting and some source's lease has expired
  /// (silent beyond the lease duration), emit a fallback ETS there so the
  /// frontier advances without the silent source (bypassing ETS mode and
  /// throttle — see EtsGate::GenerateFallback). Dispatches to the frontier
  /// tracker by default, or to the byte-identical legacy watchdog when
  /// config_.frontier.mode == kLegacyWatchdog (the oracle path). Returns an
  /// operator made runnable by the fallback, or nullptr.
  Operator* TryWatchdog();

  /// The PR-2 per-executor watchdog, kept verbatim as the reference oracle
  /// for the frontier lease path (tests/frontier_test.cc).
  Operator* TryLegacyWatchdog();

  bool use_ready_queue() const {
    return config_.scheduler == SchedulerMode::kReadyQueue;
  }

  QueryGraph* graph_;
  VirtualClock* clock_;
  ExecConfig config_;
  /// Copy of config_.tracer for hook brevity; null when tracing is off.
  Tracer* tracer_ = nullptr;
  ExecStats stats_;
  EtsGate ets_gate_;
  /// Central frontier authority: graph sources are registered as
  /// participants at construction and detached at destruction. Lifecycle
  /// state rides in the executor's checkpoint blob (SaveState/LoadState).
  FrontierTracker frontier_;
  ClockContext ctx_;
  std::map<int, IdleWaitTracker> idle_trackers_;
  /// Per-source (stream id) virtual time of the last watchdog intervention,
  /// so a still-silent source is re-probed only once per horizon.
  std::map<int32_t, Timestamp> watchdog_last_fire_;
  /// Candidate set maintained by buffer notifications (kReadyQueue mode).
  ReadyTracker ready_;
  /// Scratch batch reused across TryBatchStep calls (capacity persists).
  /// Always empty between executor steps — a checkpoint can never observe
  /// in-flight batched rows (docs/batching.md).
  ColumnBatch batch_;
};

}  // namespace dsms

#endif  // DSMS_EXEC_EXECUTOR_H_
