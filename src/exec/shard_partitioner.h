#ifndef DSMS_EXEC_SHARD_PARTITIONER_H_
#define DSMS_EXEC_SHARD_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dsms {

class QueryGraph;

/// Static assignment of a validated query graph's operators to N shards
/// (docs/execution_model.md, "Sharded execution"). Sources anchor the
/// partitioning — shard = FNV-1a(stream_id) mod N — and every other operator
/// inherits the shard of the operator feeding its input 0 ("first-input
/// lineage"). A fan-in is therefore homed with its first input; exactly its
/// remaining inputs arrive over cross-shard arcs, where punctuation/ETS
/// flows shard-to-shard and the fan-in's own TSM registers perform the
/// min-frontier merge that preserves IWP ordering.
struct ShardPlan {
  int num_shards = 1;

  /// Shard of each operator, indexed by operator id.
  std::vector<int> op_shard;

  /// Operator ids per shard, ascending (scan order inside a shard matches
  /// the global id order, which is what makes per-shard ready scans
  /// equivalent to the single-shard scan).
  std::vector<std::vector<int>> shard_ops;

  /// Buffer ids whose producer and consumer live on different shards.
  std::vector<int> cross_arcs;
  /// By buffer id: 1 when the arc crosses shards.
  std::vector<uint8_t> arc_crosses;

  /// By operator id: the source stream ids that could result in input for
  /// this operator (its ancestor sources), ascending. This is the
  /// subscription set handed to FrontierTracker::SubscribeCouldResultIn so
  /// lease/quarantine evidence maps onto the shard topology.
  std::vector<std::vector<int32_t>> upstream_streams;

  int shard_of(int op_id) const { return op_shard[op_id]; }
  bool ArcCrossesShards(int buffer_id) const {
    return arc_crosses[buffer_id] != 0;
  }

  /// Multi-line debug dump.
  std::string ToString() const;
};

class ShardPartitioner {
 public:
  /// Stable 32-bit FNV-1a over the 4 bytes of a stream id; the partitioning
  /// hash is part of the deterministic-replay contract (checkpoints taken at
  /// shards=N only restore correctly at the same N with the same hash).
  static uint32_t HashStream(int32_t stream_id);

  /// Partitions `graph` (validated) across `num_shards` >= 1 shards.
  static ShardPlan Partition(const QueryGraph& graph, int num_shards);
};

}  // namespace dsms

#endif  // DSMS_EXEC_SHARD_PARTITIONER_H_
