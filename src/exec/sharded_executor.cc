#include "exec/sharded_executor.h"

#include <utility>

#include "common/check.h"
#include "obs/tracer.h"

namespace dsms {

const char* ShardModeToString(ShardMode mode) {
  switch (mode) {
    case ShardMode::kDeterministic:
      return "deterministic";
    case ShardMode::kParallel:
      return "parallel";
  }
  return "unknown";
}

ShardedExecutor::ShardedExecutor(QueryGraph* graph, VirtualClock* clock,
                                 ExecConfig config)
    : Executor(graph, clock, config),
      plan_(ShardPartitioner::Partition(*graph, config.shards)),
      mode_(config.shard_mode) {
  shard_steps_.assign(static_cast<size_t>(plan_.num_shards), 0);
  shard_state_.resize(static_cast<size_t>(plan_.num_shards));
  for (int s = 0; s < plan_.num_shards; ++s) {
    shard_state_[static_cast<size_t>(s)].rng =
        Pcg32(config.shard_seed ^ static_cast<uint64_t>(s));
  }

  // Per-operator could-result-in subscriptions: every operator registers its
  // ancestor stream set with the frontier tracker, so lease/quarantine
  // evidence and CouldResultInBound() map onto the shard topology.
  for (const auto& op : graph_->operators()) {
    frontier_.SubscribeCouldResultIn(
        op->id(), plan_.upstream_streams[static_cast<size_t>(op->id())]);
  }

  // Re-home every buffer from the base executor's global tracker onto the
  // tracker of its consumer's shard. All input buffers of one operator land
  // on one tracker, so each shard tracker holds exactly the global candidate
  // set restricted to that shard.
  if (use_ready_queue()) {
    shard_trackers_.resize(static_cast<size_t>(plan_.num_shards));
    for (auto& tracker : shard_trackers_) {
      tracker.Reset(graph_->num_operators());
    }
    for (int b = 0; b < graph_->num_buffers(); ++b) {
      StreamBuffer* buffer = graph_->buffer(b);
      const int consumer = graph_->consumer_of(b);
      if (consumer < 0) continue;
      ReadyTracker* tracker =
          &shard_trackers_[static_cast<size_t>(plan_.op_shard[consumer])];
      buffer->set_ready_tracker(tracker, consumer);
      if (!buffer->empty()) tracker->NoteFilled(consumer);
    }
  }

  if (mode_ == ShardMode::kParallel) {
    queue_of_buffer_.assign(static_cast<size_t>(graph_->num_buffers()),
                            nullptr);
    inbound_.resize(static_cast<size_t>(plan_.num_shards));
    outbound_.resize(static_cast<size_t>(plan_.num_shards));
    for (int b : plan_.cross_arcs) {
      auto queue = std::make_unique<HopQueue>();
      queue->buffer = graph_->buffer(b);
      queue->consumer_op = graph_->consumer_of(b);
      queue->from_shard = plan_.op_shard[graph_->producer_of(b)];
      queue->to_shard = plan_.op_shard[queue->consumer_op];
      queue_of_buffer_[static_cast<size_t>(b)] = queue.get();
      outbound_[static_cast<size_t>(queue->from_shard)].push_back(queue.get());
      inbound_[static_cast<size_t>(queue->to_shard)].push_back(queue.get());
      queue->buffer->set_diverter(this);
      hop_queues_.push_back(std::move(queue));
    }
    // Global listeners (QueueSizeTracker, OrderValidator, trace feeds) are
    // shared across shard threads; serialize their dispatch on every arc.
    for (int b = 0; b < graph_->num_buffers(); ++b) {
      graph_->buffer(b)->set_notify_mutex(&notify_mutex_);
    }
  }
}

ShardedExecutor::~ShardedExecutor() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(barrier_mutex_);
      shutdown_ = true;
    }
    barrier_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }
  // Undo the wiring this executor installed; buffers outlive the executor.
  for (int b = 0; b < graph_->num_buffers(); ++b) {
    StreamBuffer* buffer = graph_->buffer(b);
    buffer->set_notify_mutex(nullptr);
    if (buffer->diverter() == this) buffer->set_diverter(nullptr);
    ReadyTracker* tracker = buffer->ready_tracker();
    for (const ReadyTracker& mine : shard_trackers_) {
      if (tracker == &mine) {
        buffer->set_ready_tracker(nullptr, -1);
        break;
      }
    }
  }
}

bool ShardedExecutor::RunStep() {
  if (mode_ == ShardMode::kParallel) return RunSuperstep();
  return RunDeterministicStep();
}

// --- deterministic mode ------------------------------------------------------

int ShardedExecutor::FindWork() {
  ++stats_.work_scans;
  if (!use_ready_queue()) {
    for (const auto& op : graph_->operators()) {
      if (op->HasWork()) return op->id();
    }
    return -1;
  }
  // Min-frontier combine over the shard trackers: each shard yields its
  // smallest candidate id with actual work, and the overall minimum is the
  // operator the single-shard id-order scan would have picked (the shard
  // candidate sets partition the global candidate set). Probing HasWork()
  // has no side effects, so the extra per-shard probes cannot perturb the
  // schedule.
  int best = -1;
  for (const ReadyTracker& tracker : shard_trackers_) {
    for (int id = tracker.NextCandidate(0); id >= 0;
         id = tracker.NextCandidate(id + 1)) {
      if (best >= 0 && id >= best) break;
      if (graph_->op(id)->HasWork()) {
        best = id;
        break;
      }
    }
  }
  return best;
}

void ShardedExecutor::NoteTransition(int from_op, int to_op) {
  const int from = plan_.op_shard[static_cast<size_t>(from_op)];
  const int to = plan_.op_shard[static_cast<size_t>(to_op)];
  if (from == to) return;
  ++shard_hops_;
  if (tracer_ != nullptr) tracer_->RecordShardHop(to_op, from, to);
}

// Byte-for-byte the DFS executor's step protocol (exec/dfs_executor.cc) plus
// shard accounting: per-shard step counters, shard-hop counting on NOS
// transitions that cross a shard boundary, and an epoch tick per idle return
// (the virtual-time epoch barrier at which the driver delivers the next
// external events to every shard at once).
bool ShardedExecutor::RunDeterministicStep() {
  if (current_ < 0) {
    current_ = FindWork();
    if (current_ < 0) {
      Operator* resumed = TryEtsSweep();
      if (resumed == nullptr) resumed = TryWatchdog();
      if (resumed == nullptr) {
        ++stats_.idle_returns;
        ++epochs_;
        return false;
      }
      current_ = resumed->id();
    }
  }

  Operator* op = graph_->op(current_);
  StepResult result;
  if (!TryBatchStep(op, &result)) {
    result = op->Step(ctx_);
    ChargeStep(*op, result);
    if (config_.batch_size > 0) ++stats_.batch_fallback_steps;
  }
  ++shard_steps_[static_cast<size_t>(
      plan_.op_shard[static_cast<size_t>(op->id())])];
  UpdateIdleTracker(op, result);

  // Next-Operator-Selection.
  if (result.yield && op->num_outputs() > 0) {
    current_ = FirstSuccessorWithInput(op)->id();  // Forward
    if (tracer_ != nullptr) {
      tracer_->RecordNosRule(op->id(), NosRule::kForward, current_);
    }
    NoteTransition(op->id(), current_);
    return true;
  }
  if (result.more) {
    if (tracer_ != nullptr) {
      tracer_->RecordNosRule(op->id(), NosRule::kEncore, op->id());
    }
    return true;  // Encore: next := self
  }
  if (op->num_inputs() == 0) {
    // A source relay step with nothing buffered; nothing upstream to visit.
    current_ = -1;
    return true;
  }
  Operator* next =
      BacktrackToWork(op, result.blocked_input, result.idle_waiting);
  if (next != nullptr) NoteTransition(op->id(), next->id());
  current_ = next == nullptr ? -1 : next->id();
  return true;
}

// --- parallel mode -----------------------------------------------------------

bool ShardedExecutor::HopQueue::TryPush(Tuple&& tuple) {
  const uint64_t t = tail.load(std::memory_order_relaxed);
  const uint64_t h = head.load(std::memory_order_acquire);
  if (t - h >= kRingSize) return false;  // full; tuple left intact
  slots[t & (kRingSize - 1)] = std::move(tuple);
  tail.store(t + 1, std::memory_order_release);
  return true;
}

bool ShardedExecutor::HopQueue::TryPop(Tuple* tuple) {
  const uint64_t h = head.load(std::memory_order_relaxed);
  const uint64_t t = tail.load(std::memory_order_acquire);
  if (h == t) return false;
  *tuple = std::move(slots[h & (kRingSize - 1)]);
  head.store(h + 1, std::memory_order_release);
  return true;
}

bool ShardedExecutor::Divert(StreamBuffer* buffer, Tuple&& tuple) {
  HopQueue* queue = queue_of_buffer_[static_cast<size_t>(buffer->id())];
  if (queue == nullptr) return false;
  // FIFO: once anything has spilled, everything spills until the spill has
  // drained back into the ring.
  if (queue->spill_head < queue->spill.size() ||
      !queue->TryPush(std::move(tuple))) {
    queue->spill.push_back(std::move(tuple));
  }
  hops_pushed_.fetch_add(1, std::memory_order_seq_cst);
  return true;
}

bool ShardedExecutor::FlushSpill(HopQueue* queue) {
  bool any = false;
  while (queue->spill_head < queue->spill.size() &&
         queue->TryPush(std::move(queue->spill[queue->spill_head]))) {
    ++queue->spill_head;
    any = true;
  }
  if (queue->spill_head == queue->spill.size() && !queue->spill.empty()) {
    queue->spill.clear();
    queue->spill_head = 0;
  }
  return any;
}

bool ShardedExecutor::DrainInbound(int shard) {
  ShardState& st = shard_state_[static_cast<size_t>(shard)];
  bool any = false;
  for (HopQueue* queue : inbound_[static_cast<size_t>(shard)]) {
    Tuple tuple;
    while (queue->TryPop(&tuple)) {
      // Consumer-side completion of the diverted push: full buffer
      // bookkeeping runs here, on the shard that owns the buffer.
      queue->buffer->DeliverDiverted(std::move(tuple));
      hops_popped_.fetch_add(1, std::memory_order_seq_cst);
      ++st.hops_in;
      any = true;
    }
  }
  return any;
}

bool ShardedExecutor::ShardHasLocalWork(int shard) const {
  for (const HopQueue* queue : outbound_[static_cast<size_t>(shard)]) {
    if (queue->spill_head < queue->spill.size()) return true;
  }
  for (const HopQueue* queue : inbound_[static_cast<size_t>(shard)]) {
    if (queue->head.load(std::memory_order_acquire) !=
        queue->tail.load(std::memory_order_acquire)) {
      return true;
    }
  }
  if (use_ready_queue()) {
    const ReadyTracker& tracker = shard_trackers_[static_cast<size_t>(shard)];
    for (int id = tracker.NextCandidate(0); id >= 0;
         id = tracker.NextCandidate(id + 1)) {
      if (graph_->op(id)->HasWork()) return true;
    }
    return false;
  }
  for (int id : plan_.shard_ops[static_cast<size_t>(shard)]) {
    if (graph_->op(id)->HasWork()) return true;
  }
  return false;
}

bool ShardedExecutor::StepOneCandidate(int shard) {
  ShardState& st = shard_state_[static_cast<size_t>(shard)];
  if (use_ready_queue()) {
    const ReadyTracker& tracker = shard_trackers_[static_cast<size_t>(shard)];
    const int first = tracker.NextCandidateCyclic(st.cursor);
    if (first < 0) return false;
    int id = first;
    while (true) {
      Operator* op = graph_->op(id);
      if (op->HasWork()) {
        StepOperator(shard, op);
        st.cursor = id + 1;
        return true;
      }
      id = tracker.NextCandidateCyclic(id + 1);
      if (id < 0 || id == first) return false;
    }
  }
  const auto& ops = plan_.shard_ops[static_cast<size_t>(shard)];
  const size_t n = ops.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = (static_cast<size_t>(st.cursor) + i) % n;
    Operator* op = graph_->op(ops[pos]);
    if (op->HasWork()) {
      StepOperator(shard, op);
      st.cursor = static_cast<int>((pos + 1) % n);
      return true;
    }
  }
  return false;
}

void ShardedExecutor::StepOperator(int shard, Operator* op) {
  ShardState& st = shard_state_[static_cast<size_t>(shard)];
  const StepResult result = op->Step(st.ctx);
  Duration cost;
  if (result.processed_data) {
    ++st.stats.data_steps;
    cost = config_.costs.data_step;
  } else if (result.processed_punctuation) {
    ++st.stats.punctuation_steps;
    cost = config_.costs.punctuation_step;
  } else {
    ++st.stats.empty_steps;
    cost = config_.costs.empty_step;
  }
  cost += result.storage_stall;
  st.ctx.Charge(cost);
  ++st.steps;
}

void ShardedExecutor::WorkerLoop(int shard) {
  uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(barrier_mutex_);
      barrier_cv_.wait(
          lock, [&] { return shutdown_ || epoch_go_ > seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_go_;
    }
    RunShardSuperstep(shard);
    {
      std::lock_guard<std::mutex> lock(barrier_mutex_);
      ++workers_done_;
    }
    barrier_cv_.notify_all();
  }
}

void ShardedExecutor::RunShardSuperstep(int shard) {
  ShardState& st = shard_state_[static_cast<size_t>(shard)];
  st.stats = ExecStats();
  st.ctx.Reset(epoch_start_);
  st.cost = 0;
  st.steps = 0;
  st.hops_in = 0;
  bool announced_idle = false;
  while (!superstep_done_.load(std::memory_order_acquire)) {
    if (ShardHasLocalWork(shard)) {
      // Clear the idle flag BEFORE acting: the main thread must never
      // observe an all-idle fleet while a worker is mid-delivery.
      if (announced_idle) {
        idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
        announced_idle = false;
      }
      for (HopQueue* queue : outbound_[static_cast<size_t>(shard)]) {
        FlushSpill(queue);
      }
      DrainInbound(shard);
      StepOneCandidate(shard);
    } else {
      if (!announced_idle) {
        idle_workers_.fetch_add(1, std::memory_order_seq_cst);
        announced_idle = true;
      }
      // Jittered backoff so idle shards do not hammer one cache line in
      // lockstep; the per-shard Pcg32 stream keeps it reproducible.
      const uint32_t spins = 16 + (st.rng.NextUint32() & 63u);
      for (uint32_t i = 0; i < spins; ++i) {
      }
      std::this_thread::yield();
    }
  }
  if (announced_idle) idle_workers_.fetch_sub(1, std::memory_order_seq_cst);
  st.cost = st.ctx.cost();
}

void ShardedExecutor::EnsureWorkers() {
  if (!workers_.empty()) return;
  workers_.reserve(static_cast<size_t>(plan_.num_shards));
  for (int s = 0; s < plan_.num_shards; ++s) {
    workers_.emplace_back(&ShardedExecutor::WorkerLoop, this, s);
  }
}

bool ShardedExecutor::RunSuperstep() {
  EnsureWorkers();
  epoch_start_ = clock_->now();
  superstep_done_.store(false, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    workers_done_ = 0;
    ++epoch_go_;
  }
  barrier_cv_.notify_all();

  // Quiescence: every worker idle AND every diverted tuple delivered. Once
  // both hold, no worker can wake again (new local work only arrives through
  // hop deliveries, and those are all accounted), so the superstep is over.
  while (true) {
    if (idle_workers_.load(std::memory_order_seq_cst) == plan_.num_shards &&
        hops_pushed_.load(std::memory_order_seq_cst) ==
            hops_popped_.load(std::memory_order_seq_cst) &&
        idle_workers_.load(std::memory_order_seq_cst) == plan_.num_shards) {
      superstep_done_.store(true, std::memory_order_seq_cst);
      break;
    }
    std::this_thread::yield();
  }
  {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    barrier_cv_.wait(lock, [&] { return workers_done_ == plan_.num_shards; });
  }

  // Barrier: merge per-shard accounting and advance virtual time by the
  // MAXIMUM per-shard cost — the shards burned their virtual CPU
  // concurrently, which is exactly the multicore speedup the bench measures.
  Duration max_cost = 0;
  uint64_t steps = 0;
  for (int s = 0; s < plan_.num_shards; ++s) {
    ShardState& st = shard_state_[static_cast<size_t>(s)];
    stats_.data_steps += st.stats.data_steps;
    stats_.punctuation_steps += st.stats.punctuation_steps;
    stats_.empty_steps += st.stats.empty_steps;
    shard_steps_[static_cast<size_t>(s)] += st.steps;
    steps += st.steps;
    shard_hops_ += st.hops_in;
    if (st.cost > max_cost) max_cost = st.cost;
  }
  if (max_cost > 0) clock_->Advance(max_cost);
  ++epochs_;
  if (steps > 0) return true;

  // Quiescent superstep: the scalar idle protocol runs on the main thread
  // while the workers are parked at the barrier. ETS generated here lands in
  // source output buffers (or hop queues, when the arc crosses shards) and
  // is consumed by the next superstep.
  Operator* resumed = TryEtsSweep();
  if (resumed == nullptr) resumed = TryWatchdog();
  if (resumed != nullptr) return true;
  ++stats_.idle_returns;
  return false;
}

// --- checkpoint support ------------------------------------------------------

namespace {
constexpr int64_t kShardStateVersion = 1;
}  // namespace

std::vector<int64_t> ShardedExecutor::ExportStrategyState() const {
  // [version, num_shards, mode, cursor, epochs, hops, per-shard step counts]
  std::vector<int64_t> state;
  state.reserve(6 + static_cast<size_t>(plan_.num_shards));
  state.push_back(kShardStateVersion);
  state.push_back(plan_.num_shards);
  state.push_back(static_cast<int64_t>(mode_));
  state.push_back(current_);
  state.push_back(static_cast<int64_t>(epochs_));
  state.push_back(static_cast<int64_t>(shard_hops_));
  for (uint64_t steps : shard_steps_) {
    state.push_back(static_cast<int64_t>(steps));
  }
  return state;
}

void ShardedExecutor::ImportStrategyState(const std::vector<int64_t>& state) {
  DSMS_CHECK_EQ(state.size(), 6u + static_cast<size_t>(plan_.num_shards));
  DSMS_CHECK_EQ(state[0], kShardStateVersion);
  // A checkpoint taken at shards=N only restores at the same N and mode: the
  // partitioning (and therefore the per-shard blobs) is part of the image.
  DSMS_CHECK_EQ(state[1], static_cast<int64_t>(plan_.num_shards));
  DSMS_CHECK_EQ(state[2], static_cast<int64_t>(mode_));
  current_ = static_cast<int>(state[3]);
  epochs_ = static_cast<uint64_t>(state[4]);
  shard_hops_ = static_cast<uint64_t>(state[5]);
  for (int s = 0; s < plan_.num_shards; ++s) {
    shard_steps_[static_cast<size_t>(s)] =
        static_cast<uint64_t>(state[6 + static_cast<size_t>(s)]);
  }
}

}  // namespace dsms
