#include "exec/executor.h"

#include <algorithm>

#include "common/check.h"
#include "obs/tracer.h"
#include "operators/iwp_operator.h"
#include "operators/source.h"
#include "recovery/state_codec.h"

namespace dsms {

Executor::Executor(QueryGraph* graph, VirtualClock* clock, ExecConfig config)
    : graph_(graph),
      clock_(clock),
      config_(config),
      tracer_(config.tracer),
      ets_gate_(config.ets),
      ctx_(clock) {
  DSMS_CHECK(graph != nullptr);
  DSMS_CHECK(clock != nullptr);
  DSMS_CHECK(graph->validated());
  ets_gate_.set_tracer(tracer_);
  // The deprecated watchdog horizon and the lease duration alias each other
  // (whichever is set wins) so configs written against either knob arm the
  // same lease-expiry machinery.
  if (config_.frontier.lease.duration <= 0 &&
      config_.watchdog.silence_horizon > 0) {
    config_.frontier.lease.duration = config_.watchdog.silence_horizon;
  } else if (config_.watchdog.silence_horizon <= 0 &&
             config_.frontier.lease.duration > 0) {
    config_.watchdog.silence_horizon = config_.frontier.lease.duration;
  }
  frontier_.set_policy(config_.frontier.lease);
  frontier_.set_tracer(tracer_);
  frontier_.set_clock(clock_);
  for (const auto& op : graph->operators()) {
    if (op->is_iwp()) idle_trackers_.emplace(op->id(), IdleWaitTracker());
    if (auto* source = dynamic_cast<Source*>(op.get())) {
      frontier_.Register(source);
      source->set_frontier(&frontier_);
    }
  }
  ets_gate_.set_frontier(&frontier_);
  if (use_ready_queue()) {
    ready_.Reset(graph->num_operators());
    for (int b = 0; b < graph->num_buffers(); ++b) {
      StreamBuffer* buffer = graph->buffer(b);
      int consumer = graph->consumer_of(b);
      buffer->set_ready_tracker(&ready_, consumer);
      // Tests and drivers may ingest before the executor exists; fold the
      // current occupancy in so pre-filled buffers count as ready.
      if (!buffer->empty()) ready_.NoteFilled(consumer);
    }
  }
}

Executor::~Executor() {
  for (const auto& op : graph_->operators()) {
    if (auto* source = dynamic_cast<Source*>(op.get())) {
      if (source->frontier() == &frontier_) source->set_frontier(nullptr);
    }
  }
  if (use_ready_queue()) {
    for (int b = 0; b < graph_->num_buffers(); ++b) {
      StreamBuffer* buffer = graph_->buffer(b);
      if (buffer->ready_tracker() == &ready_) {
        buffer->set_ready_tracker(nullptr, -1);
      }
    }
  }
}

uint64_t Executor::RunUntilIdle() {
  uint64_t steps = 0;
  while (RunStep()) ++steps;
  return steps;
}

const IdleWaitTracker* Executor::idle_tracker(int op_id) const {
  auto it = idle_trackers_.find(op_id);
  return it == idle_trackers_.end() ? nullptr : &it->second;
}

void Executor::SaveState(StateWriter& w) const {
  w.U64(stats_.data_steps);
  w.U64(stats_.punctuation_steps);
  w.U64(stats_.empty_steps);
  w.U64(stats_.backtracks);
  w.U64(stats_.backtrack_hops);
  w.U64(stats_.ets_generated);
  w.U64(stats_.watchdog_ets);
  w.U64(stats_.idle_returns);
  w.U64(stats_.work_scans);
  w.U64(stats_.batches);
  w.U64(stats_.batch_rows);
  w.U64(stats_.batch_punct_splits);
  w.U64(stats_.batch_fallback_steps);
  ets_gate_.SaveState(w);
  w.U32(static_cast<uint32_t>(watchdog_last_fire_.size()));
  for (const auto& [stream, when] : watchdog_last_fire_) {
    w.I64(stream);
    w.Ts(when);
  }
  std::vector<int64_t> strategy = ExportStrategyState();
  w.U32(static_cast<uint32_t>(strategy.size()));
  for (int64_t v : strategy) w.I64(v);
  frontier_.SaveState(w);
}

void Executor::LoadState(StateReader& r) {
  stats_.data_steps = r.U64();
  stats_.punctuation_steps = r.U64();
  stats_.empty_steps = r.U64();
  stats_.backtracks = r.U64();
  stats_.backtrack_hops = r.U64();
  stats_.ets_generated = r.U64();
  stats_.watchdog_ets = r.U64();
  stats_.idle_returns = r.U64();
  stats_.work_scans = r.U64();
  stats_.batches = r.U64();
  stats_.batch_rows = r.U64();
  stats_.batch_punct_splits = r.U64();
  stats_.batch_fallback_steps = r.U64();
  ets_gate_.LoadState(r);
  watchdog_last_fire_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int32_t stream = static_cast<int32_t>(r.I64());
    watchdog_last_fire_[stream] = r.Ts();
  }
  std::vector<int64_t> strategy;
  uint32_t m = r.U32();
  for (uint32_t i = 0; i < m && r.ok(); ++i) strategy.push_back(r.I64());
  if (r.ok()) ImportStrategyState(strategy);
  frontier_.LoadState(r);
}

void Executor::ChargeStep(const Operator& op, const StepResult& result) {
  const Timestamp start = clock_->now();
  StepKind kind;
  Duration cost;
  if (result.processed_data) {
    ++stats_.data_steps;
    kind = StepKind::kData;
    cost = config_.costs.data_step;
  } else if (result.processed_punctuation) {
    ++stats_.punctuation_steps;
    kind = StepKind::kPunctuation;
    cost = config_.costs.punctuation_step;
  } else {
    ++stats_.empty_steps;
    kind = StepKind::kEmpty;
    cost = config_.costs.empty_step;
  }
  // Virtual time lost to disk work under an injected disk_stall fault is
  // charged to the step that performed the spill/load.
  cost += result.storage_stall;
  clock_->Advance(cost);
  if (tracer_ != nullptr) tracer_->RecordStep(op.id(), start, cost, kind);
}

bool Executor::TryBatchStep(Operator* op, StepResult* result) {
  if (config_.batch_size == 0 || !op->SupportsBatch() ||
      op->num_inputs() != 1) {
    return false;
  }
  StreamBuffer* in = op->input(0);
  if (in->empty() || in->Front().is_punctuation()) return false;

  const Timestamp start = clock_->now();
  bool punct_split = false;
  const size_t rows =
      in->DrainIntoBatch(&batch_, config_.batch_size, &punct_split);
  DSMS_CHECK_GT(rows, 0u);
  op->ProcessBatch(batch_, ctx_);
  batch_.Clear();

  // Each row is charged exactly what its scalar data step would have cost,
  // in one clock advance; the batch is one kBatchDrain slice instead of
  // `rows` kStep slices.
  const Duration cost =
      config_.costs.data_step * static_cast<Duration>(rows);
  stats_.data_steps += rows;
  ++stats_.batches;
  stats_.batch_rows += rows;
  if (punct_split) ++stats_.batch_punct_splits;
  clock_->Advance(cost);
  if (tracer_ != nullptr) {
    tracer_->RecordBatchDrain(op->id(), start, cost,
                              static_cast<int64_t>(rows), punct_split);
  }

  result->processed_data = true;
  result->more = !in->empty();
  result->yield = AnyOutputNonEmpty(*op);
  return true;
}

void Executor::UpdateIdleTracker(Operator* op, const StepResult& result) {
  SetIdleBlocked(op, result.idle_waiting);
}

void Executor::SetIdleBlocked(Operator* op, bool blocked) {
  auto it = idle_trackers_.find(op->id());
  if (it == idle_trackers_.end()) return;
  if (tracer_ != nullptr && it->second.blocked() != blocked) {
    tracer_->RecordIdleWait(op->id(), /*begin=*/blocked);
  }
  if (blocked) {
    it->second.MarkBlocked(clock_->now());
  } else {
    it->second.MarkUnblocked(clock_->now());
  }
}

Operator* Executor::FirstSuccessorWithInput(Operator* op) const {
  DSMS_CHECK_GE(op->num_outputs(), 1);
  for (int i = 0; i < op->num_outputs(); ++i) {
    if (!op->output(i)->empty()) {
      return graph_->op(graph_->consumer_of(op->output(i)->id()));
    }
  }
  return graph_->op(graph_->consumer_of(op->output(0)->id()));
}

Operator* Executor::BacktrackToWork(Operator* op, int blocked_input,
                                    bool wants_ets) {
  ++stats_.backtracks;
  Operator* node = op;
  wants_ets = wants_ets || op->WantsEts();
  Timestamp release_bound = op->EtsReleaseBound();
  int blocked = blocked_input >= 0 ? blocked_input : 0;
  int64_t hops = 0;
  // One kNosRule event per backtrack walk, attributed to the operator the
  // walk started from; arg = hops taken before work (or the scheduler) was
  // reached.
  auto done = [this, op, &hops](Operator* next) {
    if (tracer_ != nullptr) {
      tracer_->RecordNosRule(op->id(), NosRule::kBacktrack, hops);
    }
    return next;
  };
  for (;;) {
    if (node->num_inputs() == 0) {
      // Reached a source node. If the wrapper delivered tuples meanwhile,
      // resume forward; otherwise this is the on-demand ETS point
      // (Section 4: "once the backtracking process takes us all the way
      // back to the source node, we can generate a new ETS value and send
      // it down along the path on which backtracking just occurred").
      auto* source = dynamic_cast<Source*>(node);
      DSMS_CHECK(source != nullptr);
      if (!source->output()->empty()) {
        return done(FirstSuccessorWithInput(node));
      }
      if (ets_gate_.MaybeGenerate(source, clock_->now(), wants_ets,
                                  release_bound)) {
        ++stats_.ets_generated;
        clock_->Advance(config_.costs.ets_generation);
        return done(FirstSuccessorWithInput(node));
      }
      return done(nullptr);  // Return control to the scheduler.
    }

    Operator* pred = graph_->predecessor(node, blocked);
    ++stats_.backtrack_hops;
    ++hops;
    clock_->Advance(config_.costs.backtrack_hop);

    // Apply the NOS rules to pred without stepping it: Forward if it has
    // produced output, Encore if it has processable input, otherwise keep
    // backtracking. Never Forward back into the operator we just came from:
    // its pending output there is exactly what it cannot consume (e.g. a
    // punctuation a strict-mode union is holding), so bouncing back would
    // livelock.
    for (int i = 0; i < pred->num_outputs(); ++i) {
      if (pred->output(i)->empty()) continue;
      Operator* succ = graph_->op(graph_->consumer_of(pred->output(i)->id()));
      if (succ != node) return done(succ);
    }
    if (pred->HasWork()) return done(pred);

    if (pred->WantsEts()) {
      wants_ets = true;
      release_bound = std::min(release_bound, pred->EtsReleaseBound());
    }
    if (pred->is_iwp()) {
      auto* iwp = dynamic_cast<IwpOperator*>(pred);
      DSMS_CHECK(iwp != nullptr);
      blocked = iwp->BlockedInput();
    } else {
      blocked = 0;
    }
    node = pred;
  }
}

Operator* Executor::TryEtsSweep() {
  if (config_.ets.mode != EtsMode::kOnDemand) return nullptr;
  for (const auto& op : graph_->operators()) {
    if (op->HasWork() || !op->WantsEts()) continue;
    int blocked = 0;
    if (auto* iwp = dynamic_cast<IwpOperator*>(op.get())) {
      blocked = iwp->BlockedInput();
    }
    Operator* next =
        BacktrackToWork(op.get(), blocked, /*wants_ets=*/true);
    if (next != nullptr) return next;
  }
  return nullptr;
}

Operator* Executor::TryWatchdog() {
  if (config_.frontier.mode == FrontierMode::kLegacyWatchdog) {
    return TryLegacyWatchdog();
  }
  const Duration horizon = config_.frontier.lease.duration;
  if (horizon <= 0) return nullptr;
  // Only step in when some IWP operator is actually holding back results;
  // a quiet graph with nothing idle-waiting needs no fallback bounds.
  bool idle_waiting = false;
  for (const auto& op : graph_->operators()) {
    if (op->WantsEts()) {
      idle_waiting = true;
      break;
    }
  }
  if (!idle_waiting) return nullptr;

  const Timestamp now = clock_->now();
  frontier_.Poll(now);
  Operator* resumed = nullptr;
  for (const auto& op : graph_->operators()) {
    auto* source = dynamic_cast<Source*>(op.get());
    if (source == nullptr) continue;
    if (!frontier_.LeaseExpired(source, now)) continue;
    frontier_.NoteLeaseFire(source, now);
    if (ets_gate_.GenerateFallback(source, now)) {
      ++stats_.watchdog_ets;
      frontier_.NoteLeaseExpiredEts(source, now);
      clock_->Advance(config_.costs.ets_generation);
      if (resumed == nullptr) resumed = FirstSuccessorWithInput(source);
    }
  }
  return resumed;
}

Operator* Executor::TryLegacyWatchdog() {
  const Duration horizon = config_.watchdog.silence_horizon;
  if (horizon <= 0) return nullptr;
  // Only step in when some IWP operator is actually holding back results;
  // a quiet graph with nothing idle-waiting needs no fallback bounds.
  bool idle_waiting = false;
  for (const auto& op : graph_->operators()) {
    if (op->WantsEts()) {
      idle_waiting = true;
      break;
    }
  }
  if (!idle_waiting) return nullptr;

  const Timestamp now = clock_->now();
  Operator* resumed = nullptr;
  for (const auto& op : graph_->operators()) {
    auto* source = dynamic_cast<Source*>(op.get());
    if (source == nullptr) continue;
    // A source that never produced anything counts as silent since t=0.
    const Timestamp last =
        source->last_activity() == kMinTimestamp ? 0 : source->last_activity();
    if (now - last < horizon) continue;
    auto it = watchdog_last_fire_.find(source->stream_id());
    if (it != watchdog_last_fire_.end() && now - it->second < horizon) {
      continue;  // Already intervened this horizon; don't spin.
    }
    watchdog_last_fire_[source->stream_id()] = now;
    if (ets_gate_.GenerateFallback(source, now)) {
      ++stats_.watchdog_ets;
      clock_->Advance(config_.costs.ets_generation);
      if (resumed == nullptr) resumed = FirstSuccessorWithInput(source);
    }
  }
  return resumed;
}

}  // namespace dsms
