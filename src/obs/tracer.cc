#include "obs/tracer.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "frontier/frontier_tracker.h"
#include "sim/fault_injector.h"

namespace dsms {
namespace {

/// Arc rows live in their own tid band so operator ids and arc ids cannot
/// collide in the exported trace.
constexpr int kArcTidBase = 100000;

}  // namespace

const char* TraceEventTypeToString(TraceEventType type) {
  switch (type) {
    case TraceEventType::kStep:
      return "step";
    case TraceEventType::kNosRule:
      return "nos";
    case TraceEventType::kEtsGenerated:
      return "ets";
    case TraceEventType::kIdleWaitBegin:
      return "idle_begin";
    case TraceEventType::kIdleWaitEnd:
      return "idle_end";
    case TraceEventType::kBufferHighWater:
      return "buffer_hwm";
    case TraceEventType::kFaultInjected:
      return "fault";
    case TraceEventType::kPunctuationEmitted:
      return "punct_emit";
    case TraceEventType::kPunctuationAbsorbed:
      return "punct_absorb";
    case TraceEventType::kNetIngest:
      return "net_ingest";
    case TraceEventType::kCheckpoint:
      return "checkpoint";
    case TraceEventType::kRecovery:
      return "recovery";
    case TraceEventType::kBatchDrain:
      return "batch_drain";
    case TraceEventType::kFrontier:
      return "frontier";
    case TraceEventType::kShardHop:
      return "shard_hop";
    case TraceEventType::kStateSpill:
      return "state_spill";
    case TraceEventType::kStateLoad:
      return "state_load";
  }
  return "unknown";
}

const char* StepKindToString(StepKind kind) {
  switch (kind) {
    case StepKind::kEmpty:
      return "empty";
    case StepKind::kData:
      return "data";
    case StepKind::kPunctuation:
      return "punctuation";
  }
  return "unknown";
}

const char* NosRuleToString(NosRule rule) {
  switch (rule) {
    case NosRule::kForward:
      return "Forward";
    case NosRule::kEncore:
      return "Encore";
    case NosRule::kBacktrack:
      return "Backtrack";
  }
  return "unknown";
}

const char* EtsOriginToString(EtsOrigin origin) {
  switch (origin) {
    case EtsOrigin::kOnDemand:
      return "on-demand";
    case EtsOrigin::kWatchdog:
      return "watchdog";
  }
  return "unknown";
}

Tracer::Tracer(const VirtualClock* clock, size_t capacity) : clock_(clock) {
  DSMS_CHECK(clock != nullptr);
  DSMS_CHECK_GT(capacity, 0u);
  ring_.resize(capacity);
}

void Tracer::SetOperatorName(int op_id, std::string name) {
  operator_names_[op_id] = std::move(name);
}

void Tracer::SetArcName(int arc_id, std::string name) {
  arc_names_[arc_id] = std::move(name);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::vector<TraceEvent> events;
  events.reserve(count_);
  // With drops the ring holds the newest `count_` events starting at next_;
  // without drops it holds [0, count_).
  size_t start = dropped_ > 0 ? next_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    events.push_back(ring_[(start + i) % ring_.size()]);
  }
  return events;
}

size_t Tracer::CountType(TraceEventType type) const {
  size_t start = dropped_ > 0 ? next_ : 0;
  size_t n = 0;
  for (size_t i = 0; i < count_; ++i) {
    if (ring_[(start + i) % ring_.size()].type == type) ++n;
  }
  return n;
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&os, &first](const std::string& line) {
    if (!first) os << ",\n";
    first = false;
    os << "  " << line;
  };

  // Thread-name metadata: one row per operator, one per arc (separate band).
  for (const auto& [op_id, name] : operator_names_) {
    emit(StrFormat("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                   "\"tid\": %d, \"args\": {\"name\": %s}}",
                   op_id, JsonQuote(name).c_str()));
    emit(StrFormat("{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
                   "\"pid\": 0, \"tid\": %d, \"args\": {\"sort_index\": %d}}",
                   op_id, op_id));
  }
  for (const auto& [arc_id, name] : arc_names_) {
    emit(StrFormat("{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
                   "\"tid\": %d, \"args\": {\"name\": %s}}",
                   kArcTidBase + arc_id,
                   JsonQuote("arc " + name).c_str()));
    emit(StrFormat("{\"name\": \"thread_sort_index\", \"ph\": \"M\", "
                   "\"pid\": 0, \"tid\": %d, \"args\": {\"sort_index\": %d}}",
                   kArcTidBase + arc_id, kArcTidBase + arc_id));
  }

  for (const TraceEvent& event : Events()) {
    const long long ts = static_cast<long long>(event.ts);
    const long long arg = static_cast<long long>(event.arg);
    const int tid = event.op_id;
    switch (event.type) {
      case TraceEventType::kStep:
        emit(StrFormat(
            "{\"name\": \"step:%s\", \"cat\": \"step\", \"ph\": \"X\", "
            "\"ts\": %lld, \"dur\": %lld, \"pid\": 0, \"tid\": %d}",
            StepKindToString(static_cast<StepKind>(event.detail)), ts,
            static_cast<long long>(event.dur), tid));
        break;
      case TraceEventType::kNosRule:
        emit(StrFormat(
            "{\"name\": \"nos:%s\", \"cat\": \"nos\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"hops\": %lld}}",
            NosRuleToString(static_cast<NosRule>(event.detail)), ts, tid,
            arg));
        break;
      case TraceEventType::kEtsGenerated:
        emit(StrFormat(
            "{\"name\": \"ets:%s\", \"cat\": \"ets\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"bound\": %lld}}",
            EtsOriginToString(static_cast<EtsOrigin>(event.detail)), ts, tid,
            arg));
        break;
      case TraceEventType::kIdleWaitBegin:
        emit(StrFormat("{\"name\": \"idle-wait\", \"cat\": \"idle\", "
                       "\"ph\": \"B\", \"ts\": %lld, \"pid\": 0, \"tid\": %d}",
                       ts, tid));
        break;
      case TraceEventType::kIdleWaitEnd:
        emit(StrFormat("{\"name\": \"idle-wait\", \"cat\": \"idle\", "
                       "\"ph\": \"E\", \"ts\": %lld, \"pid\": 0, \"tid\": %d}",
                       ts, tid));
        break;
      case TraceEventType::kBufferHighWater:
        emit(StrFormat(
            "{\"name\": \"occupancy\", \"cat\": \"buffer\", \"ph\": \"C\", "
            "\"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"tuples\": %lld}}",
            ts, kArcTidBase + tid, arg));
        break;
      case TraceEventType::kFaultInjected:
        emit(StrFormat(
            "{\"name\": \"fault:%s\", \"cat\": \"fault\", \"ph\": \"i\", "
            "\"s\": \"g\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"arg\": %lld}}",
            FaultKindToString(static_cast<FaultKind>(event.detail)), ts, tid,
            arg));
        break;
      case TraceEventType::kPunctuationEmitted:
        emit(StrFormat(
            "{\"name\": \"punct-emit\", \"cat\": \"punct\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"bound\": %lld}}",
            ts, tid, arg));
        break;
      case TraceEventType::kPunctuationAbsorbed:
        emit(StrFormat(
            "{\"name\": \"punct-absorb\", \"cat\": \"punct\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"bound\": %lld}}",
            ts, tid, arg));
        break;
      case TraceEventType::kNetIngest:
        emit(StrFormat(
            "{\"name\": \"net-ingest:%s\", \"cat\": \"net\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"conn\": %lld}}",
            event.detail == 1 ? "punctuation" : "data", ts, tid, arg));
        break;
      case TraceEventType::kCheckpoint:
        // Engine-level (tid -1 would confuse viewers; pin to tid 0's band
        // as a global instant).
        emit(StrFormat(
            "{\"name\": \"checkpoint\", \"cat\": \"recovery\", \"ph\": "
            "\"i\", \"s\": \"g\", \"ts\": %lld, \"pid\": 0, \"tid\": 0, "
            "\"args\": {\"checkpoint_id\": %lld, \"frontier\": %lld}}",
            ts, arg, static_cast<long long>(event.dur)));
        break;
      case TraceEventType::kRecovery:
        emit(StrFormat(
            "{\"name\": \"recovery\", \"cat\": \"recovery\", \"ph\": \"i\", "
            "\"s\": \"g\", \"ts\": %lld, \"pid\": 0, \"tid\": 0, "
            "\"args\": {\"replayed_frames\": %lld, \"checkpoint_id\": "
            "%lld}}",
            ts, arg, static_cast<long long>(event.dur)));
        break;
      case TraceEventType::kBatchDrain:
        emit(StrFormat(
            "{\"name\": \"batch:%lld\", \"cat\": \"batch\", \"ph\": \"X\", "
            "\"ts\": %lld, \"dur\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"rows\": %lld, \"punct_split\": %d}}",
            arg, ts, static_cast<long long>(event.dur), tid, arg,
            static_cast<int>(event.detail)));
        break;
      case TraceEventType::kFrontier:
        emit(StrFormat(
            "{\"name\": \"frontier:%s\", \"cat\": \"frontier\", \"ph\": "
            "\"i\", \"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"arg\": %lld}}",
            FrontierEventKindToString(
                static_cast<FrontierEventKind>(event.detail)),
            ts, tid, arg));
        break;
      case TraceEventType::kShardHop:
        emit(StrFormat(
            "{\"name\": \"shard_hop\", \"cat\": \"shard\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"from_shard\": %d, \"to_shard\": %lld}}",
            ts, tid, static_cast<int>(event.detail), arg));
        break;
      case TraceEventType::kStateSpill:
      case TraceEventType::kStateLoad:
        emit(StrFormat(
            "{\"name\": \"%s\", \"cat\": \"storage\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %lld, \"pid\": 0, \"tid\": %d, "
            "\"args\": {\"block\": %lld, \"rows\": %lld}}",
            TraceEventTypeToString(event.type), ts, tid, arg,
            static_cast<long long>(event.dur)));
        break;
    }
  }
  os << "\n], \"otherData\": {\"dropped_events\": "
     << static_cast<unsigned long long>(dropped_) << "}}\n";
}

}  // namespace dsms
