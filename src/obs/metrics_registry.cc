#include "obs/metrics_registry.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "metrics/table_printer.h"

namespace dsms {
namespace {

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  return StrFormat("%.6g", value);
}

}  // namespace

MetricsRegistry::Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Metric& metric = metrics_[name];
  if (!metric.counter) {
    DSMS_CHECK(!metric.gauge && !metric.histogram && !metric.view);
    metric.counter = std::make_unique<Counter>();
  }
  return metric.counter.get();
}

MetricsRegistry::Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  Metric& metric = metrics_[name];
  if (!metric.gauge) {
    DSMS_CHECK(!metric.counter && !metric.histogram && !metric.view);
    metric.gauge = std::make_unique<Gauge>();
  }
  return metric.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Metric& metric = metrics_[name];
  if (!metric.histogram) {
    DSMS_CHECK(!metric.counter && !metric.gauge && !metric.view);
    metric.histogram = std::make_unique<Histogram>();
  }
  return metric.histogram.get();
}

void MetricsRegistry::RegisterView(const std::string& name,
                                   std::function<double()> fn) {
  DSMS_CHECK(fn != nullptr);
  Metric& metric = metrics_[name];
  DSMS_CHECK(!metric.counter && !metric.gauge && !metric.histogram);
  metric.view = std::move(fn);
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Samples() const {
  std::vector<Sample> samples;
  samples.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    if (metric.counter) {
      samples.push_back({name, "counter",
                         StrFormat("%llu", static_cast<unsigned long long>(
                                               metric.counter->value()))});
    } else if (metric.gauge) {
      samples.push_back({name, "gauge", FormatDouble(metric.gauge->value())});
    } else if (metric.histogram) {
      const Histogram& h = *metric.histogram;
      samples.push_back(
          {name + ".count", "histogram",
           StrFormat("%llu", static_cast<unsigned long long>(h.count()))});
      samples.push_back({name + ".mean", "histogram", FormatDouble(h.mean())});
      samples.push_back(
          {name + ".p50", "histogram", FormatDouble(h.Quantile(0.5))});
      samples.push_back(
          {name + ".p99", "histogram", FormatDouble(h.Quantile(0.99))});
      samples.push_back(
          {name + ".max", "histogram",
           StrFormat("%lld", static_cast<long long>(h.max()))});
    } else if (metric.view) {
      samples.push_back({name, "view", FormatDouble(metric.view())});
    }
  }
  return samples;
}

void MetricsRegistry::PrintTable(std::ostream& os) const {
  TablePrinter table({"metric", "kind", "value"});
  for (const Sample& sample : Samples()) {
    table.AddRow({sample.name, sample.kind, sample.value});
  }
  table.Print(os);
}

void MetricsRegistry::PrintJson(std::ostream& os) const {
  os << "{";
  bool first = true;
  for (const Sample& sample : Samples()) {
    if (!first) os << ", ";
    first = false;
    os << JsonQuote(sample.name) << ": ";
    if (IsStrictJsonNumber(sample.value)) {
      os << sample.value;
    } else {
      // nan/inf (and anything else unrepresentable) degrade to null rather
      // than emit invalid JSON.
      os << "null";
    }
  }
  os << "}\n";
}

}  // namespace dsms
