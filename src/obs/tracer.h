#ifndef DSMS_OBS_TRACER_H_
#define DSMS_OBS_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/time.h"
#include "obs/trace_event.h"

namespace dsms {

/// Low-overhead execution tracer: a preallocated ring buffer of typed
/// TraceEvents stamped with virtual time. Recording is an inline store (no
/// allocation, no I/O, no clock mutation); when the ring is full the oldest
/// events are overwritten and counted in dropped(). The engine's hooks are
/// all guarded by a null check — with no tracer attached execution is
/// byte-identical to an untraced run (see tests/trace_equivalence_test.cc).
///
/// Export is Chrome trace-event JSON (chrome://tracing, or ui.perfetto.dev):
/// every operator gets its own "thread" row, arcs get rows in a separate
/// band, steps render as duration slices, idle-wait as nested slices, and
/// NOS/ETS/fault events as instants. See docs/execution_model.md.
class Tracer {
 public:
  /// `clock` stamps events and must outlive the tracer. `capacity` is the
  /// ring size in events (32 bytes each), preallocated up front.
  explicit Tracer(const VirtualClock* clock, size_t capacity = 1 << 18);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- recording hooks (hot path; inline, never touch the clock) ---

  void RecordStep(int op_id, Timestamp start, Duration cost, StepKind kind) {
    Push(TraceEvent{start, cost, 0, op_id, TraceEventType::kStep,
                    static_cast<uint8_t>(kind)});
  }

  void RecordNosRule(int op_id, NosRule rule, int64_t arg = 0) {
    Push(TraceEvent{clock_->now(), 0, arg, op_id, TraceEventType::kNosRule,
                    static_cast<uint8_t>(rule)});
  }

  void RecordEts(int op_id, EtsOrigin origin, Timestamp bound) {
    Push(TraceEvent{clock_->now(), 0, bound, op_id,
                    TraceEventType::kEtsGenerated,
                    static_cast<uint8_t>(origin)});
  }

  void RecordIdleWait(int op_id, bool begin) {
    Push(TraceEvent{clock_->now(), 0, 0, op_id,
                    begin ? TraceEventType::kIdleWaitBegin
                          : TraceEventType::kIdleWaitEnd,
                    0});
  }

  void RecordHighWater(int arc_id, int64_t occupancy) {
    Push(TraceEvent{clock_->now(), 0, occupancy, arc_id,
                    TraceEventType::kBufferHighWater, 0});
  }

  void RecordFault(int op_id, uint8_t fault_kind, int64_t arg) {
    Push(TraceEvent{clock_->now(), 0, arg, op_id,
                    TraceEventType::kFaultInjected, fault_kind});
  }

  void RecordPunctuation(int op_id, bool emitted, Timestamp bound) {
    Push(TraceEvent{clock_->now(), 0, bound, op_id,
                    emitted ? TraceEventType::kPunctuationEmitted
                            : TraceEventType::kPunctuationAbsorbed,
                    0});
  }

  /// A live network frame was ingested into source `op_id`; `frame_type` is
  /// the WireFrame::Type byte, `conn_id` the connection it arrived on.
  void RecordNetIngest(int op_id, uint8_t frame_type, int64_t conn_id) {
    Push(TraceEvent{clock_->now(), 0, conn_id, op_id,
                    TraceEventType::kNetIngest, frame_type});
  }

  /// Checkpoint `checkpoint_id` was written with its frontier at `frontier`,
  /// at virtual time `now` (engine-level: op_id -1; frontier rides in dur).
  void RecordCheckpoint(uint64_t checkpoint_id, Timestamp frontier,
                        Timestamp now) {
    Push(TraceEvent{now, frontier, static_cast<int64_t>(checkpoint_id), -1,
                    TraceEventType::kCheckpoint, 0});
  }

  /// One columnar batch of `rows` data tuples was drained and processed at
  /// operator `op_id`, charged `cost`; `punct_split` marks a drain stopped
  /// early by mid-buffer punctuation.
  void RecordBatchDrain(int op_id, Timestamp start, Duration cost,
                        int64_t rows, bool punct_split) {
    Push(TraceEvent{start, cost, rows, op_id, TraceEventType::kBatchDrain,
                    static_cast<uint8_t>(punct_split ? 1 : 0)});
  }

  /// Frontier coordination event at source `op_id` (frontier tracker
  /// lifecycle: lease expiry, revival, state change, violation, revoke);
  /// `kind` is a FrontierEventKind byte, `arg` its payload.
  void RecordFrontier(int op_id, uint8_t kind, int64_t arg) {
    Push(TraceEvent{clock_->now(), 0, arg, op_id, TraceEventType::kFrontier,
                    kind});
  }

  /// A shard-boundary crossing in sharded execution: control or a tuple
  /// moved `from_shard` -> `to_shard`, arriving at operator `op_id`.
  void RecordShardHop(int op_id, int from_shard, int to_shard) {
    Push(TraceEvent{clock_->now(), 0, to_shard, op_id,
                    TraceEventType::kShardHop,
                    static_cast<uint8_t>(from_shard)});
  }

  /// The state store spilled block `block_id` (`rows` rows) of operator
  /// `op_id`'s state to disk.
  void RecordStateSpill(int op_id, int64_t block_id, int64_t rows) {
    Push(TraceEvent{clock_->now(), rows, block_id, op_id,
                    TraceEventType::kStateSpill, 0});
  }

  /// A spilled block was loaded back for a probe of operator `op_id`.
  void RecordStateLoad(int op_id, int64_t block_id, int64_t rows) {
    Push(TraceEvent{clock_->now(), rows, block_id, op_id,
                    TraceEventType::kStateLoad, 0});
  }

  /// Recovery restored checkpoint `checkpoint_id` and queued
  /// `replayed_count` WAL records, leaving the clock at `clock_now`
  /// (engine-level: op_id -1; the checkpoint id rides in dur).
  void RecordRecovery(uint64_t checkpoint_id, size_t replayed_count,
                      Timestamp clock_now) {
    Push(TraceEvent{clock_now, static_cast<Duration>(checkpoint_id),
                    static_cast<int64_t>(replayed_count), -1,
                    TraceEventType::kRecovery, 0});
  }

  // --- track naming (wiring time; see AnnotateTracks in obs/trace_wiring)---

  /// Display name of operator `op_id`'s row in the exported trace.
  void SetOperatorName(int op_id, std::string name);
  /// Display name of arc `arc_id`'s row (kept in a separate tid band so
  /// operator ids and arc ids cannot collide).
  void SetArcName(int arc_id, std::string name);

  // --- inspection / export ---

  /// Retained events, oldest first (at most `capacity`; earlier events may
  /// have been dropped — see dropped()).
  std::vector<TraceEvent> Events() const;

  size_t size() const { return count_; }
  size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const { return dropped_; }

  /// Writes the retained events as Chrome trace-event JSON (the object form,
  /// {"traceEvents": [...]}), loadable in chrome://tracing and Perfetto.
  void WriteChromeTrace(std::ostream& os) const;

  /// Count of retained events of `type` (test convenience).
  size_t CountType(TraceEventType type) const;

 private:
  void Push(const TraceEvent& event) {
    ring_[next_] = event;
    next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
    if (count_ < ring_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  const VirtualClock* clock_;
  std::vector<TraceEvent> ring_;
  size_t next_ = 0;
  size_t count_ = 0;
  uint64_t dropped_ = 0;
  std::map<int, std::string> operator_names_;
  std::map<int, std::string> arc_names_;
};

}  // namespace dsms

#endif  // DSMS_OBS_TRACER_H_
