#ifndef DSMS_OBS_METRICS_REGISTRY_H_
#define DSMS_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/histogram.h"

namespace dsms {

/// One registration point for named metrics and one snapshot path for
/// rendering them (aligned table or strict JSON). Four instrument kinds:
///
///  - Counter: monotonically increasing uint64, owned by the registry;
///  - Gauge:   settable double, owned by the registry;
///  - Histogram: metrics/Histogram, owned by the registry, flattened into
///    .count/.mean/.p50/.p99/.max samples at snapshot time;
///  - View:    a double computed on demand from a caller-owned field — how
///    the pre-existing stat structs (ExecStats, ScenarioResult,
///    ExperimentReport, per-operator stats) are re-plumbed through the
///    registry without churning their field accessors. The viewed object
///    must outlive the registry (or the registry must be snapshotted before
///    the object dies).
///
/// Names are dot-separated paths ("exec.data_steps", "op.U.punct_out");
/// snapshots are sorted by name, so output is deterministic.
class MetricsRegistry {
 public:
  class Counter {
   public:
    void Increment(uint64_t delta = 1) { value_ += delta; }
    void Set(uint64_t value) { value_ = value; }
    uint64_t value() const { return value_; }

   private:
    uint64_t value_ = 0;
  };

  class Gauge {
   public:
    void Set(double value) { value_ = value; }
    double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Pointers stay valid for the registry's lifetime.
  /// Registering the same name as two different kinds is a programming
  /// error (checked).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers a live view; `fn` is evaluated at snapshot time.
  /// Re-registering replaces the previous view under that name.
  void RegisterView(const std::string& name, std::function<double()> fn);

  /// Convenience setters (get-or-create then set).
  void SetGauge(const std::string& name, double value) {
    GetGauge(name)->Set(value);
  }
  void SetCounter(const std::string& name, uint64_t value) {
    GetCounter(name)->Set(value);
  }

  bool Contains(const std::string& name) const {
    return metrics_.count(name) > 0;
  }
  size_t size() const { return metrics_.size(); }

  /// One rendered sample. Counters format as integers; gauges and views as
  /// %.6g; non-finite values as "nan"/"inf" (PrintJson turns those into
  /// null — strict JSON has no spelling for them).
  struct Sample {
    std::string name;
    const char* kind;  // "counter" | "gauge" | "histogram" | "view"
    std::string value;
  };

  /// All samples sorted by name, histograms flattened.
  std::vector<Sample> Samples() const;

  /// Aligned metric/kind/value table (TablePrinter).
  void PrintTable(std::ostream& os) const;

  /// A single JSON object mapping metric name to value. Strictly valid:
  /// names are escaped, non-finite values emit null.
  void PrintJson(std::ostream& os) const;

 private:
  struct Metric {
    // Exactly one is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> view;
  };

  std::map<std::string, Metric> metrics_;
};

}  // namespace dsms

#endif  // DSMS_OBS_METRICS_REGISTRY_H_
