#ifndef DSMS_OBS_TRACE_EVENT_H_
#define DSMS_OBS_TRACE_EVENT_H_

#include <cstdint>

#include "common/time.h"

namespace dsms {

/// What happened at one instant (or interval) of a run. The taxonomy mirrors
/// the paper's vocabulary: operator steps are the Basic Execution Cycle
/// (Figure 3), NOS rules are Forward/Encore/Backtrack (Section 3.2), ETS
/// births are Section 4, idle-wait intervals are the Section 6 metric.
enum class TraceEventType : uint8_t {
  /// One operator step: `ts` is the step's start, `dur` its charged cost,
  /// `detail` a StepKind.
  kStep = 0,
  /// A Next-Operator-Selection decision at `op_id`; `detail` is a NosRule.
  /// For Backtrack, `arg` is the number of hops the walk took.
  kNosRule = 1,
  /// An ETS punctuation was born at source `op_id`; `detail` is an
  /// EtsOrigin, `arg` the timestamp bound the ETS carries.
  kEtsGenerated = 2,
  /// An IWP operator entered idle-waiting (holds data it cannot emit).
  kIdleWaitBegin = 3,
  /// The same operator resumed progress.
  kIdleWaitEnd = 4,
  /// Arc `op_id` (arc track, not operator track) crossed a power-of-two
  /// occupancy threshold; `arg` is the new occupancy.
  kBufferHighWater = 5,
  /// A fault injector perturbed source `op_id`; `detail` is the FaultKind,
  /// `arg` the action-specific payload (copies delivered, faulty timestamp).
  kFaultInjected = 6,
  /// Operator `op_id` emitted a watermark punctuation with bound `arg`.
  kPunctuationEmitted = 7,
  /// Operator `op_id` absorbed a punctuation with bound `arg` into its TSM
  /// register.
  kPunctuationAbsorbed = 8,
  /// A frame from a live network connection was ingested into source
  /// `op_id`; `detail` is the WireFrame::Type (0 data, 1 punctuation),
  /// `arg` the connection id it arrived on (see net/ingest_server.h).
  kNetIngest = 9,
  /// A punctuation-aligned checkpoint was written (op_id -1: engine-level);
  /// `arg` is the checkpoint id, `ts` the virtual time of the write, `dur`
  /// reused to carry the checkpoint frontier (see recovery/checkpoint.h).
  kCheckpoint = 10,
  /// Recovery completed on startup (op_id -1); `arg` is the number of WAL
  /// records replayed, `dur` reused to carry the recovered checkpoint id.
  kRecovery = 11,
  /// One columnar batch drain-and-process at operator `op_id`: `arg` is the
  /// number of data rows in the batch, `dur` the charged cost (rows x
  /// data_step), `detail` 1 when the drain was force-split by a punctuation
  /// mid-buffer (0 otherwise). Replaces the per-tuple kStep slices the
  /// scalar path would have recorded for those rows.
  kBatchDrain = 12,
  /// Frontier coordination event at source `op_id`: lease expiries,
  /// revivals, health-state changes, violations, and promise revocations.
  /// `detail` is a FrontierEventKind, `arg` its payload (new SourceHealth,
  /// FrontierViolation, or stream id — see frontier/frontier_tracker.h).
  kFrontier = 13,
  /// Sharded execution crossed a shard boundary: control (deterministic
  /// mode) or a tuple (parallel mode) moved from the shard in `detail` to
  /// the shard in `arg`, arriving at operator `op_id`
  /// (exec/sharded_executor.h).
  kShardHop = 14,
  /// The state store evicted a block of operator `op_id`'s state to disk:
  /// `arg` is the block id, `dur` reused to carry the row count
  /// (storage/state_store.h).
  kStateSpill = 15,
  /// A spilled block of operator `op_id`'s state was loaded back for a
  /// probe; `arg` is the block id, `dur` the row count.
  kStateLoad = 16,
};

/// What an operator step consumed (TraceEvent::detail for kStep).
enum class StepKind : uint8_t { kEmpty = 0, kData = 1, kPunctuation = 2 };

/// Next-Operator-Selection rules (TraceEvent::detail for kNosRule).
enum class NosRule : uint8_t { kForward = 0, kEncore = 1, kBacktrack = 2 };

/// Which mechanism produced an ETS (TraceEvent::detail for kEtsGenerated).
enum class EtsOrigin : uint8_t { kOnDemand = 0, kWatchdog = 1 };

const char* TraceEventTypeToString(TraceEventType type);
const char* StepKindToString(StepKind kind);
const char* NosRuleToString(NosRule rule);
const char* EtsOriginToString(EtsOrigin origin);

/// One fixed-size trace record. 32 bytes, trivially copyable — recording is
/// a bounds-check and a struct store into a preallocated ring.
struct TraceEvent {
  Timestamp ts = 0;    // virtual time (µs) when the event happened
  Duration dur = 0;    // kStep only: charged cost of the step
  int64_t arg = 0;     // type-specific payload (see TraceEventType)
  int32_t op_id = -1;  // operator id; for kBufferHighWater the arc id
  TraceEventType type = TraceEventType::kStep;
  uint8_t detail = 0;  // StepKind / NosRule / EtsOrigin / FaultKind
};

static_assert(sizeof(TraceEvent) <= 32, "TraceEvent must stay ring-friendly");

}  // namespace dsms

#endif  // DSMS_OBS_TRACE_EVENT_H_
