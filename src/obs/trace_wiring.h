#ifndef DSMS_OBS_TRACE_WIRING_H_
#define DSMS_OBS_TRACE_WIRING_H_

#include <vector>

#include "core/stream_buffer.h"
#include "graph/query_graph.h"
#include "obs/tracer.h"

namespace dsms {

/// Names every operator and arc row of `tracer` after `graph`, and hands the
/// tracer to every operator so punctuation-path hooks can record. Call once
/// after the graph is built, before the run.
void AnnotateTracks(const QueryGraph& graph, Tracer* tracer);

/// Buffer listener emitting kBufferHighWater counter events when an arc's
/// occupancy crosses a power-of-two threshold upward (1, 2, 4, ...), and a
/// zero sample when it drains — so the exported counter track shows growth
/// episodes at logarithmic event cost instead of one event per push.
class BufferOccupancyTracer : public BufferListener {
 public:
  /// `tracer` must outlive this listener; `num_arcs` sizes the per-arc
  /// threshold table (arc ids are graph buffer ids).
  BufferOccupancyTracer(Tracer* tracer, int num_arcs);

  void OnPush(const StreamBuffer& buffer, const Tuple& tuple) override;
  void OnPop(const StreamBuffer& buffer, const Tuple& tuple) override;

 private:
  Tracer* tracer_;
  /// Last occupancy reported per arc (0 = nothing reported yet).
  std::vector<size_t> last_reported_;
};

}  // namespace dsms

#endif  // DSMS_OBS_TRACE_WIRING_H_
