#include "obs/trace_wiring.h"

#include <string>

#include "common/check.h"

namespace dsms {

void AnnotateTracks(const QueryGraph& graph, Tracer* tracer) {
  DSMS_CHECK(tracer != nullptr);
  for (const auto& op : graph.operators()) {
    tracer->SetOperatorName(op->id(), op->ToString());
    op->set_tracer(tracer);
  }
  for (int b = 0; b < graph.num_buffers(); ++b) {
    tracer->SetArcName(b, graph.buffer(b)->name());
  }
}

BufferOccupancyTracer::BufferOccupancyTracer(Tracer* tracer, int num_arcs)
    : tracer_(tracer) {
  DSMS_CHECK(tracer != nullptr);
  DSMS_CHECK_GE(num_arcs, 0);
  last_reported_.assign(static_cast<size_t>(num_arcs), 0);
}

void BufferOccupancyTracer::OnPush(const StreamBuffer& buffer,
                                   const Tuple& tuple) {
  (void)tuple;
  if (buffer.id() < 0 ||
      buffer.id() >= static_cast<int>(last_reported_.size())) {
    return;
  }
  size_t& reported = last_reported_[static_cast<size_t>(buffer.id())];
  const size_t size = buffer.size();
  // Next threshold is double the last reported occupancy (1 when nothing
  // has been reported since the arc last drained).
  const size_t threshold = reported == 0 ? 1 : reported * 2;
  if (size >= threshold) {
    reported = size;
    tracer_->RecordHighWater(buffer.id(), static_cast<int64_t>(size));
  }
}

void BufferOccupancyTracer::OnPop(const StreamBuffer& buffer,
                                  const Tuple& tuple) {
  (void)tuple;
  if (buffer.id() < 0 ||
      buffer.id() >= static_cast<int>(last_reported_.size())) {
    return;
  }
  size_t& reported = last_reported_[static_cast<size_t>(buffer.id())];
  if (reported > 0 && buffer.empty()) {
    reported = 0;
    tracer_->RecordHighWater(buffer.id(), 0);
  }
}

}  // namespace dsms
