#include "core/schema.h"

#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

const Field& Schema::field(int index) const {
  DSMS_CHECK_GE(index, 0);
  DSMS_CHECK_LT(index, num_fields());
  return fields_[static_cast<size_t>(index)];
}

int Schema::FieldIndex(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[static_cast<size_t>(i)].name == name) return i;
  }
  return -1;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Field> combined = fields_;
  combined.reserve(fields_.size() + other.fields_.size());
  for (const Field& f : other.fields_) {
    Field copy = f;
    if (FieldIndex(f.name) >= 0) copy.name = "right." + f.name;
    combined.push_back(std::move(copy));
  }
  return Schema(std::move(combined));
}

Status CheckFieldAccess(const Schema& schema, int field, bool require_numeric,
                        std::string_view context) {
  if (field < 0 || field >= schema.num_fields()) {
    return InvalidArgumentError(
        StrFormat("%.*s: field %d out of bounds for schema %s",
                  static_cast<int>(context.size()), context.data(), field,
                  schema.ToString().c_str()));
  }
  if (require_numeric && !IsNumeric(schema.field(field).type)) {
    return InvalidArgumentError(StrFormat(
        "%.*s: field %d ('%s') must be numeric but has type %s",
        static_cast<int>(context.size()), context.data(), field,
        schema.field(field).name.c_str(),
        ValueTypeToString(schema.field(field).type)));
  }
  return OkStatus();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeToString(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace dsms
