#ifndef DSMS_CORE_TUPLE_H_
#define DSMS_CORE_TUPLE_H_

#include <cstdint>
#include <string>

#include "common/time.h"
#include "core/inlined_values.h"
#include "core/value.h"

namespace dsms {

/// Whether a tuple carries application data or only timestamp information.
/// Punctuation tuples are the carriers of Enabling Time-Stamps (ETS) and of
/// periodic heartbeats; they flow through the operator network and are
/// eliminated at sinks (Section 3 of the paper, footnote 3).
enum class TupleKind {
  kData = 0,
  kPunctuation = 1,
};

/// The three timestamp disciplines supported by Stream Mill (Section 5):
///  - kExternal: stamped by the producing application; skew-bounded ETS.
///  - kInternal: stamped with system (virtual) time on entry to the DSMS;
///    ETS value is the current clock.
///  - kLatent:   no timestamp until an operator needs one; IWP operators
///    never idle-wait (the paper's optimal baseline, scenario D).
enum class TimestampKind {
  kExternal = 0,
  kInternal = 1,
  kLatent = 2,
};

const char* TimestampKindToString(TimestampKind kind);

/// A stream element. Tuples are plain value types moved through buffers.
///
/// Invariants:
///  - data tuples of external/internal kind always have a timestamp;
///  - latent data tuples have no timestamp until an operator stamps them;
///  - punctuation tuples always have a timestamp and an empty payload. A
///    punctuation with timestamp `p` asserts that every future tuple on the
///    same stream has timestamp >= p.
class Tuple {
 public:
  Tuple() = default;

  /// Makes a data tuple with an assigned timestamp.
  static Tuple MakeData(Timestamp timestamp, InlinedValues values,
                        TimestampKind ts_kind = TimestampKind::kInternal);

  /// Makes a latent data tuple (no timestamp yet).
  static Tuple MakeLatent(InlinedValues values);

  /// Makes a punctuation (ETS / heartbeat) tuple.
  static Tuple MakePunctuation(Timestamp timestamp);

  TupleKind kind() const { return kind_; }
  bool is_data() const { return kind_ == TupleKind::kData; }
  bool is_punctuation() const { return kind_ == TupleKind::kPunctuation; }

  TimestampKind timestamp_kind() const { return ts_kind_; }

  bool has_timestamp() const { return has_timestamp_; }
  /// Requires has_timestamp().
  Timestamp timestamp() const;

  /// Stamps a latent tuple (or restamps after reformatting); used by
  /// operators that require timestamps on latent streams.
  void set_timestamp(Timestamp timestamp);

  /// Wall (virtual) time at which the tuple entered the DSMS; the latency of
  /// an output tuple is `emit_time - arrival_time`. Punctuations carry the
  /// time they were generated.
  Timestamp arrival_time() const { return arrival_time_; }
  void set_arrival_time(Timestamp t) { arrival_time_ = t; }

  /// Identifier of the source stream that produced this tuple (set by Source
  /// operators; joins keep the left lineage). Useful for tests and metrics.
  int32_t source_id() const { return source_id_; }
  void set_source_id(int32_t id) { source_id_ = id; }

  /// Monotone per-source sequence number assigned at ingestion.
  uint64_t sequence() const { return sequence_; }
  void set_sequence(uint64_t s) { sequence_ = s; }

  const InlinedValues& values() const { return values_; }
  InlinedValues& mutable_values() { return values_; }
  int num_values() const { return static_cast<int>(values_.size()); }
  const Value& value(int index) const;

  /// Debug rendering, e.g. "data@1500[42, \"x\"]" or "punct@2000".
  std::string ToString() const;

 private:
  TupleKind kind_ = TupleKind::kData;
  TimestampKind ts_kind_ = TimestampKind::kInternal;
  bool has_timestamp_ = false;
  Timestamp timestamp_ = kMinTimestamp;
  Timestamp arrival_time_ = 0;
  int32_t source_id_ = -1;
  uint64_t sequence_ = 0;
  InlinedValues values_;
};

}  // namespace dsms

#endif  // DSMS_CORE_TUPLE_H_
