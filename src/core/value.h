#ifndef DSMS_CORE_VALUE_H_
#define DSMS_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>

namespace dsms {

/// Runtime type of a Value / schema field.
enum class ValueType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed tuple attribute. Small, copyable value type; the
/// operator library manipulates tuples as sequences of Values.
///
/// Representation: a 16-byte tagged union. Numeric and boolean values live
/// entirely inline, so constructing, copying, and moving them never touches
/// the allocator — the property the zero-allocation tuple path relies on.
/// Strings are held through a heap pointer and deep-copied.
class Value {
 public:
  /// Default-constructed Value is int64 0.
  Value() : type_(ValueType::kInt64) { data_.i = 0; }
  explicit Value(int64_t v) : type_(ValueType::kInt64) { data_.i = v; }
  explicit Value(double v) : type_(ValueType::kDouble) { data_.d = v; }
  explicit Value(std::string v) : type_(ValueType::kString) {
    data_.s = new std::string(std::move(v));
  }
  explicit Value(const char* v) : type_(ValueType::kString) {
    data_.s = new std::string(v);
  }
  explicit Value(bool v) : type_(ValueType::kBool) { data_.b = v; }

  Value(const Value& other) : type_(other.type_) {
    if (type_ == ValueType::kString) {
      data_.s = new std::string(*other.data_.s);
    } else {
      data_ = other.data_;
    }
  }

  Value(Value&& other) noexcept : type_(other.type_), data_(other.data_) {
    // The moved-from value degrades to int64 0 so its destructor is trivial.
    other.type_ = ValueType::kInt64;
    other.data_.i = 0;
  }

  Value& operator=(const Value& other) {
    if (this == &other) return *this;
    if (type_ == ValueType::kString && other.type_ == ValueType::kString) {
      *data_.s = *other.data_.s;  // reuse the existing heap string
      return *this;
    }
    DestroyString();
    type_ = other.type_;
    if (type_ == ValueType::kString) {
      data_.s = new std::string(*other.data_.s);
    } else {
      data_ = other.data_;
    }
    return *this;
  }

  Value& operator=(Value&& other) noexcept {
    if (this == &other) return *this;
    DestroyString();
    type_ = other.type_;
    data_ = other.data_;
    other.type_ = ValueType::kInt64;
    other.data_.i = 0;
    return *this;
  }

  ~Value() { DestroyString(); }

  ValueType type() const { return type_; }

  bool is_int64() const { return type_ == ValueType::kInt64; }
  bool is_double() const { return type_ == ValueType::kDouble; }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_bool() const { return type_ == ValueType::kBool; }

  /// Typed accessors; aborts (DSMS_CHECK) on type mismatch.
  int64_t int64_value() const;
  double double_value() const;
  const std::string& string_value() const;
  bool bool_value() const;

  /// Returns the value as a double, converting from int64/bool when needed;
  /// aborts for strings. Convenient for numeric predicates and aggregates.
  double AsDouble() const;

  /// Human-readable rendering (ints as decimal, doubles via shortest
  /// round-trip formatting, strings quoted, bools as true/false).
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    if (a.type_ != b.type_) return false;
    switch (a.type_) {
      case ValueType::kInt64:
        return a.data_.i == b.data_.i;
      case ValueType::kDouble:
        return a.data_.d == b.data_.d;
      case ValueType::kString:
        return *a.data_.s == *b.data_.s;
      case ValueType::kBool:
        return a.data_.b == b.data_.b;
    }
    return false;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  friend class InlinedValues;  // bitwise copy + ReownString fast path

  /// After a bitwise copy of a string Value, both copies point at the same
  /// heap string; this replaces the pointer with a fresh deep copy. Only
  /// valid immediately after such a copy, before either copy is destroyed.
  void ReownString() { data_.s = new std::string(*data_.s); }

  void DestroyString() {
    if (type_ == ValueType::kString) delete data_.s;
  }

  ValueType type_;
  union Payload {
    int64_t i;
    double d;
    bool b;
    std::string* s;
  } data_;
};

}  // namespace dsms

#endif  // DSMS_CORE_VALUE_H_
