#ifndef DSMS_CORE_VALUE_H_
#define DSMS_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace dsms {

/// Runtime type of a Value / schema field.
enum class ValueType {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  kBool = 3,
};

const char* ValueTypeToString(ValueType type);

/// A dynamically typed tuple attribute. Small, copyable value type; the
/// operator library manipulates tuples as vectors of Values.
class Value {
 public:
  /// Default-constructed Value is int64 0.
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(bool v) : data_(v) {}

  Value(const Value&) = default;
  Value& operator=(const Value&) = default;
  Value(Value&&) = default;
  Value& operator=(Value&&) = default;

  ValueType type() const;

  bool is_int64() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_bool() const { return std::holds_alternative<bool>(data_); }

  /// Typed accessors; aborts (DSMS_CHECK) on type mismatch.
  int64_t int64_value() const;
  double double_value() const;
  const std::string& string_value() const;
  bool bool_value() const;

  /// Returns the value as a double, converting from int64/bool when needed;
  /// aborts for strings. Convenient for numeric predicates and aggregates.
  double AsDouble() const;

  /// Human-readable rendering (ints as decimal, doubles with %g, strings
  /// quoted, bools as true/false).
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<int64_t, double, std::string, bool> data_;
};

}  // namespace dsms

#endif  // DSMS_CORE_VALUE_H_
