#include "core/stream_buffer.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/column_batch.h"

namespace dsms {

namespace {
constexpr size_t kInitialCapacity = 16;
}  // namespace

const char* OverloadPolicyToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kGrow:
      return "grow";
    case OverloadPolicy::kBlockSource:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed";
  }
  return "unknown";
}

StreamBuffer::StreamBuffer(std::string name) : name_(std::move(name)) {}

void StreamBuffer::AddListener(BufferListener* listener) {
  DSMS_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

namespace {
/// Locks `mutex` when non-null; listener dispatch in parallel sharded mode
/// crosses shard threads, everything else on a buffer stays single-threaded.
class MaybeLock {
 public:
  explicit MaybeLock(std::mutex* mutex) : mutex_(mutex) {
    if (mutex_ != nullptr) mutex_->lock();
  }
  ~MaybeLock() {
    if (mutex_ != nullptr) mutex_->unlock();
  }

 private:
  std::mutex* mutex_;
};
}  // namespace

bool StreamBuffer::AllowPush(const Tuple& tuple) {
  MaybeLock lock(notify_mutex_);
  for (BufferListener* listener : listeners_) {
    if (!listener->OnBeforePush(*this, tuple)) return false;
  }
  return true;
}

void StreamBuffer::ShedHead() {
  DSMS_CHECK_GT(count_, 0u);
  Tuple shed = PopInternal();
  ++shed_tuples_;
  // The head changed; scheduling state must not go stale (the consumer may
  // cache decisions keyed on the front tuple).
  if (tracker_ != nullptr) {
    if (count_ == 0) {
      tracker_->NoteDrained(tracker_consumer_);
    } else {
      tracker_->NoteFrontChanged(tracker_consumer_);
    }
  }
  if (!listeners_.empty()) NotifyPop(shed);
}

void StreamBuffer::NotifyPush(const Tuple& tuple) {
  MaybeLock lock(notify_mutex_);
  for (BufferListener* listener : listeners_) listener->OnPush(*this, tuple);
}

void StreamBuffer::NotifyPop(const Tuple& tuple) {
  MaybeLock lock(notify_mutex_);
  for (BufferListener* listener : listeners_) listener->OnPop(*this, tuple);
}

void StreamBuffer::EnsureCapacity(size_t needed) {
  if (needed <= capacity_) return;
  size_t capacity = capacity_ == 0 ? kInitialCapacity : capacity_;
  while (capacity < needed) capacity *= 2;
  std::vector<Tuple> fresh(capacity);
  for (size_t i = 0; i < count_; ++i) {
    fresh[i] = std::move(slots_[(head_ + i) & mask_]);
  }
  slots_ = std::move(fresh);
  capacity_ = capacity;
  mask_ = capacity - 1;
  head_ = 0;
}

void StreamBuffer::PushAll(std::vector<Tuple> tuples) {
  if (tuples.empty()) return;
  if (!listeners_.empty() || capacity_limit_ != 0 || diverter_ != nullptr) {
    // Veto hooks and overload policies are per-tuple decisions; route
    // through the scalar path (bookkeeping is identical, and the tracker
    // notification collapses to the same empty->non-empty transition).
    for (Tuple& tuple : tuples) PushImpl(std::move(tuple));
    return;
  }
  const bool was_empty = (count_ == 0);
  EnsureCapacity(count_ + tuples.size());
  for (Tuple& tuple : tuples) {
    const bool is_data = tuple.is_data();
    ++total_pushed_;
    data_pushed_ += is_data;
    data_in_queue_ += is_data;
    const size_t idx = (head_ + count_) & mask_;
    slots_[idx] = std::move(tuple);
    ++count_;
  }
  if (count_ > high_water_) high_water_ = count_;
  if (tracker_ != nullptr && was_empty) tracker_->NoteFilled(tracker_consumer_);
}

Tuple StreamBuffer::PopInternal() {
  Tuple tuple = std::move(slots_[head_]);
  head_ = (head_ + 1) & mask_;
  --count_;
  if (tuple.is_data()) {
    DSMS_CHECK_GT(data_in_queue_, 0u);
    --data_in_queue_;
  }
  return tuple;
}

void StreamBuffer::SnapshotTuples(std::vector<Tuple>* out) const {
  out->reserve(out->size() + count_);
  for (size_t i = 0; i < count_; ++i) {
    out->push_back(slots_[(head_ + i) & mask_]);
  }
}

void StreamBuffer::RestoreSnapshot(std::vector<Tuple> tuples,
                                   uint64_t total_pushed,
                                   uint64_t data_pushed,
                                   uint64_t shed_tuples,
                                   uint64_t vetoed_pushes,
                                   size_t high_water) {
  DSMS_CHECK_EQ(count_, 0u);
  DSMS_CHECK(listeners_.empty());
  DSMS_CHECK(tracker_ == nullptr);
  // A snapshot with data_pushed > total_pushed (corrupt or version-skewed
  // blob) would make punctuation_pushed() underflow to ~2^64; reject it here
  // rather than let the nonsense propagate into metrics and shed accounting.
  DSMS_CHECK_LE(data_pushed, total_pushed);
  DSMS_CHECK_LE(tuples.size(), total_pushed);
  EnsureCapacity(tuples.size());
  head_ = 0;
  data_in_queue_ = 0;  // recomputed from the restored contents, not additive
  for (Tuple& tuple : tuples) {
    data_in_queue_ += tuple.is_data() ? 1u : 0u;
    slots_[count_++] = std::move(tuple);
  }
  DSMS_CHECK_LE(data_in_queue_, data_pushed);
  total_pushed_ = total_pushed;
  data_pushed_ = data_pushed;
  shed_tuples_ = shed_tuples;
  vetoed_pushes_ = vetoed_pushes;
  // An image that under-reports the high-water mark (it can never be below
  // the restored occupancy) is clamped so shed/overload decisions stay sane.
  high_water_ = high_water >= count_ ? high_water : count_;
}

size_t StreamBuffer::DrainIntoBatch(ColumnBatch* batch, size_t max_rows,
                                    bool* stopped_at_punctuation) {
  DSMS_CHECK(batch != nullptr);
  *stopped_at_punctuation = false;
  size_t drained = 0;
  while (count_ > 0 && drained < max_rows) {
    if (slots_[head_].is_punctuation()) {
      // A batch never crosses an ordering cut: leave the punctuation at the
      // front for a scalar step. Only a mid-drain stop counts as a split —
      // a punctuation-headed buffer simply yields an empty drain.
      *stopped_at_punctuation = drained > 0;
      break;
    }
    // Listener bookkeeping matches Pop(), but notifying from the slot
    // *before* the move lets the tuple go straight into the batch's row
    // spine — one move per drained row instead of PopInternal's two.
    Tuple& front = slots_[head_];
    if (!listeners_.empty()) NotifyPop(front);
    batch->Append(std::move(front));
    head_ = (head_ + 1) & mask_;
    --count_;
    DSMS_CHECK_GT(data_in_queue_, 0u);
    --data_in_queue_;
    ++drained;
  }
  if (drained > 0 && tracker_ != nullptr) {
    if (count_ == 0) {
      tracker_->NoteDrained(tracker_consumer_);
    } else {
      tracker_->NoteFrontChanged(tracker_consumer_);
    }
  }
  return drained;
}

size_t StreamBuffer::DrainInto(std::vector<Tuple>* out) {
  const size_t drained = count_;
  if (drained == 0) return 0;
  if (out != nullptr) out->reserve(out->size() + drained);
  while (count_ > 0) {
    Tuple tuple = PopInternal();
    if (!listeners_.empty()) {
      for (BufferListener* listener : listeners_) {
        listener->OnPop(*this, tuple);
      }
    }
    if (out != nullptr) out->push_back(std::move(tuple));
  }
  DSMS_CHECK_EQ(data_in_queue_, 0u);
  if (tracker_ != nullptr) tracker_->NoteDrained(tracker_consumer_);
  return drained;
}

}  // namespace dsms
