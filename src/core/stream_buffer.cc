#include "core/stream_buffer.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace dsms {

StreamBuffer::StreamBuffer(std::string name) : name_(std::move(name)) {}

const Tuple& StreamBuffer::Front() const {
  DSMS_CHECK(!tuples_.empty());
  return tuples_.front();
}

void StreamBuffer::AddListener(BufferListener* listener) {
  DSMS_CHECK(listener != nullptr);
  listeners_.push_back(listener);
}

void StreamBuffer::Push(Tuple tuple) {
  ++total_pushed_;
  if (tuple.is_data()) {
    ++data_pushed_;
    ++data_in_queue_;
  } else {
    ++punctuation_pushed_;
  }
  tuples_.push_back(std::move(tuple));
  for (BufferListener* listener : listeners_) {
    listener->OnPush(*this, tuples_.back());
  }
}

Tuple StreamBuffer::Pop() {
  DSMS_CHECK(!tuples_.empty());
  Tuple tuple = std::move(tuples_.front());
  tuples_.pop_front();
  if (tuple.is_data()) {
    DSMS_CHECK_GT(data_in_queue_, 0u);
    --data_in_queue_;
  }
  for (BufferListener* listener : listeners_) {
    listener->OnPop(*this, tuple);
  }
  return tuple;
}

}  // namespace dsms
