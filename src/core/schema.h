#ifndef DSMS_CORE_SCHEMA_H_
#define DSMS_CORE_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/value.h"

namespace dsms {

/// One attribute of a stream schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// The (flat, relational) schema of a stream: an ordered list of named,
/// typed fields. Schemas are small value types copied freely between
/// operators at graph-construction time.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  const std::vector<Field>& fields() const { return fields_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int index) const;

  /// Returns the index of the field named `name`, or -1 if absent.
  int FieldIndex(const std::string& name) const;

  /// Returns a schema holding this schema's fields followed by `other`'s,
  /// disambiguating duplicate names with a `right.` prefix. Used by joins.
  Schema Concat(const Schema& other) const;

  /// e.g. "(ts:int64, price:double)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Field> fields_;
};

/// True for types with a numeric interpretation (Value::AsDouble works).
constexpr bool IsNumeric(ValueType type) {
  return type != ValueType::kString;
}

/// Validates a field reference against a schema: index in bounds and, when
/// `require_numeric`, a numeric type. `context` names the referencing
/// operator for the error message.
Status CheckFieldAccess(const Schema& schema, int field, bool require_numeric,
                        std::string_view context);

}  // namespace dsms

#endif  // DSMS_CORE_SCHEMA_H_
