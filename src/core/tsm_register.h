#ifndef DSMS_CORE_TSM_REGISTER_H_
#define DSMS_CORE_TSM_REGISTER_H_

#include "common/time.h"

namespace dsms {

/// Time-Stamp Memory register (Section 4.1). One register is attached to
/// each input of an IWP operator; it remembers the largest timestamp bound
/// ever observed on that input:
///
///  - observing a data tuple at the buffer head advances the register to the
///    tuple's timestamp;
///  - consuming a punctuation with timestamp p advances the register to p
///    (the producer guarantees no future tuple below p).
///
/// The register "remains until the next tuple updates it" — in particular it
/// survives the consumption of the tuple that set it, which is what lets the
/// relaxed `more` condition process simultaneous tuples without idle-waiting.
class TsmRegister {
 public:
  TsmRegister() = default;

  /// The current lower bound for future timestamps on this input.
  /// kMinTimestamp until anything has been observed.
  Timestamp value() const { return value_; }

  /// True once at least one tuple or punctuation has been observed.
  bool initialized() const { return value_ != kMinTimestamp; }

  /// Advances the register; streams are timestamp-ordered so observations
  /// are monotone, but equal or stale values (simultaneous tuples, duplicate
  /// ETS) are tolerated and ignored.
  void Observe(Timestamp timestamp) {
    if (timestamp > value_) value_ = timestamp;
  }

  void Reset() { value_ = kMinTimestamp; }

 private:
  Timestamp value_ = kMinTimestamp;
};

}  // namespace dsms

#endif  // DSMS_CORE_TSM_REGISTER_H_
