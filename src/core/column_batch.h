#ifndef DSMS_CORE_COLUMN_BATCH_H_
#define DSMS_CORE_COLUMN_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/time.h"
#include "core/tuple.h"

namespace dsms {

/// A columnar view over a run of consecutive *data* tuples drained from one
/// StreamBuffer (StreamBuffer::DrainIntoBatch). The rows keep their full
/// Tuple representation (the "row spine") so batch kernels can forward
/// tuples byte-identically — lineage, arrival time, sequence numbers and
/// payload survive untouched — while per-attribute column vectors give the
/// hot kernels (filter compare, window aggregation) a tight contiguous loop
/// over doubles instead of a pointer chase through Tuple/InlinedValues.
///
/// Invariants:
///  - every row is a data tuple (punctuation never enters a batch: the
///    drain stops at the first punctuation so a batch never spans an
///    ordering cut — see docs/batching.md);
///  - rows are in arrival (FIFO) order; kernels MUST process them in order
///    or batch execution stops being equivalent to the scalar path;
///  - the batch is transient: it lives for one executor step and is cleared
///    before the next drain. Nothing here is checkpointed — recovery only
///    ever sees tuples inside StreamBuffers (docs/batching.md, §recovery).
///
/// Column extraction is lazy and cached per (batch, field): the first
/// NumericColumn(f) call scans the rows once; subsequent calls are a vector
/// lookup. The cache is invalidated by Clear(), so a recycled batch never
/// leaks stale columns. Storage (rows and column vectors) is retained
/// across Clear() — a batch owned by an executor reaches a steady state
/// where draining and extracting allocate nothing.
class ColumnBatch {
 public:
  ColumnBatch() = default;

  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends one data tuple to the batch (called by DrainIntoBatch in FIFO
  /// order). Requires tuple.is_data().
  void Append(Tuple&& tuple) {
    DSMS_CHECK(tuple.is_data());
    all_timestamped_ = all_timestamped_ && tuple.has_timestamp();
    timestamps_.push_back(tuple.has_timestamp() ? tuple.timestamp()
                                                : kMinTimestamp);
    rows_.push_back(std::move(tuple));
  }

  /// Read access to row `i` (0-based, arrival order).
  const Tuple& row(size_t i) const { return rows_[i]; }

  /// Mutable access (e.g. MapOp rewriting payloads in place).
  Tuple& mutable_row(size_t i) { return rows_[i]; }

  /// Moves row `i` out of the batch (the slot is left moved-from; a kernel
  /// takes each row at most once, in order). This is how kernels emit
  /// byte-identical tuples without a copy.
  Tuple TakeRow(size_t i) { return std::move(rows_[i]); }

  /// Timestamp column, parallel to the rows. Latent (unstamped) rows hold
  /// kMinTimestamp; check all_timestamped() before trusting the column.
  const std::vector<Timestamp>& timestamps() const { return timestamps_; }
  bool all_timestamped() const { return all_timestamped_; }

  /// Contiguous numeric column for payload field `field`: every row's
  /// value(field) converted with Value::AsDouble (int64/bool/double —
  /// exactly the coercion the scalar comparison predicates apply). Returns
  /// nullptr when any row lacks the field or holds a non-numeric value
  /// there; kernels then fall back to their row-wise loop. The returned
  /// pointer is valid until Clear().
  const double* NumericColumn(int field);

  /// Empties the batch and invalidates extracted columns. Capacity of the
  /// row spine and column vectors is retained for reuse.
  void Clear() {
    rows_.clear();
    timestamps_.clear();
    all_timestamped_ = true;
    for (CachedColumn& col : columns_) col.field = -1;
  }

 private:
  struct CachedColumn {
    int field = -1;  // -1 = slot free / invalidated
    bool numeric = false;
    std::vector<double> values;
  };

  std::vector<Tuple> rows_;
  std::vector<Timestamp> timestamps_;
  bool all_timestamped_ = true;
  std::vector<CachedColumn> columns_;
};

}  // namespace dsms

#endif  // DSMS_CORE_COLUMN_BATCH_H_
