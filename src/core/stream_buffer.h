#ifndef DSMS_CORE_STREAM_BUFFER_H_
#define DSMS_CORE_STREAM_BUFFER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/tuple.h"

namespace dsms {

class StreamBuffer;

/// Observer notified on every enqueue/dequeue of a StreamBuffer. The
/// simulation attaches one global listener (metrics/QueueSizeTracker) to
/// every arc of a query graph so that "peak total queue size" (Figure 8) can
/// be maintained incrementally.
class BufferListener {
 public:
  virtual ~BufferListener() = default;
  virtual void OnPush(const StreamBuffer& buffer, const Tuple& tuple) = 0;
  virtual void OnPop(const StreamBuffer& buffer, const Tuple& tuple) = 0;
};

/// A FIFO arc of the query graph (Section 3: "our directed arc from Qi to Qj
/// represents a buffer"). Exactly one producer appends at the tail and one
/// consumer removes from the front. Unbounded: the experiments measure how
/// large buffers grow under idle-waiting, so no backpressure is applied.
class StreamBuffer {
 public:
  explicit StreamBuffer(std::string name);

  StreamBuffer(const StreamBuffer&) = delete;
  StreamBuffer& operator=(const StreamBuffer&) = delete;

  const std::string& name() const { return name_; }

  /// Identifier assigned by the owning QueryGraph (index of the arc);
  /// -1 for free-standing buffers created in tests.
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  bool empty() const { return tuples_.empty(); }
  size_t size() const { return tuples_.size(); }

  /// The consumer-side head. Requires !empty().
  const Tuple& Front() const;

  /// Appends to the tail (production).
  void Push(Tuple tuple);

  /// Removes and returns the head (consumption). Requires !empty().
  Tuple Pop();

  /// Lifetime counters, split by tuple kind.
  uint64_t total_pushed() const { return total_pushed_; }
  uint64_t data_pushed() const { return data_pushed_; }
  uint64_t punctuation_pushed() const { return punctuation_pushed_; }

  /// Number of data tuples currently queued (punctuation excluded).
  size_t data_size() const { return data_in_queue_; }

  /// Replaces all listeners with `listener` (nullptr detaches). Not owned.
  void set_listener(BufferListener* listener) {
    listeners_.clear();
    if (listener != nullptr) listeners_.push_back(listener);
  }

  /// Registers an additional listener (metrics and validators compose).
  void AddListener(BufferListener* listener);

 private:
  std::string name_;
  int id_ = -1;
  std::deque<Tuple> tuples_;
  size_t data_in_queue_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t data_pushed_ = 0;
  uint64_t punctuation_pushed_ = 0;
  std::vector<BufferListener*> listeners_;
};

}  // namespace dsms

#endif  // DSMS_CORE_STREAM_BUFFER_H_
