#ifndef DSMS_CORE_STREAM_BUFFER_H_
#define DSMS_CORE_STREAM_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/ready_tracker.h"
#include "core/tuple.h"

namespace dsms {

class ColumnBatch;
class StreamBuffer;

/// Producer-side interception for cross-shard arcs (parallel sharded
/// execution). When a diverter is installed, Push() offers the tuple to it
/// BEFORE touching any buffer state; a diverted tuple leaves the producer
/// thread without mutating the consumer shard's buffer, and the consumer
/// shard later applies full push bookkeeping via DeliverDiverted().
class BufferDiverter {
 public:
  virtual ~BufferDiverter() = default;
  /// Returns true when the tuple was taken (the push is complete from the
  /// producer's point of view); false lets the push proceed locally.
  virtual bool Divert(StreamBuffer* buffer, Tuple&& tuple) = 0;
};

/// Observer notified on every enqueue/dequeue of a StreamBuffer. The
/// simulation attaches one global listener (metrics/QueueSizeTracker) to
/// every arc of a query graph so that "peak total queue size" (Figure 8) can
/// be maintained incrementally.
class BufferListener {
 public:
  virtual ~BufferListener() = default;

  /// Consulted before a tuple is committed to the buffer; returning false
  /// vetoes the push (the tuple is discarded, no OnPush fires, counters stay
  /// untouched). Enforcement listeners (metrics/OrderValidator with a
  /// kDropLate/kQuarantine policy) use this to stop order-violating tuples
  /// at the arc where the violation first materializes. Default: allow.
  virtual bool OnBeforePush(const StreamBuffer& buffer, const Tuple& tuple) {
    (void)buffer;
    (void)tuple;
    return true;
  }

  virtual void OnPush(const StreamBuffer& buffer, const Tuple& tuple) = 0;
  virtual void OnPop(const StreamBuffer& buffer, const Tuple& tuple) = 0;
};

/// Occupancy counter with one writer but cross-thread readers. In parallel
/// sharded execution the consumer shard applies all push/pop bookkeeping on
/// a cross-shard arc while the producer shard's yield check reads empty() on
/// the same buffer; a stale read only delays the producer's Forward by one
/// superstep, but the load itself must be well-defined. Only the consumer
/// shard ever mutates, so writes are a plain load+store pair and reads are
/// relaxed loads — identical codegen to a raw size_t on x86, zero cost for
/// the single-threaded executors.
class SingleWriterCount {
 public:
  operator size_t() const { return value_.load(std::memory_order_relaxed); }
  SingleWriterCount& operator=(size_t n) {
    value_.store(n, std::memory_order_relaxed);
    return *this;
  }
  SingleWriterCount& operator++() { return *this = *this + 1; }
  SingleWriterCount& operator--() { return *this = *this - 1; }
  size_t operator++(int) {
    const size_t n = *this;
    *this = n + 1;
    return n;
  }

 private:
  std::atomic<size_t> value_{0};
};

/// What a bounded StreamBuffer does when a push would exceed its capacity
/// limit (Section "Failure model" of DESIGN.md).
enum class OverloadPolicy {
  /// Grow without bound — the paper's behaviour (experiments measure how
  /// large buffers get under idle-waiting). The default.
  kGrow = 0,
  /// Producer-side backpressure: the buffer reports BlocksProducer() so
  /// cooperating producers (the simulation's input wrappers) defer delivery
  /// until space frees. Non-cooperating producers (operator emits mid-step,
  /// which cannot block in a single-threaded engine) fall back to growing.
  kBlockSource = 1,
  /// Load shedding: discard the oldest queued tuple to make room (counted in
  /// shed_tuples). Dropping tuples never reorders a stream, so downstream
  /// order invariants survive.
  kShedOldest = 2,
};

const char* OverloadPolicyToString(OverloadPolicy policy);

/// A FIFO arc of the query graph (Section 3: "our directed arc from Qi to Qj
/// represents a buffer"). Exactly one producer appends at the tail and one
/// consumer removes from the front. Unbounded by default (the experiments
/// measure how large buffers grow under idle-waiting); set_capacity_limit
/// installs a bound with a pluggable OverloadPolicy so one runaway source
/// cannot OOM the process.
///
/// Storage is a power-of-two ring of Tuples that doubles when full; once the
/// ring has grown to the workload's high-water mark, steady-state Push/Pop
/// of small tuples touches no allocator (unlike the previous std::deque,
/// which recycled chunk allocations continuously). Listener dispatch is
/// skipped entirely when no listeners are attached.
class StreamBuffer {
 public:
  explicit StreamBuffer(std::string name);

  StreamBuffer(const StreamBuffer&) = delete;
  StreamBuffer& operator=(const StreamBuffer&) = delete;

  const std::string& name() const { return name_; }

  /// Identifier assigned by the owning QueryGraph (index of the arc);
  /// -1 for free-standing buffers created in tests.
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  /// The consumer-side head. Requires !empty().
  const Tuple& Front() const {
    DSMS_CHECK_GT(count_, 0u);
    return slots_[head_];
  }

  /// Appends to the tail (production). Defined inline: this and Pop() are
  /// the per-tuple cost of every arc traversal. The lvalue overload copy-
  /// assigns straight into the ring slot (no intermediate Tuple), the rvalue
  /// overload move-assigns. Returns false when an enforcement listener
  /// vetoed the push (the tuple was discarded; see BufferListener).
  bool Push(const Tuple& tuple) { return PushImpl(tuple); }
  bool Push(Tuple&& tuple) { return PushImpl(std::move(tuple)); }

  /// Appends a whole batch, consuming `tuples`. Counter and listener
  /// bookkeeping is identical to pushing each tuple individually, but
  /// capacity is reserved once and the ready-tracker is notified once.
  void PushAll(std::vector<Tuple> tuples);

  /// Removes and returns the head (consumption). Requires !empty().
  Tuple Pop() {
    DSMS_CHECK_GT(count_, 0u);
    Tuple tuple = std::move(slots_[head_]);
    head_ = (head_ + 1) & mask_;
    --count_;
    data_in_queue_ -= tuple.is_data() ? 1u : 0u;
    if (tracker_ != nullptr) {
      if (count_ == 0) {
        tracker_->NoteDrained(tracker_consumer_);
      } else {
        tracker_->NoteFrontChanged(tracker_consumer_);
      }
    }
    if (!listeners_.empty()) NotifyPop(tuple);
    return tuple;
  }

  /// Moves every queued tuple into `*out` (appending, FIFO order) and
  /// returns how many were drained. Bookkeeping matches popping each tuple
  /// individually. `out` may be nullptr to discard the tuples.
  size_t DrainInto(std::vector<Tuple>* out);

  /// Drains up to `max_rows` consecutive *data* tuples from the front into
  /// `*batch` (appending, FIFO order) and returns how many were moved. The
  /// drain stops early at the first punctuation tuple — punctuation never
  /// enters a batch, so a batch can never span an ETS/ordering cut; the
  /// punctuation stays at the front for a scalar step to absorb. When the
  /// stop reason was a punctuation encountered *after* at least one data
  /// tuple was taken, `*stopped_at_punctuation` is set true (a forced batch
  /// split); otherwise it is set false. Pop bookkeeping matches popping
  /// each tuple individually (per-tuple OnPop, one tracker notification).
  size_t DrainIntoBatch(ColumnBatch* batch, size_t max_rows,
                        bool* stopped_at_punctuation);

  /// Lifetime counters, split by tuple kind.
  uint64_t total_pushed() const { return total_pushed_; }
  uint64_t data_pushed() const { return data_pushed_; }
  uint64_t punctuation_pushed() const { return total_pushed_ - data_pushed_; }

  // --- bounded capacity / overload (robustness; see OverloadPolicy) ---

  /// Installs a capacity bound. `limit` = 0 removes the bound (unbounded,
  /// the default). With kShedOldest the buffer never holds more than `limit`
  /// tuples; with kBlockSource it reports BlocksProducer() at the limit so
  /// cooperating producers defer (non-cooperating pushes still grow).
  void set_capacity_limit(size_t limit, OverloadPolicy policy) {
    capacity_limit_ = limit;
    overload_policy_ = limit == 0 ? OverloadPolicy::kGrow : policy;
  }
  size_t capacity_limit() const { return capacity_limit_; }
  OverloadPolicy overload_policy() const { return overload_policy_; }

  /// True when a kBlockSource-bounded buffer is at capacity: a cooperating
  /// producer (the simulation's input wrapper) should defer its delivery and
  /// retry later rather than push.
  bool BlocksProducer() const {
    return capacity_limit_ != 0 &&
           overload_policy_ == OverloadPolicy::kBlockSource &&
           count_ >= capacity_limit_;
  }

  /// Tuples discarded by the kShedOldest overload policy.
  uint64_t shed_tuples() const { return shed_tuples_; }
  /// Pushes vetoed by an enforcement listener (OnBeforePush returned false).
  uint64_t vetoed_pushes() const { return vetoed_pushes_; }
  /// Largest occupancy this buffer ever reached (validates overload
  /// policies; also the per-arc ingredient of the Figure 8 memory runs).
  size_t high_water_mark() const { return high_water_; }

  /// Number of data tuples currently queued (punctuation excluded).
  size_t data_size() const { return data_in_queue_; }

  /// Replaces ALL registered listeners with `listener` (nullptr detaches
  /// everything). Deliberately loud about clobbering: the old name
  /// `set_listener` read like a harmless setter but silently dropped
  /// listeners registered via AddListener.
  void ReplaceListeners(BufferListener* listener) {
    listeners_.clear();
    if (listener != nullptr) listeners_.push_back(listener);
  }

  /// Registers an additional listener (metrics and validators compose).
  void AddListener(BufferListener* listener);

  size_t num_listeners() const { return listeners_.size(); }

  /// Wires this buffer to the scheduling tracker of the executor that owns
  /// the graph; `consumer` is the operator id that pops from this buffer.
  /// Pass nullptr to detach. Not owned.
  void set_ready_tracker(ReadyTracker* tracker, int consumer) {
    tracker_ = tracker;
    tracker_consumer_ = consumer;
  }
  ReadyTracker* ready_tracker() const { return tracker_; }

  /// Current ring capacity (tests of the growth policy).
  size_t capacity() const { return slots_.size(); }

  // --- checkpoint support (recovery/) ---

  /// Copies the queued tuples into `*out` in FIFO order without consuming
  /// them (listeners and the ready-tracker see nothing). Counters are read
  /// through the existing accessors.
  void SnapshotTuples(std::vector<Tuple>* out) const;

  // --- parallel sharded execution support (exec/sharded_executor) ---

  /// Installs (or with nullptr removes) a cross-shard diverter. Consulted at
  /// the top of Push before any counter/ring/listener work, so a producer on
  /// a foreign shard thread never mutates this buffer's state.
  void set_diverter(BufferDiverter* diverter) { diverter_ = diverter; }
  BufferDiverter* diverter() const { return diverter_; }

  /// Consumer-side completion of a diverted push: identical bookkeeping to
  /// Push (veto, overload policy, counters, tracker, listeners) except the
  /// diverter is not consulted again. Only the consumer shard's thread may
  /// call this.
  bool DeliverDiverted(Tuple&& tuple) { return PushLocal(std::move(tuple)); }

  /// When set, listener dispatch (OnBeforePush/OnPush/OnPop) is serialized
  /// under this mutex. Parallel sharded mode shares global listeners
  /// (QueueSizeTracker, OrderValidator) across shard threads; everything
  /// else about the buffer stays single-threaded per consumer shard.
  void set_notify_mutex(std::mutex* mutex) { notify_mutex_ = mutex; }

  /// Restores checkpointed contents and lifetime counters. Requires an
  /// empty buffer with no listeners or tracker attached (restore runs
  /// before the executor and metrics wiring exist), so no notifications are
  /// replayed for the restored tuples. Validates the counters (a corrupt
  /// image must not underflow punctuation_pushed()) and clamps the restored
  /// high-water mark to at least the restored occupancy.
  void RestoreSnapshot(std::vector<Tuple> tuples, uint64_t total_pushed,
                       uint64_t data_pushed, uint64_t shed_tuples,
                       uint64_t vetoed_pushes, size_t high_water);

 private:
  template <typename T>
  bool PushImpl(T&& tuple) {
    if (diverter_ != nullptr) {
      // A declining diverter (returns false) must leave the tuple intact so
      // the push can complete locally.
      Tuple offered(std::forward<T>(tuple));
      if (diverter_->Divert(this, std::move(offered))) return true;
      return PushLocal(std::move(offered));
    }
    return PushLocal(std::forward<T>(tuple));
  }

  template <typename T>
  bool PushLocal(T&& tuple) {
    if (!listeners_.empty() && !AllowPush(tuple)) {
      ++vetoed_pushes_;
      return false;
    }
    if (capacity_limit_ != 0 && count_ >= capacity_limit_ &&
        overload_policy_ == OverloadPolicy::kShedOldest) {
      ShedHead();
    }
    const bool was_empty = (count_ == 0);
    const bool is_data = tuple.is_data();
    ++total_pushed_;
    data_pushed_ += is_data;
    data_in_queue_ += is_data;
    if (count_ == capacity_) EnsureCapacity(count_ + 1);
    const size_t idx = (head_ + count_) & mask_;
    slots_[idx] = std::forward<T>(tuple);
    ++count_;
    if (count_ > high_water_) high_water_ = count_;
    if (tracker_ != nullptr && was_empty) {
      tracker_->NoteFilled(tracker_consumer_);
    }
    if (!listeners_.empty()) NotifyPush(slots_[idx]);
    return true;
  }

  void EnsureCapacity(size_t needed);
  Tuple PopInternal();
  /// Discards the head tuple to make room (kShedOldest). Listeners see an
  /// OnPop so occupancy metrics stay consistent.
  void ShedHead();
  bool AllowPush(const Tuple& tuple);
  void NotifyPush(const Tuple& tuple);
  void NotifyPop(const Tuple& tuple);

  std::string name_;
  int id_ = -1;
  /// Ring storage: `count_` live tuples starting at `head_`, capacity is
  /// always zero or a power of two. `capacity_`/`mask_` cache slots_.size()
  /// and slots_.size()-1 for the hot path (mask_ is 0 while empty and only
  /// dereferenced after EnsureCapacity has grown the ring).
  std::vector<Tuple> slots_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  size_t head_ = 0;
  SingleWriterCount count_;
  size_t data_in_queue_ = 0;
  uint64_t total_pushed_ = 0;
  uint64_t data_pushed_ = 0;
  size_t capacity_limit_ = 0;  // 0 = unbounded
  OverloadPolicy overload_policy_ = OverloadPolicy::kGrow;
  uint64_t shed_tuples_ = 0;
  uint64_t vetoed_pushes_ = 0;
  size_t high_water_ = 0;
  std::vector<BufferListener*> listeners_;
  ReadyTracker* tracker_ = nullptr;
  int tracker_consumer_ = -1;
  BufferDiverter* diverter_ = nullptr;
  std::mutex* notify_mutex_ = nullptr;  // serializes listener dispatch only
};

}  // namespace dsms

#endif  // DSMS_CORE_STREAM_BUFFER_H_
