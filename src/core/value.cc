#include "core/value.h"

#include <charconv>
#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
  }
  return "unknown";
}

int64_t Value::int64_value() const {
  DSMS_CHECK(is_int64());
  return data_.i;
}

double Value::double_value() const {
  DSMS_CHECK(is_double());
  return data_.d;
}

const std::string& Value::string_value() const {
  DSMS_CHECK(is_string());
  return *data_.s;
}

bool Value::bool_value() const {
  DSMS_CHECK(is_bool());
  return data_.b;
}

double Value::AsDouble() const {
  if (is_double()) return data_.d;
  if (is_int64()) return static_cast<double>(data_.i);
  if (is_bool()) return data_.b ? 1.0 : 0.0;
  DSMS_CHECK(false);  // Strings have no numeric interpretation.
  return 0.0;
}

std::string Value::ToString() const {
  if (is_int64()) return StrFormat("%lld", static_cast<long long>(data_.i));
  if (is_double()) {
    // Shortest representation that round-trips exactly; "%g" loses precision
    // past 6 significant digits, which corrupted doubles in CSV output.
    char buf[32];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), data_.d);
    if (ec == std::errc()) return std::string(buf, ptr);
    return StrFormat("%.17g", data_.d);
  }
  if (is_bool()) return data_.b ? "true" : "false";
  return "\"" + *data_.s + "\"";
}

}  // namespace dsms
