#include "core/value.h"

#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
    case ValueType::kBool:
      return "bool";
  }
  return "unknown";
}

ValueType Value::type() const {
  if (is_int64()) return ValueType::kInt64;
  if (is_double()) return ValueType::kDouble;
  if (is_string()) return ValueType::kString;
  return ValueType::kBool;
}

int64_t Value::int64_value() const {
  DSMS_CHECK(is_int64());
  return std::get<int64_t>(data_);
}

double Value::double_value() const {
  DSMS_CHECK(is_double());
  return std::get<double>(data_);
}

const std::string& Value::string_value() const {
  DSMS_CHECK(is_string());
  return std::get<std::string>(data_);
}

bool Value::bool_value() const {
  DSMS_CHECK(is_bool());
  return std::get<bool>(data_);
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(data_);
  if (is_int64()) return static_cast<double>(std::get<int64_t>(data_));
  if (is_bool()) return std::get<bool>(data_) ? 1.0 : 0.0;
  DSMS_CHECK(false);  // Strings have no numeric interpretation.
  return 0.0;
}

std::string Value::ToString() const {
  if (is_int64()) return StrFormat("%lld", static_cast<long long>(int64_value()));
  if (is_double()) return StrFormat("%g", double_value());
  if (is_bool()) return bool_value() ? "true" : "false";
  return "\"" + string_value() + "\"";
}

}  // namespace dsms
