#include "core/tuple.h"

#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

const char* TimestampKindToString(TimestampKind kind) {
  switch (kind) {
    case TimestampKind::kExternal:
      return "external";
    case TimestampKind::kInternal:
      return "internal";
    case TimestampKind::kLatent:
      return "latent";
  }
  return "unknown";
}

Tuple Tuple::MakeData(Timestamp timestamp, InlinedValues values,
                      TimestampKind ts_kind) {
  DSMS_CHECK(ts_kind != TimestampKind::kLatent);
  Tuple t;
  t.kind_ = TupleKind::kData;
  t.ts_kind_ = ts_kind;
  t.has_timestamp_ = true;
  t.timestamp_ = timestamp;
  t.values_ = std::move(values);
  return t;
}

Tuple Tuple::MakeLatent(InlinedValues values) {
  Tuple t;
  t.kind_ = TupleKind::kData;
  t.ts_kind_ = TimestampKind::kLatent;
  t.has_timestamp_ = false;
  t.values_ = std::move(values);
  return t;
}

Tuple Tuple::MakePunctuation(Timestamp timestamp) {
  Tuple t;
  t.kind_ = TupleKind::kPunctuation;
  t.ts_kind_ = TimestampKind::kInternal;
  t.has_timestamp_ = true;
  t.timestamp_ = timestamp;
  return t;
}

Timestamp Tuple::timestamp() const {
  DSMS_CHECK(has_timestamp_);
  return timestamp_;
}

void Tuple::set_timestamp(Timestamp timestamp) {
  has_timestamp_ = true;
  timestamp_ = timestamp;
}

const Value& Tuple::value(int index) const {
  DSMS_CHECK_GE(index, 0);
  DSMS_CHECK_LT(index, num_values());
  return values_[static_cast<size_t>(index)];
}

std::string Tuple::ToString() const {
  std::string out = is_punctuation() ? "punct" : "data";
  if (has_timestamp_) {
    out += StrFormat("@%lld", static_cast<long long>(timestamp_));
  } else {
    out += "@latent";
  }
  if (is_data()) {
    out += "[";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    out += "]";
  }
  return out;
}

}  // namespace dsms
