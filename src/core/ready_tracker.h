#ifndef DSMS_CORE_READY_TRACKER_H_
#define DSMS_CORE_READY_TRACKER_H_

#include <cstdint>
#include <vector>

namespace dsms {

/// Incrementally maintained candidate set for executor scheduling.
///
/// Every StreamBuffer of a graph is wired to the tracker of the executor
/// that owns the graph (StreamBuffer::set_ready_tracker). The buffer reports
/// empty<->non-empty transitions of itself against its *consumer* operator;
/// the tracker keeps, per operator, the number of currently non-empty input
/// buffers plus a bitset of operators with at least one non-empty input.
///
/// Soundness: for every operator class in this codebase, HasWork() implies
/// that at least one input buffer is non-empty (sources have no inputs and
/// HasWork()==false; IWP ordered mode needs a head tuple; strict unions need
/// all heads). So "ops with >= 1 non-empty input" is a conservative superset
/// of the runnable set, and executors only need to re-check HasWork() on
/// candidates instead of scanning the whole graph. HasWork() can only change
/// when some input buffer's head changes (push into an empty buffer, or any
/// pop) — exactly the events the buffer reports.
///
/// The dirty list (enabled by the greedy executor) records candidates whose
/// HasWork()/priority may have changed since the last drain, so a lazy heap
/// can refresh only those entries.
class ReadyTracker {
 public:
  ReadyTracker() = default;

  void Reset(int num_ops) {
    num_ops_ = num_ops;
    nonempty_inputs_.assign(static_cast<size_t>(num_ops), 0);
    words_.assign((static_cast<size_t>(num_ops) + 63) / 64, 0);
    dirty_.clear();
    dirty_words_.assign(words_.size(), 0);
  }

  int num_ops() const { return num_ops_; }

  /// An input buffer of `consumer` went empty -> non-empty.
  void NoteFilled(int consumer) {
    if (consumer < 0 || consumer >= num_ops_) return;
    if (nonempty_inputs_[static_cast<size_t>(consumer)]++ == 0) {
      words_[Word(consumer)] |= Bit(consumer);
    }
    MarkDirty(consumer);
  }

  /// An input buffer of `consumer` went non-empty -> empty.
  void NoteDrained(int consumer) {
    if (consumer < 0 || consumer >= num_ops_) return;
    if (--nonempty_inputs_[static_cast<size_t>(consumer)] == 0) {
      words_[Word(consumer)] &= ~Bit(consumer);
    }
    MarkDirty(consumer);
  }

  /// A pop changed the head of a still-non-empty input buffer of `consumer`
  /// (the new head may flip HasWork() for ordered/IWP operators).
  void NoteFrontChanged(int consumer) { MarkDirty(consumer); }

  bool IsCandidate(int op) const {
    if (op < 0 || op >= num_ops_) return false;
    return (words_[Word(op)] & Bit(op)) != 0;
  }

  uint32_t nonempty_inputs(int op) const {
    return nonempty_inputs_[static_cast<size_t>(op)];
  }

  /// Smallest candidate id >= `from`, or -1 if none.
  int NextCandidate(int from) const {
    if (from < 0) from = 0;
    if (from >= num_ops_) return -1;
    size_t w = Word(from);
    uint64_t word = words_[w] & ~(Bit(from) - 1);
    while (true) {
      if (word != 0) {
        int id = static_cast<int>(w * 64) + CountTrailingZeros(word);
        return id < num_ops_ ? id : -1;
      }
      if (++w >= words_.size()) return -1;
      word = words_[w];
    }
  }

  /// Smallest candidate in cyclic order starting at `start` (wraps past the
  /// end); -1 if the candidate set is empty.
  int NextCandidateCyclic(int start) const {
    int id = NextCandidate(start);
    if (id >= 0) return id;
    return NextCandidate(0);
  }

  bool AnyCandidate() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  // --- Dirty tracking for lazy-heap schedulers -----------------------------

  void set_track_dirty(bool on) {
    track_dirty_ = on;
    if (!on) {
      dirty_.clear();
      dirty_words_.assign(dirty_words_.size(), 0);
    }
  }

  void MarkDirty(int op) {
    if (!track_dirty_ || op < 0 || op >= num_ops_) return;
    uint64_t bit = Bit(op);
    if ((dirty_words_[Word(op)] & bit) == 0) {
      dirty_words_[Word(op)] |= bit;
      dirty_.push_back(op);
    }
  }

  const std::vector<int>& dirty() const { return dirty_; }

  void ClearDirty() {
    for (int op : dirty_) dirty_words_[Word(op)] &= ~Bit(op);
    dirty_.clear();
  }

 private:
  static size_t Word(int op) { return static_cast<size_t>(op) / 64; }
  static uint64_t Bit(int op) {
    return uint64_t{1} << (static_cast<size_t>(op) % 64);
  }
  static int CountTrailingZeros(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_ctzll(v);
#else
    int n = 0;
    while ((v & 1) == 0) {
      v >>= 1;
      ++n;
    }
    return n;
#endif
  }

  int num_ops_ = 0;
  std::vector<uint32_t> nonempty_inputs_;
  std::vector<uint64_t> words_;
  bool track_dirty_ = false;
  std::vector<int> dirty_;
  std::vector<uint64_t> dirty_words_;
};

}  // namespace dsms

#endif  // DSMS_CORE_READY_TRACKER_H_
