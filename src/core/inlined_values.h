#ifndef DSMS_CORE_INLINED_VALUES_H_
#define DSMS_CORE_INLINED_VALUES_H_

#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/value.h"

namespace dsms {

/// Small-buffer sequence of Values backing Tuple payloads. Up to
/// kInlineCapacity elements are stored inline in the object itself; longer
/// payloads spill to a single heap block that doubles on growth.
///
/// This is the zero-allocation contract of the tuple core: constructing,
/// copying, moving, and destroying a payload of <= kInlineCapacity numeric
/// values never calls the allocator. The interface is the subset of
/// std::vector the operator library uses; conversion from std::vector<Value>
/// is implicit so payload-producing callbacks can keep returning vectors.
class InlinedValues {
 public:
  static constexpr size_t kInlineCapacity = 4;

  using value_type = Value;
  using iterator = Value*;
  using const_iterator = const Value*;

  InlinedValues() : size_(0), capacity_(kInlineCapacity), data_(inline_ptr()) {}

  InlinedValues(std::initializer_list<Value> init) : InlinedValues() {
    reserve(init.size());
    for (const Value& v : init) UncheckedAppend(Value(v));
  }

  /// Implicit on purpose: lets `{Value(1), Value(2)}` call sites and
  /// vector-returning payload functions convert without ceremony.
  InlinedValues(std::vector<Value> values) : InlinedValues() {  // NOLINT
    reserve(values.size());
    for (Value& v : values) UncheckedAppend(std::move(v));
  }

  InlinedValues(const InlinedValues& other) : InlinedValues() {
    reserve(other.size_);
    CopyAppend(other);
  }

  InlinedValues(InlinedValues&& other) noexcept : InlinedValues() {
    StealFrom(std::move(other));
  }

  InlinedValues& operator=(const InlinedValues& other) {
    if (this == &other) return *this;
    clear();
    reserve(other.size_);
    CopyAppend(other);
    return *this;
  }

  InlinedValues& operator=(InlinedValues&& other) noexcept {
    if (this == &other) return *this;
    DestroyAll();
    ReleaseHeap();
    size_ = 0;
    capacity_ = kInlineCapacity;
    data_ = inline_ptr();
    StealFrom(std::move(other));
    return *this;
  }

  ~InlinedValues() {
    DestroyAll();
    ReleaseHeap();
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return capacity_; }
  bool is_inline() const { return data_ == inline_ptr(); }

  Value& operator[](size_t i) { return data_[i]; }
  const Value& operator[](size_t i) const { return data_[i]; }
  Value& front() { return data_[0]; }
  const Value& front() const { return data_[0]; }
  Value& back() { return data_[size_ - 1]; }
  const Value& back() const { return data_[size_ - 1]; }

  iterator begin() { return data_; }
  iterator end() { return data_ + size_; }
  const_iterator begin() const { return data_; }
  const_iterator end() const { return data_ + size_; }

  void clear() {
    DestroyAll();
    size_ = 0;
  }

  void reserve(size_t n) {
    if (n > capacity_) Grow(n);
  }

  void push_back(const Value& v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    UncheckedAppend(Value(v));
  }

  void push_back(Value&& v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    UncheckedAppend(std::move(v));
  }

  template <typename... Args>
  Value& emplace_back(Args&&... args) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    ::new (static_cast<void*>(data_ + size_)) Value(std::forward<Args>(args)...);
    return data_[size_++];
  }

  /// Appends [first, last); used by joins to concatenate payloads.
  template <typename It>
  void append(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  std::vector<Value> ToVector() const {
    return std::vector<Value>(begin(), end());
  }

  friend bool operator==(const InlinedValues& a, const InlinedValues& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const InlinedValues& a, const InlinedValues& b) {
    return !(a == b);
  }

 private:
  Value* inline_ptr() {
    return reinterpret_cast<Value*>(inline_storage_);
  }
  const Value* inline_ptr() const {
    return reinterpret_cast<const Value*>(inline_storage_);
  }

  void UncheckedAppend(Value&& v) {
    ::new (static_cast<void*>(data_ + size_)) Value(std::move(v));
    ++size_;
  }

  /// Appends a deep copy of `other` to an empty *this (capacity already
  /// reserved): one bulk byte copy, then string elements re-own their heap
  /// data. For all-numeric payloads the per-element loop is branch-only.
  void CopyAppend(const InlinedValues& other) {
    if (other.size_ <= kInlineCapacity) {
      RelocateBlock(data_, other.data_);
    } else {
      Relocate(data_, other.data_, other.size_);
    }
    size_ = other.size_;
    for (size_t i = 0; i < size_; ++i) {
      if (data_[i].type() == ValueType::kString) data_[i].ReownString();
    }
  }

  void DestroyAll() {
    for (size_t i = 0; i < size_; ++i) data_[i].~Value();
  }

  void ReleaseHeap() {
    if (!is_inline()) {
      ::operator delete(static_cast<void*>(data_));
    }
  }

  // Value is trivially relocatable: a tagged union of scalars and an owning
  // raw string pointer, so moving an object to a new address is equivalent
  // to copying its bytes and forgetting the source (standard SBO-container
  // technique). Relocation transfers string ownership bitwise; the source's
  // size is zeroed so its destructor never sees the transferred elements.
  static void Relocate(Value* dst, const Value* src, size_t n) noexcept {
    static_assert(std::is_nothrow_move_constructible_v<Value>);
    if (n > 0) {
      std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
                  n * sizeof(Value));
    }
  }

  /// Fixed-size variant for payloads that fit inline: copies a whole
  /// kInlineCapacity block so the compiler inlines the copy (a runtime-length
  /// memcpy is an out-of-line libc call). Safe regardless of the live element
  /// count because every InlinedValues buffer — inline storage or heap block —
  /// holds at least kInlineCapacity slots.
  static void RelocateBlock(Value* dst, const Value* src) noexcept {
    std::memcpy(static_cast<void*>(dst), static_cast<const void*>(src),
                kInlineCapacity * sizeof(Value));
  }

  void StealFrom(InlinedValues&& other) noexcept {
    if (other.is_inline()) {
      RelocateBlock(data_, other.data_);
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
    }
    other.size_ = 0;
    other.capacity_ = kInlineCapacity;
    other.data_ = other.inline_ptr();
  }

  void Grow(size_t min_capacity) {
    size_t next = capacity_ * 2;
    if (next < min_capacity) next = min_capacity;
    Value* fresh =
        static_cast<Value*>(::operator new(next * sizeof(Value)));
    Relocate(fresh, data_, size_);
    ReleaseHeap();
    data_ = fresh;
    capacity_ = next;
  }

  size_t size_;
  size_t capacity_;
  Value* data_;
  alignas(Value) unsigned char inline_storage_[kInlineCapacity * sizeof(Value)];
};

}  // namespace dsms

#endif  // DSMS_CORE_INLINED_VALUES_H_
