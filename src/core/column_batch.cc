#include "core/column_batch.h"

#include "core/value.h"

namespace dsms {

const double* ColumnBatch::NumericColumn(int field) {
  if (field < 0) return nullptr;
  // Cache hit?
  CachedColumn* slot = nullptr;
  for (CachedColumn& col : columns_) {
    if (col.field == field) {
      return col.numeric ? col.values.data() : nullptr;
    }
    if (slot == nullptr && col.field < 0) slot = &col;
  }
  if (slot == nullptr) {
    columns_.emplace_back();
    slot = &columns_.back();
  }
  slot->field = field;
  slot->values.clear();
  slot->values.reserve(rows_.size());
  for (const Tuple& row : rows_) {
    if (field >= row.num_values()) {
      slot->numeric = false;
      return nullptr;
    }
    const Value& v = row.value(field);
    if (v.is_string()) {
      slot->numeric = false;
      return nullptr;
    }
    slot->values.push_back(v.AsDouble());
  }
  slot->numeric = true;
  return slot->values.data();
}

}  // namespace dsms
