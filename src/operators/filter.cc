#include "operators/filter.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/schema.h"
#include "recovery/state_codec.h"

namespace dsms {

Filter::Filter(std::string name, Predicate predicate)
    : Operator(std::move(name)), predicate_(std::move(predicate)) {
  DSMS_CHECK(predicate_ != nullptr);
}

Result<std::optional<Schema>> Filter::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.empty() || !inputs[0].has_value()) {
    return std::optional<Schema>();
  }
  if (required_numeric_field_ >= 0) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], required_numeric_field_,
                                          /*require_numeric=*/true, name()));
  }
  return inputs[0];
}

StepResult Filter::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));
    } else {
      result.processed_data = true;
      if (predicate_(tuple)) Emit(std::move(tuple));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

RandomDropFilter::RandomDropFilter(std::string name, double selectivity,
                                   uint64_t seed)
    : Operator(std::move(name)),
      selectivity_(selectivity),
      rng_(seed, /*stream=*/0x5e1ec7) {
  DSMS_CHECK_GE(selectivity, 0.0);
  DSMS_CHECK_LE(selectivity, 1.0);
}

StepResult RandomDropFilter::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));
    } else {
      result.processed_data = true;
      if (rng_.NextBernoulli(selectivity_)) Emit(std::move(tuple));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void RandomDropFilter::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  w.U64(rng_.state());
  w.U64(rng_.inc());
}

void RandomDropFilter::LoadState(StateReader& r) {
  Operator::LoadState(r);
  uint64_t state = r.U64();
  uint64_t inc = r.U64();
  if (r.ok()) rng_.RestoreState(state, inc);
}

}  // namespace dsms
