#include "operators/filter.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/column_batch.h"
#include "core/schema.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

/// The comparison loop, one instantiation per FilterCmp so the compiler sees
/// a branch-free predicate over a contiguous double column.
template <typename Cmp>
void SelectColumn(const double* column, size_t n, double value,
                  std::vector<uint8_t>* selection, Cmp cmp) {
  selection->resize(n);
  uint8_t* out = selection->data();
  for (size_t i = 0; i < n; ++i) {
    out[i] = cmp(column[i], value) ? 1 : 0;
  }
}

}  // namespace

Filter::Filter(std::string name, Predicate predicate)
    : Operator(std::move(name)), predicate_(std::move(predicate)) {
  DSMS_CHECK(predicate_ != nullptr);
}

Result<std::optional<Schema>> Filter::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.empty() || !inputs[0].has_value()) {
    return std::optional<Schema>();
  }
  if (required_numeric_field_ >= 0) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], required_numeric_field_,
                                          /*require_numeric=*/true, name()));
  }
  return inputs[0];
}

StepResult Filter::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));
    } else {
      result.processed_data = true;
      if (predicate_(tuple)) Emit(std::move(tuple));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void Filter::ProcessBatch(ColumnBatch& batch, ExecContext& ctx) {
  (void)ctx;
  const size_t n = batch.size();
  NoteBatchInput(n);
  const double* column =
      compare_field_ >= 0 ? batch.NumericColumn(compare_field_) : nullptr;
  if (column != nullptr) {
    // Vectorized path: selection vector from a tight column loop, then
    // emit the selected rows in order.
    switch (compare_cmp_) {
      case FilterCmp::kLt:
        SelectColumn(column, n, compare_value_, &selection_,
                     [](double a, double b) { return a < b; });
        break;
      case FilterCmp::kLe:
        SelectColumn(column, n, compare_value_, &selection_,
                     [](double a, double b) { return a <= b; });
        break;
      case FilterCmp::kGt:
        SelectColumn(column, n, compare_value_, &selection_,
                     [](double a, double b) { return a > b; });
        break;
      case FilterCmp::kGe:
        SelectColumn(column, n, compare_value_, &selection_,
                     [](double a, double b) { return a >= b; });
        break;
      case FilterCmp::kEq:
        SelectColumn(column, n, compare_value_, &selection_,
                     [](double a, double b) { return a == b; });
        break;
      case FilterCmp::kNe:
        SelectColumn(column, n, compare_value_, &selection_,
                     [](double a, double b) { return a != b; });
        break;
    }
    for (size_t i = 0; i < n; ++i) {
      if (selection_[i]) Emit(batch.TakeRow(i));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (predicate_(batch.row(i))) Emit(batch.TakeRow(i));
  }
}

RandomDropFilter::RandomDropFilter(std::string name, double selectivity,
                                   uint64_t seed)
    : Operator(std::move(name)),
      selectivity_(selectivity),
      rng_(seed, /*stream=*/0x5e1ec7) {
  DSMS_CHECK_GE(selectivity, 0.0);
  DSMS_CHECK_LE(selectivity, 1.0);
}

StepResult RandomDropFilter::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));
    } else {
      result.processed_data = true;
      if (rng_.NextBernoulli(selectivity_)) Emit(std::move(tuple));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void RandomDropFilter::ProcessBatch(ColumnBatch& batch, ExecContext& ctx) {
  (void)ctx;
  const size_t n = batch.size();
  NoteBatchInput(n);
  for (size_t i = 0; i < n; ++i) {
    // One draw per data row, in order: the RNG stream stays byte-identical
    // to the scalar path (and to a recovery replay).
    if (rng_.NextBernoulli(selectivity_)) Emit(batch.TakeRow(i));
  }
}

void RandomDropFilter::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  w.U64(rng_.state());
  w.U64(rng_.inc());
}

void RandomDropFilter::LoadState(StateReader& r) {
  Operator::LoadState(r);
  uint64_t state = r.U64();
  uint64_t inc = r.U64();
  if (r.ok()) rng_.RestoreState(state, inc);
}

}  // namespace dsms
