#include "operators/grouped_aggregate.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int TypeRank(const Value& v) { return static_cast<int>(v.type()); }

}  // namespace

bool GroupedWindowAggregate::KeyLess::operator()(const Value& a,
                                                 const Value& b) const {
  if (TypeRank(a) != TypeRank(b)) return TypeRank(a) < TypeRank(b);
  switch (a.type()) {
    case ValueType::kInt64:
      return a.int64_value() < b.int64_value();
    case ValueType::kDouble:
      return a.double_value() < b.double_value();
    case ValueType::kString:
      return a.string_value() < b.string_value();
    case ValueType::kBool:
      return a.bool_value() < b.bool_value();
  }
  return false;
}

GroupedWindowAggregate::GroupedWindowAggregate(std::string name, AggKind kind,
                                               int key_field, int agg_field,
                                               Duration window,
                                               Duration slide)
    : Operator(std::move(name)),
      kind_(kind),
      key_field_(key_field),
      agg_field_(agg_field),
      window_(window),
      slide_(slide) {
  DSMS_CHECK_GT(window, 0);
  DSMS_CHECK_GT(slide, 0);
  DSMS_CHECK_LE(slide, window);
}

Result<std::optional<Schema>> GroupedWindowAggregate::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.empty() || !inputs[0].has_value()) {
    // Without an input schema the key's type is unknown, so the output
    // schema is too.
    return std::optional<Schema>();
  }
  DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], key_field_,
                                        /*require_numeric=*/false, name()));
  if (kind_ != AggKind::kCount) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], agg_field_,
                                          /*require_numeric=*/true, name()));
  }
  return std::optional<Schema>(
      Schema{{"window_start", ValueType::kInt64},
             inputs[0]->field(key_field_),
             {AggKindToString(kind_), ValueType::kDouble}});
}

int64_t GroupedWindowAggregate::WindowIndexLow(Timestamp ts) const {
  return FloorDiv(ts - window_, slide_) + 1;
}

int64_t GroupedWindowAggregate::WindowIndexHigh(Timestamp ts) const {
  return FloorDiv(ts, slide_);
}

void GroupedWindowAggregate::Accumulate(const Tuple& tuple) {
  const Value& key = tuple.value(key_field_);
  double v =
      kind_ == AggKind::kCount ? 0.0 : tuple.value(agg_field_).AsDouble();
  Timestamp ts = tuple.timestamp();
  for (int64_t k = WindowIndexLow(ts); k <= WindowIndexHigh(ts); ++k) {
    if (k < next_emit_k_ && first_seen_) continue;
    Accumulator& acc = windows_[k][key];
    if (acc.count == 0) {
      acc.min = v;
      acc.max = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
    ++acc.count;
    acc.sum += v;
  }
}

void GroupedWindowAggregate::EmitWindow(int64_t k, const GroupMap& groups) {
  Timestamp start = k * slide_;
  Timestamp end = start + window_;
  for (const auto& [key, acc] : groups) {
    double value = 0.0;
    switch (kind_) {
      case AggKind::kCount:
        value = static_cast<double>(acc.count);
        break;
      case AggKind::kSum:
        value = acc.sum;
        break;
      case AggKind::kAvg:
        value = acc.sum / static_cast<double>(acc.count);
        break;
      case AggKind::kMin:
        value = acc.min;
        break;
      case AggKind::kMax:
        value = acc.max;
        break;
    }
    std::vector<Value> payload;
    payload.emplace_back(static_cast<int64_t>(start));
    payload.push_back(key);
    payload.emplace_back(value);
    Tuple result = Tuple::MakeData(end, std::move(payload));
    result.set_arrival_time(end);  // latency downstream = emission delay
    ++results_emitted_;
    Emit(std::move(result));
  }
}

void GroupedWindowAggregate::CloseWindowsUpTo(Timestamp bound) {
  if (!first_seen_) return;
  int64_t closable_end = FloorDiv(bound - window_, slide_);
  while (next_emit_k_ <= closable_end) {
    auto it = windows_.find(next_emit_k_);
    if (it != windows_.end()) {
      EmitWindow(next_emit_k_, it->second);
      windows_.erase(it);
    }
    ++next_emit_k_;
  }
}

StepResult GroupedWindowAggregate::Step(ExecContext& ctx) {
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    Timestamp ts;
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      ts = tuple.timestamp();
    } else {
      result.processed_data = true;
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ts = tuple.timestamp();
    }
    if (!first_seen_) {
      first_seen_ = true;
      next_emit_k_ = WindowIndexLow(ts);
    }
    if (tuple.is_data()) Accumulate(tuple);
    bound_ = std::max(bound_, ts);
    CloseWindowsUpTo(bound_);
    if (tuple.is_punctuation()) {
      Timestamp next_end = next_emit_k_ * slide_ + window_;
      if (next_end > last_punct_out_) {
        last_punct_out_ = next_end;
        Emit(Tuple::MakePunctuation(next_end));
      }
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void GroupedWindowAggregate::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  w.U32(static_cast<uint32_t>(windows_.size()));
  for (const auto& [k, groups] : windows_) {
    w.I64(k);
    w.U32(static_cast<uint32_t>(groups.size()));
    for (const auto& [key, acc] : groups) {
      w.Val(key);
      w.U64(acc.count);
      w.F64(acc.sum);
      w.F64(acc.min);
      w.F64(acc.max);
    }
  }
  w.Bool(first_seen_);
  w.I64(next_emit_k_);
  w.Ts(bound_);
  w.Ts(last_punct_out_);
  w.U64(results_emitted_);
}

void GroupedWindowAggregate::LoadState(StateReader& r) {
  Operator::LoadState(r);
  windows_.clear();
  uint32_t num_windows = r.U32();
  for (uint32_t i = 0; i < num_windows && r.ok(); ++i) {
    int64_t k = r.I64();
    GroupMap groups;
    uint32_t num_groups = r.U32();
    for (uint32_t j = 0; j < num_groups && r.ok(); ++j) {
      Value key = r.Val();
      Accumulator acc;
      acc.count = r.U64();
      acc.sum = r.F64();
      acc.min = r.F64();
      acc.max = r.F64();
      groups.emplace(std::move(key), acc);
    }
    windows_.emplace(k, std::move(groups));
  }
  first_seen_ = r.Bool();
  next_emit_k_ = r.I64();
  bound_ = r.Ts();
  last_punct_out_ = r.Ts();
  results_emitted_ = r.U64();
}

}  // namespace dsms
