#include "operators/grouped_aggregate.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"

namespace dsms {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int TypeRank(const Value& v) { return static_cast<int>(v.type()); }

}  // namespace

bool GroupedWindowAggregate::KeyLess::operator()(const Value& a,
                                                 const Value& b) const {
  if (TypeRank(a) != TypeRank(b)) return TypeRank(a) < TypeRank(b);
  switch (a.type()) {
    case ValueType::kInt64:
      return a.int64_value() < b.int64_value();
    case ValueType::kDouble:
      return a.double_value() < b.double_value();
    case ValueType::kString:
      return a.string_value() < b.string_value();
    case ValueType::kBool:
      return a.bool_value() < b.bool_value();
  }
  return false;
}

GroupedWindowAggregate::GroupedWindowAggregate(std::string name, AggKind kind,
                                               int key_field, int agg_field,
                                               Duration window,
                                               Duration slide)
    : Operator(std::move(name)),
      kind_(kind),
      key_field_(key_field),
      agg_field_(agg_field),
      window_(window),
      slide_(slide) {
  DSMS_CHECK_GT(window, 0);
  DSMS_CHECK_GT(slide, 0);
  DSMS_CHECK_LE(slide, window);
}

Result<std::optional<Schema>> GroupedWindowAggregate::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.empty() || !inputs[0].has_value()) {
    // Without an input schema the key's type is unknown, so the output
    // schema is too.
    return std::optional<Schema>();
  }
  DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], key_field_,
                                        /*require_numeric=*/false, name()));
  if (kind_ != AggKind::kCount) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], agg_field_,
                                          /*require_numeric=*/true, name()));
  }
  return std::optional<Schema>(
      Schema{{"window_start", ValueType::kInt64},
             inputs[0]->field(key_field_),
             {AggKindToString(kind_), ValueType::kDouble}});
}

int64_t GroupedWindowAggregate::WindowIndexLow(Timestamp ts) const {
  return FloorDiv(ts - window_, slide_) + 1;
}

int64_t GroupedWindowAggregate::WindowIndexHigh(Timestamp ts) const {
  return FloorDiv(ts, slide_);
}

void GroupedWindowAggregate::Accumulate(const Tuple& tuple) {
  const Value& key = tuple.value(key_field_);
  double v =
      kind_ == AggKind::kCount ? 0.0 : tuple.value(agg_field_).AsDouble();
  Timestamp ts = tuple.timestamp();
  for (int64_t k = WindowIndexLow(ts); k <= WindowIndexHigh(ts); ++k) {
    if (k < next_emit_k_ && first_seen_) continue;
    Accumulator& acc = windows_[k][key];
    if (acc.count == 0) {
      acc.min = v;
      acc.max = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
    ++acc.count;
    acc.sum += v;
  }
}

void GroupedWindowAggregate::EmitWindow(int64_t k, const GroupMap& groups) {
  Timestamp start = k * slide_;
  Timestamp end = start + window_;
  for (const auto& [key, acc] : groups) {
    double value = 0.0;
    switch (kind_) {
      case AggKind::kCount:
        value = static_cast<double>(acc.count);
        break;
      case AggKind::kSum:
        value = acc.sum;
        break;
      case AggKind::kAvg:
        value = acc.sum / static_cast<double>(acc.count);
        break;
      case AggKind::kMin:
        value = acc.min;
        break;
      case AggKind::kMax:
        value = acc.max;
        break;
    }
    std::vector<Value> payload;
    payload.emplace_back(static_cast<int64_t>(start));
    payload.push_back(key);
    payload.emplace_back(value);
    Tuple result = Tuple::MakeData(end, std::move(payload));
    result.set_arrival_time(end);  // latency downstream = emission delay
    ++results_emitted_;
    Emit(std::move(result));
  }
}

void GroupedWindowAggregate::CloseWindowsUpTo(Timestamp bound) {
  if (!first_seen_) return;
  int64_t closable_end = FloorDiv(bound - window_, slide_);
  while (next_emit_k_ <= closable_end) {
    auto it = windows_.find(next_emit_k_);
    if (it != windows_.end()) {
      EmitWindow(next_emit_k_, it->second);
      windows_.erase(it);
    }
    ++next_emit_k_;
  }
}

StepResult GroupedWindowAggregate::Step(ExecContext& ctx) {
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    Timestamp ts;
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      ts = tuple.timestamp();
    } else {
      result.processed_data = true;
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ts = tuple.timestamp();
    }
    if (!first_seen_) {
      first_seen_ = true;
      next_emit_k_ = WindowIndexLow(ts);
    }
    if (tuple.is_data()) Accumulate(tuple);
    bound_ = std::max(bound_, ts);
    CloseWindowsUpTo(bound_);
    if (tuple.is_punctuation()) {
      Timestamp next_end = next_emit_k_ * slide_ + window_;
      if (next_end > last_punct_out_) {
        last_punct_out_ = next_end;
        Emit(Tuple::MakePunctuation(next_end));
      }
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

}  // namespace dsms
