#ifndef DSMS_OPERATORS_OPERATOR_H_
#define DSMS_OPERATORS_OPERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/schema.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"

namespace dsms {

class ColumnBatch;
class StateReader;
class StateStore;
class StateWriter;
class Tracer;

/// Execution-time services an operator may need from the engine. Today this
/// is only the virtual clock (used e.g. to stamp latent tuples on the fly);
/// kept abstract so operators are testable without a full simulation.
class ExecContext {
 public:
  virtual ~ExecContext() = default;

  /// Current virtual time.
  virtual Timestamp now() const = 0;
};

/// Trivial context with a settable clock, for unit tests and simple drivers.
class ManualExecContext : public ExecContext {
 public:
  explicit ManualExecContext(Timestamp now = 0) : now_(now) {}
  Timestamp now() const override { return now_; }
  void set_now(Timestamp now) { now_ = now; }
  void Advance(Duration d) { now_ += d; }

 private:
  Timestamp now_;
};

/// Result of one operator execution step — the `yield` and `more` state
/// variables of the paper's Basic Execution Cycle (Figure 3), plus the
/// bookkeeping the executor needs for backtracking, cost accounting, and
/// idle-waiting metrics.
struct StepResult {
  /// The operator's output buffer(s) contain tuples; the DFS Forward rule
  /// moves execution to the successor.
  bool yield = false;

  /// The operator still has processable input — for IWP operators this is
  /// the *relaxed* more condition of Figure 5.
  bool more = false;

  /// This step consumed a data tuple.
  bool processed_data = false;

  /// This step consumed a punctuation tuple.
  bool processed_punctuation = false;

  /// IWP only: the operator is idle-waiting — it holds at least one pending
  /// data tuple but cannot emit because a skewed input holds it back. This
  /// is what makes a Backtrack "want" an on-demand ETS.
  bool idle_waiting = false;

  /// When more == false on a multi-input operator: index of the input that
  /// blocks progress (the one with the minimal TSM register, necessarily
  /// empty). The modified Backtrack rule of Section 3.2 backtracks to the
  /// predecessor feeding this input. -1 when not applicable.
  int blocked_input = -1;

  /// Extra virtual time this step lost to state-store disk work under an
  /// injected disk_stall fault (storage/state_store.h). The executor adds
  /// it to the step's charged cost, so degraded-disk latency shows up in
  /// every timing metric deterministically.
  Duration storage_stall = 0;
};

/// Lifetime counters kept by every operator.
struct OperatorStats {
  uint64_t data_in = 0;
  uint64_t punctuation_in = 0;
  uint64_t data_out = 0;
  uint64_t punctuation_out = 0;
  uint64_t steps = 0;
};

/// Base class for all query operators. An operator is a node of the query
/// graph; its inputs and outputs are StreamBuffer arcs owned by the graph.
///
/// Execution contract: `Step` performs one unit of work — it consumes at
/// most one input tuple and appends zero or more tuples to the output
/// buffer(s) — then reports `yield`/`more` so the executor can apply the
/// Next-Operator-Selection rules. Steps must not block; when no progress is
/// possible the operator returns more=false (and idle_waiting if it is an
/// IWP operator holding blocked data).
class Operator {
 public:
  explicit Operator(std::string name);
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& name() const { return name_; }

  /// Graph-assigned identifier (index in the graph's operator table).
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  // --- wiring (done by QueryGraph / GraphBuilder) ---
  void AddInput(StreamBuffer* buffer);
  void AddOutput(StreamBuffer* buffer);
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }
  StreamBuffer* input(int index) const;
  StreamBuffer* output(int index = 0) const;

  /// Arity bounds for this operator type; QueryGraph::Validate enforces
  /// them. Defaults describe a single-input single-output operator.
  virtual int min_inputs() const { return 1; }
  virtual int max_inputs() const { return 1; }
  virtual int min_outputs() const { return 1; }
  virtual int max_outputs() const { return 1; }

  /// True for Idle-Waiting-Prone operators (union, window join): operators
  /// that may hold data they cannot emit because of cross-input skew.
  virtual bool is_iwp() const { return false; }

  /// Declared timestamp requirements, used by QueryGraph::Validate to check
  /// that latent and timestamped lineages are not mixed incorrectly:
  ///  - requires_timestamped_input: every input must carry (ordered) timestamps
  ///    (ordered-mode IWP operators);
  ///  - requires_latent_input: every input must be latent (unordered-mode
  ///    IWP operators, scenario D);
  ///  - stamps_latent: the operator assigns timestamps on the fly, so its
  ///    output is timestamped even on latent input (Section 5).
  virtual bool requires_timestamped_input() const { return false; }
  virtual bool requires_latent_input() const { return false; }
  virtual bool stamps_latent() const { return false; }

  /// Schema propagation (optional typing): given the schemas of this
  /// operator's inputs — `std::nullopt` where upstream is untyped — returns
  /// the output schema, `std::nullopt` if it cannot be derived, or an error
  /// when a declared field reference is out of bounds or ill-typed.
  /// QueryGraph::Validate folds this over the graph; untyped sources simply
  /// opt the affected subgraph out of checking. The default passes input
  /// 0's schema through (correct for filters, reorder, copy, sinks).
  virtual Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const;

  /// Executes one step. See class comment for the contract.
  virtual StepResult Step(ExecContext& ctx) = 0;

  // --- columnar batch execution (opt-in; see docs/batching.md) ---

  /// True when this operator implements ProcessBatch. Executors with
  /// ExecConfig::batch_size > 0 then drain this operator's (single) input
  /// into a ColumnBatch and process all rows in one step; operators without
  /// a kernel keep the tuple-at-a-time Step path (counted as
  /// exec.batch.fallback_steps).
  virtual bool SupportsBatch() const { return false; }

  /// Processes every row of `batch` in arrival order, emitting outputs into
  /// the normal output buffers; the rows are consumed. Must be semantically
  /// identical to Step-ing each row (same emissions, same order, same RNG
  /// draws, same stats accounting). Only called when SupportsBatch() and the
  /// batch is non-empty; the batch contains data tuples only (punctuation is
  /// absorbed by scalar steps — StreamBuffer::DrainIntoBatch never crosses
  /// an ordering cut). The base implementation aborts.
  virtual void ProcessBatch(ColumnBatch& batch, ExecContext& ctx);

  /// Whether a Step could make progress right now; used by polling
  /// executors (round-robin). Default: any input buffer is non-empty.
  virtual bool HasWork() const;

  /// Whether this operator is currently holding back results that a fresh
  /// timestamp lower bound from upstream would release — the condition that
  /// makes a Backtrack walk "want" an on-demand ETS. True for idle-waiting
  /// IWP operators (blocked data in some input) and for window operators
  /// with open windows awaiting closure evidence.
  virtual bool WantsEts() const { return false; }

  /// The smallest upstream timestamp bound that would actually release
  /// held-back results (kMaxTimestamp when WantsEts() is false). The
  /// executor only generates an ETS whose value reaches this bound; a lower
  /// bound could not unblock anything and generating it anyway would
  /// busy-spin the backtrack loop (e.g. while an aggregate waits for a
  /// window end that lies in the future).
  virtual Timestamp EtsReleaseBound() const { return kMaxTimestamp; }

  /// True if any input buffer holds at least one *data* tuple.
  bool HasPendingData() const;

  // --- checkpoint support (recovery/) ---
  /// Serializes this operator's mutable execution state (everything a
  /// restart must restore to continue deterministically: counters, TSM
  /// registers, window synopses, RNG state — NOT configuration, which the
  /// plan recreates). Subclass overrides must call the base first so
  /// sections nest consistently; the base serializes OperatorStats.
  virtual void SaveState(StateWriter& w) const;

  /// Inverse of SaveState. Reads exactly what SaveState wrote; on a
  /// poisoned reader (version/logic mismatch) the operator keeps whatever
  /// state it already decoded — the enclosing checkpoint CRC has already
  /// vouched the bytes, so this cannot be hit by corruption.
  virtual void LoadState(StateReader& r);

  /// Attaches the graph's spillable state store (QueryGraph::
  /// ConfigureStateStore). Stateful operators that keep their windows in
  /// StateTables override this to bind them; the default ignores it. Called
  /// before execution and before LoadState, never mid-run.
  virtual void BindStateStore(StateStore* store) { (void)store; }

  const OperatorStats& stats() const { return stats_; }

  /// Execution tracer for punctuation-path hooks; null (the default) means
  /// tracing is off and hooks are a single branch.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  /// Debug string: "name(id) [class]".
  virtual std::string ToString() const;

 protected:
  /// Helpers maintaining stats_; subclasses consume/emit through these.
  Tuple TakeInput(int index);
  void Emit(Tuple tuple);           // to every output buffer (clones if >1)
  void EmitTo(int index, Tuple tuple);

  /// Input-side stats for `rows` data tuples consumed via a batch drain
  /// (DrainIntoBatch bypasses TakeInput); also counts one step per row so
  /// OperatorStats match the scalar path tuple for tuple.
  void NoteBatchInput(size_t rows) {
    stats_.data_in += rows;
    stats_.steps += rows;
  }

  OperatorStats stats_;
  Tracer* tracer_ = nullptr;

 private:
  std::string name_;
  int id_ = -1;
  std::vector<StreamBuffer*> inputs_;
  std::vector<StreamBuffer*> outputs_;
};

/// Returns true if every output buffer of `op` is... (helper used by
/// implementations): any output non-empty => yield.
bool AnyOutputNonEmpty(const Operator& op);

}  // namespace dsms

#endif  // DSMS_OPERATORS_OPERATOR_H_
