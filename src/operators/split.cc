#include "operators/split.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dsms {

Split::Split(std::string name, std::vector<Predicate> predicates)
    : Operator(std::move(name)), predicates_(std::move(predicates)) {
  DSMS_CHECK_GE(predicates_.size(), 1u);
  for (const Predicate& p : predicates_) DSMS_CHECK(p != nullptr);
}

StepResult Split::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));  // replicated to every output
    } else {
      result.processed_data = true;
      for (int k = 0; k < num_outputs(); ++k) {
        if (predicates_[static_cast<size_t>(k)](tuple)) {
          EmitTo(k, tuple);
        }
      }
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

}  // namespace dsms
