#ifndef DSMS_OPERATORS_SINK_H_
#define DSMS_OPERATORS_SINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/tuple.h"
#include "metrics/latency_recorder.h"
#include "operators/operator.h"

namespace dsms {

/// A sink node: consumes the final output buffer, measures per-tuple output
/// latency, and eliminates punctuation tuples — "sink nodes should also
/// eliminate punctuation tuples since they are only needed internally"
/// (paper, footnote 3).
class Sink : public Operator {
 public:
  /// Called for every data tuple delivered, with the virtual delivery time.
  using EmitCallback = std::function<void(const Tuple&, Timestamp)>;

  explicit Sink(std::string name);

  int min_outputs() const override { return 0; }
  int max_outputs() const override { return 0; }

  StepResult Step(ExecContext& ctx) override;

  /// Batch path: drains the entire input buffer in one DrainInto and
  /// delivers every tuple at time `now` — equivalent to repeated Steps
  /// (same stats/latency/callback bookkeeping, punctuation eliminated) but
  /// without per-tuple buffer overhead. Returns the number of *data* tuples
  /// delivered. Used by drivers that finish a run outside the executor's
  /// cost model; scheduled execution keeps the one-tuple Step contract.
  size_t DrainAll(Timestamp now);

  void set_callback(EmitCallback callback) { callback_ = std::move(callback); }

  /// When enabled, keeps every delivered data tuple (tests, examples).
  void set_collect(bool collect) { collect_ = collect; }
  const std::vector<Tuple>& collected() const { return collected_; }

  const LatencyRecorder& latency() const { return latency_; }
  LatencyRecorder& mutable_latency() { return latency_; }

  uint64_t data_delivered() const { return stats().data_in; }
  uint64_t punctuation_eliminated() const { return stats().punctuation_in; }

 private:
  EmitCallback callback_;
  bool collect_ = false;
  std::vector<Tuple> collected_;
  LatencyRecorder latency_;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_SINK_H_
