#include "operators/multiway_join.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"
#include "core/value.h"
#include "recovery/state_codec.h"

namespace dsms {

MultiWayJoin::MultiWayJoin(std::string name, std::vector<Duration> windows,
                           Predicate predicate, bool ordered)
    : IwpOperator(std::move(name), ordered),
      window_durations_(std::move(windows)),
      predicate_(std::move(predicate)) {
  DSMS_CHECK_GE(window_durations_.size(), 2u);
  for (Duration w : window_durations_) DSMS_CHECK_GE(w, 0);
  windows_.resize(window_durations_.size());
}

MultiWayJoin::Predicate MultiWayJoin::EquiJoin(int field) {
  return [field](const std::vector<const Tuple*>& match) {
    for (size_t i = 1; i < match.size(); ++i) {
      if (!(match[i]->value(field) == match[0]->value(field))) return false;
    }
    return true;
  };
}

Result<std::optional<Schema>> MultiWayJoin::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  for (const auto& schema : inputs) {
    if (!schema.has_value()) return std::optional<Schema>();
  }
  if (inputs.empty()) return std::optional<Schema>();
  if (equi_field_ >= 0) {
    ValueType key_type = ValueType::kInt64;
    for (size_t i = 0; i < inputs.size(); ++i) {
      DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[i], equi_field_,
                                            /*require_numeric=*/false,
                                            name()));
      ValueType t = inputs[i]->field(equi_field_).type;
      if (i == 0) {
        key_type = t;
      } else if (t != key_type) {
        return InvalidArgumentError(StrFormat(
            "%s: key field %d has type %s on input %zu but %s on input 0",
            name().c_str(), equi_field_, ValueTypeToString(t), i,
            ValueTypeToString(key_type)));
      }
    }
  }
  Schema combined = *inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) {
    combined = combined.Concat(*inputs[i]);
  }
  return std::optional<Schema>(std::move(combined));
}

size_t MultiWayJoin::window_size(int input) const {
  DSMS_CHECK_GE(input, 0);
  DSMS_CHECK_LT(static_cast<size_t>(input), windows_.size());
  return windows_[static_cast<size_t>(input)].size();
}

size_t MultiWayJoin::total_window_size() const {
  size_t total = 0;
  for (const auto& w : windows_) total += w.size();
  return total;
}

bool MultiWayJoin::PairJoinable(int fresh_input, Timestamp fresh_ts,
                                int stored_input, Timestamp stored_ts) const {
  // The older tuple must lie within its own input's window of the newer
  // tuple (same band rule as the binary join).
  if (stored_ts <= fresh_ts) {
    return (fresh_ts - stored_ts) <=
           window_durations_[static_cast<size_t>(stored_input)];
  }
  return (stored_ts - fresh_ts) <=
         window_durations_[static_cast<size_t>(fresh_input)];
}

void MultiWayJoin::ExpireWindow(int input, Timestamp bound) {
  if (bound == kMinTimestamp) return;
  std::deque<Tuple>& window = windows_[static_cast<size_t>(input)];
  Timestamp cutoff =
      bound - window_durations_[static_cast<size_t>(input)];
  while (!window.empty() && window.front().timestamp() < cutoff) {
    window.pop_front();
  }
}

void MultiWayJoin::ExpireAllWindows(Timestamp bound) {
  // Ordered execution consumes tuples in global timestamp order, so every
  // future fresh tuple (on any input) has timestamp >= bound: a stored
  // tuple of input j older than bound − w_j can never be probed again.
  for (int j = 0; j < num_inputs(); ++j) ExpireWindow(j, bound);
}

void MultiWayJoin::EmitMatch(const std::vector<const Tuple*>& match,
                             const Tuple& fresh) {
  if (predicate_ && !predicate_(match)) return;
  std::vector<Value> combined;
  size_t total = 0;
  for (const Tuple* t : match) total += t->values().size();
  combined.reserve(total);
  for (const Tuple* t : match) {
    combined.insert(combined.end(), t->values().begin(), t->values().end());
  }
  Timestamp tau = fresh.timestamp();
  Tuple result = Tuple::MakeData(
      tau, std::move(combined),
      fresh.timestamp_kind() == TimestampKind::kLatent
          ? TimestampKind::kInternal
          : fresh.timestamp_kind());
  result.set_arrival_time(fresh.arrival_time());
  result.set_source_id(fresh.source_id());
  result.set_sequence(fresh.sequence());
  NoteDataEmitted(tau);
  ++matches_emitted_;
  Emit(std::move(result));
}

void MultiWayJoin::ProbeRecursive(int input, int fresh_input,
                                  const Tuple& fresh,
                                  std::vector<const Tuple*>* match) {
  if (input == num_inputs()) {
    EmitMatch(*match, fresh);
    return;
  }
  if (input == fresh_input) {
    (*match)[static_cast<size_t>(input)] = &fresh;
    ProbeRecursive(input + 1, fresh_input, fresh, match);
    return;
  }
  for (const Tuple& stored : windows_[static_cast<size_t>(input)]) {
    if (!PairJoinable(fresh_input, fresh.timestamp(), input,
                      stored.timestamp())) {
      continue;
    }
    (*match)[static_cast<size_t>(input)] = &stored;
    ProbeRecursive(input + 1, fresh_input, fresh, match);
  }
}

void MultiWayJoin::ProcessData(int input, Tuple tuple) {
  Timestamp tau = tuple.timestamp();
  ExpireAllWindows(tau);
  std::vector<const Tuple*> match(static_cast<size_t>(num_inputs()),
                                  nullptr);
  ProbeRecursive(0, input, tuple, &match);
  windows_[static_cast<size_t>(input)].push_back(std::move(tuple));
}

StepResult MultiWayJoin::Step(ExecContext& ctx) {
  ++stats_.steps;
  if (!ordered()) return StepUnordered(ctx);

  StepResult result;
  ObserveHeads();

  int ready = FindReadyInput();
  if (ready < 0) {
    FillBlockedResult(&result);
    result.yield = AnyOutputNonEmpty(*this);
    return result;
  }

  Tuple tuple = TakeInput(ready);
  if (tuple.is_data()) {
    result.processed_data = true;
    ProcessData(ready, std::move(tuple));
  } else {
    result.processed_punctuation = true;
    ExpireAllWindows(MinEffectiveTsm());
    MaybeEmitPunctuation(MinEffectiveTsm());
  }

  result.more = RelaxedMore();
  if (!result.more) {
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
  }
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

StepResult MultiWayJoin::StepUnordered(ExecContext& ctx) {
  StepResult result;
  for (int scan = 0; scan < num_inputs(); ++scan) {
    int i = (next_unordered_input_ + scan) % num_inputs();
    if (input(i)->empty()) continue;
    next_unordered_input_ = (i + 1) % num_inputs();
    Tuple tuple = TakeInput(i);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      ExpireAllWindows(tuple.timestamp());
      MaybeEmitPunctuation(tuple.timestamp());
    } else {
      result.processed_data = true;
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ProcessData(i, std::move(tuple));
    }
    break;
  }
  result.more = Operator::HasWork();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void MultiWayJoin::SaveState(StateWriter& w) const {
  IwpOperator::SaveState(w);
  w.U32(static_cast<uint32_t>(windows_.size()));
  for (const std::deque<Tuple>& window : windows_) {
    w.U32(static_cast<uint32_t>(window.size()));
    for (const Tuple& tuple : window) w.Tup(tuple);
  }
  w.U64(matches_emitted_);
  w.I64(next_unordered_input_);
}

void MultiWayJoin::LoadState(StateReader& r) {
  IwpOperator::LoadState(r);
  uint32_t count = r.U32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::deque<Tuple> window;
    uint32_t n = r.U32();
    for (uint32_t j = 0; j < n && r.ok(); ++j) window.push_back(r.Tup());
    if (i < windows_.size()) windows_[i] = std::move(window);
  }
  matches_emitted_ = r.U64();
  next_unordered_input_ = static_cast<int>(r.I64());
}

}  // namespace dsms
