#include "operators/multiway_join.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"
#include "core/value.h"
#include "recovery/state_codec.h"

namespace dsms {

/// Probe-order re-evaluation period, in absorbed punctuations.
static constexpr uint64_t kReorderPeriod = 16;

MultiWayJoin::MultiWayJoin(std::string name, std::vector<Duration> windows,
                           Predicate predicate, bool ordered)
    : IwpOperator(std::move(name), ordered),
      window_durations_(std::move(windows)),
      predicate_(std::move(predicate)) {
  DSMS_CHECK_GE(window_durations_.size(), 2u);
  for (Duration w : window_durations_) DSMS_CHECK_GE(w, 0);
  const size_t n = window_durations_.size();
  for (size_t i = 0; i < n; ++i) {
    tables_.emplace_back();
    tables_.back().set_name(this->name() + ".in" + std::to_string(i));
    probe_order_.push_back(static_cast<int>(i));
  }
  probe_uses_.assign(n, 0);
  probe_rows_.assign(n, 0);
}

MultiWayJoin::Predicate MultiWayJoin::EquiJoin(int field) {
  return [field](const std::vector<const Tuple*>& match) {
    for (size_t i = 1; i < match.size(); ++i) {
      if (!(match[i]->value(field) == match[0]->value(field))) return false;
    }
    return true;
  };
}

void MultiWayJoin::set_equi_field(int field) {
  equi_field_ = field;
  for (StateTable& table : tables_) table.set_key_field(field);
}

void MultiWayJoin::BindStateStore(StateStore* store) {
  store_ = store;
  for (StateTable& table : tables_) table.Bind(store, this);
}

Result<std::optional<Schema>> MultiWayJoin::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  for (const auto& schema : inputs) {
    if (!schema.has_value()) return std::optional<Schema>();
  }
  if (inputs.empty()) return std::optional<Schema>();
  if (equi_field_ >= 0) {
    ValueType key_type = ValueType::kInt64;
    for (size_t i = 0; i < inputs.size(); ++i) {
      DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[i], equi_field_,
                                            /*require_numeric=*/false,
                                            name()));
      ValueType t = inputs[i]->field(equi_field_).type;
      if (i == 0) {
        key_type = t;
      } else if (t != key_type) {
        return InvalidArgumentError(StrFormat(
            "%s: key field %d has type %s on input %zu but %s on input 0",
            name().c_str(), equi_field_, ValueTypeToString(t), i,
            ValueTypeToString(key_type)));
      }
    }
  }
  Schema combined = *inputs[0];
  for (size_t i = 1; i < inputs.size(); ++i) {
    combined = combined.Concat(*inputs[i]);
  }
  return std::optional<Schema>(std::move(combined));
}

size_t MultiWayJoin::window_size(int input) const {
  DSMS_CHECK_GE(input, 0);
  DSMS_CHECK_LT(static_cast<size_t>(input), tables_.size());
  return tables_[static_cast<size_t>(input)].size();
}

size_t MultiWayJoin::total_window_size() const {
  size_t total = 0;
  for (const StateTable& table : tables_) total += table.size();
  return total;
}

const StateTable& MultiWayJoin::state_table(int input) const {
  DSMS_CHECK_GE(input, 0);
  DSMS_CHECK_LT(static_cast<size_t>(input), tables_.size());
  return tables_[static_cast<size_t>(input)];
}

Duration MultiWayJoin::TakeStorageStall() {
  Duration total = 0;
  for (StateTable& table : tables_) total += table.TakeStall();
  return total;
}

void MultiWayJoin::ExpireWindow(int input, Timestamp bound) {
  if (bound == kMinTimestamp) return;
  tables_[static_cast<size_t>(input)].Expire(
      bound - window_durations_[static_cast<size_t>(input)]);
}

void MultiWayJoin::ExpireAllWindows(Timestamp bound) {
  // Ordered execution consumes tuples in global timestamp order, so every
  // future fresh tuple (on any input) has timestamp >= bound: a stored
  // tuple of input j older than bound − w_j can never be probed again.
  for (int j = 0; j < num_inputs(); ++j) ExpireWindow(j, bound);
}

void MultiWayJoin::MaybeReorderProbes() {
  if (!adaptive_ || puncts_seen_ % kReorderPeriod != 0) return;
  // Cheapest-first: fewest delivered rows per probe goes earliest, so the
  // recursion's intermediate fan-out shrinks as fast as possible. An input
  // never probed yet counts as free. Ties break on input index, keeping the
  // order a pure function of consumed input (deterministic).
  std::sort(probe_order_.begin(), probe_order_.end(), [this](int a, int b) {
    const size_t ia = static_cast<size_t>(a), ib = static_cast<size_t>(b);
    const double avg_a =
        probe_uses_[ia] == 0
            ? 0.0
            : static_cast<double>(probe_rows_[ia]) /
                  static_cast<double>(probe_uses_[ia]);
    const double avg_b =
        probe_uses_[ib] == 0
            ? 0.0
            : static_cast<double>(probe_rows_[ib]) /
                  static_cast<double>(probe_uses_[ib]);
    if (avg_a != avg_b) return avg_a < avg_b;
    return a < b;
  });
}

void MultiWayJoin::EmitMatch(const std::vector<const Tuple*>& match,
                             const Tuple& fresh) {
  if (predicate_ && !predicate_(match)) return;
  std::vector<Value> combined;
  size_t total = 0;
  for (const Tuple* t : match) total += t->values().size();
  combined.reserve(total);
  for (const Tuple* t : match) {
    combined.insert(combined.end(), t->values().begin(), t->values().end());
  }
  Timestamp tau = fresh.timestamp();
  Tuple result = Tuple::MakeData(
      tau, std::move(combined),
      fresh.timestamp_kind() == TimestampKind::kLatent
          ? TimestampKind::kInternal
          : fresh.timestamp_kind());
  result.set_arrival_time(fresh.arrival_time());
  result.set_source_id(fresh.source_id());
  result.set_sequence(fresh.sequence());
  NoteDataEmitted(tau);
  ++matches_emitted_;
  Emit(std::move(result));
}

void MultiWayJoin::ProbeRecursive(size_t depth, int fresh_input,
                                  const Tuple& fresh,
                                  std::vector<const Tuple*>* match) {
  if (depth == probe_order_.size()) {
    EmitMatch(*match, fresh);
    return;
  }
  const int input = probe_order_[depth];
  if (input == fresh_input) {
    (*match)[static_cast<size_t>(input)] = &fresh;
    ProbeRecursive(depth + 1, fresh_input, fresh, match);
    return;
  }
  // Band rule vs the fresh tuple (same as the binary join): a stored tuple
  // at ts joins iff ts <= τ ? τ − ts <= w(input) : ts − τ <= w(fresh),
  // i.e. ts ∈ [τ − w(input), τ + w(fresh)].
  const Timestamp tau = fresh.timestamp();
  const Value* key =
      equi_field_ >= 0 &&
              equi_field_ < static_cast<int>(fresh.values().size())
          ? &fresh.value(equi_field_)
          : nullptr;
  StateTable& table = tables_[static_cast<size_t>(input)];
  ++probe_uses_[static_cast<size_t>(input)];
  table.Probe(
      tau - window_durations_[static_cast<size_t>(input)],
      tau + window_durations_[static_cast<size_t>(fresh_input)], key,
      [&](const Tuple& stored) {
        ++probe_rows_[static_cast<size_t>(input)];
        (*match)[static_cast<size_t>(input)] = &stored;
        ProbeRecursive(depth + 1, fresh_input, fresh, match);
      });
}

void MultiWayJoin::ProcessData(int input, Tuple tuple) {
  // Hold the store lock across the whole probe cascade: nested probes keep
  // references into resident blocks, which a concurrent shard's eviction
  // could otherwise drop mid-recursion.
  StateStore::Guard guard(store_);
  Timestamp tau = tuple.timestamp();
  ExpireAllWindows(tau);
  std::vector<const Tuple*> match(static_cast<size_t>(num_inputs()),
                                  nullptr);
  ProbeRecursive(0, input, tuple, &match);
  StateTable& own = tables_[static_cast<size_t>(input)];
  own.Append(std::move(tuple));
  own.MaybeEvict();
}

StepResult MultiWayJoin::Step(ExecContext& ctx) {
  ++stats_.steps;
  for (StateTable& table : tables_) table.BeginStep(ctx.now());
  if (!ordered()) return StepUnordered(ctx);

  StepResult result;
  ObserveHeads();

  int ready = FindReadyInput();
  if (ready < 0) {
    FillBlockedResult(&result);
    result.yield = AnyOutputNonEmpty(*this);
    result.storage_stall = TakeStorageStall();
    return result;
  }

  Tuple tuple = TakeInput(ready);
  if (tuple.is_data()) {
    result.processed_data = true;
    ProcessData(ready, std::move(tuple));
  } else {
    result.processed_punctuation = true;
    ExpireAllWindows(MinEffectiveTsm());
    MaybeEmitPunctuation(MinEffectiveTsm());
    ++puncts_seen_;
    MaybeReorderProbes();
  }

  result.more = RelaxedMore();
  if (!result.more) {
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
  }
  result.yield = AnyOutputNonEmpty(*this);
  result.storage_stall = TakeStorageStall();
  return result;
}

StepResult MultiWayJoin::StepUnordered(ExecContext& ctx) {
  StepResult result;
  for (int scan = 0; scan < num_inputs(); ++scan) {
    int i = (next_unordered_input_ + scan) % num_inputs();
    if (input(i)->empty()) continue;
    next_unordered_input_ = (i + 1) % num_inputs();
    Tuple tuple = TakeInput(i);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      ExpireAllWindows(tuple.timestamp());
      MaybeEmitPunctuation(tuple.timestamp());
      ++puncts_seen_;
      MaybeReorderProbes();
    } else {
      result.processed_data = true;
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ProcessData(i, std::move(tuple));
    }
    break;
  }
  result.more = Operator::HasWork();
  result.yield = AnyOutputNonEmpty(*this);
  result.storage_stall = TakeStorageStall();
  return result;
}

void MultiWayJoin::SaveState(StateWriter& w) const {
  IwpOperator::SaveState(w);
  w.U32(static_cast<uint32_t>(tables_.size()));
  for (const StateTable& table : tables_) table.SaveState(w);
  // The adaptive probe schedule is execution state: restoring it keeps
  // post-recovery match-enumeration order identical to an uninterrupted
  // run.
  for (int input : probe_order_) w.I64(input);
  for (uint64_t uses : probe_uses_) w.U64(uses);
  for (uint64_t rows : probe_rows_) w.U64(rows);
  w.U64(puncts_seen_);
  w.U64(matches_emitted_);
  w.I64(next_unordered_input_);
}

void MultiWayJoin::LoadState(StateReader& r) {
  IwpOperator::LoadState(r);
  uint32_t count = r.U32();
  if (!r.ok()) return;
  // Checkpoint/plan mismatch: a different input count means different
  // window configuration — fail stop rather than silently dropping state.
  DSMS_CHECK_EQ(count, tables_.size());
  for (StateTable& table : tables_) {
    table.LoadState(r);
    if (!r.ok()) return;
  }
  for (size_t i = 0; i < tables_.size() && r.ok(); ++i) {
    probe_order_[i] = static_cast<int>(r.I64());
  }
  for (size_t i = 0; i < tables_.size() && r.ok(); ++i) {
    probe_uses_[i] = r.U64();
  }
  for (size_t i = 0; i < tables_.size() && r.ok(); ++i) {
    probe_rows_[i] = r.U64();
  }
  if (!r.ok()) return;
  puncts_seen_ = r.U64();
  matches_emitted_ = r.U64();
  next_unordered_input_ = static_cast<int>(r.I64());
}

}  // namespace dsms
