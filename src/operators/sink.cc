#include "operators/sink.h"

#include <string>
#include <utility>

#include "core/tuple.h"

namespace dsms {

Sink::Sink(std::string name) : Operator(std::move(name)) {}

StepResult Sink::Step(ExecContext& ctx) {
  ++stats_.steps;
  StepResult result;
  if (input(0)->empty()) return result;

  Tuple tuple = TakeInput(0);
  if (tuple.is_data()) {
    result.processed_data = true;
    latency_.RecordEmission(tuple, ctx.now());
    if (callback_) callback_(tuple, ctx.now());
    if (collect_) collected_.push_back(std::move(tuple));
  } else {
    // Punctuation dies here; it never reaches users.
    result.processed_punctuation = true;
  }
  result.more = !input(0)->empty();
  return result;
}

size_t Sink::DrainAll(Timestamp now) {
  std::vector<Tuple> batch;
  input(0)->DrainInto(&batch);
  size_t delivered = 0;
  for (Tuple& tuple : batch) {
    if (tuple.is_data()) {
      ++stats_.data_in;
      ++delivered;
      latency_.RecordEmission(tuple, now);
      if (callback_) callback_(tuple, now);
      if (collect_) collected_.push_back(std::move(tuple));
    } else {
      ++stats_.punctuation_in;
    }
  }
  return delivered;
}

}  // namespace dsms
