#ifndef DSMS_OPERATORS_UNION_OP_H_
#define DSMS_OPERATORS_UNION_OP_H_

#include <string>

#include "operators/iwp_operator.h"
#include "operators/operator.h"

namespace dsms {

/// N-ary order-preserving union — "in fact a sort-merge operation that
/// combines its input data streams into a single output stream where tuples
/// are ordered by their timestamp values" (Section 1). Implements the
/// punctuation- and simultaneous-tuple-aware execution rules of Figure 6:
///
///   If `more` (relaxed, Figure 5) is true, select an input tuple with
///   timestamp τ = min(TSM registers), deliver it to the output and remove
///   it from the input; a punctuation head at τ is consumed and re-emitted
///   as a (deduplicated) watermark.
///
/// In unordered mode (latent timestamps) tuples are forwarded as soon as
/// they arrive, round-robin across inputs — the paper's scenario D.
///
/// `use_tsm_registers=false` selects the *basic* execution rules of
/// Figure 1 instead: the union proceeds only when tuples are present in ALL
/// inputs (punctuation counts as presence, which is how the heartbeats of
/// [9] unblock basic operators). This is the pre-TSM baseline kept for the
/// simultaneous-tuples ablation (bench/abl_simultaneous): it idle-waits on
/// an input that empties even when the remaining tuples are simultaneous
/// with already-seen ones.
class Union : public IwpOperator {
 public:
  explicit Union(std::string name, bool ordered = true,
                 bool use_tsm_registers = true);

  int min_inputs() const override { return 2; }
  int max_inputs() const override { return 1 << 20; }  // effectively n-ary

  bool use_tsm_registers() const { return use_tsm_registers_; }

  bool HasWork() const override;

  /// Strict mode blocks on the first empty input rather than the minimal
  /// TSM register.
  int BlockedInput() const override;

  /// All (known) input schemas must agree; the union of incompatible
  /// streams is a type error.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  StepResult Step(ExecContext& ctx) override;

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  StepResult StepUnordered();
  StepResult StepStrict();
  /// Basic `more` of Figure 1: every input buffer non-empty.
  bool StrictMore() const;
  /// Input with the minimal-timestamp head (ties: lowest index).
  int StrictMinInput() const;

  bool use_tsm_registers_;
  int next_unordered_input_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_UNION_OP_H_
