#ifndef DSMS_OPERATORS_GROUPED_AGGREGATE_H_
#define DSMS_OPERATORS_GROUPED_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "common/time.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/operator.h"
#include "operators/window_aggregate.h"

namespace dsms {

/// GROUP BY + time-window aggregation: like WindowAggregate, but keyed by a
/// grouping attribute. Windows are aligned (window k covers
/// [k*slide, k*slide + window)); when a window closes, one result tuple is
/// emitted per group observed in it, payload
/// [window_start:int64, key:value, aggregate:double], ordered by window
/// then key (deterministic). Groups absent from a window emit nothing
/// (there is no universe of keys to enumerate).
///
/// Window closing follows the same bound discipline as WindowAggregate:
/// data timestamps and punctuation advance the bound; punctuation is
/// forwarded with the strengthened next-window-end bound; latent input is
/// stamped on the fly. Open windows with data make the operator want an
/// ETS (extension; see WindowAggregate).
class GroupedWindowAggregate : public Operator {
 public:
  /// `key_field` is the grouping attribute's value index; `agg_field` the
  /// aggregated one (ignored for kCount). Keys may be any Value type with
  /// equality; int64/string are typical.
  GroupedWindowAggregate(std::string name, AggKind kind, int key_field,
                         int agg_field, Duration window, Duration slide);

  StepResult Step(ExecContext& ctx) override;

  bool stamps_latent() const override { return true; }

  /// Output schema: (window_start:int64, key:<key type>, value:double);
  /// validates key and aggregated fields against the input schema.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  bool WantsEts() const override { return !windows_.empty(); }
  Timestamp EtsReleaseBound() const override {
    if (windows_.empty()) return kMaxTimestamp;
    return windows_.begin()->first * slide_ + window_;
  }

  Duration window() const { return window_; }
  Duration slide() const { return slide_; }
  uint64_t results_emitted() const { return results_emitted_; }
  size_t open_windows() const { return windows_.size(); }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  struct Accumulator {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  /// Keys ordered by (type, rendered value) for deterministic emission.
  struct KeyLess {
    bool operator()(const Value& a, const Value& b) const;
  };
  using GroupMap = std::map<Value, Accumulator, KeyLess>;

  int64_t WindowIndexLow(Timestamp ts) const;
  int64_t WindowIndexHigh(Timestamp ts) const;
  void Accumulate(const Tuple& tuple);
  void CloseWindowsUpTo(Timestamp bound);
  void EmitWindow(int64_t k, const GroupMap& groups);

  AggKind kind_;
  int key_field_;
  int agg_field_;
  Duration window_;
  Duration slide_;
  std::map<int64_t, GroupMap> windows_;
  bool first_seen_ = false;
  int64_t next_emit_k_ = 0;
  Timestamp bound_ = kMinTimestamp;
  Timestamp last_punct_out_ = kMinTimestamp;
  uint64_t results_emitted_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_GROUPED_AGGREGATE_H_
