#include "operators/window_join.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"
#include "core/value.h"
#include "obs/tracer.h"
#include "recovery/state_codec.h"

namespace dsms {

WindowJoin::WindowJoin(std::string name, Duration left_window,
                       Duration right_window, Predicate predicate,
                       bool ordered)
    : IwpOperator(std::move(name), ordered),
      predicate_(std::move(predicate)) {
  DSMS_CHECK_GE(left_window, 0);
  DSMS_CHECK_GE(right_window, 0);
  window_duration_[0] = left_window;
  window_duration_[1] = right_window;
}

WindowJoin::Predicate WindowJoin::EquiJoin(int left_field, int right_field) {
  return [left_field, right_field](const Tuple& left, const Tuple& right) {
    return left.value(left_field) == right.value(right_field);
  };
}

Result<std::optional<Schema>> WindowJoin::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.size() < 2 || !inputs[0].has_value() || !inputs[1].has_value()) {
    return std::optional<Schema>();
  }
  const Schema& left = *inputs[0];
  const Schema& right = *inputs[1];
  if (equi_left_field_ >= 0) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(left, equi_left_field_,
                                          /*require_numeric=*/false, name()));
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(right, equi_right_field_,
                                          /*require_numeric=*/false, name()));
    ValueType lt = left.field(equi_left_field_).type;
    ValueType rt = right.field(equi_right_field_).type;
    if (lt != rt) {
      return InvalidArgumentError(StrFormat(
          "%s: equi-join compares %s field %d with %s field %d",
          name().c_str(), ValueTypeToString(lt), equi_left_field_,
          ValueTypeToString(rt), equi_right_field_));
    }
  }
  return std::optional<Schema>(left.Concat(right));
}

size_t WindowJoin::window_size(int side) const {
  DSMS_CHECK(side == 0 || side == 1);
  return window_[side].size();
}

void WindowJoin::NotePeak() {
  peak_window_size_ =
      std::max(peak_window_size_, window_[0].size() + window_[1].size());
}

void WindowJoin::ExpireWindow(int side, Timestamp bound) {
  // A stored `side` tuple t remains joinable with future opposite tuples
  // (all >= bound) while opposite.ts − t.ts <= w(side); expire the rest.
  if (bound == kMinTimestamp) return;
  std::deque<Tuple>& window = window_[side];
  Timestamp cutoff = bound - window_duration_[side];
  while (!window.empty() && window.front().timestamp() < cutoff) {
    window.pop_front();
  }
}

void WindowJoin::ProcessData(int side, Tuple tuple) {
  int other = 1 - side;
  Timestamp tau = tuple.timestamp();

  // Future `side` tuples have ts >= tau, so prune the opposite window first.
  ExpireWindow(other, tau);

  for (const Tuple& stored : window_[other]) {
    Timestamp stored_ts = stored.timestamp();
    bool joinable;
    if (stored_ts <= tau) {
      joinable = (tau - stored_ts) <= window_duration_[other];
    } else {
      joinable = (stored_ts - tau) <= window_duration_[side];
    }
    if (!joinable) continue;
    const Tuple& left = (side == 0) ? tuple : stored;
    const Tuple& right = (side == 0) ? stored : tuple;
    if (predicate_ && !predicate_(left, right)) continue;

    std::vector<Value> combined;
    combined.reserve(left.values().size() + right.values().size());
    combined.insert(combined.end(), left.values().begin(),
                    left.values().end());
    combined.insert(combined.end(), right.values().begin(),
                    right.values().end());
    // Result tuples "take their timestamps from the tuple in A" (Figure 1):
    // the newly consumed tuple defines timestamp and latency lineage.
    Tuple result = Tuple::MakeData(tau, std::move(combined),
                                   tuple.timestamp_kind() ==
                                           TimestampKind::kLatent
                                       ? TimestampKind::kInternal
                                       : tuple.timestamp_kind());
    result.set_arrival_time(tuple.arrival_time());
    result.set_source_id(tuple.source_id());
    result.set_sequence(tuple.sequence());
    NoteDataEmitted(tau);
    ++matches_emitted_;
    Emit(std::move(result));
  }

  window_[side].push_back(std::move(tuple));
  NotePeak();
}

StepResult WindowJoin::Step(ExecContext& ctx) {
  ++stats_.steps;
  if (!ordered()) return StepUnordered(ctx);

  StepResult result;
  ObserveHeads();

  int ready = FindReadyInput();
  if (ready < 0) {
    FillBlockedResult(&result);
    result.yield = AnyOutputNonEmpty(*this);
    return result;
  }

  Tuple tuple = TakeTracked(ready);
  if (tuple.is_data()) {
    result.processed_data = true;
    ProcessData(ready, std::move(tuple));
  } else {
    result.processed_punctuation = true;
    if (tracer_ != nullptr) {
      tracer_->RecordPunctuation(id(), /*emitted=*/false, tuple.timestamp());
    }
    // The punctuation bounds future `ready`-side tuples; prune the opposite
    // window and forward the watermark ("if neither A nor B contain an
    // input data tuple with timestamp τ, add a punctuation tuple with
    // timestamp τ", Figure 6).
    ExpireWindow(1 - ready, tuple.timestamp());
    MaybeEmitPunctuation(MinEffectiveTsm());
  }

  result.more = RelaxedMore();
  if (!result.more) {
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
  }
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

StepResult WindowJoin::StepUnordered(ExecContext& ctx) {
  StepResult result;
  for (int scan = 0; scan < num_inputs(); ++scan) {
    int i = (next_unordered_input_ + scan) % num_inputs();
    if (input(i)->empty()) continue;
    next_unordered_input_ = (i + 1) % num_inputs();
    Tuple tuple = TakeInput(i);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      if (tracer_ != nullptr) {
        tracer_->RecordPunctuation(id(), /*emitted=*/false, tuple.timestamp());
      }
      ExpireWindow(1 - i, tuple.timestamp());
      MaybeEmitPunctuation(tuple.timestamp());
    } else {
      result.processed_data = true;
      // The join requires timestamps, so latent tuples are stamped on the
      // fly with the current virtual time (Section 5). Consumption order is
      // stamping order, so stamped timestamps are monotone on both inputs.
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ProcessData(i, std::move(tuple));
    }
    break;
  }
  result.more = Operator::HasWork();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void WindowJoin::SaveState(StateWriter& w) const {
  IwpOperator::SaveState(w);
  for (int side = 0; side < 2; ++side) {
    w.U32(static_cast<uint32_t>(window_[side].size()));
    for (const Tuple& tuple : window_[side]) w.Tup(tuple);
  }
  w.U64(peak_window_size_);
  w.U64(matches_emitted_);
  w.I64(next_unordered_input_);
}

void WindowJoin::LoadState(StateReader& r) {
  IwpOperator::LoadState(r);
  for (int side = 0; side < 2; ++side) {
    window_[side].clear();
    uint32_t n = r.U32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      window_[side].push_back(r.Tup());
    }
  }
  peak_window_size_ = static_cast<size_t>(r.U64());
  matches_emitted_ = r.U64();
  next_unordered_input_ = static_cast<int>(r.I64());
}

}  // namespace dsms
