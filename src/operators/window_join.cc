#include "operators/window_join.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"
#include "core/value.h"
#include "obs/tracer.h"
#include "recovery/state_codec.h"

namespace dsms {

WindowJoin::WindowJoin(std::string name, Duration left_window,
                       Duration right_window, Predicate predicate,
                       bool ordered)
    : IwpOperator(std::move(name), ordered),
      predicate_(std::move(predicate)) {
  DSMS_CHECK_GE(left_window, 0);
  DSMS_CHECK_GE(right_window, 0);
  window_duration_[0] = left_window;
  window_duration_[1] = right_window;
  table_[0].set_name(this->name() + ".left");
  table_[1].set_name(this->name() + ".right");
}

WindowJoin::Predicate WindowJoin::EquiJoin(int left_field, int right_field) {
  return [left_field, right_field](const Tuple& left, const Tuple& right) {
    return left.value(left_field) == right.value(right_field);
  };
}

Result<std::optional<Schema>> WindowJoin::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.size() < 2 || !inputs[0].has_value() || !inputs[1].has_value()) {
    return std::optional<Schema>();
  }
  const Schema& left = *inputs[0];
  const Schema& right = *inputs[1];
  if (equi_left_field_ >= 0) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(left, equi_left_field_,
                                          /*require_numeric=*/false, name()));
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(right, equi_right_field_,
                                          /*require_numeric=*/false, name()));
    ValueType lt = left.field(equi_left_field_).type;
    ValueType rt = right.field(equi_right_field_).type;
    if (lt != rt) {
      return InvalidArgumentError(StrFormat(
          "%s: equi-join compares %s field %d with %s field %d",
          name().c_str(), ValueTypeToString(lt), equi_left_field_,
          ValueTypeToString(rt), equi_right_field_));
    }
  }
  return std::optional<Schema>(left.Concat(right));
}

void WindowJoin::BindStateStore(StateStore* store) {
  table_[0].Bind(store, this);
  table_[1].Bind(store, this);
}

size_t WindowJoin::window_size(int side) const {
  DSMS_CHECK(side == 0 || side == 1);
  return table_[side].size();
}

const StateTable& WindowJoin::state_table(int side) const {
  DSMS_CHECK(side == 0 || side == 1);
  return table_[side];
}

void WindowJoin::NotePeak() {
  peak_window_size_ =
      std::max(peak_window_size_, table_[0].size() + table_[1].size());
}

Duration WindowJoin::TakeStorageStall() {
  return table_[0].TakeStall() + table_[1].TakeStall();
}

void WindowJoin::ExpireWindow(int side, Timestamp bound) {
  // A stored `side` tuple t remains joinable with future opposite tuples
  // (all >= bound) while opposite.ts − t.ts <= w(side); expire the rest.
  if (bound == kMinTimestamp) return;
  table_[side].Expire(bound - window_duration_[side]);
}

void WindowJoin::ProcessData(int side, Tuple tuple) {
  int other = 1 - side;
  Timestamp tau = tuple.timestamp();

  // Future `side` tuples have ts >= tau, so prune the opposite window first.
  ExpireWindow(other, tau);

  // A stored other-side tuple at ts is joinable with tau iff
  //   ts <= tau: tau − ts <= w(other);  ts > tau: ts − tau <= w(side)
  // i.e. ts ∈ [tau − w(other), tau + w(side)] (Figure 1's band, both sides).
  // With declared equi fields the fresh tuple's own field keys the probe, so
  // only same-key rows are visited (verified by the predicate below).
  const int own_field = (side == 0) ? equi_left_field_ : equi_right_field_;
  const Value* key =
      own_field >= 0 && own_field < static_cast<int>(tuple.values().size())
          ? &tuple.value(own_field)
          : nullptr;
  table_[other].Probe(
      tau - window_duration_[other], tau + window_duration_[side], key,
      [&](const Tuple& stored) {
        const Tuple& left = (side == 0) ? tuple : stored;
        const Tuple& right = (side == 0) ? stored : tuple;
        if (predicate_ && !predicate_(left, right)) return;

        std::vector<Value> combined;
        combined.reserve(left.values().size() + right.values().size());
        combined.insert(combined.end(), left.values().begin(),
                        left.values().end());
        combined.insert(combined.end(), right.values().begin(),
                        right.values().end());
        // Result tuples "take their timestamps from the tuple in A"
        // (Figure 1): the newly consumed tuple defines timestamp and
        // latency lineage.
        Tuple result = Tuple::MakeData(tau, std::move(combined),
                                       tuple.timestamp_kind() ==
                                               TimestampKind::kLatent
                                           ? TimestampKind::kInternal
                                           : tuple.timestamp_kind());
        result.set_arrival_time(tuple.arrival_time());
        result.set_source_id(tuple.source_id());
        result.set_sequence(tuple.sequence());
        NoteDataEmitted(tau);
        ++matches_emitted_;
        Emit(std::move(result));
      });

  table_[side].Append(std::move(tuple));
  table_[side].MaybeEvict();
  NotePeak();
}

StepResult WindowJoin::Step(ExecContext& ctx) {
  ++stats_.steps;
  table_[0].BeginStep(ctx.now());
  table_[1].BeginStep(ctx.now());
  if (!ordered()) return StepUnordered(ctx);

  StepResult result;
  ObserveHeads();

  int ready = FindReadyInput();
  if (ready < 0) {
    FillBlockedResult(&result);
    result.yield = AnyOutputNonEmpty(*this);
    result.storage_stall = TakeStorageStall();
    return result;
  }

  Tuple tuple = TakeTracked(ready);
  if (tuple.is_data()) {
    result.processed_data = true;
    ProcessData(ready, std::move(tuple));
  } else {
    result.processed_punctuation = true;
    if (tracer_ != nullptr) {
      tracer_->RecordPunctuation(id(), /*emitted=*/false, tuple.timestamp());
    }
    // The punctuation bounds future `ready`-side tuples; prune the opposite
    // window and forward the watermark ("if neither A nor B contain an
    // input data tuple with timestamp τ, add a punctuation tuple with
    // timestamp τ", Figure 6).
    ExpireWindow(1 - ready, tuple.timestamp());
    MaybeEmitPunctuation(MinEffectiveTsm());
  }

  result.more = RelaxedMore();
  if (!result.more) {
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
  }
  result.yield = AnyOutputNonEmpty(*this);
  result.storage_stall = TakeStorageStall();
  return result;
}

StepResult WindowJoin::StepUnordered(ExecContext& ctx) {
  StepResult result;
  for (int scan = 0; scan < num_inputs(); ++scan) {
    int i = (next_unordered_input_ + scan) % num_inputs();
    if (input(i)->empty()) continue;
    next_unordered_input_ = (i + 1) % num_inputs();
    Tuple tuple = TakeInput(i);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      if (tracer_ != nullptr) {
        tracer_->RecordPunctuation(id(), /*emitted=*/false, tuple.timestamp());
      }
      ExpireWindow(1 - i, tuple.timestamp());
      MaybeEmitPunctuation(tuple.timestamp());
    } else {
      result.processed_data = true;
      // The join requires timestamps, so latent tuples are stamped on the
      // fly with the current virtual time (Section 5). Consumption order is
      // stamping order, so stamped timestamps are monotone on both inputs.
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ProcessData(i, std::move(tuple));
    }
    break;
  }
  result.more = Operator::HasWork();
  result.yield = AnyOutputNonEmpty(*this);
  result.storage_stall = TakeStorageStall();
  return result;
}

void WindowJoin::SaveState(StateWriter& w) const {
  IwpOperator::SaveState(w);
  for (int side = 0; side < 2; ++side) {
    // The window duration is configuration, not state, but writing it lets
    // restore fail fast when a checkpoint is replayed into a join built
    // from a different plan.
    w.Ts(window_duration_[side]);
    table_[side].SaveState(w);
  }
  w.U64(peak_window_size_);
  w.U64(matches_emitted_);
  w.I64(next_unordered_input_);
}

void WindowJoin::LoadState(StateReader& r) {
  IwpOperator::LoadState(r);
  for (int side = 0; side < 2; ++side) {
    if (!r.ok()) return;
    const Duration saved_window = r.Ts();
    if (!r.ok()) return;
    // Checkpoint/plan mismatch: restoring window state into a join with a
    // different window duration silently changes results — fail stop.
    DSMS_CHECK_EQ(saved_window, window_duration_[side]);
    table_[side].LoadState(r);
  }
  if (!r.ok()) return;
  peak_window_size_ = static_cast<size_t>(r.U64());
  matches_emitted_ = r.U64();
  next_unordered_input_ = static_cast<int>(r.I64());
}

}  // namespace dsms
