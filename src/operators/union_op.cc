#include "operators/union_op.h"

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "obs/tracer.h"
#include "recovery/state_codec.h"

namespace dsms {

Union::Union(std::string name, bool ordered, bool use_tsm_registers)
    : IwpOperator(std::move(name), ordered),
      use_tsm_registers_(use_tsm_registers) {}

bool Union::HasWork() const {
  if (ordered() && !use_tsm_registers_) return StrictMore();
  return IwpOperator::HasWork();
}

Result<std::optional<Schema>> Union::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  std::optional<Schema> known;
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i].has_value()) continue;
    if (!known.has_value()) {
      known = inputs[i];
    } else if (*known != *inputs[i]) {
      return InvalidArgumentError(StrFormat(
          "%s: input %zu schema %s does not match %s", name().c_str(), i,
          inputs[i]->ToString().c_str(), known->ToString().c_str()));
    }
  }
  return known;
}

int Union::BlockedInput() const {
  if (ordered() && !use_tsm_registers_) {
    for (int i = 0; i < num_inputs(); ++i) {
      if (input(i)->empty()) return i;
    }
    return 0;
  }
  return IwpOperator::BlockedInput();
}

bool Union::StrictMore() const {
  for (int i = 0; i < num_inputs(); ++i) {
    if (input(i)->empty()) return false;
  }
  return true;
}

int Union::StrictMinInput() const {
  int best = 0;
  Timestamp best_ts = kMaxTimestamp;
  for (int i = 0; i < num_inputs(); ++i) {
    Timestamp ts = input(i)->Front().timestamp();
    if (ts < best_ts) {
      best_ts = ts;
      best = i;
    }
  }
  return best;
}

StepResult Union::StepStrict() {
  StepResult result;
  // Keep the registers observed so punctuation watermarks stay meaningful
  // even in strict mode.
  ObserveHeads();
  if (!StrictMore()) {
    result.more = false;
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
    result.yield = AnyOutputNonEmpty(*this);
    return result;
  }
  Tuple tuple = TakeInput(StrictMinInput());
  if (tuple.is_data()) {
    result.processed_data = true;
    NoteDataEmitted(tuple.timestamp());
    Emit(std::move(tuple));
  } else {
    result.processed_punctuation = true;
    if (tracer_ != nullptr) {
      tracer_->RecordPunctuation(id(), /*emitted=*/false, tuple.timestamp());
    }
    MaybeEmitPunctuation(MinEffectiveTsm());
  }
  result.more = StrictMore();
  if (!result.more) {
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
  }
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

StepResult Union::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  if (!ordered()) return StepUnordered();
  if (!use_tsm_registers_) return StepStrict();

  StepResult result;
  ObserveHeads();

  int ready = FindReadyInput();
  if (ready < 0) {
    FillBlockedResult(&result);
    result.yield = AnyOutputNonEmpty(*this);
    return result;
  }

  Tuple tuple = TakeTracked(ready);
  if (tuple.is_data()) {
    result.processed_data = true;
    NoteDataEmitted(tuple.timestamp());
    Emit(std::move(tuple));
  } else {
    result.processed_punctuation = true;
    if (tracer_ != nullptr) {
      tracer_->RecordPunctuation(id(), /*emitted=*/false, tuple.timestamp());
    }
    // The register already holds this punctuation's bound (observed at the
    // head); forward the operator-wide watermark if it advanced.
    MaybeEmitPunctuation(MinEffectiveTsm());
  }

  result.more = RelaxedMore();
  if (!result.more) {
    result.idle_waiting = HasPendingData();
    result.blocked_input = BlockedInput();
  }
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

StepResult Union::StepUnordered() {
  StepResult result;
  // Round-robin so no input can starve the others.
  for (int scan = 0; scan < num_inputs(); ++scan) {
    int i = (next_unordered_input_ + scan) % num_inputs();
    if (input(i)->empty()) continue;
    next_unordered_input_ = (i + 1) % num_inputs();
    Tuple tuple = TakeInput(i);
    if (tuple.is_data()) {
      result.processed_data = true;
    } else {
      result.processed_punctuation = true;
    }
    Emit(std::move(tuple));
    break;
  }
  result.more = Operator::HasWork();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void Union::SaveState(StateWriter& w) const {
  IwpOperator::SaveState(w);
  w.I64(next_unordered_input_);
}

void Union::LoadState(StateReader& r) {
  IwpOperator::LoadState(r);
  next_unordered_input_ = static_cast<int>(r.I64());
}

}  // namespace dsms
