#ifndef DSMS_OPERATORS_IWP_OPERATOR_H_
#define DSMS_OPERATORS_IWP_OPERATOR_H_

#include <string>
#include <vector>

#include "common/time.h"
#include "core/tsm_register.h"
#include "core/tuple.h"
#include "operators/operator.h"

namespace dsms {

/// Common machinery for Idle-Waiting-Prone operators (union, window join):
/// one TSM register per input (Section 4.1), the relaxed `more` condition
/// (Figure 5), and watermark-punctuation emission with deduplication.
///
/// Two operating modes:
///  - ordered (default): inputs are timestamp-ordered; the operator only
///    emits in global timestamp order and may idle-wait;
///  - unordered (latent timestamps, scenario D): no ordering constraint;
///    any available input tuple may be consumed immediately and the
///    operator never idle-waits (Section 5).
class IwpOperator : public Operator {
 public:
  IwpOperator(std::string name, bool ordered);

  bool is_iwp() const override { return true; }
  bool ordered() const { return ordered_; }
  bool requires_timestamped_input() const override { return ordered_; }
  bool requires_latent_input() const override { return !ordered_; }

  /// Relaxed more for ordered mode; "any input non-empty" for unordered.
  bool HasWork() const override;

  /// Ordered IWP operators want an ETS whenever they hold blocked data.
  bool WantsEts() const override { return ordered_ && HasPendingData(); }

  /// The smallest pending data timestamp: once every input's TSM register
  /// reaches it, the relaxed `more` condition holds and the tuple flows.
  Timestamp EtsReleaseBound() const override;

  /// TSM register value for input `index` as persisted by the last Step.
  Timestamp tsm(int index) const;

  /// Largest timestamp bound already sent downstream (max over emitted data
  /// timestamps and forwarded watermarks); watermarks are deduplicated
  /// against it.
  Timestamp downstream_bound() const { return downstream_bound_; }

  /// Index of the input that blocks progress: the (first) input achieving
  /// the minimal effective TSM. When the relaxed `more` is false this input
  /// is necessarily empty and is the Backtrack target (Section 3.2). Public
  /// because executors need it when a backtrack walk passes through an IWP
  /// operator that was not itself stepped. Virtual: strict-mode (Figure 1)
  /// operators block on any empty input instead.
  virtual int BlockedInput() const;

  /// Data tuples consumed although their timestamp had already fallen below
  /// the input's TSM register (late arrivals that survived upstream policy;
  /// only possible when an arc's ViolationPolicy is kCount). Ordered inputs
  /// never produce these, so a nonzero count is itself a fault report.
  uint64_t late_data_absorbed() const { return late_data_absorbed_; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 protected:
  /// The TSM value input `index` would have after observing its current
  /// head, without persisting the observation (const-safe view used by
  /// HasWork and `more` recomputation).
  Timestamp EffectiveTsm(int index) const;

  /// Minimum of EffectiveTsm over all inputs (kMinTimestamp when some input
  /// has never been observed).
  Timestamp MinEffectiveTsm() const;

  /// Persists head observations into the TSM registers.
  void ObserveHeads();

  /// Relaxed `more` (Figure 5): true iff some input's head data tuple
  /// carries timestamp equal to the minimal effective TSM value — or any
  /// head is a punctuation, which can always be absorbed (its entire
  /// content, the timestamp bound, is captured by the register the moment
  /// it is observed, so consuming it is safe at any τ and keeps punctuation
  /// from clogging the buffers).
  bool RelaxedMore() const;

  /// Index of the input to consume from: an input whose head is a *data*
  /// tuple at τ == MinEffectiveTsm() if one exists (Figure 6 processes data
  /// at τ before producing punctuation at τ), otherwise any input whose
  /// head is a punctuation. Returns -1 if none.
  ///
  /// Stale heads (see StaleHead) are returned with highest priority: a late
  /// data tuple can never reach τ — its timestamp is below its own input's
  /// register — so leaving it queued would wedge the input forever (the ETS
  /// that should release it lands *behind* it in the same buffer).
  /// Consuming it immediately is the graceful-degradation choice: order is
  /// already broken upstream; liveness need not break too.
  int FindReadyInput() const;

  /// True when input `index` heads a data tuple whose timestamp is below
  /// the input's persisted TSM register (a late arrival). Impossible on
  /// ordered streams; occurs only downstream of injected disorder that a
  /// kCount violation policy let through.
  bool StaleHead(int index) const;

  /// TakeInput + late-arrival accounting: counts the consumption when the
  /// head was stale. Ordered Step paths use this instead of TakeInput.
  Tuple TakeTracked(int index);

  /// Emits a punctuation carrying `watermark` unless an equal-or-better
  /// bound has already been sent downstream (every data emission at ts t
  /// also advances the downstream bound to t).
  void MaybeEmitPunctuation(Timestamp watermark);

  /// Records that a data tuple with timestamp `ts` was emitted (advances the
  /// downstream bound used for punctuation dedup).
  void NoteDataEmitted(Timestamp ts);

  /// Fills `result`'s blocked/idle fields for a step that made no progress.
  void FillBlockedResult(StepResult* result) const;

 private:
  void EnsureTsms() const;

  bool ordered_;
  mutable std::vector<TsmRegister> tsms_;
  Timestamp downstream_bound_ = kMinTimestamp;
  uint64_t late_data_absorbed_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_IWP_OPERATOR_H_
