#ifndef DSMS_OPERATORS_REORDER_H_
#define DSMS_OPERATORS_REORDER_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/time.h"
#include "core/tuple.h"
#include "operators/operator.h"

namespace dsms {

/// Slack-based reordering (extension; cf. Srivastava & Widom, "Flexible time
/// management in data stream systems", cited by the paper for out-of-order
/// handling). The rest of the library assumes timestamp-ordered streams;
/// Reorder repairs a stream whose disorder is bounded by `slack`:
///
///  - tuples are buffered in timestamp order;
///  - a buffered tuple is released once the release bound
///    max(max_seen_ts − slack, max punctuation ts) passes its timestamp;
///  - tuples arriving with a timestamp already below the release bound
///    (disorder beyond the slack) are dropped and counted;
///  - the release bound is forwarded as (deduplicated) punctuation so
///    downstream IWP operators see the stream's true progress.
///
/// Output is guaranteed timestamp-ordered regardless of input.
class Reorder : public Operator {
 public:
  Reorder(std::string name, Duration slack);

  StepResult Step(ExecContext& ctx) override;

  /// Reordering is defined on timestamps; latent input is rejected.
  bool requires_timestamped_input() const override { return true; }

  Duration slack() const { return slack_; }
  size_t buffered() const { return pending_.size(); }
  uint64_t late_dropped() const { return late_dropped_; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  void Release(Timestamp bound);

  Duration slack_;
  /// Buffered tuples keyed by timestamp; multimap keeps arrival order among
  /// equal timestamps (deterministic ties).
  std::multimap<Timestamp, Tuple> pending_;
  Timestamp max_seen_ = kMinTimestamp;
  Timestamp release_bound_ = kMinTimestamp;
  Timestamp last_punct_out_ = kMinTimestamp;
  uint64_t late_dropped_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_REORDER_H_
