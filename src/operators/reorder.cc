#include "operators/reorder.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "recovery/state_codec.h"

namespace dsms {

Reorder::Reorder(std::string name, Duration slack)
    : Operator(std::move(name)), slack_(slack) {
  DSMS_CHECK_GE(slack, 0);
}

void Reorder::Release(Timestamp bound) {
  while (!pending_.empty() && pending_.begin()->first <= bound) {
    Emit(std::move(pending_.begin()->second));
    pending_.erase(pending_.begin());
  }
}

StepResult Reorder::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      // Input punctuation p: no future input below p, so everything
      // buffered below p is safe to release.
      release_bound_ = std::max(release_bound_, tuple.timestamp());
    } else {
      result.processed_data = true;
      DSMS_CHECK(tuple.has_timestamp());  // Reorder needs timestamps.
      Timestamp ts = tuple.timestamp();
      if (ts < release_bound_) {
        // Beyond-slack straggler: the stream has already been released (and
        // a punctuation promise made downstream) past this timestamp.
        ++late_dropped_;
      } else {
        pending_.emplace(ts, std::move(tuple));
        max_seen_ = std::max(max_seen_, ts);
        if (max_seen_ != kMinTimestamp) {
          release_bound_ = std::max(release_bound_, max_seen_ - slack_);
        }
      }
    }
    Release(release_bound_);
    if (release_bound_ != kMinTimestamp && release_bound_ > last_punct_out_) {
      last_punct_out_ = release_bound_;
      Emit(Tuple::MakePunctuation(release_bound_));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void Reorder::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  w.U32(static_cast<uint32_t>(pending_.size()));
  for (const auto& [ts, tuple] : pending_) {
    w.Ts(ts);
    w.Tup(tuple);
  }
  w.Ts(max_seen_);
  w.Ts(release_bound_);
  w.Ts(last_punct_out_);
  w.U64(late_dropped_);
}

void Reorder::LoadState(StateReader& r) {
  Operator::LoadState(r);
  pending_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    Timestamp ts = r.Ts();
    pending_.emplace(ts, r.Tup());
  }
  max_seen_ = r.Ts();
  release_bound_ = r.Ts();
  last_punct_out_ = r.Ts();
  late_dropped_ = r.U64();
}

}  // namespace dsms
