#include "operators/source.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "frontier/frontier_tracker.h"
#include "recovery/state_codec.h"

namespace dsms {

Source::Source(std::string name, int32_t stream_id,
               TimestampKind timestamp_kind, Duration skew_bound)
    : Operator(std::move(name)),
      stream_id_(stream_id),
      timestamp_kind_(timestamp_kind),
      skew_bound_(skew_bound) {
  DSMS_CHECK_GE(skew_bound, 0);
}

StepResult Source::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  result.yield = AnyOutputNonEmpty(*this);
  result.more = false;
  return result;
}

void Source::set_timestamp_granularity(Duration g) {
  DSMS_CHECK_GE(g, 1);
  granularity_ = g;
}

Timestamp Source::Quantize(Timestamp t) const {
  if (granularity_ <= 1) return t;
  // Timestamps are non-negative in practice; plain truncation suffices.
  return (t / granularity_) * granularity_;
}

Tuple Source::MakeIngestTuple(InlinedValues values, Timestamp now) const {
  if (timestamp_kind_ == TimestampKind::kInternal) {
    return Tuple::MakeData(Quantize(now), std::move(values),
                           TimestampKind::kInternal);
  }
  return Tuple::MakeLatent(std::move(values));
}

void Source::Ingest(InlinedValues values, Timestamp now) {
  DSMS_CHECK(timestamp_kind_ != TimestampKind::kExternal);
  PushData(MakeIngestTuple(std::move(values), now), now);
}

void Source::IngestBatch(std::vector<InlinedValues> payloads, Timestamp now) {
  DSMS_CHECK(timestamp_kind_ != TimestampKind::kExternal);
  std::vector<Tuple> batch;
  batch.reserve(payloads.size());
  for (InlinedValues& values : payloads) {
    Tuple tuple = MakeIngestTuple(std::move(values), now);
    PrepareData(tuple, now);
    ++stats_.data_out;
    batch.push_back(std::move(tuple));
  }
  output()->PushAll(std::move(batch));
}

void Source::IngestExternal(Timestamp app_timestamp, InlinedValues values,
                            Timestamp now) {
  DSMS_CHECK(timestamp_kind_ == TimestampKind::kExternal);
  DSMS_CHECK_GE(app_timestamp, last_app_timestamp_ == kMinTimestamp
                                   ? app_timestamp
                                   : last_app_timestamp_);
  Tuple tuple = Tuple::MakeData(app_timestamp, std::move(values),
                                TimestampKind::kExternal);
  last_app_timestamp_ = app_timestamp;
  last_arrival_wall_ = now;
  PushData(std::move(tuple), now);
}

void Source::IngestFaulty(Timestamp app_timestamp, InlinedValues values,
                          Timestamp now) {
  DSMS_CHECK(timestamp_kind_ != TimestampKind::kLatent);
  // Centralized validation: classify the breach for the frontier tracker
  // before the promise is (possibly) raised below. Bookkeeping only — the
  // tuple's fate on its first arc stays the ViolationPolicy's decision.
  if (frontier_ != nullptr) {
    if (timestamp_kind_ == TimestampKind::kExternal &&
        app_timestamp < now - skew_bound_) {
      frontier_->ReportViolation(stream_id_,
                                 FrontierViolation::kSkewViolation);
    } else if (promised_bound_ != kMinTimestamp &&
               app_timestamp < promised_bound_) {
      frontier_->ReportViolation(stream_id_,
                                 FrontierViolation::kTimestampDisorder);
    } else {
      frontier_->ReportBenign(stream_id_);
    }
  }
  Tuple tuple =
      Tuple::MakeData(app_timestamp, std::move(values),
                      timestamp_kind_ == TimestampKind::kExternal
                          ? TimestampKind::kExternal
                          : TimestampKind::kInternal);
  tuple.set_arrival_time(now);
  tuple.set_source_id(stream_id_);
  tuple.set_sequence(next_sequence_++);
  ++tuples_ingested_;
  last_activity_ = now;
  // Never lower the promise: the stream's contract with downstream stands
  // even when a producer breaks it; the late tuple is the anomaly.
  if (app_timestamp > promised_bound_) promised_bound_ = app_timestamp;
  if (timestamp_kind_ == TimestampKind::kExternal) {
    if (app_timestamp > last_app_timestamp_ ||
        last_app_timestamp_ == kMinTimestamp) {
      last_app_timestamp_ = app_timestamp;
    }
    last_arrival_wall_ = now;
  }
  ++stats_.data_out;
  output()->Push(std::move(tuple));
}

void Source::PrepareData(Tuple& tuple, Timestamp now) {
  tuple.set_arrival_time(now);
  tuple.set_source_id(stream_id_);
  tuple.set_sequence(next_sequence_++);
  if (tuple.has_timestamp()) {
    DSMS_CHECK_GE(tuple.timestamp(), promised_bound_ == kMinTimestamp
                                         ? tuple.timestamp()
                                         : promised_bound_);
    promised_bound_ = tuple.timestamp();
  }
  ++tuples_ingested_;
}

void Source::PushData(Tuple tuple, Timestamp now) {
  PrepareData(tuple, now);
  last_activity_ = now;
  ++stats_.data_out;
  output()->Push(std::move(tuple));
}

void Source::InjectPunctuation(Timestamp timestamp) {
  // A stale heartbeat may carry a bound below what this stream has already
  // promised (e.g. periodic injection racing with data); clamp up so the
  // buffer stays timestamp-ordered. The punctuation is still pushed — its
  // buffer-occupancy and processing overheads are part of what scenario B
  // measures.
  if (timestamp < promised_bound_ && promised_bound_ != kMinTimestamp) {
    timestamp = promised_bound_;
  }
  Tuple punct = Tuple::MakePunctuation(timestamp);
  punct.set_arrival_time(timestamp);
  punct.set_source_id(stream_id_);
  if (timestamp > promised_bound_) promised_bound_ = timestamp;
  if (timestamp > last_activity_) last_activity_ = timestamp;
  ++stats_.punctuation_out;
  output()->Push(std::move(punct));
}

void Source::InjectFaultyPunctuation(Timestamp timestamp) {
  if (frontier_ != nullptr) {
    if (promised_bound_ != kMinTimestamp && timestamp < promised_bound_) {
      frontier_->ReportViolation(stream_id_,
                                 FrontierViolation::kPunctuationRegression);
    } else {
      // A duplicate restates the standing promise: wasteful, not a lie.
      frontier_->ReportBenign(stream_id_);
    }
  }
  Tuple punct = Tuple::MakePunctuation(timestamp);
  punct.set_arrival_time(timestamp);
  punct.set_source_id(stream_id_);
  // No clamp and no promise update: a duplicate punctuation restates an old
  // bound, a regressing one breaks it — either way the promise stands.
  if (timestamp > promised_bound_) promised_bound_ = timestamp;
  ++stats_.punctuation_out;
  output()->Push(std::move(punct));
}

std::optional<Timestamp> Source::ComputeEts(Timestamp now) const {
  switch (timestamp_kind_) {
    case TimestampKind::kInternal: {
      // Future internally stamped tuples get ts >= Quantize(now) by
      // construction (stamps are quantized the same way).
      Timestamp bound = Quantize(now);
      if (bound <= promised_bound_) return std::nullopt;
      return bound;
    }
    case TimestampKind::kExternal: {
      // Section 5: with max skew δ and time τ elapsed since the last tuple
      // (app timestamp t) arrived, future tuples have ts >= t + τ − δ.
      if (last_app_timestamp_ == kMinTimestamp) return std::nullopt;
      Duration elapsed = now - last_arrival_wall_;
      Timestamp bound = last_app_timestamp_ + elapsed - skew_bound_;
      if (bound <= promised_bound_) return std::nullopt;
      return bound;
    }
    case TimestampKind::kLatent:
      return std::nullopt;
  }
  return std::nullopt;
}

bool Source::EmitEts(Timestamp now) {
  std::optional<Timestamp> ets = ComputeEts(now);
  if (!ets.has_value()) return false;
  InjectPunctuation(*ets);
  ++ets_emitted_;
  return true;
}

std::optional<Timestamp> Source::ComputeFallbackEts(Timestamp now) const {
  switch (timestamp_kind_) {
    case TimestampKind::kInternal: {
      // Same bound as the regular ETS: future internal stamps are >=
      // Quantize(now) whether or not the producer is alive.
      Timestamp bound = Quantize(now);
      if (bound <= promised_bound_) return std::nullopt;
      return bound;
    }
    case TimestampKind::kExternal: {
      // Skew contract alone: any tuple arriving after `now` has app
      // timestamp > now − δ. Unlike ComputeEts's t + τ − δ this needs no
      // observation at all — crucial for a source that died before its
      // first tuple.
      Timestamp bound = now - skew_bound_;
      if (bound <= promised_bound_) return std::nullopt;
      return bound;
    }
    case TimestampKind::kLatent:
      return std::nullopt;
  }
  return std::nullopt;
}

bool Source::EmitFallbackEts(Timestamp now) {
  std::optional<Timestamp> ets = ComputeFallbackEts(now);
  if (!ets.has_value()) return false;
  InjectPunctuation(*ets);
  ++ets_emitted_;
  ++watchdog_fallbacks_;
  return true;
}

void Source::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  w.U64(next_sequence_);
  w.U64(tuples_ingested_);
  w.U64(ets_emitted_);
  w.U64(watchdog_fallbacks_);
  w.Ts(promised_bound_);
  w.Ts(last_activity_);
  w.Ts(last_app_timestamp_);
  w.Ts(last_arrival_wall_);
}

void Source::LoadState(StateReader& r) {
  Operator::LoadState(r);
  next_sequence_ = r.U64();
  tuples_ingested_ = r.U64();
  ets_emitted_ = r.U64();
  watchdog_fallbacks_ = r.U64();
  promised_bound_ = r.Ts();
  last_activity_ = r.Ts();
  last_app_timestamp_ = r.Ts();
  last_arrival_wall_ = r.Ts();
}

}  // namespace dsms
