#include "operators/iwp_operator.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/tracer.h"
#include "recovery/state_codec.h"

namespace dsms {

IwpOperator::IwpOperator(std::string name, bool ordered)
    : Operator(std::move(name)), ordered_(ordered) {}

void IwpOperator::EnsureTsms() const {
  if (tsms_.size() != static_cast<size_t>(num_inputs())) {
    tsms_.resize(static_cast<size_t>(num_inputs()));
  }
}

Timestamp IwpOperator::tsm(int index) const {
  EnsureTsms();
  DSMS_CHECK_GE(index, 0);
  DSMS_CHECK_LT(index, num_inputs());
  return tsms_[static_cast<size_t>(index)].value();
}

Timestamp IwpOperator::EffectiveTsm(int index) const {
  EnsureTsms();
  Timestamp reg = tsms_[static_cast<size_t>(index)].value();
  const StreamBuffer* in = input(index);
  if (!in->empty() && in->Front().has_timestamp()) {
    reg = std::max(reg, in->Front().timestamp());
  }
  return reg;
}

Timestamp IwpOperator::MinEffectiveTsm() const {
  Timestamp min_ts = kMaxTimestamp;
  for (int i = 0; i < num_inputs(); ++i) {
    min_ts = std::min(min_ts, EffectiveTsm(i));
  }
  return min_ts;
}

void IwpOperator::ObserveHeads() {
  EnsureTsms();
  for (int i = 0; i < num_inputs(); ++i) {
    const StreamBuffer* in = input(i);
    if (!in->empty() && in->Front().has_timestamp()) {
      tsms_[static_cast<size_t>(i)].Observe(in->Front().timestamp());
    }
  }
}

bool IwpOperator::StaleHead(int index) const {
  EnsureTsms();
  const StreamBuffer* in = input(index);
  if (in->empty()) return false;
  const Tuple& head = in->Front();
  return head.is_data() && head.has_timestamp() &&
         head.timestamp() < tsms_[static_cast<size_t>(index)].value();
}

bool IwpOperator::RelaxedMore() const {
  Timestamp tau = MinEffectiveTsm();
  for (int i = 0; i < num_inputs(); ++i) {
    const StreamBuffer* in = input(i);
    if (in->empty()) continue;
    if (in->Front().is_punctuation()) return true;  // Always absorbable.
    if (StaleHead(i)) return true;  // Late arrival; see FindReadyInput.
    if (tau != kMinTimestamp && in->Front().has_timestamp() &&
        in->Front().timestamp() == tau) {
      return true;
    }
  }
  return false;
}

int IwpOperator::FindReadyInput() const {
  Timestamp tau = MinEffectiveTsm();
  int punct_ready = -1;
  for (int i = 0; i < num_inputs(); ++i) {
    const StreamBuffer* in = input(i);
    if (in->empty()) continue;
    const Tuple& head = in->Front();
    if (head.is_punctuation()) {
      if (punct_ready < 0) punct_ready = i;
      continue;
    }
    if (StaleHead(i)) return i;  // Unclog the wedged input first.
    if (tau != kMinTimestamp && head.has_timestamp() &&
        head.timestamp() == tau) {
      return i;
    }
  }
  return punct_ready;
}

Tuple IwpOperator::TakeTracked(int index) {
  if (StaleHead(index)) ++late_data_absorbed_;
  return TakeInput(index);
}

Timestamp IwpOperator::EtsReleaseBound() const {
  if (!ordered_) return kMaxTimestamp;
  Timestamp bound = kMaxTimestamp;
  for (int i = 0; i < num_inputs(); ++i) {
    const StreamBuffer* in = input(i);
    if (!in->empty() && in->Front().is_data() &&
        in->Front().has_timestamp()) {
      bound = std::min(bound, in->Front().timestamp());
    }
  }
  return bound;
}

int IwpOperator::BlockedInput() const {
  int blocked = 0;
  Timestamp min_ts = kMaxTimestamp;
  for (int i = 0; i < num_inputs(); ++i) {
    Timestamp ts = EffectiveTsm(i);
    if (ts < min_ts) {
      min_ts = ts;
      blocked = i;
    }
  }
  return blocked;
}

bool IwpOperator::HasWork() const {
  if (!ordered_) return Operator::HasWork();
  return RelaxedMore();
}

void IwpOperator::MaybeEmitPunctuation(Timestamp watermark) {
  if (watermark == kMinTimestamp || watermark <= downstream_bound_) return;
  downstream_bound_ = watermark;
  Emit(Tuple::MakePunctuation(watermark));
  if (tracer_ != nullptr) {
    tracer_->RecordPunctuation(id(), /*emitted=*/true, watermark);
  }
}

void IwpOperator::NoteDataEmitted(Timestamp ts) {
  downstream_bound_ = std::max(downstream_bound_, ts);
}

void IwpOperator::FillBlockedResult(StepResult* result) const {
  result->more = false;
  result->blocked_input = BlockedInput();
  result->idle_waiting = HasPendingData();
}

void IwpOperator::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  EnsureTsms();
  w.U32(static_cast<uint32_t>(tsms_.size()));
  for (const TsmRegister& tsm : tsms_) w.Ts(tsm.value());
  w.Ts(downstream_bound_);
  w.U64(late_data_absorbed_);
}

void IwpOperator::LoadState(StateReader& r) {
  Operator::LoadState(r);
  EnsureTsms();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n; ++i) {
    Timestamp value = r.Ts();
    if (i < tsms_.size()) {
      tsms_[i].Reset();
      tsms_[i].Observe(value);
    }
  }
  downstream_bound_ = r.Ts();
  late_data_absorbed_ = r.U64();
}

}  // namespace dsms
