#include "operators/operator.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "recovery/state_codec.h"

namespace dsms {

Operator::Operator(std::string name) : name_(std::move(name)) {}

void Operator::AddInput(StreamBuffer* buffer) {
  DSMS_CHECK(buffer != nullptr);
  inputs_.push_back(buffer);
}

void Operator::AddOutput(StreamBuffer* buffer) {
  DSMS_CHECK(buffer != nullptr);
  outputs_.push_back(buffer);
}

StreamBuffer* Operator::input(int index) const {
  DSMS_CHECK_GE(index, 0);
  DSMS_CHECK_LT(index, num_inputs());
  return inputs_[static_cast<size_t>(index)];
}

StreamBuffer* Operator::output(int index) const {
  DSMS_CHECK_GE(index, 0);
  DSMS_CHECK_LT(index, num_outputs());
  return outputs_[static_cast<size_t>(index)];
}

Result<std::optional<Schema>> Operator::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.empty()) return std::optional<Schema>();
  return inputs[0];
}

void Operator::ProcessBatch(ColumnBatch& batch, ExecContext& ctx) {
  (void)batch;
  (void)ctx;
  DSMS_CHECK(false);  // Executors gate on SupportsBatch() first.
}

bool Operator::HasWork() const {
  for (const StreamBuffer* in : inputs_) {
    if (!in->empty()) return true;
  }
  return false;
}

bool Operator::HasPendingData() const {
  for (const StreamBuffer* in : inputs_) {
    if (in->data_size() > 0) return true;
  }
  return false;
}

void Operator::SaveState(StateWriter& w) const {
  w.U64(stats_.data_in);
  w.U64(stats_.punctuation_in);
  w.U64(stats_.data_out);
  w.U64(stats_.punctuation_out);
  w.U64(stats_.steps);
}

void Operator::LoadState(StateReader& r) {
  stats_.data_in = r.U64();
  stats_.punctuation_in = r.U64();
  stats_.data_out = r.U64();
  stats_.punctuation_out = r.U64();
  stats_.steps = r.U64();
}

std::string Operator::ToString() const {
  return StrFormat("%s(#%d)", name_.c_str(), id_);
}

Tuple Operator::TakeInput(int index) {
  Tuple tuple = input(index)->Pop();
  if (tuple.is_data()) {
    ++stats_.data_in;
  } else {
    ++stats_.punctuation_in;
  }
  return tuple;
}

void Operator::Emit(Tuple tuple) {
  if (tuple.is_data()) {
    ++stats_.data_out;
  } else {
    ++stats_.punctuation_out;
  }
  DSMS_CHECK_GT(num_outputs(), 0);
  // Clone for all but the last output so the common single-output case moves.
  for (int i = 0; i < num_outputs() - 1; ++i) {
    outputs_[static_cast<size_t>(i)]->Push(tuple);
  }
  outputs_.back()->Push(std::move(tuple));
}

void Operator::EmitTo(int index, Tuple tuple) {
  if (tuple.is_data()) {
    ++stats_.data_out;
  } else {
    ++stats_.punctuation_out;
  }
  output(index)->Push(std::move(tuple));
}

bool AnyOutputNonEmpty(const Operator& op) {
  for (int i = 0; i < op.num_outputs(); ++i) {
    if (!op.output(i)->empty()) return true;
  }
  return false;
}

}  // namespace dsms
