#ifndef DSMS_OPERATORS_MULTIWAY_JOIN_H_
#define DSMS_OPERATORS_MULTIWAY_JOIN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/tuple.h"
#include "operators/iwp_operator.h"
#include "operators/operator.h"
#include "storage/state_store.h"

namespace dsms {

/// N-ary symmetric window join (MJoin-style), the multi-way generalization
/// the paper defers with "we omit here the discussion of multi-way joins
/// ... whose treatment is however similar to that of binary joins"
/// (Section 2).
///
/// Evaluation semantics (standard MJoin): each input i keeps a window
/// buffer of duration w_i; when a data tuple arrives on input i at
/// timestamp τ (selected by the same TSM / relaxed-`more` machinery as the
/// binary join), it probes the other windows, and every combination of one
/// stored tuple per other input that (a) lies within the band of the fresh
/// tuple — stored.ts >= τ − w_stored (the fresh tuple is always the newest,
/// because ordered execution consumes in global timestamp order) — and (b)
/// satisfies the predicate, yields a result stamped τ. Because every future
/// fresh tuple has timestamp >= τ, all windows can be pruned below
/// τ − w_j.
///
/// The predicate receives the full tuple vector in input order (the fresh
/// tuple occupying its own slot); null means cross product. EquiJoin(field)
/// builds the common all-inputs-share-a-key predicate.
///
/// Punctuation is absorbed greedily, prunes every window via the operator's
/// global bound, and is forwarded as a deduplicated watermark — Figure 6
/// lifted to N inputs. Output payload: concatenation of all matched tuples'
/// values in input order. Unordered (latent) mode stamps on consumption
/// like the binary join.
///
/// Window state lives in per-input time-partitioned StateTables
/// (storage/state_store.h): a declared equi field hash-indexes every window
/// so probes visit only same-key rows, and a configured StateStore spills
/// cold window blocks to disk under memory pressure.
///
/// Probe order is chosen at runtime: the join tracks, per input, the
/// average number of rows each probe of that input's window delivers, and
/// every 16 absorbed punctuations re-sorts the probe order most-selective
/// (fewest rows per probe) first, shrinking the intermediate-match fan-out
/// the way MJoin reorders probe sequences by selectivity. The schedule is a
/// pure function of consumed input, so runs stay deterministic; per-match
/// output (slot order, payload) is unaffected — only the enumeration order
/// of distinct match combinations can change. set_adaptive(false) pins the
/// static input order 0..N−1 (baseline for benchmarks).
class MultiWayJoin : public IwpOperator {
 public:
  using Predicate =
      std::function<bool(const std::vector<const Tuple*>& match)>;

  /// `windows[i]` is input i's retention duration; its size fixes the
  /// number of inputs (>= 2, enforced at validation).
  MultiWayJoin(std::string name, std::vector<Duration> windows,
               Predicate predicate, bool ordered = true);

  /// All inputs carry the same value at position `field`.
  static Predicate EquiJoin(int field);

  /// Typing contract for an EquiJoin predicate: declares the key field so
  /// QueryGraph::Validate can check it on every input schema and the window
  /// tables can hash-index it. Must be called before any tuple is
  /// processed.
  void set_equi_field(int field);

  /// Runtime probe-order adaptation (default on); see class comment.
  void set_adaptive(bool adaptive) { adaptive_ = adaptive; }

  /// Output schema = concatenation of all input schemas (Concat pairwise);
  /// validates the declared key field against every known input schema.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  int min_inputs() const override {
    return static_cast<int>(window_durations_.size());
  }
  int max_inputs() const override {
    return static_cast<int>(window_durations_.size());
  }
  bool stamps_latent() const override { return !ordered(); }

  /// Attaches the graph's spill-capable state store to every window table.
  void BindStateStore(StateStore* store) override;

  StepResult Step(ExecContext& ctx) override;

  size_t window_size(int input) const;
  size_t total_window_size() const;
  uint64_t matches_emitted() const { return matches_emitted_; }

  /// Window state table of `input`, for tests and metrics.
  const StateTable& state_table(int input) const;

  /// Current probe order (input indexes, probed first to last).
  const std::vector<int>& probe_order() const { return probe_order_; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  StepResult StepUnordered(ExecContext& ctx);

  void ProcessData(int input, Tuple tuple);
  /// Recursively extends `match` across probe_order_[depth..]; the fresh
  /// input's slot is filled directly; emits on completion.
  void ProbeRecursive(size_t depth, int fresh_input, const Tuple& fresh,
                      std::vector<const Tuple*>* match);
  void EmitMatch(const std::vector<const Tuple*>& match, const Tuple& fresh);
  /// Drops tuples of window `input` older than bound − w_input, where
  /// `bound` is a lower bound on every future fresh tuple's timestamp.
  void ExpireWindow(int input, Timestamp bound);
  void ExpireAllWindows(Timestamp bound);
  /// Re-sorts probe_order_ by observed rows-per-probe, cheapest first.
  void MaybeReorderProbes();
  Duration TakeStorageStall();

  std::vector<Duration> window_durations_;
  Predicate predicate_;
  StateStore* store_ = nullptr;
  int equi_field_ = -1;
  bool adaptive_ = true;
  /// deque: StateTable is neither copyable nor movable.
  std::deque<StateTable> tables_;
  std::vector<int> probe_order_;
  /// Probe-cost observations driving the adaptive order.
  std::vector<uint64_t> probe_uses_;
  std::vector<uint64_t> probe_rows_;
  uint64_t puncts_seen_ = 0;
  uint64_t matches_emitted_ = 0;
  int next_unordered_input_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_MULTIWAY_JOIN_H_
