#ifndef DSMS_OPERATORS_MULTIWAY_JOIN_H_
#define DSMS_OPERATORS_MULTIWAY_JOIN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/tuple.h"
#include "operators/iwp_operator.h"
#include "operators/operator.h"

namespace dsms {

/// N-ary symmetric window join (MJoin-style), the multi-way generalization
/// the paper defers with "we omit here the discussion of multi-way joins
/// ... whose treatment is however similar to that of binary joins"
/// (Section 2).
///
/// Evaluation semantics (standard MJoin): each input i keeps a window
/// buffer of duration w_i; when a data tuple arrives on input i at
/// timestamp τ (selected by the same TSM / relaxed-`more` machinery as the
/// binary join), it probes the other windows, and every combination of one
/// stored tuple per other input that (a) lies within the band of the fresh
/// tuple — stored.ts >= τ − w_stored (the fresh tuple is always the newest,
/// because ordered execution consumes in global timestamp order) — and (b)
/// satisfies the predicate, yields a result stamped τ. Because every future
/// fresh tuple has timestamp >= τ, all windows can be pruned below
/// τ − w_j.
///
/// The predicate receives the full tuple vector in input order (the fresh
/// tuple occupying its own slot); null means cross product. EquiJoin(field)
/// builds the common all-inputs-share-a-key predicate.
///
/// Punctuation is absorbed greedily, prunes every window via the operator's
/// global bound, and is forwarded as a deduplicated watermark — Figure 6
/// lifted to N inputs. Output payload: concatenation of all matched tuples'
/// values in input order. Unordered (latent) mode stamps on consumption
/// like the binary join.
class MultiWayJoin : public IwpOperator {
 public:
  using Predicate =
      std::function<bool(const std::vector<const Tuple*>& match)>;

  /// `windows[i]` is input i's retention duration; its size fixes the
  /// number of inputs (>= 2, enforced at validation).
  MultiWayJoin(std::string name, std::vector<Duration> windows,
               Predicate predicate, bool ordered = true);

  /// All inputs carry the same value at position `field`.
  static Predicate EquiJoin(int field);

  /// Optional typing contract for an EquiJoin predicate: declares the key
  /// field so QueryGraph::Validate can check it on every input schema.
  void set_equi_field(int field) { equi_field_ = field; }

  /// Output schema = concatenation of all input schemas (Concat pairwise);
  /// validates the declared key field against every known input schema.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  int min_inputs() const override {
    return static_cast<int>(window_durations_.size());
  }
  int max_inputs() const override {
    return static_cast<int>(window_durations_.size());
  }
  bool stamps_latent() const override { return !ordered(); }

  StepResult Step(ExecContext& ctx) override;

  size_t window_size(int input) const;
  size_t total_window_size() const;
  uint64_t matches_emitted() const { return matches_emitted_; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  StepResult StepUnordered(ExecContext& ctx);

  void ProcessData(int input, Tuple tuple);
  /// Recursively extends `match` across inputs != `fresh_input`; emits on
  /// completion.
  void ProbeRecursive(int input, int fresh_input, const Tuple& fresh,
                      std::vector<const Tuple*>* match);
  void EmitMatch(const std::vector<const Tuple*>& match, const Tuple& fresh);
  /// Drops tuples of window `input` older than bound − w_input, where
  /// `bound` is a lower bound on every future fresh tuple's timestamp.
  void ExpireWindow(int input, Timestamp bound);
  void ExpireAllWindows(Timestamp bound);
  bool PairJoinable(int fresh_input, Timestamp fresh_ts, int stored_input,
                    Timestamp stored_ts) const;

  std::vector<Duration> window_durations_;
  Predicate predicate_;
  int equi_field_ = -1;
  std::vector<std::deque<Tuple>> windows_;
  uint64_t matches_emitted_ = 0;
  int next_unordered_input_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_MULTIWAY_JOIN_H_
