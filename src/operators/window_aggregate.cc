#include "operators/window_aggregate.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/column_batch.h"
#include "core/schema.h"
#include "core/value.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

}  // namespace

const char* AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "unknown";
}

WindowAggregate::WindowAggregate(std::string name, AggKind kind, int field,
                                 Duration window, Duration slide)
    : Operator(std::move(name)),
      kind_(kind),
      field_(field),
      window_(window),
      slide_(slide) {
  DSMS_CHECK_GT(window, 0);
  DSMS_CHECK_GT(slide, 0);
  DSMS_CHECK_LE(slide, window);
}

Result<std::optional<Schema>> WindowAggregate::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (!inputs.empty() && inputs[0].has_value() && kind_ != AggKind::kCount) {
    DSMS_RETURN_IF_ERROR(CheckFieldAccess(*inputs[0], field_,
                                          /*require_numeric=*/true, name()));
  }
  return std::optional<Schema>(Schema{{"window_start", ValueType::kInt64},
                                      {AggKindToString(kind_),
                                       ValueType::kDouble}});
}

int64_t WindowAggregate::WindowIndexLow(Timestamp ts) const {
  // Smallest k with k*slide + window > ts.
  return FloorDiv(ts - window_, slide_) + 1;
}

int64_t WindowAggregate::WindowIndexHigh(Timestamp ts) const {
  // Largest k with k*slide <= ts.
  return FloorDiv(ts, slide_);
}

void WindowAggregate::Accumulate(const Tuple& tuple) {
  Timestamp ts = tuple.timestamp();
  double v = kind_ == AggKind::kCount ? 0.0 : tuple.value(field_).AsDouble();
  for (int64_t k = WindowIndexLow(ts); k <= WindowIndexHigh(ts); ++k) {
    if (k < next_emit_k_ && first_seen_) continue;  // Window already closed.
    Accumulator& acc = accumulators_[k];
    if (acc.count == 0) {
      acc.min = v;
      acc.max = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
    ++acc.count;
    acc.sum += v;
  }
}

void WindowAggregate::EmitWindow(int64_t k, const Accumulator& acc) {
  if (acc.count == 0 &&
      (kind_ == AggKind::kAvg || kind_ == AggKind::kMin ||
       kind_ == AggKind::kMax)) {
    return;
  }
  double value = 0.0;
  switch (kind_) {
    case AggKind::kCount:
      value = static_cast<double>(acc.count);
      break;
    case AggKind::kSum:
      value = acc.sum;
      break;
    case AggKind::kAvg:
      value = acc.sum / static_cast<double>(acc.count);
      break;
    case AggKind::kMin:
      value = acc.min;
      break;
    case AggKind::kMax:
      value = acc.max;
      break;
  }
  Timestamp start = k * slide_;
  Timestamp end = start + window_;
  std::vector<Value> payload;
  payload.emplace_back(static_cast<int64_t>(start));
  payload.emplace_back(value);
  Tuple result = Tuple::MakeData(end, std::move(payload));
  // Latency measured downstream = emission delay past the window's end.
  result.set_arrival_time(end);
  ++windows_emitted_;
  Emit(std::move(result));
}

void WindowAggregate::CloseWindowsUpTo(Timestamp bound) {
  if (!first_seen_) return;
  // Window k closes when k*slide + window <= bound.
  int64_t closable_end = FloorDiv(bound - window_, slide_);
  while (next_emit_k_ <= closable_end) {
    auto it = accumulators_.find(next_emit_k_);
    if (it != accumulators_.end()) {
      EmitWindow(next_emit_k_, it->second);
      accumulators_.erase(it);
    } else {
      EmitWindow(next_emit_k_, Accumulator{});
    }
    ++next_emit_k_;
  }
}

StepResult WindowAggregate::Step(ExecContext& ctx) {
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    Timestamp ts;
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      ts = tuple.timestamp();
    } else {
      result.processed_data = true;
      if (!tuple.has_timestamp()) tuple.set_timestamp(ctx.now());
      ts = tuple.timestamp();
    }
    if (!first_seen_) {
      first_seen_ = true;
      next_emit_k_ = WindowIndexLow(ts);
    }
    if (tuple.is_data()) Accumulate(tuple);
    bound_ = std::max(bound_, ts);
    CloseWindowsUpTo(bound_);
    if (tuple.is_punctuation()) {
      // Future outputs carry timestamps >= the next window's end; propagate
      // that (stronger) bound downstream, deduplicated.
      Timestamp next_end = next_emit_k_ * slide_ + window_;
      if (next_end > last_punct_out_) {
        last_punct_out_ = next_end;
        Emit(Tuple::MakePunctuation(next_end));
      }
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void WindowAggregate::ProcessBatch(ColumnBatch& batch, ExecContext& ctx) {
  const size_t n = batch.size();
  NoteBatchInput(n);
  const double* column =
      kind_ == AggKind::kCount ? nullptr : batch.NumericColumn(field_);
  const bool columnar = batch.all_timestamped() &&
                        (kind_ == AggKind::kCount || column != nullptr);
  if (!columnar) {
    // Row-wise reference loop: latent rows need stamping, or the field is
    // not extractable as a numeric column.
    for (size_t i = 0; i < n; ++i) {
      Tuple& row = batch.mutable_row(i);
      if (!row.has_timestamp()) row.set_timestamp(ctx.now());
      const Timestamp ts = row.timestamp();
      if (!first_seen_) {
        first_seen_ = true;
        next_emit_k_ = WindowIndexLow(ts);
      }
      Accumulate(row);
      if (ts > bound_) bound_ = ts;
      // CloseWindowsUpTo's loop runs iff next_emit_k_*slide + window <=
      // bound; hoisting that test keeps the per-row cost of a
      // window-interior tuple at one compare instead of a FloorDiv + call.
      if (bound_ >= next_emit_k_ * slide_ + window_) CloseWindowsUpTo(bound_);
    }
    return;
  }
  // Columnar path: the timestamp and value columns drive the whole loop.
  // The dominant row lands solely in the *current* window (next_emit_k_),
  // so its accumulator is cached and the row costs two timestamp compares
  // plus the arithmetic — no FloorDiv, no map lookup, no Tuple chase. Any
  // row outside the cached band (window transition, overlap region of a
  // sliding window, late or ahead-of-bound data) takes the general path,
  // which also decides window closes. A cache hit can never close a
  // window: it accumulates into next_emit_k_ itself, whose end the bound
  // cannot have reached (loop invariant: bound_ < next_emit_k_*slide +
  // window at row entry).
  const Timestamp* ts_column = batch.timestamps().data();
  Accumulator* cached = nullptr;
  Timestamp cached_begin = 0;  // [begin, end): ts range whose ONLY window
  Timestamp cached_end = 0;    // is next_emit_k_
  for (size_t i = 0; i < n; ++i) {
    const Timestamp ts = ts_column[i];
    const double v = column != nullptr ? column[i] : 0.0;
    if (cached != nullptr && ts >= cached_begin && ts < cached_end) {
      if (cached->count == 0) {
        cached->min = v;
        cached->max = v;
      } else {
        cached->min = std::min(cached->min, v);
        cached->max = std::max(cached->max, v);
      }
      ++cached->count;
      cached->sum += v;
      if (ts > bound_) bound_ = ts;
      continue;
    }
    if (!first_seen_) {
      first_seen_ = true;
      next_emit_k_ = WindowIndexLow(ts);
    }
    Accumulate(batch.row(i));
    if (ts > bound_) bound_ = ts;
    if (bound_ >= next_emit_k_ * slide_ + window_) {
      CloseWindowsUpTo(bound_);  // Erases map nodes: drop the cache.
      cached = nullptr;
    }
    // (Re)establish the cache when this row's one-and-only window is the
    // current one. The single-window band of window k is
    // [max(k*slide, (k-1)*slide + window), min((k+1)*slide, k*slide +
    // window)) — the whole window for tumbling, the non-overlap core when
    // slide < window < 2*slide, empty otherwise (cache never engages).
    const int64_t k = next_emit_k_;
    const Timestamp begin = std::max(k * slide_, (k - 1) * slide_ + window_);
    const Timestamp end = std::min((k + 1) * slide_, k * slide_ + window_);
    if (ts >= begin && ts < end) {
      cached = &accumulators_[k];
      cached_begin = begin;
      cached_end = end;
    }
  }
}

void WindowAggregate::SaveState(StateWriter& w) const {
  Operator::SaveState(w);
  w.U32(static_cast<uint32_t>(accumulators_.size()));
  for (const auto& [k, acc] : accumulators_) {
    w.I64(k);
    w.U64(acc.count);
    w.F64(acc.sum);
    w.F64(acc.min);
    w.F64(acc.max);
  }
  w.Bool(first_seen_);
  w.I64(next_emit_k_);
  w.Ts(bound_);
  w.Ts(last_punct_out_);
  w.U64(windows_emitted_);
}

void WindowAggregate::LoadState(StateReader& r) {
  Operator::LoadState(r);
  accumulators_.clear();
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int64_t k = r.I64();
    Accumulator acc;
    acc.count = r.U64();
    acc.sum = r.F64();
    acc.min = r.F64();
    acc.max = r.F64();
    accumulators_[k] = acc;
  }
  first_seen_ = r.Bool();
  next_emit_k_ = r.I64();
  bound_ = r.Ts();
  last_punct_out_ = r.Ts();
  windows_emitted_ = r.U64();
}

}  // namespace dsms
