#include "operators/map.h"

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/column_batch.h"
#include "core/value.h"

namespace dsms {

MapOp::MapOp(std::string name, Transform transform)
    : Operator(std::move(name)), transform_(std::move(transform)) {
  DSMS_CHECK(transform_ != nullptr);
}

StepResult MapOp::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));
    } else {
      result.processed_data = true;
      tuple.mutable_values() = transform_(tuple.values());
      Emit(std::move(tuple));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void MapOp::ProcessBatch(ColumnBatch& batch, ExecContext& ctx) {
  (void)ctx;
  const size_t n = batch.size();
  NoteBatchInput(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple tuple = batch.TakeRow(i);
    tuple.mutable_values() = transform_(tuple.values());
    Emit(std::move(tuple));
  }
}

CopyOp::CopyOp(std::string name) : Operator(std::move(name)) {}

StepResult CopyOp::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
    } else {
      result.processed_data = true;
    }
    Emit(std::move(tuple));
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

}  // namespace dsms
