#ifndef DSMS_OPERATORS_SPLIT_H_
#define DSMS_OPERATORS_SPLIT_H_

#include <functional>
#include <string>
#include <vector>

#include "core/tuple.h"
#include "operators/operator.h"

namespace dsms {

/// Content-based router: output k receives the data tuples satisfying the
/// k-th predicate (a tuple may match several outputs, or none and be
/// dropped). Punctuation is replicated to every output — each branch's
/// timestamp lower bound is the input's bound regardless of routing, so
/// downstream IWP operators on *all* branches stay live (the non-IWP
/// propagation rule of Section 4.2 applied per branch).
///
/// The number of predicates fixes the number of outputs; they must be
/// connected in the same order.
class Split : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Split(std::string name, std::vector<Predicate> predicates);

  int min_outputs() const override {
    return static_cast<int>(predicates_.size());
  }
  int max_outputs() const override {
    return static_cast<int>(predicates_.size());
  }

  StepResult Step(ExecContext& ctx) override;

 private:
  std::vector<Predicate> predicates_;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_SPLIT_H_
