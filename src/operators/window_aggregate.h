#ifndef DSMS_OPERATORS_WINDOW_AGGREGATE_H_
#define DSMS_OPERATORS_WINDOW_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/time.h"
#include "core/tuple.h"
#include "operators/operator.h"

namespace dsms {

/// Aggregate functions supported by WindowAggregate.
enum class AggKind {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
};

const char* AggKindToString(AggKind kind);

/// Time-window aggregation over a single stream. Windows are aligned:
/// window k covers [k*slide, k*slide + window); slide == window gives
/// tumbling windows, slide < window sliding (overlapping) windows.
///
/// A window's result can only be emitted once the input guarantees that no
/// tuple below the window's end will ever arrive. Data tuples advance that
/// guarantee by their own timestamps — but so does punctuation, which is why
/// ETS matters here too: on a sparse stream, a window's result would
/// otherwise be held back until the *next* data tuple arrives (possibly much
/// later). This operator is the substrate for the `abl_aggregate` ablation.
///
/// Output tuples carry payload [window_start:int64, value:double], timestamp
/// = window end, and arrival_time = window end — so the latency recorded at
/// a sink equals the *emission delay* past the earliest instant the result
/// was semantically available.
///
/// Empty windows emit 0 for kCount/kSum and are skipped for kAvg/kMin/kMax.
/// Latent input tuples are stamped on the fly with the virtual time.
class WindowAggregate : public Operator {
 public:
  /// `field` is the value index aggregated (ignored for kCount).
  WindowAggregate(std::string name, AggKind kind, int field, Duration window,
                  Duration slide);

  StepResult Step(ExecContext& ctx) override;

  /// Batch kernel: per-row accumulation in arrival order with the
  /// window-close check hoisted to a comparison against the next window
  /// end (the common row neither opens nor closes a window). Punctuation
  /// handling stays on the scalar path — batches hold data rows only.
  bool SupportsBatch() const override { return true; }
  void ProcessBatch(ColumnBatch& batch, ExecContext& ctx) override;

  /// Latent inputs are stamped on the fly (Section 5).
  bool stamps_latent() const override { return true; }

  /// Output schema: (window_start:int64, value:double); validates the
  /// aggregated field (numeric, unless counting) against the input schema.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  /// Whether empty windows produce a result (count 0 / sum 0). For these
  /// kinds every window boundary is a deliverable, so once the stream has
  /// started the aggregate perpetually awaits the next boundary.
  bool emits_empty_windows() const {
    return kind_ == AggKind::kCount || kind_ == AggKind::kSum;
  }

  /// Due (or data-holding) windows are released by a fresh upstream bound,
  /// so the aggregate participates in on-demand ETS (extension; the paper
  /// covers IWP operators only).
  bool WantsEts() const override {
    if (!first_seen_) return false;
    return emits_empty_windows() || !accumulators_.empty();
  }

  /// End of the next window whose emission the bound would enable: the next
  /// unemitted window for count/sum, the first data-holding window for
  /// kinds that skip empty windows.
  Timestamp EtsReleaseBound() const override {
    if (!WantsEts()) return kMaxTimestamp;
    if (!emits_empty_windows()) {
      return accumulators_.begin()->first * slide_ + window_;
    }
    return next_emit_k_ * slide_ + window_;
  }

  Duration window() const { return window_; }
  Duration slide() const { return slide_; }
  uint64_t windows_emitted() const { return windows_emitted_; }
  size_t open_windows() const { return accumulators_.size(); }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  struct Accumulator {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Window index of a timestamp (floor division, correct for negatives).
  int64_t WindowIndexLow(Timestamp ts) const;
  int64_t WindowIndexHigh(Timestamp ts) const;

  void Accumulate(const Tuple& tuple);
  /// Emits every window whose end is <= bound.
  void CloseWindowsUpTo(Timestamp bound);
  void EmitWindow(int64_t k, const Accumulator& acc);

  AggKind kind_;
  int field_;
  Duration window_;
  Duration slide_;
  std::map<int64_t, Accumulator> accumulators_;
  bool first_seen_ = false;
  int64_t next_emit_k_ = 0;
  Timestamp bound_ = kMinTimestamp;
  Timestamp last_punct_out_ = kMinTimestamp;
  uint64_t windows_emitted_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_WINDOW_AGGREGATE_H_
