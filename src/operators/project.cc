#include "operators/project.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/strings.h"
#include "core/column_batch.h"
#include "core/value.h"

namespace dsms {

Project::Project(std::string name, std::vector<int> keep_indices)
    : Operator(std::move(name)), keep_indices_(std::move(keep_indices)) {}

Result<std::optional<Schema>> Project::DeriveSchema(
    const std::vector<std::optional<Schema>>& inputs) const {
  if (inputs.empty() || !inputs[0].has_value()) {
    return std::optional<Schema>();
  }
  const Schema& in = *inputs[0];
  std::vector<Field> fields;
  fields.reserve(keep_indices_.size());
  for (int idx : keep_indices_) {
    if (idx < 0 || idx >= in.num_fields()) {
      return InvalidArgumentError(StrFormat(
          "%s: projected field %d out of bounds for input schema %s",
          name().c_str(), idx, in.ToString().c_str()));
    }
    fields.push_back(in.field(idx));
  }
  return std::optional<Schema>(Schema(std::move(fields)));
}

StepResult Project::Step(ExecContext& ctx) {
  (void)ctx;
  ++stats_.steps;
  StepResult result;
  if (!input(0)->empty()) {
    Tuple tuple = TakeInput(0);
    if (tuple.is_punctuation()) {
      result.processed_punctuation = true;
      Emit(std::move(tuple));
    } else {
      result.processed_data = true;
      std::vector<Value> projected;
      projected.reserve(keep_indices_.size());
      for (int idx : keep_indices_) projected.push_back(tuple.value(idx));
      tuple.mutable_values() = std::move(projected);
      Emit(std::move(tuple));
    }
  }
  result.more = !input(0)->empty();
  result.yield = AnyOutputNonEmpty(*this);
  return result;
}

void Project::ProcessBatch(ColumnBatch& batch, ExecContext& ctx) {
  (void)ctx;
  const size_t n = batch.size();
  NoteBatchInput(n);
  std::vector<Value> projected;
  for (size_t i = 0; i < n; ++i) {
    Tuple tuple = batch.TakeRow(i);
    projected.clear();
    projected.reserve(keep_indices_.size());
    for (int idx : keep_indices_) projected.push_back(tuple.value(idx));
    tuple.mutable_values() = std::move(projected);
    Emit(std::move(tuple));
  }
}

}  // namespace dsms
