#ifndef DSMS_OPERATORS_FILTER_H_
#define DSMS_OPERATORS_FILTER_H_

#include <functional>
#include <string>

#include "common/random.h"
#include "core/tuple.h"
#include "operators/operator.h"

namespace dsms {

/// Selection: forwards data tuples satisfying a predicate, drops the rest.
/// Non-IWP: punctuation tuples pass through unchanged (Section 4.2).
class Filter : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Filter(std::string name, Predicate predicate);

  /// Optional typing contract for the (otherwise opaque) predicate: the
  /// predicate reads `field` numerically. QueryGraph::Validate then checks
  /// bounds and numeric type against the input schema. Used by DSL-built
  /// comparison filters.
  void set_required_numeric_field(int field) {
    required_numeric_field_ = field;
  }

  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  StepResult Step(ExecContext& ctx) override;

 private:
  Predicate predicate_;
  int required_numeric_field_ = -1;
};

/// Selection with a Bernoulli predicate: each data tuple independently
/// passes with probability `selectivity`. This is the paper's experimental
/// selection operator ("low selectivity, 95% tuples pass through").
/// Deterministic given the seed.
class RandomDropFilter : public Operator {
 public:
  RandomDropFilter(std::string name, double selectivity, uint64_t seed);

  double selectivity() const { return selectivity_; }

  StepResult Step(ExecContext& ctx) override;

  /// The RNG position is engine-behavior state: replay after recovery must
  /// draw the same pass/drop sequence the original run would have.
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  double selectivity_;
  Pcg32 rng_;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_FILTER_H_
