#ifndef DSMS_OPERATORS_FILTER_H_
#define DSMS_OPERATORS_FILTER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/tuple.h"
#include "operators/operator.h"

namespace dsms {

/// Numeric comparison operators a Filter can declare for its vectorized
/// batch kernel (mirrors the plan DSL's op= values).
enum class FilterCmp {
  kLt = 0,
  kLe = 1,
  kGt = 2,
  kGe = 3,
  kEq = 4,
  kNe = 5,
};

/// Selection: forwards data tuples satisfying a predicate, drops the rest.
/// Non-IWP: punctuation tuples pass through unchanged (Section 4.2).
class Filter : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  Filter(std::string name, Predicate predicate);

  /// Optional typing contract for the (otherwise opaque) predicate: the
  /// predicate reads `field` numerically. QueryGraph::Validate then checks
  /// bounds and numeric type against the input schema. Used by DSL-built
  /// comparison filters.
  void set_required_numeric_field(int field) {
    required_numeric_field_ = field;
  }

  /// Declares that the predicate is exactly `value(field) <cmp> value` over
  /// AsDouble coercion (the DSL comparison filters). The batch kernel then
  /// runs a tight selection loop over the extracted numeric column instead
  /// of calling the std::function per row; the predicate remains
  /// authoritative for the scalar path and for rows the column view cannot
  /// represent.
  void set_compare_spec(int field, FilterCmp cmp, double value) {
    set_required_numeric_field(field);
    compare_field_ = field;
    compare_cmp_ = cmp;
    compare_value_ = value;
  }

  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  StepResult Step(ExecContext& ctx) override;

  bool SupportsBatch() const override { return true; }
  void ProcessBatch(ColumnBatch& batch, ExecContext& ctx) override;

 private:
  Predicate predicate_;
  int required_numeric_field_ = -1;
  /// Vectorizable comparison (set_compare_spec); compare_field_ < 0 = none.
  int compare_field_ = -1;
  FilterCmp compare_cmp_ = FilterCmp::kLt;
  double compare_value_ = 0.0;
  /// Selection-vector scratch reused across batches (no steady-state
  /// allocation).
  std::vector<uint8_t> selection_;
};

/// Selection with a Bernoulli predicate: each data tuple independently
/// passes with probability `selectivity`. This is the paper's experimental
/// selection operator ("low selectivity, 95% tuples pass through").
/// Deterministic given the seed.
class RandomDropFilter : public Operator {
 public:
  RandomDropFilter(std::string name, double selectivity, uint64_t seed);

  double selectivity() const { return selectivity_; }

  StepResult Step(ExecContext& ctx) override;

  /// Batch kernel: one Bernoulli draw per row, in arrival order — the RNG
  /// consumes exactly the sequence the scalar path would.
  bool SupportsBatch() const override { return true; }
  void ProcessBatch(ColumnBatch& batch, ExecContext& ctx) override;

  /// The RNG position is engine-behavior state: replay after recovery must
  /// draw the same pass/drop sequence the original run would have.
  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  double selectivity_;
  Pcg32 rng_;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_FILTER_H_
