#ifndef DSMS_OPERATORS_MAP_H_
#define DSMS_OPERATORS_MAP_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/inlined_values.h"
#include "core/schema.h"
#include "core/value.h"
#include "operators/operator.h"

namespace dsms {

/// Stateless per-tuple transformation of the payload; timestamp, lineage and
/// arrival time are preserved (non-IWP production rule of Section 2: output
/// timestamp equals input timestamp). Punctuation passes through.
class MapOp : public Operator {
 public:
  using Transform = std::function<InlinedValues(const InlinedValues&)>;

  MapOp(std::string name, Transform transform);

  /// The transform is opaque, so the output schema is unknown unless
  /// declared here.
  void set_output_schema(Schema schema) { output_schema_ = std::move(schema); }

  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override {
    (void)inputs;
    return output_schema_;
  }

  StepResult Step(ExecContext& ctx) override;

  bool SupportsBatch() const override { return true; }
  void ProcessBatch(ColumnBatch& batch, ExecContext& ctx) override;

 private:
  Transform transform_;
  std::optional<Schema> output_schema_;
};

/// Copies every input tuple to all of its output arcs — the explicit fan-out
/// node that keeps every StreamBuffer single-consumer.
class CopyOp : public Operator {
 public:
  explicit CopyOp(std::string name);

  int max_outputs() const override { return 1 << 20; }  // fan-out

  StepResult Step(ExecContext& ctx) override;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_MAP_H_
