#ifndef DSMS_OPERATORS_PROJECT_H_
#define DSMS_OPERATORS_PROJECT_H_

#include <string>
#include <vector>

#include "operators/operator.h"

namespace dsms {

/// Projection: keeps the listed value positions of each data tuple, in the
/// given order (duplicates allowed). Punctuation passes through.
class Project : public Operator {
 public:
  Project(std::string name, std::vector<int> keep_indices);

  const std::vector<int>& keep_indices() const { return keep_indices_; }

  /// Output schema = the selected fields, in order; errors on an index out
  /// of the (known) input schema's bounds.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  StepResult Step(ExecContext& ctx) override;

  bool SupportsBatch() const override { return true; }
  void ProcessBatch(ColumnBatch& batch, ExecContext& ctx) override;

 private:
  std::vector<int> keep_indices_;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_PROJECT_H_
