#ifndef DSMS_OPERATORS_SOURCE_H_
#define DSMS_OPERATORS_SOURCE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"
#include "operators/operator.h"

namespace dsms {

class FrontierTracker;

/// A source node of the query graph (Section 3). Its single output arc is
/// the stream's input buffer, filled from outside the executor — in Stream
/// Mill by input wrappers, here by the simulation's arrival processes via
/// `Ingest*`. Sources are not scheduled; `Step` only reports whether the
/// input buffer holds tuples.
///
/// Sources are also where on-demand Enabling Time-Stamps are born: when DFS
/// execution backtracks to a source whose buffer is empty while an IWP
/// operator downstream is idle-waiting, the executor calls `MakeEts(now)`
/// and pushes the resulting punctuation down the path (Sections 4, 5).
class Source : public Operator {
 public:
  /// `skew_bound` is the δ of Section 5: for externally timestamped streams,
  /// the application guarantees that a tuple's external timestamp lags the
  /// arrival wall time by at most δ. Ignored for internal/latent streams.
  Source(std::string name, int32_t stream_id, TimestampKind timestamp_kind,
         Duration skew_bound = 0);

  int min_inputs() const override { return 0; }
  int max_inputs() const override { return 0; }

  int32_t stream_id() const { return stream_id_; }
  TimestampKind timestamp_kind() const { return timestamp_kind_; }
  Duration skew_bound() const { return skew_bound_; }

  /// Granularity of internal timestamps: stamps (and internal ETS values)
  /// are truncated to multiples of `g`. Coarse granularities produce the
  /// *simultaneous tuples* of Section 4.1; default 1 (microsecond-exact).
  void set_timestamp_granularity(Duration g);
  Duration timestamp_granularity() const { return granularity_; }

  /// Declares this stream's payload schema; downstream field references are
  /// then type-checked by QueryGraph::Validate. Undeclared sources leave
  /// their subgraph untyped (no checks).
  void set_schema(Schema schema) { schema_ = std::move(schema); }
  const std::optional<Schema>& declared_schema() const { return schema_; }

  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override {
    (void)inputs;
    return schema_;
  }

  /// Sources only relay externally filled buffers.
  StepResult Step(ExecContext& ctx) override;
  bool HasWork() const override { return false; }

  /// Ingests a data tuple arriving at wall time `now`.
  ///  - internal streams: the tuple is stamped with `now`;
  ///  - latent streams:   the tuple carries no timestamp;
  ///  - external streams: use IngestExternal instead.
  void Ingest(InlinedValues values, Timestamp now);

  /// Batch relay: ingests every payload as if Ingest were called once per
  /// element, but stages the stamped tuples and hands them to the output
  /// buffer in one PushAll (one capacity check, one scheduler notification).
  void IngestBatch(std::vector<InlinedValues> payloads, Timestamp now);

  /// Ingests an externally timestamped tuple: `app_timestamp` was assigned
  /// by the producing application and must be <= now and >= the previous
  /// tuple's app timestamp (streams are ordered).
  void IngestExternal(Timestamp app_timestamp, InlinedValues values,
                      Timestamp now);

  /// Fault-injection hook: ingests a tuple stamped `app_timestamp` WITHOUT
  /// the monotonicity clamp or the promised-bound check — exactly what a
  /// misbehaving producer does (timestamp disorder, skew beyond δ). The
  /// stream's promise is never lowered; whether the out-of-order tuple
  /// survives its first arc is the attached ViolationPolicy's decision.
  /// Works for internal and external sources (latent sources carry no
  /// timestamps, so disorder cannot be expressed there).
  void IngestFaulty(Timestamp app_timestamp, InlinedValues values,
                    Timestamp now);

  /// Pushes a pre-built punctuation (used by the periodic heartbeat injector
  /// of scenario B, and by MakeEts).
  void InjectPunctuation(Timestamp timestamp);

  /// Fault-injection hook: pushes a punctuation WITHOUT the clamp that keeps
  /// honest heartbeats ordered — models duplicate or regressing punctuation
  /// from a broken upstream. Never raises the stream's promise.
  void InjectFaultyPunctuation(Timestamp timestamp);

  /// Computes an on-demand ETS for the current instant, or nullopt when no
  /// useful (strictly advancing) bound can be produced:
  ///  - internal: the current clock `now`;
  ///  - external: t + τ − δ where t is the last app timestamp, τ the time
  ///    since its arrival (no bound before the first tuple arrives);
  ///  - latent:   never (latent streams cannot idle-wait).
  std::optional<Timestamp> ComputeEts(Timestamp now) const;

  /// ComputeEts + InjectPunctuation; returns true if an ETS was emitted.
  bool EmitEts(Timestamp now);

  /// Watchdog fallback bound for a source that has gone silent (stalled or
  /// dead producer). Unlike ComputeEts, the external-stream case does not
  /// need any tuple to ever have arrived: with no pending data, every future
  /// tuple's app timestamp is > now − δ by the skew contract, so now − δ is
  /// a sound bound even from a cold start. nullopt when no strictly
  /// advancing bound exists (latent streams, or bound not past the promise).
  std::optional<Timestamp> ComputeFallbackEts(Timestamp now) const;

  /// ComputeFallbackEts + InjectPunctuation; returns true if a fallback ETS
  /// was emitted. Marks the source `degraded` and counts the emission so
  /// StatsReport can show that results past this point rely on the skew
  /// contract rather than observed data.
  bool EmitFallbackEts(Timestamp now);

  /// Largest timestamp lower bound already promised downstream (max of last
  /// data timestamp and last punctuation); ETS must advance past this.
  Timestamp promised_bound() const { return promised_bound_; }

  /// Wall time of the last producer activity (data ingest or injected
  /// punctuation); kMinTimestamp until the first. The executors' liveness
  /// watchdog compares this against its silence horizon.
  Timestamp last_activity() const { return last_activity_; }

  /// Frontier coordination service this source reports violations to
  /// (punctuation regressions, skew/disorder breaches — the faulty-ingest
  /// paths only; honest ingest never touches it). Set by the executor at
  /// construction, cleared at destruction. Null = standalone source.
  void set_frontier(FrontierTracker* frontier) { frontier_ = frontier; }
  FrontierTracker* frontier() const { return frontier_; }

  uint64_t tuples_ingested() const { return tuples_ingested_; }
  uint64_t ets_emitted() const { return ets_emitted_; }
  uint64_t watchdog_fallbacks() const { return watchdog_fallbacks_; }
  /// True once a fallback ETS was emitted on this stream: downstream output
  /// beyond that bound is derived from the skew contract, not observed data.
  bool degraded() const { return watchdog_fallbacks_ > 0; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  /// Stamps arrival metadata and checks the promised bound; does NOT push.
  void PrepareData(Tuple& tuple, Timestamp now);
  void PushData(Tuple tuple, Timestamp now);
  Tuple MakeIngestTuple(InlinedValues values, Timestamp now) const;
  Timestamp Quantize(Timestamp t) const;

  int32_t stream_id_;
  TimestampKind timestamp_kind_;
  Duration skew_bound_;
  FrontierTracker* frontier_ = nullptr;
  Duration granularity_ = 1;
  std::optional<Schema> schema_;
  uint64_t next_sequence_ = 0;
  uint64_t tuples_ingested_ = 0;
  uint64_t ets_emitted_ = 0;
  uint64_t watchdog_fallbacks_ = 0;
  Timestamp promised_bound_ = kMinTimestamp;
  Timestamp last_activity_ = kMinTimestamp;
  /// External streams: last app timestamp and its arrival wall time.
  Timestamp last_app_timestamp_ = kMinTimestamp;
  Timestamp last_arrival_wall_ = kMinTimestamp;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_SOURCE_H_
