#ifndef DSMS_OPERATORS_WINDOW_JOIN_H_
#define DSMS_OPERATORS_WINDOW_JOIN_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/time.h"
#include "core/tuple.h"
#include "operators/iwp_operator.h"
#include "operators/operator.h"
#include "storage/state_store.h"

namespace dsms {

/// Symmetric sliding-window join over two timestamp-ordered streams, with
/// the widely accepted semantics of Kang, Naughton & Viglas (ICDE'03) that
/// the paper adopts (Figure 1), extended with TSM registers and punctuation
/// handling (Figure 6):
///
///  - a left tuple `l` joins right tuples `r` with l.ts − r.ts ∈ [0, wR]
///    and, symmetrically, r joins l with r.ts − l.ts ∈ [0, wL];
///  - when `more` (relaxed) holds and the τ-head is a data tuple, probe the
///    opposite window, emit results stamped τ, insert into the own window,
///    and expire opposite-window tuples older than τ − w;
///  - when the τ-head is punctuation, consume it, use it to expire the
///    opposite window, and forward the watermark;
///  - when neither input has a data tuple at τ, only a punctuation at τ is
///    produced.
///
/// The output payload is the concatenation of the matching tuples' values;
/// output timestamp, lineage and arrival time come from the newly consumed
/// tuple (its arrival defines the result's latency).
///
/// In unordered mode (latent timestamps) the join stamps each tuple with the
/// current virtual time on consumption — latent tuples are "timestamped
/// on-the-fly by individual query operators that require timestamps"
/// (Section 5) — and never idle-waits.
///
/// Window state lives in two time-partitioned StateTables
/// (storage/state_store.h). Declared equi fields double as the tables' hash
/// keys, so probes touch only same-key rows instead of scanning the whole
/// window; when the graph configures a StateStore with a memory budget, cold
/// blocks of window state spill to disk and the join transparently works
/// over larger-than-memory windows. Probe results preserve insertion order,
/// so output is byte-identical to the historical linear-scan implementation.
class WindowJoin : public IwpOperator {
 public:
  using Predicate = std::function<bool(const Tuple& left, const Tuple& right)>;

  /// `left_window` (wL) and `right_window` (wR) are the retention durations
  /// of the left and right window buffers; must be >= 0. A null predicate
  /// means cross product within the windows.
  WindowJoin(std::string name, Duration left_window, Duration right_window,
             Predicate predicate, bool ordered = true);

  /// Predicate matching equality of left field `left_field` with right
  /// field `right_field`.
  static Predicate EquiJoin(int left_field, int right_field);

  /// Typing contract for an equi-join predicate (predicates are opaque
  /// std::functions): declares which fields the predicate compares, so
  /// QueryGraph::Validate can bounds- and type-check them — and so the
  /// window tables can hash-index stored tuples on those fields. Must be
  /// called before any tuple is processed.
  void set_equi_fields(int left_field, int right_field) {
    equi_left_field_ = left_field;
    equi_right_field_ = right_field;
    table_[0].set_key_field(left_field);
    table_[1].set_key_field(right_field);
  }

  /// Output schema = left schema ++ right schema (duplicate names prefixed
  /// "right."); validates declared equi fields when schemas are known.
  Result<std::optional<Schema>> DeriveSchema(
      const std::vector<std::optional<Schema>>& inputs) const override;

  int min_inputs() const override { return 2; }
  int max_inputs() const override { return 2; }
  /// Unordered joins stamp latent tuples with virtual time on consumption.
  bool stamps_latent() const override { return !ordered(); }

  /// Attaches the graph's spill-capable state store to both window tables.
  void BindStateStore(StateStore* store) override;

  StepResult Step(ExecContext& ctx) override;

  size_t window_size(int side) const;
  size_t peak_window_size() const { return peak_window_size_; }
  uint64_t matches_emitted() const { return matches_emitted_; }

  /// Window state table of `side` (0 left, 1 right), for tests and metrics.
  const StateTable& state_table(int side) const;

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  StepResult StepUnordered(ExecContext& ctx);

  /// Handles one data tuple from `side`: probe, emit, insert, expire.
  void ProcessData(int side, Tuple tuple);

  /// Drops tuples from window `side` that can no longer match any future
  /// tuple of the opposite stream, whose timestamps are >= `bound`.
  void ExpireWindow(int side, Timestamp bound);

  void NotePeak();

  /// Accumulated disk-stall time from both tables since the last step.
  Duration TakeStorageStall();

  Duration window_duration_[2];
  Predicate predicate_;
  int equi_left_field_ = -1;
  int equi_right_field_ = -1;
  StateTable table_[2];
  size_t peak_window_size_ = 0;
  uint64_t matches_emitted_ = 0;
  int next_unordered_input_ = 0;
};

}  // namespace dsms

#endif  // DSMS_OPERATORS_WINDOW_JOIN_H_
