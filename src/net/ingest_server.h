#ifndef DSMS_NET_INGEST_SERVER_H_
#define DSMS_NET_INGEST_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/time.h"
#include "exec/executor.h"
#include "graph/query_graph.h"
#include "metrics/order_validator.h"
#include "metrics/queue_size_tracker.h"
#include "net/ingest_clock.h"
#include "net/skew_tracker.h"
#include "net/wire_format.h"

namespace dsms {

class MetricsRegistry;
class RecoveryManager;
class Tracer;
class BufferOccupancyTracer;

struct IngestServerOptions {
  /// Listen address; port 0 binds an ephemeral port (read it back with
  /// port() after Start).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// How virtual time advances between frames (see net/ingest_clock.h).
  IngestClock::Mode clock_mode = IngestClock::Mode::kWallClock;
  /// Virtual-time horizon: Run returns once the clock reaches it. In wall
  /// mode one virtual microsecond is one real microsecond, so this is also
  /// the serve duration.
  Duration horizon = 60 * kSecond;
  /// Largest accepted frame body; a peer announcing more is dropped.
  size_t max_frame_bytes = kMaxFrameBytes;
  /// Decoded-but-undelivered frames buffered per connection before the
  /// server stops reading that socket (kernel-level TCP backpressure).
  size_t max_pending_frames = 1024;
  /// Longest single poll(2) sleep, in milliseconds of real time. Bounds how
  /// stale the wall-mode virtual clock can get while fully idle.
  int poll_granularity_ms = 20;
  /// Wall-clock cap on the whole Run call; 0 = none. A safety net for
  /// frame-driven runs whose peer stalls forever (returns DeadlineExceeded).
  Duration wall_limit = 0;
  /// Virtual time at which Run returns Aborted (chaos testing: the
  /// `crash at=` plan statement; streamets_serve turns it into an immediate
  /// _Exit so nothing flushes). 0 = never. The check sits in the run loop,
  /// so the "crash" lands between frame deliveries like a real kill.
  Timestamp crash_at = 0;
  /// Per-connection idle/read timeout in virtual time (0 = off): a peer
  /// that stays silent this long — never sent its HELLO, or went quiet
  /// without a frontier lease covering it — is closed and counted in
  /// net.idle_closes / net.conn.<id>.idle_closed. Its streams' promises
  /// are revoked from the checkpoint frontier like any disconnect.
  Duration idle_timeout = 0;

  // --- ingest-plane hardening (wire-level chaos; docs/network_ingest.md) ---

  /// Virtual-time deadline for a brand-new connection to show signs of life
  /// (0 = off). Distinct from idle_timeout: this one reaps half-open peers
  /// that connect and never send a single byte — the classic port-scanner /
  /// dead-NAT connection — long before the idle sweep would bother.
  Duration handshake_deadline = 0;
  /// Cap on bytes a connection may hold in its decoder buffer (partial
  /// frames awaiting completion). 0 = 2 * max_frame_bytes. Exceeding it is
  /// a fail-stop close: a peer dripping an endless "almost frame" cannot
  /// pin memory.
  size_t max_decode_buffer_bytes = 0;
  /// Cap on bytes queued toward the peer (handshake replies in the outbox).
  /// A peer that HELLOs and then never reads its reply trips this and is
  /// closed (fail-stop) instead of growing the outbox without bound.
  size_t max_outbox_bytes = 256 * 1024;
  /// Admission control: maximum simultaneously open connections (0 = no
  /// cap). Excess peers get a best-effort kReject frame with a reason, then
  /// close; counted in net.admission_rejects.
  int max_connections = 0;
  /// Global ingest memory budget in bytes across every connection's decoder
  /// buffer, undelivered pending frames, and outbox (0 = no cap). While the
  /// footprint sits at or above the budget, new connections are rejected
  /// (kReject) rather than admitted into an OOM.
  size_t ingest_memory_budget = 0;
  /// Slow-peer floor (0 = off): minimum bytes per virtual second every open
  /// connection must sustain, measured over slow_peer_window. Falling below
  /// climbs the degradation ladder: shed -> frontier quarantine -> close; a
  /// clean window steps back down one tier (hysteresis).
  uint64_t min_bytes_per_second = 0;
  /// Measurement window for the slow-peer floor (virtual time).
  Duration slow_peer_window = kSecond;
  /// Frame-driven only: wall-clock grace after the last peer disconnects
  /// before the "every peer came and went" run exit fires. A resuming
  /// feeder mid-reconnect (chaos storms, rolling restarts) briefly leaves
  /// the server with zero open connections; without the grace the server
  /// would declare the run over and the reconnect would dial into a dead
  /// loop. 0 = exit immediately (the pre-hardening behaviour).
  Duration reconnect_grace = 200 * kMillisecond;
  /// Test shim: cap on bytes handed to one send(2) per FlushOutbox call
  /// (0 = unlimited). Forces the partial-write paths deterministically —
  /// loopback sockets otherwise accept whole handshake replies at once.
  size_t max_write_bytes = 0;
};

/// Per-connection ingest counters, exposed for metrics and tests.
struct ConnectionReport {
  int64_t id = 0;
  bool open = false;
  uint64_t frames = 0;
  uint64_t data_frames = 0;
  uint64_t punct_frames = 0;
  uint64_t bytes = 0;
  uint64_t decode_errors = 0;
  uint64_t protocol_errors = 0;
  uint64_t skew_violations = 0;
  uint64_t shed_tuples = 0;
  Duration max_skew = 0;
  /// Peer completed the HELLO handshake (a silent port-scanner never does).
  bool helloed = false;
  /// Closed by the idle sweep, not by the peer (see options.idle_timeout).
  bool idle_closed = false;
  /// Closed by the handshake deadline: connected and never sent a byte.
  bool handshake_timed_out = false;
  /// Closed fail-stop for overrunning the decode-buffer or outbox cap.
  bool overrun_closed = false;
  /// Slow-peer windows below the byte-rate floor (ladder strikes).
  uint64_t slow_strikes = 0;
  /// Current degradation tier: 0 healthy, 1 shedding, 2 quarantined,
  /// 3 closed.
  int degradation = 0;
  /// Frames dropped because the connection sat at tier >= 1.
  uint64_t degraded_shed_frames = 0;
};

/// Non-blocking poll(2) event-loop server feeding a query graph from live
/// TCP connections — the network analogue of sim/Simulation. The run loop
/// mirrors Simulation::Run exactly: deliver due frames, execute one
/// operator step, and when the engine is idle advance the virtual clock
/// (wall elapsed time in kWallClock mode, the next frame's arrival hint in
/// kFrameDriven mode). Tuples enter through the same Source::Ingest* paths
/// and the same bounded StreamBuffer/OverloadPolicy machinery as simulated
/// feeds, so every engine defense — backpressure, shedding, the liveness
/// watchdog, EtsGate fallback bounds — works unchanged on network input.
///
/// Timestamp assignment at ingest follows the source's TimestampKind:
///   - internal: stamped with the virtual arrival time (quantized by the
///     source's granularity);
///   - latent:   no timestamp;
///   - external: the frame must carry the producer's timestamp; a
///     per-connection SkewTracker checks it against the stream's declared
///     bound δ, and violating or order-breaking tuples are routed through
///     Source::IngestFaulty so the attached OrderValidator's policy — not a
///     crash — decides their fate.
///
/// Malformed bytes never abort the process: a decode error poisons that
/// connection's decoder and the connection is closed; other connections and
/// the query keep running.
class IngestServer {
 public:
  /// None of `graph`, `executor`, `clock` are owned; all must outlive the
  /// server. The executor must run over `graph` and share `clock`. Like
  /// Simulation, the constructor attaches a QueueSizeTracker and an
  /// OrderValidator to every arc (the destructor detaches).
  IngestServer(QueryGraph* graph, Executor* executor, VirtualClock* clock,
               IngestServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds and listens. After success port() returns the bound port.
  Status Start();

  uint16_t port() const { return port_; }

  /// Attaches an execution tracer (same wiring as Simulation::AttachTracer);
  /// must outlive the server, call at most once, before Run.
  void AttachTracer(Tracer* tracer);

  /// Attaches crash recovery (must outlive the server; call before Start).
  /// With a WAL-enabled manager attached the server logs every delivered
  /// frame, answers the HELLO/RESUME handshake from the manager's durable
  /// watermark, and — when checkpoints are enabled — snapshots engine state
  /// at punctuation-aligned idle points.
  void AttachRecovery(RecoveryManager* recovery);

  /// Restores the net-layer section of a checkpoint (connection history,
  /// server counters, order-validator bounds). Call before Start(); a
  /// malformed blob is a version-mismatch error.
  Status RestoreNetState(const std::string& blob);

  /// Serializes the net-layer state for a checkpoint (what RestoreNetState
  /// consumes).
  std::string SaveNetState() const;

  /// Replays the recovery manager's recovered WAL records through the
  /// normal ingest path, interleaving executor steps exactly as the live
  /// loop did so the engine lands in the pre-crash state. Call between
  /// Start() and Run().
  Status ReplayRecoveredWal();

  void set_violation_policy(ViolationPolicy policy) {
    order_validator_.set_policy(policy);
  }

  /// Serves until the virtual clock reaches options.horizon (or Stop() is
  /// called, or options.wall_limit real time passes). Requires Start().
  /// Like Simulation::Run, finishes by advancing the clock to the horizon
  /// and — when the executor's watchdog is armed — draining until idle, so
  /// fallback ETS fire for connections that went silent.
  Status Run();

  /// Makes Run return at its next iteration. Async-signal-safe.
  void Stop() { stop_ = true; }

  /// Forces a checkpoint at the current punctuation frontier regardless of
  /// the horizon gate — the graceful-shutdown "final checkpoint". No-op
  /// (OkStatus) without an attached checkpoint-enabled manager.
  Status CheckpointNow();

  const OrderValidator& order_validator() const { return order_validator_; }
  const QueueSizeTracker& queue_tracker() const { return queue_tracker_; }

  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t frames_ingested() const { return frames_ingested_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t decode_errors() const { return decode_errors_; }
  /// RESUME frames whose acknowledged sequences disagreed with the durable
  /// watermark (the connection is dropped; the feeder must re-handshake).
  uint64_t resume_rejects() const { return resume_rejects_; }
  /// Connections closed by the idle sweep (options.idle_timeout).
  uint64_t idle_closes() const { return idle_closes_; }
  /// Connections reaped by the handshake deadline (never sent a byte).
  uint64_t handshake_timeouts() const { return handshake_timeouts_; }
  /// Connections turned away at accept (connection cap / memory budget).
  uint64_t admission_rejects() const { return admission_rejects_; }
  /// Fail-stop closes for decode-buffer or outbox cap overruns.
  uint64_t overrun_closes() const { return overrun_closes_; }
  uint64_t slow_peer_sheds() const { return slow_peer_sheds_; }
  uint64_t slow_peer_quarantines() const { return slow_peer_quarantines_; }
  uint64_t slow_peer_closes() const { return slow_peer_closes_; }
  uint64_t degraded_shed_frames() const { return degraded_shed_frames_; }

  /// Snapshot of every connection ever accepted (closed ones included).
  std::vector<ConnectionReport> connection_reports() const;

  /// Publishes server-wide ("net.*") and per-connection ("net.conn.<id>.*")
  /// counters into `registry`.
  void PublishTo(MetricsRegistry* registry) const;

 private:
  /// One decoded-but-undelivered frame plus its wire footprint, so the
  /// ingest memory accounting can subtract exactly what delivery releases.
  struct PendingFrame {
    WireFrame frame;
    uint32_t wire_bytes = 0;
  };

  struct Connection {
    int fd = -1;
    int64_t id = 0;
    bool open = true;
    /// Backpressure parking: no delivery (and no reads) until the virtual
    /// clock reaches this; kMinTimestamp = not parked.
    Timestamp retry_at = kMinTimestamp;
    FrameDecoder decoder;
    SkewTracker skew;
    std::deque<PendingFrame> pending;
    /// Sum of pending[i].wire_bytes (part of the ingest memory footprint).
    size_t pending_bytes = 0;
    ConnectionReport report;
    /// Virtual time of the last bytes read (or delivery); the idle sweep
    /// compares against options.idle_timeout.
    Timestamp last_activity = kMinTimestamp;
    /// Virtual accept time — the handshake deadline anchor.
    Timestamp accepted_at = kMinTimestamp;
    /// HELLO arrived while closed connections still had undelivered frames:
    /// the resume-state reply is held back until they drain, or the durable
    /// watermark would miss frames already on the ingest runway and the
    /// resuming feeder would double-send them.
    bool hello_deferred = false;
    /// Slow-peer byte-rate window (virtual time; see min_bytes_per_second).
    Timestamp window_start = kMinTimestamp;
    uint64_t window_bytes = 0;
    /// Streams this connection delivered frames for — the promises to
    /// revoke from the frontier when the connection drops.
    std::set<int32_t> streams_fed;
    /// Bytes queued for the peer (handshake replies); flushed by PollOnce
    /// under POLLOUT with partial-write/EINTR handling.
    std::string outbox;
  };

  /// One poll(2) round: accept new connections, read and decode from every
  /// readable socket. `timeout_ms` 0 = just drain what's ready.
  Status PollOnce(int timeout_ms);
  void AcceptPending();
  void ReadFrom(Connection* conn);
  void CloseConnection(Connection* conn);
  /// Closes every open connection silent for options.idle_timeout of
  /// virtual time (no-op when the timeout is 0).
  void SweepIdle(Timestamp now);
  /// Consumes one handshake frame (kHello/kResume) at decode time — control
  /// frames never enter `pending`, the WAL, or the ingest path.
  void HandleControl(Connection* conn, const WireFrame& frame);
  /// Queues the durable-watermark (resume-state) reply and flushes it.
  void SendResumeState(Connection* conn);
  /// True while any CLOSED connection still has undelivered pending frames
  /// — the drain-before-ack gate for answering HELLOs.
  bool AnyClosedConnectionPending() const;
  /// Answers HELLOs deferred behind the drain-before-ack gate once the
  /// closed connections' runways are empty.
  void AnswerDeferredHellos();
  /// Best-effort kReject(reason) on a just-accepted fd, then close. The fd
  /// never becomes a Connection.
  void RejectConnection(int fd, const std::string& reason);
  /// Bytes currently pinned by ingest: decoder buffers + pending frames +
  /// outboxes, across all connections.
  size_t MemoryFootprint() const;
  /// One slow-peer strike: climbs the degradation ladder (shed ->
  /// quarantine -> close) one tier.
  void StrikeSlowPeer(Connection* conn);
  /// Slow-peer byte-rate windows: strike peers below the floor, relax clean
  /// ones one tier (hysteresis). Runs from SweepIdle.
  void SweepSlowPeers(Timestamp now);
  /// Fail-stop close for a resource-cap overrun.
  void CloseForOverrun(Connection* conn, const char* what, size_t used,
                       size_t cap);
  /// Writes as much of `conn->outbox` as the socket accepts (EINTR/EAGAIN
  /// aware); a hard error closes the connection.
  void FlushOutbox(Connection* conn);
  /// Takes a punctuation-aligned checkpoint when the engine is idle and the
  /// source frontier has advanced past the recovery horizon.
  void MaybeCheckpointAtIdle();
  /// Delivers every due pending frame (respecting per-connection FIFO,
  /// arrival hints, and backpressure parking). Returns true if anything
  /// was delivered.
  bool DeliverDue();
  /// Delivers one frame into its source at virtual time `now`. Returns
  /// false on a protocol error (unknown stream, missing external
  /// timestamp) — the connection is closed.
  bool IngestFrame(Connection* conn, WireFrame frame, Timestamp now);
  /// Earliest virtual time any pending frame becomes deliverable;
  /// kMaxTimestamp when nothing is pending.
  Timestamp NextPendingTime() const;
  bool AnyOpenConnection() const;
  bool AnyPendingFrame() const;

  QueryGraph* graph_;
  Executor* executor_;
  VirtualClock* clock_;
  IngestServerOptions options_;
  IngestClock ingest_clock_;
  QueueSizeTracker queue_tracker_;
  OrderValidator order_validator_;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<BufferOccupancyTracer> occupancy_tracer_;
  RecoveryManager* recovery_ = nullptr;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  /// Sources by wire stream id (graph sources with duplicate stream ids are
  /// rejected by Start).
  std::map<int32_t, Source*> sources_by_stream_;
  std::vector<std::unique_ptr<Connection>> connections_;
  int64_t next_connection_id_ = 1;
  volatile bool stop_ = false;
  /// First WAL append failure; Run stops and surfaces it.
  Status wal_error_;

  uint64_t handshake_timeouts_ = 0;
  uint64_t admission_rejects_ = 0;
  uint64_t overrun_closes_ = 0;
  uint64_t slow_peer_sheds_ = 0;
  uint64_t slow_peer_quarantines_ = 0;
  uint64_t slow_peer_closes_ = 0;
  uint64_t degraded_shed_frames_ = 0;
  uint64_t connections_accepted_ = 0;
  /// Connections accepted by *this* process — excludes counts restored
  /// from a checkpoint. The frame-driven "every peer came and went" run
  /// exit keys off this, so a recovered server waits for feeders to
  /// reconnect instead of exiting before they get the chance.
  uint64_t connections_this_process_ = 0;
  uint64_t frames_ingested_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t decode_errors_ = 0;
  uint64_t resume_rejects_ = 0;
  uint64_t idle_closes_ = 0;
};

}  // namespace dsms

#endif  // DSMS_NET_INGEST_SERVER_H_
