#include "net/net_fault.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strings.h"

namespace dsms {
namespace {

/// Blocking TCP connect used for the harness's side-channel sockets (stale
/// handshakes, half-open peers, proxy upstreams). `recv_timeout` bounds
/// blocking reads so a misbehaving test can never hang the suite.
Result<int> RawConnect(const std::string& host, uint16_t port,
                       Duration recv_timeout) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(StrFormat("bad host '%s'", host.c_str()));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError(StrFormat("socket: %s", strerror(errno)));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status status = InternalError(StrFormat("connect %s:%u: %s", host.c_str(),
                                            port, strerror(errno)));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout > 0) {
    timeval tv;
    tv.tv_sec = static_cast<time_t>(recv_timeout / 1000000);
    tv.tv_usec = static_cast<suseconds_t>(recv_timeout % 1000000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

Status SendAllRaw(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(StrFormat("send: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return OkStatus();
}

}  // namespace

const char* NetFaultKindToString(NetFaultKind kind) {
  switch (kind) {
    case NetFaultKind::kNone:
      return "none";
    case NetFaultKind::kSplit:
      return "split";
    case NetFaultKind::kCoalesce:
      return "coalesce";
    case NetFaultKind::kSlowloris:
      return "slowloris";
    case NetFaultKind::kRstMidFrame:
      return "rst";
    case NetFaultKind::kHalfOpen:
      return "half-open";
    case NetFaultKind::kReconnectStorm:
      return "reconnect-storm";
    case NetFaultKind::kDuplicateHello:
      return "dup-hello";
    case NetFaultKind::kGarbage:
      return "garbage";
  }
  return "unknown";
}

std::optional<NetFaultKind> ParseNetFaultKind(const std::string& text) {
  if (text == "none") return NetFaultKind::kNone;
  if (text == "split") return NetFaultKind::kSplit;
  if (text == "coalesce") return NetFaultKind::kCoalesce;
  if (text == "slowloris") return NetFaultKind::kSlowloris;
  if (text == "rst") return NetFaultKind::kRstMidFrame;
  if (text == "half-open") return NetFaultKind::kHalfOpen;
  if (text == "reconnect-storm") return NetFaultKind::kReconnectStorm;
  if (text == "dup-hello") return NetFaultKind::kDuplicateHello;
  if (text == "garbage") return NetFaultKind::kGarbage;
  return std::nullopt;
}

NetFaultInjector::NetFaultInjector(const NetFaultSpec& spec,
                                   uint64_t run_seed)
    : spec_(spec),
      rng_(spec.seed ^ run_seed,
           /*stream=*/static_cast<uint64_t>(spec.kind) + 1) {}

void NetFaultInjector::Prepare(const std::vector<ScheduledFrame>& schedule) {
  triggers_.clear();
  consumed_.clear();
  if (spec_.kind == NetFaultKind::kNone || spec_.count <= 0) {
    Note(StrFormat("prepare kind=%s triggers=0",
                   NetFaultKindToString(spec_.kind)));
    return;
  }
  // The eligible suffix: frames delivered at or after spec.at.
  size_t first = schedule.size();
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (schedule[i].time >= spec_.at) {
      first = i;
      break;
    }
  }
  const size_t eligible = schedule.size() - first;
  const size_t fires =
      std::min<size_t>(static_cast<size_t>(spec_.count), eligible);
  // Spread evenly so faults land across the whole tail, not in one burst.
  for (size_t k = 0; k < fires; ++k) {
    triggers_.push_back(first + k * eligible / fires);
  }
  triggers_.erase(std::unique(triggers_.begin(), triggers_.end()),
                  triggers_.end());
  consumed_.assign(triggers_.size(), false);
  std::string indices;
  for (size_t t : triggers_) {
    if (!indices.empty()) indices += ",";
    indices += StrFormat("%zu", t);
  }
  Note(StrFormat("prepare kind=%s at=%lld triggers=[%s]",
                 NetFaultKindToString(spec_.kind),
                 static_cast<long long>(spec_.at), indices.c_str()));
}

bool NetFaultInjector::ConsumeTrigger(size_t frame_index) {
  for (size_t i = 0; i < triggers_.size(); ++i) {
    if (triggers_[i] == frame_index && !consumed_[i]) {
      consumed_[i] = true;
      return true;
    }
  }
  return false;
}

size_t NetFaultInjector::pending_triggers() const {
  size_t pending = 0;
  for (bool used : consumed_) {
    if (!used) ++pending;
  }
  return pending;
}

std::vector<size_t> NetFaultInjector::PlanChunks(size_t size) {
  std::vector<size_t> chunks;
  if (size == 0) return chunks;
  if (spec_.kind == NetFaultKind::kSlowloris || spec_.chunk > 0) {
    // Fixed-width drip (default 1-4 bytes for slowloris).
    size_t width = spec_.chunk;
    if (width == 0) width = 1 + rng_.NextBelow(4);
    for (size_t off = 0; off < size; off += width) {
      chunks.push_back(std::min(width, size - off));
    }
  } else {
    // Random cuts; the first guarantees at least two chunks for size >= 2.
    size_t remaining = size;
    if (size >= 2) {
      size_t head = 1 + rng_.NextBelow(static_cast<uint32_t>(size - 1));
      chunks.push_back(head);
      remaining -= head;
    }
    while (remaining > 0) {
      size_t piece = 1 + rng_.NextBelow(static_cast<uint32_t>(remaining));
      chunks.push_back(piece);
      remaining -= piece;
    }
  }
  std::string sizes;
  for (size_t c : chunks) {
    if (!sizes.empty()) sizes += ",";
    sizes += StrFormat("%zu", c);
  }
  Note(StrFormat("chunks bytes=%zu plan=[%s]", size, sizes.c_str()));
  return chunks;
}

size_t NetFaultInjector::PlanCoalesce(size_t remaining) {
  if (remaining <= 1) return remaining;
  size_t batch =
      2 + rng_.NextBelow(static_cast<uint32_t>(std::min<size_t>(
              remaining - 1, 7)));
  batch = std::min(batch, remaining);
  Note(StrFormat("coalesce frames=%zu", batch));
  return batch;
}

size_t NetFaultInjector::PlanRstOffset(size_t size) {
  if (size < 2) return 0;
  size_t offset = 1 + rng_.NextBelow(static_cast<uint32_t>(size - 1));
  Note(StrFormat("rst offset=%zu of=%zu", offset, size));
  return offset;
}

std::string NetFaultInjector::GarbageBytes() {
  // Four 0xff bytes first: the full little-endian length prefix is ~4GiB,
  // far past kMaxFrameBytes, so the decoder poisons the moment it reads the
  // prefix instead of waiting for a plausible frame to "complete". (A
  // single 0xff would only be the LOW byte — the remaining random bytes
  // could still form a believable length.)
  const size_t size = spec_.bytes < 4 ? 4 : spec_.bytes;
  std::string garbage;
  garbage.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    garbage.push_back(i < 4 ? static_cast<char>(0xff)
                            : static_cast<char>(rng_.NextBelow(256)));
  }
  Note(StrFormat("garbage bytes=%zu", garbage.size()));
  return garbage;
}

void NetFaultInjector::Note(const std::string& line) {
  timeline_ += line;
  timeline_ += '\n';
}

ChaosFeeder::ChaosFeeder(FeedClientOptions options, NetFaultSpec spec,
                         uint64_t run_seed)
    : options_(std::move(options)),
      injector_(spec, run_seed),
      client_((options_.connections = 1, options_)) {}

Status ChaosFeeder::ConnectAndResume(bool initial) {
  if (!initial) {
    ++report_.reconnects;
    injector_.Note(StrFormat("reconnect #%d", report_.reconnects));
  }
  DSMS_RETURN_IF_ERROR(client_.Connect());
  if (options_.resume) return client_.Handshake();
  return OkStatus();
}

Status ChaosFeeder::ReplayStaleToken(int cycle, int attempt) {
  Result<int> fd = RawConnect(options_.host, options_.port, 5 * kSecond);
  if (!fd.ok()) return fd.status();
  auto fail = [&fd](Status status) {
    ::close(*fd);
    return status;
  };
  WireFrame hello;
  hello.type = WireFrame::Type::kHello;
  std::string bytes;
  DSMS_RETURN_IF_ERROR(EncodeFrame(hello, &bytes));
  Status sent = SendAllRaw(*fd, bytes.data(), bytes.size());
  if (!sent.ok()) return fail(sent);
  // Read the server's resume-state, then echo back a DIFFERENT watermark:
  // seqs bumped past anything durable (and a fabricated stream when the
  // server holds nothing), which the resume verification must refuse.
  FrameDecoder decoder;
  WireFrame reply;
  char buf[4096];
  for (;;) {
    Result<bool> got = decoder.Next(&reply);
    if (!got.ok()) return fail(got.status());
    if (*got) break;
    ssize_t n = ::recv(*fd, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return fail(InternalError("server closed before resume-state"));
  }
  if (reply.type != WireFrame::Type::kResumeState) {
    return fail(InternalError(StrFormat("expected resume-state, got %s",
                                        WireFrameTypeToString(reply.type))));
  }
  WireFrame stale;
  stale.type = WireFrame::Type::kResume;
  stale.values = reply.values;
  for (size_t i = 1; i < stale.values.size(); i += 2) {
    stale.values[i] =
        Value(stale.values[i].int64_value() + 1000 + cycle * 10 + attempt);
  }
  if (stale.values.empty()) {
    stale.values.push_back(Value(static_cast<int64_t>(1)));
    stale.values.push_back(
        Value(static_cast<int64_t>(999 + cycle * 10 + attempt)));
  }
  bytes.clear();
  DSMS_RETURN_IF_ERROR(EncodeFrame(stale, &bytes));
  sent = SendAllRaw(*fd, bytes.data(), bytes.size());
  if (!sent.ok()) return fail(sent);
  // The server must drop us: wait for EOF/RST (bounded by SO_RCVTIMEO).
  for (;;) {
    ssize_t n = ::recv(*fd, buf, sizeof(buf), 0);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return fail(DeadlineExceededError(
          "server kept a stale resume token alive"));
    }
    break;  // EOF or RST: the reject we wanted.
  }
  ::close(*fd);
  ++report_.stale_rejects;
  injector_.Note(StrFormat("stale-token cycle=%d attempt=%d rejected", cycle,
                           attempt));
  return OkStatus();
}

Status ChaosFeeder::SendChunked(const std::string& encoded, bool drip) {
  std::vector<size_t> chunks = injector_.PlanChunks(encoded.size());
  size_t offset = 0;
  for (size_t i = 0; i < chunks.size(); ++i) {
    if (drip && i > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(injector_.spec().gap));
    }
    DSMS_RETURN_IF_ERROR(
        client_.SendBytes(encoded.substr(offset, chunks[i])));
    offset += chunks[i];
  }
  return OkStatus();
}

Result<ChaosFeedReport> ChaosFeeder::Run(
    const std::vector<ScheduledFrame>& schedule) {
  const NetFaultKind kind = injector_.spec().kind;
  const bool needs_resume = kind == NetFaultKind::kRstMidFrame ||
                            kind == NetFaultKind::kReconnectStorm ||
                            kind == NetFaultKind::kDuplicateHello ||
                            kind == NetFaultKind::kGarbage;
  if (needs_resume && !options_.resume) {
    return FailedPreconditionError(StrFormat(
        "netfault kind=%s loses the connection mid-stream; it needs "
        "--resume (and a server WAL) to preserve exactly-once delivery",
        NetFaultKindToString(kind)));
  }
  injector_.Prepare(schedule);
  DSMS_RETURN_IF_ERROR(ConnectAndResume(/*initial=*/true));
  // Same pacing contract as FeedClient::Send: wall seconds per virtual
  // second, anchored once — restarts after a reconnect never replay the
  // elapsed wall time.
  const auto wall_start = std::chrono::steady_clock::now();
  auto pace_to = [this, wall_start](Timestamp when) {
    if (options_.pace <= 0.0) return;
    auto target = wall_start + std::chrono::microseconds(static_cast<int64_t>(
                                   static_cast<double>(when) * options_.pace));
    std::this_thread::sleep_until(target);
  };
  auto encode_entry = [this](const ScheduledFrame& entry,
                             std::string* out) -> Status {
    WireFrame frame = entry.frame;
    if (options_.extra_skew > 0 && frame.type == WireFrame::Type::kData &&
        frame.timestamp.has_value()) {
      *frame.timestamp -= options_.extra_skew;
    }
    if (options_.strip_hints) frame.arrival_hint.reset();
    return EncodeFrame(frame, out);
  };
  // Each pass replays the schedule minus the server's durable watermark.
  // Faults that kill the connection reconnect, re-handshake, and restart
  // the pass; triggers are consumed, so every restart makes progress and
  // the loop is bounded by the trigger count.
  bool done = false;
  while (!done) {
    std::map<int32_t, uint64_t> skip = client_.acked();
    bool restart = false;
    size_t i = 0;
    while (i < schedule.size() && !restart) {
      const ScheduledFrame& entry = schedule[i];
      if (!skip.empty()) {
        auto it = skip.find(entry.frame.stream_id);
        if (it != skip.end() && it->second > 0) {
          --it->second;
          ++i;
          continue;
        }
      }
      pace_to(entry.time);
      const bool fire = injector_.ConsumeTrigger(i);
      std::string encoded;
      DSMS_RETURN_IF_ERROR(encode_entry(entry, &encoded));
      if (!fire) {
        DSMS_RETURN_IF_ERROR(client_.SendBytes(encoded));
        ++report_.frames_sent;
        ++i;
        continue;
      }
      switch (kind) {
        case NetFaultKind::kNone:
          DSMS_RETURN_IF_ERROR(client_.SendBytes(encoded));
          ++report_.frames_sent;
          ++i;
          break;
        case NetFaultKind::kSplit: {
          injector_.Note(StrFormat("split frame=%zu", i));
          DSMS_RETURN_IF_ERROR(SendChunked(encoded, /*drip=*/false));
          ++report_.split_frames;
          ++report_.frames_sent;
          ++i;
          break;
        }
        case NetFaultKind::kSlowloris: {
          injector_.Note(StrFormat("slow-drip frame=%zu", i));
          DSMS_RETURN_IF_ERROR(SendChunked(encoded, /*drip=*/true));
          ++report_.slow_dripped_frames;
          ++report_.frames_sent;
          ++i;
          break;
        }
        case NetFaultKind::kCoalesce: {
          // Batch this frame and the next few into one send(2).
          size_t batch = injector_.PlanCoalesce(schedule.size() - i);
          injector_.Note(StrFormat("coalesce start=%zu frames=%zu", i,
                                   batch));
          std::string buffer;
          size_t taken = 0;
          while (taken < batch && i < schedule.size()) {
            const ScheduledFrame& next = schedule[i];
            if (!skip.empty()) {
              auto it = skip.find(next.frame.stream_id);
              if (it != skip.end() && it->second > 0) {
                --it->second;
                ++i;
                continue;
              }
            }
            injector_.ConsumeTrigger(i);  // swallowed by this batch
            DSMS_RETURN_IF_ERROR(encode_entry(next, &buffer));
            ++report_.frames_sent;
            ++taken;
            ++i;
          }
          DSMS_RETURN_IF_ERROR(client_.SendBytes(buffer));
          ++report_.coalesced_writes;
          break;
        }
        case NetFaultKind::kRstMidFrame: {
          size_t cut = injector_.PlanRstOffset(encoded.size());
          injector_.Note(StrFormat("rst frame=%zu", i));
          if (cut > 0) {
            DSMS_RETURN_IF_ERROR(
                client_.SendBytes(encoded.substr(0, cut)));
          }
          DSMS_RETURN_IF_ERROR(client_.AbortConnection(0));
          ++report_.rst_aborts;
          DSMS_RETURN_IF_ERROR(ConnectAndResume(/*initial=*/false));
          restart = true;
          break;
        }
        case NetFaultKind::kHalfOpen: {
          // Park a mute companion: it never HELLOs, never reads, never
          // closes. The schedule itself continues on the live socket.
          Result<int> parked =
              RawConnect(options_.host, options_.port, 0);
          if (!parked.ok()) return parked.status();
          parked_fds_.push_back(*parked);
          ++report_.half_open_peers;
          injector_.Note(StrFormat("half-open peer at frame=%zu", i));
          DSMS_RETURN_IF_ERROR(client_.SendBytes(encoded));
          ++report_.frames_sent;
          ++i;
          break;
        }
        case NetFaultKind::kReconnectStorm: {
          DSMS_RETURN_IF_ERROR(client_.SendBytes(encoded));
          ++report_.frames_sent;
          ++i;
          injector_.Note(StrFormat("storm cycle at frame=%zu", i));
          client_.Close();  // clean FIN: nothing in flight is lost
          for (int s = 0; s < injector_.spec().stale; ++s) {
            DSMS_RETURN_IF_ERROR(
                ReplayStaleToken(report_.reconnects + 1, s));
          }
          DSMS_RETURN_IF_ERROR(ConnectAndResume(/*initial=*/false));
          restart = true;
          break;
        }
        case NetFaultKind::kDuplicateHello: {
          DSMS_RETURN_IF_ERROR(client_.SendBytes(encoded));
          ++report_.frames_sent;
          ++i;
          injector_.Note(StrFormat("dup-hello after frame=%zu", i));
          WireFrame hello;
          hello.type = WireFrame::Type::kHello;
          std::string dup;
          DSMS_RETURN_IF_ERROR(EncodeFrame(hello, &dup));
          DSMS_RETURN_IF_ERROR(client_.SendBytes(dup));
          ++report_.duplicate_hellos;
          // The server treats a mid-stream HELLO as a protocol violation
          // and closes; drop our side and resume honestly.
          client_.Close();
          DSMS_RETURN_IF_ERROR(ConnectAndResume(/*initial=*/false));
          restart = true;
          break;
        }
        case NetFaultKind::kGarbage: {
          DSMS_RETURN_IF_ERROR(client_.SendBytes(encoded));
          ++report_.frames_sent;
          ++i;
          injector_.Note(StrFormat("garbage after frame=%zu", i));
          DSMS_RETURN_IF_ERROR(client_.SendBytes(injector_.GarbageBytes()));
          ++report_.garbage_injections;
          // Our decoder is now poisoned server-side; the connection is
          // dead the moment the server reads those bytes.
          client_.Close();
          DSMS_RETURN_IF_ERROR(ConnectAndResume(/*initial=*/false));
          restart = true;
          break;
        }
      }
    }
    if (!restart) done = true;
  }
  for (int fd : parked_fds_) ::close(fd);
  parked_fds_.clear();
  client_.Close();
  report_.timeline = injector_.timeline();
  return report_;
}

ChaosProxy::ChaosProxy(std::string target_host, uint16_t target_port,
                       NetFaultSpec spec, uint64_t run_seed)
    : target_host_(std::move(target_host)),
      target_port_(target_port),
      spec_(spec),
      run_seed_(run_seed) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  if (listen_fd_ >= 0) return FailedPreconditionError("already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(StrFormat("socket: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    Status status = InternalError(StrFormat("bind: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    Status status = InternalError(StrFormat("listen: %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void ChaosProxy::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : relay_threads_) {
    if (t.joinable()) t.join();
  }
  relay_threads_.clear();
}

void ChaosProxy::AcceptLoop() {
  for (;;) {
    int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    uint64_t relay_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    relay_threads_.emplace_back(
        [this, client_fd, relay_id] { Relay(client_fd, relay_id); });
  }
}

void ChaosProxy::Relay(int client_fd, uint64_t relay_id) {
  int one = 1;
  ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bounded reads so Stop() can always reclaim this thread.
  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 100 * 1000;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  Result<int> upstream =
      RawConnect(target_host_, target_port_, 100 * kMillisecond);
  if (!upstream.ok()) {
    ::close(client_fd);
    return;
  }
  const int server_fd = *upstream;
  // Both fds stay open until after back.join(): the reverse thread may be
  // blocked in recv/send on either one, and closing a live fd under it
  // would race with fd reuse elsewhere in the process.
  std::atomic<bool> abort_flag{false};
  // Replies pass through untouched; the shim only attacks client->server.
  std::thread back([this, client_fd, server_fd, &abort_flag] {
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(server_fd, buf, sizeof(buf), 0);
      if (n > 0) {
        if (!SendAllRaw(client_fd, buf, static_cast<size_t>(n)).ok()) return;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (stopping_.load(std::memory_order_relaxed) ||
            abort_flag.load(std::memory_order_relaxed)) {
          return;
        }
        continue;
      }
      if (!abort_flag.load(std::memory_order_relaxed)) {
        ::shutdown(client_fd, SHUT_WR);  // propagate server close
      }
      return;
    }
  });
  NetFaultInjector injector(spec_, run_seed_ ^ (relay_id + 1));
  uint64_t forwarded = 0;
  // Byte-offset trigger schedule: fire every spec.bytes forwarded bytes,
  // spec.count times per connection.
  const uint64_t stride = spec_.bytes > 0 ? spec_.bytes : 4096;
  uint64_t next_fault = stride;
  int fires_left =
      spec_.kind == NetFaultKind::kNone ? 0 : std::max(spec_.count, 0);
  bool aborted = false;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (stopping_.load(std::memory_order_relaxed)) break;
        continue;
      }
      break;
    }
    const size_t size = static_cast<size_t>(n);
    const bool fire = fires_left > 0 && forwarded + size >= next_fault;
    if (fire) {
      --fires_left;
      next_fault += stride;
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
    }
    switch (spec_.kind) {
      case NetFaultKind::kRstMidFrame:
        if (fire) {
          // Arm abortive close on both sides; the close(2)s after
          // back.join() below turn into RSTs.
          abort_flag.store(true, std::memory_order_relaxed);
          linger lg;
          lg.l_onoff = 1;
          lg.l_linger = 0;
          ::setsockopt(server_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
          ::setsockopt(client_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
          ::shutdown(server_fd, SHUT_RD);  // wakes the reverse thread only
          aborted = true;
          break;
        }
        [[fallthrough]];
      case NetFaultKind::kGarbage:
        if (fire && spec_.kind == NetFaultKind::kGarbage) {
          std::string garbage = injector.GarbageBytes();
          if (!SendAllRaw(server_fd, buf, size).ok() ||
              !SendAllRaw(server_fd, garbage.data(), garbage.size()).ok()) {
            aborted = true;
          }
          break;
        }
        [[fallthrough]];
      default: {
        if (spec_.kind == NetFaultKind::kSplit ||
            spec_.kind == NetFaultKind::kSlowloris) {
          std::vector<size_t> chunks = injector.PlanChunks(size);
          size_t offset = 0;
          for (size_t i = 0; i < chunks.size() && !aborted; ++i) {
            if (spec_.kind == NetFaultKind::kSlowloris && i > 0) {
              std::this_thread::sleep_for(
                  std::chrono::microseconds(spec_.gap));
            }
            if (!SendAllRaw(server_fd, buf + offset, chunks[i]).ok()) {
              aborted = true;
            }
            offset += chunks[i];
          }
        } else if (!SendAllRaw(server_fd, buf, size).ok()) {
          aborted = true;
        }
        break;
      }
    }
    if (aborted) break;
    forwarded += size;
    bytes_forwarded_.fetch_add(size, std::memory_order_relaxed);
  }
  if (!aborted) ::shutdown(server_fd, SHUT_WR);
  back.join();
  ::close(server_fd);
  ::close(client_fd);
}

}  // namespace dsms
