#ifndef DSMS_NET_SKEW_TRACKER_H_
#define DSMS_NET_SKEW_TRACKER_H_

#include <cstdint>

#include "common/time.h"

namespace dsms {

/// Per-connection observer of external-timestamp skew (Section 5). For every
/// externally stamped frame it records the observed skew
/// `arrival_time − app_timestamp` and checks it against the stream's
/// declared bound δ. The observed maximum is what the `t + τ − δ` ETS
/// heuristic implicitly trusts: if max_observed_skew stays at or below δ the
/// producer honours its contract and every ETS the source emits is sound;
/// a violation means downstream results derived from ETS bounds in that
/// window may have missed late tuples (the tuple itself is handed to the
/// graph's ViolationPolicy, not judged here).
class SkewTracker {
 public:
  /// Records one externally stamped arrival. Returns true when the observed
  /// skew exceeds `declared_bound` (a skew-contract violation). Negative
  /// observed skew (a timestamp from the future) also counts as a
  /// violation: external timestamps must not lead the arrival clock.
  bool Observe(Timestamp app_timestamp, Timestamp arrival,
               Duration declared_bound) {
    Duration skew = arrival - app_timestamp;
    ++observed_;
    if (skew > max_skew_ || observed_ == 1) max_skew_ = skew;
    if (skew < min_skew_ || observed_ == 1) min_skew_ = skew;
    if (skew > declared_bound || skew < 0) {
      ++violations_;
      return true;
    }
    return false;
  }

  uint64_t observed() const { return observed_; }
  uint64_t violations() const { return violations_; }
  /// Largest / smallest skew seen; 0 until the first observation.
  Duration max_skew() const { return observed_ == 0 ? 0 : max_skew_; }
  Duration min_skew() const { return observed_ == 0 ? 0 : min_skew_; }

  // --- checkpoint support (recovery/) ---
  /// Raw extrema for serialization (max_skew()/min_skew() hide them until
  /// the first observation; a restore must round-trip the stored values).
  Duration raw_max_skew() const { return max_skew_; }
  Duration raw_min_skew() const { return min_skew_; }
  void RestoreState(uint64_t observed, uint64_t violations, Duration max_skew,
                    Duration min_skew) {
    observed_ = observed;
    violations_ = violations;
    max_skew_ = max_skew;
    min_skew_ = min_skew;
  }

 private:
  uint64_t observed_ = 0;
  uint64_t violations_ = 0;
  Duration max_skew_ = 0;
  Duration min_skew_ = 0;
};

}  // namespace dsms

#endif  // DSMS_NET_SKEW_TRACKER_H_
