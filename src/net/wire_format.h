#ifndef DSMS_NET_WIRE_FORMAT_H_
#define DSMS_NET_WIRE_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "core/value.h"

namespace dsms {

/// Version byte of the wire protocol; a frame with any other version is a
/// decode error (no negotiation — both ends of a deployment upgrade
/// together, and a mismatch must be loud, not silently misparsed).
inline constexpr uint8_t kWireVersion = 1;

/// Upper bound on the byte size of a single frame body (everything after
/// the u32 length prefix). A length prefix above this is rejected before any
/// allocation happens, so a hostile or corrupt peer cannot make the decoder
/// reserve gigabytes from four garbage bytes.
inline constexpr size_t kMaxFrameBytes = 1 << 20;

/// One unit of the ingest wire protocol. Layout on the wire (little-endian):
///
///   u32  length       bytes after this field (>= kMinFrameBody)
///   u8   version      kWireVersion
///   u8   type         0 = data, 1 = punctuation, 2 = hello,
///                     3 = resume-state, 4 = resume
///   u8   flags        bit0 = carries `timestamp`, bit1 = carries
///                     `arrival_hint`
///   u8   value_count  number of payload values (0 for punctuation)
///   i32  stream_id    Source::stream_id() this frame feeds
///   [i64 timestamp]   if flags bit0: external app timestamp (data) or the
///                     punctuation bound (required for punctuation frames)
///   [i64 arrival_hint] if flags bit1: virtual delivery time for
///                     frame-driven ingest clocks (see net/ingest_clock.h)
///   value_count x value
///
/// Each value is a u8 type tag (ValueType) followed by its payload:
/// int64/double as 8 raw little-endian bytes, bool as one byte (0/1),
/// string as u32 byte length + bytes.
///
/// Decoding is strict: truncated values, trailing bytes, unknown tags, a
/// punctuation without a timestamp or with a payload, and oversized or
/// undersized length prefixes are all `Status` errors — the connection that
/// produced them is torn down, never "repaired" by guessing.
struct WireFrame {
  enum class Type : uint8_t {
    kData = 0,
    kPunctuation = 1,
    /// Control frames of the resume handshake (docs/recovery.md). They share
    /// the frame envelope but never reach the ingest path:
    ///  - kHello (client -> server): "what do you have durably?" No values,
    ///    no timestamps; stream_id is ignored (0 by convention).
    ///  - kResumeState (server -> client): the server's durable watermark as
    ///    an even int64 value list of (stream_id, durable_seq) pairs.
    ///  - kResume (client -> server): echo of the kResumeState pairs the
    ///    client is resuming from; the server verifies them against its
    ///    current watermark and drops the connection on mismatch.
    kHello = 2,
    kResumeState = 3,
    kResume = 4,
    ///  - kReject (server -> client): admission control turned the
    ///    connection away (connection cap or ingest memory budget). Carries
    ///    one string value with the human-readable reason, then the server
    ///    closes. Best-effort: a client must treat a bare close the same.
    kReject = 5,
  };

  Type type = Type::kData;
  int32_t stream_id = 0;
  /// External app timestamp (data frames, optional) or the promised bound
  /// (punctuation frames, required).
  std::optional<Timestamp> timestamp;
  /// Virtual delivery time hint for deterministic (frame-driven) ingest;
  /// absent on wall-clock deployments.
  std::optional<Timestamp> arrival_hint;
  std::vector<Value> values;
};

/// Smallest legal frame body: version, type, flags, value_count, stream_id.
inline constexpr size_t kMinFrameBody = 8;

/// True for handshake/admission frames (kHello/kResumeState/kResume/kReject)
/// that are consumed by the connection layer and never enter the ingest path
/// or the WAL.
inline constexpr bool IsControlFrame(WireFrame::Type type) {
  return type == WireFrame::Type::kHello ||
         type == WireFrame::Type::kResumeState ||
         type == WireFrame::Type::kResume ||
         type == WireFrame::Type::kReject;
}

/// Serializes `frame` and appends it (length prefix included) to `*out`.
/// Fails with InvalidArgument when the frame is unencodable: more than 255
/// values, a punctuation with values or without a timestamp, or a body that
/// would exceed kMaxFrameBytes.
Status EncodeFrame(const WireFrame& frame, std::string* out);

/// Incremental frame decoder for one connection. Bytes are appended as they
/// arrive from the socket; Next() carves complete frames off the front.
/// After the first error the decoder is poisoned (every Next() returns the
/// same error) — the owner is expected to drop the connection.
class FrameDecoder {
 public:
  /// `max_frame_bytes` caps the accepted body length (default
  /// kMaxFrameBytes).
  explicit FrameDecoder(size_t max_frame_bytes = kMaxFrameBytes);

  /// Appends raw bytes received from the peer.
  void Feed(const void* data, size_t size);

  /// Decodes the next complete frame into `*out`. Returns true when a frame
  /// was produced, false when more bytes are needed, or an error Status on
  /// a malformed frame (sticky; see class comment).
  Result<bool> Next(WireFrame* out);

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  /// Prefix of buffer_ already handed out as frames (compacted lazily).
  size_t consumed_ = 0;
  uint64_t frames_decoded_ = 0;
  Status error_;
};

const char* WireFrameTypeToString(WireFrame::Type type);

}  // namespace dsms

#endif  // DSMS_NET_WIRE_FORMAT_H_
