#ifndef DSMS_NET_INGEST_CLOCK_H_
#define DSMS_NET_INGEST_CLOCK_H_

#include <chrono>
#include <optional>

#include "common/clock.h"
#include "common/time.h"

namespace dsms {

/// Bridges arrival instants onto the executor's virtual timeline. The whole
/// engine — cost model, ETS bounds, the liveness watchdog's silence horizon —
/// runs on VirtualClock; a network server must decide what makes that clock
/// advance between frames:
///
///  - kWallClock: virtual time tracks real elapsed time since Start(). A
///    genuinely silent connection lets wall time carry the virtual clock
///    past the watchdog's silence horizon, so fallback ETS fire for real
///    dead producers — the production mode.
///
///  - kFrameDriven: virtual time advances only through frame arrival hints
///    (WireFrame::arrival_hint) and executor step costs, exactly like the
///    discrete-event Simulation. Fully deterministic: the same frame
///    sequence always produces the same run, which is what the loopback
///    equivalence tests assert.
///
/// In both modes virtual time is monotone: executor steps may push it ahead
/// of the wall mapping (a busy engine services its sockets late, same as the
/// simulation's delayed deliveries), and the bridge never rewinds.
class IngestClock {
 public:
  enum class Mode { kWallClock = 0, kFrameDriven = 1 };

  /// `clock` is the executor's clock, shared, not owned.
  IngestClock(VirtualClock* clock, Mode mode) : clock_(clock), mode_(mode) {}

  Mode mode() const { return mode_; }

  /// Pins the wall epoch: wall "now" maps to the current virtual time.
  /// Call once, immediately before serving starts.
  void Start() {
    epoch_ = std::chrono::steady_clock::now();
    epoch_virtual_ = clock_->now();
    started_ = true;
  }
  bool started() const { return started_; }

  /// Virtual delivery time for a frame arriving now. Wall mode ignores the
  /// hint (arrival is when the bytes landed); frame-driven mode advances to
  /// the hint (hints from a connection are nondecreasing by construction —
  /// a regressing hint simply delivers "late", at the current clock).
  Timestamp OnFrameArrival(std::optional<Timestamp> hint) {
    if (mode_ == Mode::kWallClock) return Tick();
    if (hint.has_value() && *hint > clock_->now()) clock_->AdvanceTo(*hint);
    return clock_->now();
  }

  /// Wall mode: folds real elapsed time into the virtual clock (called on
  /// every poll wakeup, so silence makes virtual time pass). Frame-driven
  /// mode: no-op. Returns the current virtual time.
  Timestamp Tick() {
    if (mode_ == Mode::kWallClock && started_) {
      auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_);
      Timestamp wall = epoch_virtual_ + static_cast<Timestamp>(
                                            elapsed.count());
      if (wall > clock_->now()) clock_->AdvanceTo(wall);
    }
    return clock_->now();
  }

  Timestamp now() const { return clock_->now(); }

 private:
  VirtualClock* clock_;
  Mode mode_;
  bool started_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  Timestamp epoch_virtual_ = 0;
};

}  // namespace dsms

#endif  // DSMS_NET_INGEST_CLOCK_H_
