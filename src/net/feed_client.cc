#include "net/feed_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace dsms {
namespace {

/// Applies a send/recv timeout (microseconds) to `fd`; 0 is a no-op.
void SetSocketTimeout(int fd, int optname, Duration timeout) {
  if (timeout <= 0) return;
  timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout % 1000000);
  ::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv));
}

/// Splits "host:port" into its parts. Returns false on a missing colon or
/// an unparseable port.
bool ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port) {
  size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return false;
  }
  long parsed = 0;
  for (size_t i = colon + 1; i < address.size(); ++i) {
    char c = address[i];
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + (c - '0');
    if (parsed > 65535) return false;
  }
  if (parsed <= 0) return false;
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return true;
}

/// connect(2) with a wall-clock cap: non-blocking connect, poll for
/// writability, then read back SO_ERROR. With `timeout` 0 this is a plain
/// blocking connect.
Status ConnectFd(int fd, const sockaddr_in& addr, Duration timeout,
                 const std::string& host, uint16_t port) {
  auto error = [&host, port](const char* what, int err) {
    return InternalError(
        StrFormat("%s %s:%u: %s", what, host.c_str(), port, strerror(err)));
  };
  if (timeout <= 0) {
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return error("connect", errno);
    return OkStatus();
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    return error("connect", errno);
  }
  if (rc < 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout);
    for (;;) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return error("connect (timeout)", ETIMEDOUT);
      pollfd pfd{fd, POLLOUT, 0};
      int prc = ::poll(&pfd, 1, static_cast<int>(left.count()));
      if (prc < 0 && errno == EINTR) continue;
      if (prc < 0) return error("poll", errno);
      if (prc == 0) return error("connect (timeout)", ETIMEDOUT);
      break;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) < 0) {
      return error("getsockopt", errno);
    }
    if (so_error != 0) return error("connect", so_error);
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking for the send path
  return OkStatus();
}

}  // namespace

Duration ComputeBackoffDelay(int attempt, const FeedClientOptions& options,
                             Pcg32& rng) {
  Duration delay = options.backoff_base;
  for (int i = 0; i < attempt && delay < options.backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options.backoff_max);
  // Jitter in [0.5, 1.0): desynchronizes reconnect herds while keeping the
  // delay within a factor of two of the nominal schedule.
  return static_cast<Duration>(static_cast<double>(delay) *
                               (0.5 + 0.5 * rng.NextDouble()));
}

FeedClient::FeedClient(FeedClientOptions options)
    : options_(std::move(options)) {
  if (options_.connections < 1) options_.connections = 1;
}

FeedClient::~FeedClient() { Close(); }

Status FeedClient::TryConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(StrFormat("bad host '%s'", host.c_str()));
  }
  for (int i = 0; i < options_.connections; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Close();
      return InternalError(StrFormat("socket: %s", strerror(errno)));
    }
    Status connected =
        ConnectFd(fd, addr, options_.connect_timeout, host, port);
    if (!connected.ok()) {
      ::close(fd);
      Close();
      return connected;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.send_buffer_bytes > 0) {
      // Cap SO_SNDBUF before any traffic: TCP autotuning would otherwise
      // grow the kernel buffer to megabytes, letting a slow reader absorb
      // whole frames without the feeder ever noticing a stall.
      int sndbuf = options_.send_buffer_bytes;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
    }
    SetSocketTimeout(fd, SO_SNDTIMEO, options_.write_timeout);
    SetSocketTimeout(fd, SO_RCVTIMEO, options_.write_timeout);
    fds_.push_back(fd);
  }
  return OkStatus();
}

Status FeedClient::Connect() {
  if (!fds_.empty()) return FailedPreconditionError("already connected");
  Pcg32 rng(options_.backoff_seed);
  // The dial plan: primary address first, then each fallback, repeating
  // round-robin across retries so a dead primary still converges on a
  // healthy replica within fallback_addresses.size() attempts.
  std::vector<std::pair<std::string, uint16_t>> addresses;
  addresses.emplace_back(options_.host, options_.port);
  for (const std::string& fallback : options_.fallback_addresses) {
    std::string host;
    uint16_t port = 0;
    if (!ParseHostPort(fallback, &host, &port)) {
      return InvalidArgumentError(
          StrFormat("bad fallback address '%s' (want host:port)",
                    fallback.c_str()));
    }
    addresses.emplace_back(std::move(host), port);
  }
  Status last = OkStatus();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          ComputeBackoffDelay(attempt - 1, options_, rng)));
    }
    const auto& [host, port] = addresses[static_cast<size_t>(attempt) %
                                         addresses.size()];
    last = TryConnect(host, port);
    if (last.ok()) return OkStatus();
  }
  return last;
}

Result<WireFrame> FeedClient::ReadFrame(int index) {
  FrameDecoder decoder;
  char buf[4096];
  for (;;) {
    WireFrame frame;
    Result<bool> got = decoder.Next(&frame);
    if (!got.ok()) return got.status();
    if (*got) return frame;
    ssize_t n = ::recv(fds_[index], buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return DeadlineExceededError("timed out waiting for a server frame");
    }
    if (n == 0) return InternalError("server closed during handshake");
    return InternalError(StrFormat("recv: %s", strerror(errno)));
  }
}

Status FeedClient::Handshake() {
  if (fds_.empty()) return FailedPreconditionError("call Connect() first");
  if (!options_.resume) {
    return FailedPreconditionError("handshake requires options.resume");
  }
  if (options_.connections != 1) {
    return InvalidArgumentError(
        "resume needs a single connection: the durable watermark is per "
        "stream and round-robin framing would race it");
  }
  WireFrame hello;
  hello.type = WireFrame::Type::kHello;
  DSMS_RETURN_IF_ERROR(SendFrame(hello, 0));
  Result<WireFrame> reply = ReadFrame(0);
  if (!reply.ok()) return reply.status();
  if (reply->type != WireFrame::Type::kResumeState) {
    return InternalError(StrFormat("expected resume-state, got %s",
                                   WireFrameTypeToString(reply->type)));
  }
  acked_.clear();
  for (size_t i = 0; i + 1 < reply->values.size(); i += 2) {
    acked_[static_cast<int32_t>(reply->values[i].int64_value())] =
        static_cast<uint64_t>(reply->values[i + 1].int64_value());
  }
  // Echo the watermark back: the server verifies the token so a feeder
  // resuming against the wrong (or wiped) recovery state is refused.
  WireFrame resume;
  resume.type = WireFrame::Type::kResume;
  resume.values = reply->values;
  return SendFrame(resume, 0);
}

void FeedClient::Close() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
  fds_.clear();
}

Status FeedClient::WriteAll(int fd, const char* data, size_t size) {
  // write_timeout bounds the WHOLE buffer, not each send: SO_SNDTIMEO only
  // caps one blocking send(2), so a peer draining a byte per interval would
  // otherwise stretch a single frame indefinitely while every individual
  // send "succeeds" in time.
  const bool bounded = options_.write_timeout > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(bounded ? options_.write_timeout : 0);
  size_t sent = 0;
  while (sent < size) {
    if (bounded && sent > 0 && std::chrono::steady_clock::now() >= deadline) {
      return DeadlineExceededError(StrFormat(
          "send stalled: %zu of %zu bytes after write_timeout", sent, size));
    }
    // MSG_NOSIGNAL: a server that died mid-run must surface as an EPIPE
    // error the retry logic can handle, not a SIGPIPE killing the feeder.
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired with the socket buffer still full.
        return DeadlineExceededError(StrFormat(
            "send stalled: %zu of %zu bytes after write_timeout", sent,
            size));
      }
      return InternalError(StrFormat("send: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  bytes_sent_ += size;
  return OkStatus();
}

Status FeedClient::AbortConnection(int index) {
  if (index < 0 || index >= static_cast<int>(fds_.size())) {
    return InvalidArgumentError("no such connection");
  }
  // SO_LINGER with zero timeout turns close(2) into an abortive release:
  // the kernel discards anything still queued and sends RST, which is
  // exactly the mid-frame truncation the chaos tests need.
  linger lg;
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fds_[index], SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fds_[index]);
  fds_.erase(fds_.begin() + index);
  return OkStatus();
}

Status FeedClient::SendBytes(const std::string& bytes, int index) {
  if (index < 0 || index >= static_cast<int>(fds_.size())) {
    return InvalidArgumentError("no such connection");
  }
  return WriteAll(fds_[index], bytes.data(), bytes.size());
}

Status FeedClient::SendFrame(const WireFrame& frame, int index) {
  std::string encoded;
  DSMS_RETURN_IF_ERROR(EncodeFrame(frame, &encoded));
  DSMS_RETURN_IF_ERROR(SendBytes(encoded, index));
  ++frames_sent_;
  return OkStatus();
}

Result<uint64_t> FeedClient::Send(
    const std::vector<ScheduledFrame>& schedule) {
  if (fds_.empty()) return FailedPreconditionError("call Connect() first");
  const auto wall_start = std::chrono::steady_clock::now();
  uint64_t sent = 0;
  std::string batch;
  int target = 0;
  // Exactly-once resume: the server acknowledged this many durable frames
  // per stream; those are skipped, everything after goes out again.
  std::map<int32_t, uint64_t> skip = acked_;
  for (const ScheduledFrame& entry : schedule) {
    if (options_.disconnect_after > 0 &&
        sent >= options_.disconnect_after) {
      break;
    }
    if (!skip.empty()) {
      auto it = skip.find(entry.frame.stream_id);
      if (it != skip.end() && it->second > 0) {
        --it->second;
        continue;
      }
    }
    WireFrame frame = entry.frame;
    if (options_.extra_skew > 0 && frame.type == WireFrame::Type::kData &&
        frame.timestamp.has_value()) {
      *frame.timestamp -= options_.extra_skew;
    }
    if (options_.strip_hints) frame.arrival_hint.reset();
    if (options_.pace > 0.0) {
      // Replay on the wall: frame at virtual time t goes out at
      // wall_start + t * pace.
      auto due = wall_start + std::chrono::microseconds(static_cast<int64_t>(
                                  static_cast<double>(entry.time) *
                                  options_.pace));
      std::this_thread::sleep_until(due);
      DSMS_RETURN_IF_ERROR(SendFrame(frame, target));
    } else {
      // Unpaced: batch encodes and flush in large writes.
      DSMS_RETURN_IF_ERROR(EncodeFrame(frame, &batch));
      ++frames_sent_;
      if (batch.size() >= 64 * 1024) {
        DSMS_RETURN_IF_ERROR(WriteAll(fds_[target], batch.data(),
                                      batch.size()));
        batch.clear();
        target = (target + 1) % static_cast<int>(fds_.size());
      }
    }
    ++sent;
    if (options_.pace > 0.0) {
      target = (target + 1) % static_cast<int>(fds_.size());
    }
  }
  if (!batch.empty()) {
    DSMS_RETURN_IF_ERROR(WriteAll(fds_[target], batch.data(), batch.size()));
  }
  if (options_.disconnect_after > 0 && sent >= options_.disconnect_after) {
    Close();  // Abrupt: the server sees EOF with no warning.
  }
  return sent;
}

}  // namespace dsms
