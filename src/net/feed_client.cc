#include "net/feed_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace dsms {

FeedClient::FeedClient(FeedClientOptions options)
    : options_(std::move(options)) {
  if (options_.connections < 1) options_.connections = 1;
}

FeedClient::~FeedClient() { Close(); }

Status FeedClient::Connect() {
  if (!fds_.empty()) return FailedPreconditionError("already connected");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(
        StrFormat("bad host '%s'", options_.host.c_str()));
  }
  for (int i = 0; i < options_.connections; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Close();
      return InternalError(StrFormat("socket: %s", strerror(errno)));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      Close();
      return InternalError(StrFormat("connect %s:%u: %s",
                                     options_.host.c_str(), options_.port,
                                     strerror(errno)));
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fds_.push_back(fd);
  }
  return OkStatus();
}

void FeedClient::Close() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
  fds_.clear();
}

Status FeedClient::WriteAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(StrFormat("send: %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  bytes_sent_ += size;
  return OkStatus();
}

Status FeedClient::SendBytes(const std::string& bytes, int index) {
  if (index < 0 || index >= static_cast<int>(fds_.size())) {
    return InvalidArgumentError("no such connection");
  }
  return WriteAll(fds_[index], bytes.data(), bytes.size());
}

Status FeedClient::SendFrame(const WireFrame& frame, int index) {
  std::string encoded;
  DSMS_RETURN_IF_ERROR(EncodeFrame(frame, &encoded));
  DSMS_RETURN_IF_ERROR(SendBytes(encoded, index));
  ++frames_sent_;
  return OkStatus();
}

Result<uint64_t> FeedClient::Send(
    const std::vector<ScheduledFrame>& schedule) {
  if (fds_.empty()) return FailedPreconditionError("call Connect() first");
  const auto wall_start = std::chrono::steady_clock::now();
  uint64_t sent = 0;
  std::string batch;
  int target = 0;
  for (const ScheduledFrame& entry : schedule) {
    if (options_.disconnect_after > 0 &&
        sent >= options_.disconnect_after) {
      break;
    }
    WireFrame frame = entry.frame;
    if (options_.extra_skew > 0 && frame.type == WireFrame::Type::kData &&
        frame.timestamp.has_value()) {
      *frame.timestamp -= options_.extra_skew;
    }
    if (options_.strip_hints) frame.arrival_hint.reset();
    if (options_.pace > 0.0) {
      // Replay on the wall: frame at virtual time t goes out at
      // wall_start + t * pace.
      auto due = wall_start + std::chrono::microseconds(static_cast<int64_t>(
                                  static_cast<double>(entry.time) *
                                  options_.pace));
      std::this_thread::sleep_until(due);
      DSMS_RETURN_IF_ERROR(SendFrame(frame, target));
    } else {
      // Unpaced: batch encodes and flush in large writes.
      DSMS_RETURN_IF_ERROR(EncodeFrame(frame, &batch));
      ++frames_sent_;
      if (batch.size() >= 64 * 1024) {
        DSMS_RETURN_IF_ERROR(WriteAll(fds_[target], batch.data(),
                                      batch.size()));
        batch.clear();
        target = (target + 1) % static_cast<int>(fds_.size());
      }
    }
    ++sent;
    if (options_.pace > 0.0) {
      target = (target + 1) % static_cast<int>(fds_.size());
    }
  }
  if (!batch.empty()) {
    DSMS_RETURN_IF_ERROR(WriteAll(fds_[target], batch.data(), batch.size()));
  }
  if (options_.disconnect_after > 0 && sent >= options_.disconnect_after) {
    Close();  // Abrupt: the server sees EOF with no warning.
  }
  return sent;
}

}  // namespace dsms
