#ifndef DSMS_NET_FEED_SCHEDULE_H_
#define DSMS_NET_FEED_SCHEDULE_H_

#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "net/wire_format.h"
#include "sim/experiment_spec.h"

namespace dsms {

/// One frame of a precomputed load schedule: `time` is the virtual instant
/// the discrete-event Simulation would deliver this arrival, and the frame
/// already carries that instant as its arrival hint.
struct ScheduledFrame {
  Timestamp time = 0;
  WireFrame frame;
};

/// Expands an experiment's `feed` and `heartbeat` statements into the exact
/// merged frame sequence a Simulation of the same spec would deliver on an
/// unloaded engine: same arrival processes, same payloads, same external-
/// timestamp jitter RNG (FeedJitterSeed), same monotone clamping, and the
/// same FIFO tie-break among simultaneous events (the scheduling replays
/// through sim/EventQueue itself).
///
/// This is what makes the loopback equivalence test meaningful: the feeder
/// sends these frames over TCP, the server ingests them in frame-driven
/// clock mode, and the sink output must match a Simulation run of the same
/// file bit for bit.
///
/// The replay assumes deliveries are never late (events fire at their
/// scheduled time). Under heavy load a real Simulation stamps late-delivered
/// external tuples differently, so equivalence experiments must stay at low
/// utilization — which the tests do by construction.
///
/// `fault` statements have no network analogue here and are rejected; use
/// the feeder's own perturbation knobs (extra skew, disconnect) to misbehave
/// on purpose. Only events strictly before `horizon` are emitted, matching
/// Simulation::Run's end-of-horizon cutoff.
Result<std::vector<ScheduledFrame>> BuildFeedSchedule(
    const Experiment& experiment, Timestamp horizon);

}  // namespace dsms

#endif  // DSMS_NET_FEED_SCHEDULE_H_
