#ifndef DSMS_NET_FEED_CLIENT_H_
#define DSMS_NET_FEED_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/time.h"
#include "net/feed_schedule.h"
#include "net/wire_format.h"

namespace dsms {

struct FeedClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Fallback "host:port" addresses tried round-robin (after `host:port`)
  /// when a connect attempt fails — multi-address failover for feeders
  /// pointed at a replicated ingest tier. Retry `attempt` dials address
  /// `attempt % (1 + fallback_addresses.size())`.
  std::vector<std::string> fallback_addresses;
  /// Parallel connections; schedule frames are dealt round-robin across
  /// them. More than one trades the single-socket global ordering (and with
  /// it exact Simulation equivalence) for a concurrency workout.
  int connections = 1;
  /// Real-time pacing: wall microseconds spent per virtual microsecond of
  /// schedule time. 1.0 replays in real time, 0 (default) blasts the whole
  /// schedule as fast as TCP accepts it.
  double pace = 0.0;
  /// Deliberate extra lateness subtracted from every external timestamp —
  /// pushes observed skew past the declared δ to exercise the server's
  /// skew-violation path. 0 keeps the producer honest.
  Duration extra_skew = 0;
  /// Disconnect abruptly after this many frames (0 = send everything). The
  /// kill-the-feeder tests use this to make a source go silent mid-run.
  uint64_t disconnect_after = 0;
  /// Strip arrival hints before sending (wall-clock servers ignore them
  /// anyway; stripping saves 8 bytes per frame).
  bool strip_hints = false;
  /// SO_SNDBUF per connection (0 = kernel default with autotuning). Bounds
  /// feeder-side kernel buffering so a stalled server surfaces as a
  /// write_timeout instead of megabytes of silently queued frames.
  int send_buffer_bytes = 0;

  // --- reconnection / exactly-once resume (recovery; docs/recovery.md) ---
  /// Extra connect attempts after the first failure (0 = fail fast). Each
  /// retry waits ComputeBackoffDelay: capped exponential growth with
  /// deterministic jitter from `backoff_seed`.
  int max_retries = 0;
  /// First retry delay (wall microseconds) before jitter.
  Duration backoff_base = 100 * kMillisecond;
  /// Upper bound on any single retry delay (before jitter).
  Duration backoff_max = 5 * kSecond;
  /// Seed of the jitter RNG — fixed seed, fixed delay sequence, so retry
  /// timing is reproducible in tests.
  uint64_t backoff_seed = 1;
  /// Wall-clock cap on one connect attempt (0 = OS default).
  Duration connect_timeout = 0;
  /// Wall-clock cap on writing one complete frame (0 = none). The deadline
  /// spans every partial send of the frame — a server draining one byte per
  /// timeout interval cannot stretch a single frame forever — and a stalled
  /// server turns into an error instead of a hung feeder.
  Duration write_timeout = 0;
  /// Perform the HELLO/RESUME handshake after connecting and skip the
  /// frames the server already holds durably (requires connections == 1:
  /// the durable watermark is per stream, not per socket).
  bool resume = false;
};

/// Delay before connect attempt `attempt` (0-based): min(backoff_max,
/// backoff_base * 2^attempt), scaled by a jitter factor in [0.5, 1.0) drawn
/// from `rng`. Pure so the chaos tests can assert the exact sequence.
Duration ComputeBackoffDelay(int attempt, const FeedClientOptions& options,
                             Pcg32& rng);

/// Deterministic TCP load generator: replays a BuildFeedSchedule frame list
/// into an IngestServer. All randomness lives in the schedule (seeded
/// arrival processes and jitter RNGs), so a given experiment file + options
/// always produces the identical byte stream.
class FeedClient {
 public:
  explicit FeedClient(FeedClientOptions options);
  ~FeedClient();

  FeedClient(const FeedClient&) = delete;
  FeedClient& operator=(const FeedClient&) = delete;

  /// Opens options.connections blocking TCP connections, honouring
  /// connect_timeout and retrying up to max_retries times with jittered
  /// exponential backoff.
  Status Connect();

  /// HELLO/RESUME handshake: asks the server for its durable watermark,
  /// stores it (see acked()), and echoes it back as the resume token. Call
  /// between Connect() and Send(); requires options.resume.
  Status Handshake();

  /// Durable (stream id -> frame count) watermark from the last Handshake.
  const std::map<int32_t, uint64_t>& acked() const { return acked_; }

  /// Sends the schedule in order (round-robin across connections), applying
  /// pacing and the misbehaviour knobs. Returns the number of frames
  /// actually sent (short when disconnect_after cuts the run).
  Result<uint64_t> Send(const std::vector<ScheduledFrame>& schedule);

  /// Encodes and sends one frame on connection `index` (for tests that
  /// hand-craft traffic).
  Status SendFrame(const WireFrame& frame, int index = 0);

  /// Sends raw bytes on connection `index` — the hostile-input path for
  /// tests (garbage, truncated frames, oversized prefixes).
  Status SendBytes(const std::string& bytes, int index = 0);

  void Close();

  /// Tears down connection `index` with an abrupt TCP RST (SO_LINGER 0 +
  /// close): unsent kernel-buffered bytes are discarded and the server sees
  /// ECONNRESET, possibly mid-frame. The chaos harness's rst-mid-frame
  /// fault; after this the client may Connect() again.
  Status AbortConnection(int index = 0);

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  Status WriteAll(int fd, const char* data, size_t size);
  /// One pass over all sockets against one address (no retry/backoff).
  Status TryConnect(const std::string& host, uint16_t port);
  /// Blocking read of one complete frame from connection `index`.
  Result<WireFrame> ReadFrame(int index);

  FeedClientOptions options_;
  std::vector<int> fds_;
  std::map<int32_t, uint64_t> acked_;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace dsms

#endif  // DSMS_NET_FEED_CLIENT_H_
