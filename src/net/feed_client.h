#ifndef DSMS_NET_FEED_CLIENT_H_
#define DSMS_NET_FEED_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "net/feed_schedule.h"
#include "net/wire_format.h"

namespace dsms {

struct FeedClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Parallel connections; schedule frames are dealt round-robin across
  /// them. More than one trades the single-socket global ordering (and with
  /// it exact Simulation equivalence) for a concurrency workout.
  int connections = 1;
  /// Real-time pacing: wall microseconds spent per virtual microsecond of
  /// schedule time. 1.0 replays in real time, 0 (default) blasts the whole
  /// schedule as fast as TCP accepts it.
  double pace = 0.0;
  /// Deliberate extra lateness subtracted from every external timestamp —
  /// pushes observed skew past the declared δ to exercise the server's
  /// skew-violation path. 0 keeps the producer honest.
  Duration extra_skew = 0;
  /// Disconnect abruptly after this many frames (0 = send everything). The
  /// kill-the-feeder tests use this to make a source go silent mid-run.
  uint64_t disconnect_after = 0;
  /// Strip arrival hints before sending (wall-clock servers ignore them
  /// anyway; stripping saves 8 bytes per frame).
  bool strip_hints = false;
};

/// Deterministic TCP load generator: replays a BuildFeedSchedule frame list
/// into an IngestServer. All randomness lives in the schedule (seeded
/// arrival processes and jitter RNGs), so a given experiment file + options
/// always produces the identical byte stream.
class FeedClient {
 public:
  explicit FeedClient(FeedClientOptions options);
  ~FeedClient();

  FeedClient(const FeedClient&) = delete;
  FeedClient& operator=(const FeedClient&) = delete;

  /// Opens options.connections blocking TCP connections.
  Status Connect();

  /// Sends the schedule in order (round-robin across connections), applying
  /// pacing and the misbehaviour knobs. Returns the number of frames
  /// actually sent (short when disconnect_after cuts the run).
  Result<uint64_t> Send(const std::vector<ScheduledFrame>& schedule);

  /// Encodes and sends one frame on connection `index` (for tests that
  /// hand-craft traffic).
  Status SendFrame(const WireFrame& frame, int index = 0);

  /// Sends raw bytes on connection `index` — the hostile-input path for
  /// tests (garbage, truncated frames, oversized prefixes).
  Status SendBytes(const std::string& bytes, int index = 0);

  void Close();

  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  Status WriteAll(int fd, const char* data, size_t size);

  FeedClientOptions options_;
  std::vector<int> fds_;
  uint64_t frames_sent_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace dsms

#endif  // DSMS_NET_FEED_CLIENT_H_
