#ifndef DSMS_NET_NET_FAULT_H_
#define DSMS_NET_NET_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/time.h"
#include "net/feed_client.h"
#include "net/feed_schedule.h"
#include "net/net_fault_spec.h"

namespace dsms {

/// Deterministic decision engine behind the chaos feeder and proxy: all
/// randomness (cut offsets, coalesce widths, garbage payloads) comes from
/// one PCG32 stream, and every decision appends one line to a human-readable
/// timeline, so two runs with the same (spec, run_seed, schedule) produce a
/// byte-identical timeline AND byte-identical wire behaviour.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(const NetFaultSpec& spec, uint64_t run_seed = 0);

  const NetFaultSpec& spec() const { return spec_; }

  /// Precomputes the trigger frame indices: `spec.count` of them, spread
  /// evenly over the schedule suffix whose virtual time is >= `spec.at`.
  void Prepare(const std::vector<ScheduledFrame>& schedule);

  /// True exactly once per trigger index: the caller consumes the trigger
  /// when it injects the fault, so a restarted schedule pass (after a chaos
  /// reconnect) does not re-fire it.
  bool ConsumeTrigger(size_t frame_index);

  /// Remaining (unconsumed) trigger count.
  size_t pending_triggers() const;

  /// Chunk sizes (each >= 1, summing to `size`) for writing one frame of
  /// `size` bytes under kSplit/kSlowloris.
  std::vector<size_t> PlanChunks(size_t size);

  /// Number of schedule frames (>= 1, <= remaining) to coalesce into one
  /// write under kCoalesce.
  size_t PlanCoalesce(size_t remaining);

  /// Byte offset in [1, size-1] at which kRstMidFrame truncates a frame
  /// (for size < 2, returns 0: abort before any byte).
  size_t PlanRstOffset(size_t size);

  /// `spec.bytes` (minimum 4) of deterministic garbage. The first four
  /// bytes are 0xff, so the fake little-endian length prefix is ~4GiB and
  /// the receiving decoder poisons immediately instead of waiting for a
  /// plausible frame to complete.
  std::string GarbageBytes();

  /// Appends one line to the fault timeline (the injector's own decisions
  /// are recorded automatically; harness code adds lifecycle notes).
  void Note(const std::string& line);

  const std::string& timeline() const { return timeline_; }

 private:
  NetFaultSpec spec_;
  Pcg32 rng_;
  std::vector<size_t> triggers_;  // sorted; consumed entries flipped on
  std::vector<bool> consumed_;
  std::string timeline_;
};

/// What one chaos feed run did, for assertions and --chaos reporting.
struct ChaosFeedReport {
  uint64_t frames_sent = 0;
  int reconnects = 0;
  /// Stale resume tokens the server refused (each costs one reconnect).
  int stale_rejects = 0;
  int garbage_injections = 0;
  int rst_aborts = 0;
  int duplicate_hellos = 0;
  int half_open_peers = 0;
  int split_frames = 0;
  int coalesced_writes = 0;
  int slow_dripped_frames = 0;
  /// The injector's deterministic fault timeline.
  std::string timeline;
};

/// Feeder-side write shim: replays a feed schedule like FeedClient but
/// routes every frame through a NetFaultInjector, injecting the configured
/// wire faults while preserving exactly-once delivery (kinds that lose or
/// poison the connection reconnect and resume via the HELLO/RESUME
/// handshake, so `options.resume` is required for those kinds and the
/// server must run with a WAL).
class ChaosFeeder {
 public:
  /// `options.connections` is forced to 1: chaos scheduling reasons about a
  /// single byte stream.
  ChaosFeeder(FeedClientOptions options, NetFaultSpec spec,
              uint64_t run_seed = 0);

  /// Replays `schedule` with faults injected. On success the report's
  /// timeline is the full deterministic fault log.
  Result<ChaosFeedReport> Run(const std::vector<ScheduledFrame>& schedule);

 private:
  /// (Re)connects and, when resuming, performs the handshake. Counts a
  /// reconnect when this is not the first connection.
  Status ConnectAndResume(bool initial);
  /// Opens a throwaway connection, performs HELLO, then replays a
  /// fabricated resume token the server must reject.
  Status ReplayStaleToken(int cycle, int attempt);
  Status SendChunked(const std::string& encoded, bool drip);

  FeedClientOptions options_;
  NetFaultInjector injector_;
  FeedClient client_;
  ChaosFeedReport report_;
  /// Half-open companion sockets kept open (unserviced) until Run returns.
  std::vector<int> parked_fds_;
};

/// In-process chaos proxy: listens on an ephemeral port, forwards every
/// accepted connection to `target`, and applies the write shim to the
/// client->server byte stream (server->client replies pass through
/// untouched). Lets tests torture a real server without teaching the feeder
/// about faults: point any FeedClient at proxy.port().
///
/// Proxy-mode faults are byte-offset driven: every `spec.bytes` forwarded
/// bytes, kGarbage injects garbage and kRstMidFrame aborts both sides;
/// kSplit/kSlowloris re-chunk every forwarded buffer.
class ChaosProxy {
 public:
  ChaosProxy(std::string target_host, uint16_t target_port, NetFaultSpec spec,
             uint64_t run_seed = 0);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listener (ephemeral port) and starts the accept thread.
  Status Start();

  /// The port feeders should dial. Valid after Start().
  uint16_t port() const { return port_; }

  /// Stops accepting, severs every live relay, and joins all threads.
  void Stop();

  uint64_t connections_accepted() const { return connections_accepted_; }
  uint64_t bytes_forwarded() const { return bytes_forwarded_; }
  uint64_t faults_injected() const { return faults_injected_; }

 private:
  void AcceptLoop();
  void Relay(int client_fd, uint64_t relay_id);

  const std::string target_host_;
  const uint16_t target_port_;
  const NetFaultSpec spec_;
  const uint64_t run_seed_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> relay_threads_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> bytes_forwarded_{0};
  std::atomic<uint64_t> faults_injected_{0};
};

}  // namespace dsms

#endif  // DSMS_NET_NET_FAULT_H_
