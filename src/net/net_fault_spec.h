#ifndef DSMS_NET_NET_FAULT_SPEC_H_
#define DSMS_NET_NET_FAULT_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/time.h"

// Wire-fault kind + spec only: a leaf header the plan parser
// (sim/experiment_spec.h) can include without pulling in the socket-level
// harness. The injector/feeder/proxy machinery lives in net/net_fault.h,
// which depends on feed_schedule.h and therefore on the parser itself.

namespace dsms {

/// Wire-level fault kinds the chaos harness can inject between a feeder and
/// an IngestServer. The engine-side analogue is sim/fault_injector.h; this
/// layer attacks the socket path instead of the operator graph. Each kind
/// maps to a server defense (DESIGN.md wire-fault matrix):
enum class NetFaultKind : uint8_t {
  kNone = 0,
  /// Frames written in several send(2) calls cut at arbitrary byte offsets —
  /// stresses FrameDecoder reassembly. Semantics-preserving: the server's
  /// sink output must stay byte-identical to a fault-free run.
  kSplit = 1,
  /// Several frames coalesced into one send — stresses multi-frame carving
  /// from a single recv. Semantics-preserving.
  kCoalesce = 2,
  /// Slow-drip peer: a frame trickles out in tiny chunks separated by wall
  /// gaps (a cooperative slowloris). Semantics-preserving for the stream;
  /// the server-side byte-rate floor exists for the uncooperative version.
  kSlowloris = 3,
  /// Abrupt TCP RST partway through an encoded frame (SO_LINGER 0 close).
  /// Kernel-buffered bytes may be lost, so the feeder must resume with the
  /// HELLO/RESUME handshake to preserve exactly-once.
  kRstMidFrame = 4,
  /// A half-open companion connection that sends nothing and never closes —
  /// the classic dead peer the handshake deadline / idle timeout must reap.
  /// The primary schedule keeps flowing, so output stays byte-identical.
  kHalfOpen = 5,
  /// Reconnect storm: repeatedly drop the connection, replay `stale`
  /// fabricated (wrong) resume tokens that the server must reject, then
  /// resume honestly. Exactly-once must survive every cycle.
  kReconnectStorm = 6,
  /// A second HELLO sent mid-stream on an established connection — a
  /// protocol violation the server answers by closing; the feeder then
  /// resumes honestly.
  kDuplicateHello = 7,
  /// Garbage bytes injected after valid frames — poisons that connection's
  /// decoder (sticky), which must isolate to the connection; the feeder
  /// reconnects and resumes.
  kGarbage = 8,
};

const char* NetFaultKindToString(NetFaultKind kind);

/// Parses the DSL spelling ("split", "coalesce", "slowloris", "rst",
/// "half-open", "reconnect-storm", "dup-hello", "garbage").
std::optional<NetFaultKind> ParseNetFaultKind(const std::string& text);

/// One `netfault kind=... seed=... at=...` statement. Defaults follow
/// sim/FaultSpec: every knob has a value that makes the kind do something
/// sensible without further tuning.
struct NetFaultSpec {
  NetFaultKind kind = NetFaultKind::kNone;
  /// Virtual time (schedule time) at or after which the fault starts firing.
  Timestamp at = 0;
  /// Seed of the injector RNG: one seed reproduces the full fault timeline
  /// byte for byte.
  uint64_t seed = 1;
  /// How many schedule frames the fault fires on (reconnect cycles for
  /// kReconnectStorm, affected frames otherwise), spread evenly across the
  /// schedule tail from `at`.
  int count = 3;
  /// Max bytes per chunk for kSplit/kSlowloris writes (0 = kind default:
  /// random cuts for split, 1-4 byte drips for slowloris).
  size_t chunk = 0;
  /// Wall-clock gap between slowloris drips.
  Duration gap = kMillisecond;
  /// Garbage byte count per injection (kGarbage), and the client->server
  /// byte offset between proxy-mode fault firings.
  size_t bytes = 64;
  /// Stale resume tokens replayed per reconnect cycle (kReconnectStorm).
  int stale = 1;
};

}  // namespace dsms

#endif  // DSMS_NET_NET_FAULT_SPEC_H_
