#include "net/wire_format.h"

#include <cstring>
#include <utility>

#include "common/strings.h"

namespace dsms {
namespace {

constexpr uint8_t kFlagHasTimestamp = 1u << 0;
constexpr uint8_t kFlagHasArrivalHint = 1u << 1;
constexpr uint8_t kKnownFlags = kFlagHasTimestamp | kFlagHasArrivalHint;

void AppendU32(uint32_t v, std::string* out) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Cursor over a frame body; every Read checks the remaining length so a
/// truncated value can never read past the frame.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *v = r;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *v = r;
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status DecodeValue(Reader* reader, Value* out) {
  uint8_t tag = 0;
  if (!reader->ReadU8(&tag)) {
    return InvalidArgumentError("truncated frame: missing value tag");
  }
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kInt64): {
      uint64_t bits = 0;
      if (!reader->ReadU64(&bits)) {
        return InvalidArgumentError("truncated frame: short int64 value");
      }
      *out = Value(static_cast<int64_t>(bits));
      return OkStatus();
    }
    case static_cast<uint8_t>(ValueType::kDouble): {
      uint64_t bits = 0;
      if (!reader->ReadU64(&bits)) {
        return InvalidArgumentError("truncated frame: short double value");
      }
      double d = 0.0;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value(d);
      return OkStatus();
    }
    case static_cast<uint8_t>(ValueType::kString): {
      uint32_t len = 0;
      if (!reader->ReadU32(&len)) {
        return InvalidArgumentError("truncated frame: short string length");
      }
      if (len > reader->remaining()) {
        return InvalidArgumentError(StrFormat(
            "truncated frame: string of %u bytes exceeds frame", len));
      }
      std::string s;
      reader->ReadBytes(len, &s);
      *out = Value(std::move(s));
      return OkStatus();
    }
    case static_cast<uint8_t>(ValueType::kBool): {
      uint8_t b = 0;
      if (!reader->ReadU8(&b)) {
        return InvalidArgumentError("truncated frame: short bool value");
      }
      if (b > 1) {
        return InvalidArgumentError(
            StrFormat("bad bool encoding 0x%02x", b));
      }
      *out = Value(b == 1);
      return OkStatus();
    }
    default:
      return InvalidArgumentError(
          StrFormat("unknown value type tag 0x%02x", tag));
  }
}

Status DecodeBody(const char* data, size_t size, WireFrame* out) {
  Reader reader(data, size);
  uint8_t version = 0, type = 0, flags = 0, value_count = 0;
  uint32_t stream_id = 0;
  // kMinFrameBody guarantees these reads; keep the checks anyway so the
  // decoder has exactly one failure discipline.
  if (!reader.ReadU8(&version) || !reader.ReadU8(&type) ||
      !reader.ReadU8(&flags) || !reader.ReadU8(&value_count) ||
      !reader.ReadU32(&stream_id)) {
    return InvalidArgumentError("truncated frame: short header");
  }
  if (version != kWireVersion) {
    return InvalidArgumentError(
        StrFormat("unsupported wire version %u (want %u)", version,
                  kWireVersion));
  }
  if (type > static_cast<uint8_t>(WireFrame::Type::kReject)) {
    return InvalidArgumentError(StrFormat("unknown frame type %u", type));
  }
  if ((flags & ~kKnownFlags) != 0) {
    return InvalidArgumentError(
        StrFormat("unknown frame flags 0x%02x", flags));
  }
  out->type = static_cast<WireFrame::Type>(type);
  out->stream_id = static_cast<int32_t>(stream_id);
  out->timestamp.reset();
  out->arrival_hint.reset();
  out->values.clear();
  if ((flags & kFlagHasTimestamp) != 0) {
    uint64_t bits = 0;
    if (!reader.ReadU64(&bits)) {
      return InvalidArgumentError("truncated frame: short timestamp");
    }
    out->timestamp = static_cast<Timestamp>(bits);
  }
  if ((flags & kFlagHasArrivalHint) != 0) {
    uint64_t bits = 0;
    if (!reader.ReadU64(&bits)) {
      return InvalidArgumentError("truncated frame: short arrival hint");
    }
    out->arrival_hint = static_cast<Timestamp>(bits);
  }
  if (out->type == WireFrame::Type::kPunctuation) {
    if (!out->timestamp.has_value()) {
      return InvalidArgumentError("punctuation frame without a timestamp");
    }
    if (value_count != 0) {
      return InvalidArgumentError("punctuation frame with a payload");
    }
  }
  if (IsControlFrame(out->type)) {
    if (out->timestamp.has_value() || out->arrival_hint.has_value()) {
      return InvalidArgumentError(StrFormat(
          "%s frame with a timestamp", WireFrameTypeToString(out->type)));
    }
    if (out->type == WireFrame::Type::kHello && value_count != 0) {
      return InvalidArgumentError("hello frame with a payload");
    }
    if (out->type == WireFrame::Type::kReject && value_count != 1) {
      return InvalidArgumentError("reject frame needs exactly one reason");
    }
  }
  out->values.reserve(value_count);
  for (uint8_t i = 0; i < value_count; ++i) {
    Value value;
    DSMS_RETURN_IF_ERROR(DecodeValue(&reader, &value));
    out->values.push_back(std::move(value));
  }
  if (reader.remaining() != 0) {
    return InvalidArgumentError(StrFormat(
        "frame has %zu trailing bytes after %u values",
        reader.remaining(), value_count));
  }
  if (out->type == WireFrame::Type::kReject &&
      out->values[0].type() != ValueType::kString) {
    return InvalidArgumentError("reject frame reason must be a string");
  }
  if (out->type == WireFrame::Type::kResumeState ||
      out->type == WireFrame::Type::kResume) {
    if (out->values.size() % 2 != 0) {
      return InvalidArgumentError(StrFormat(
          "%s frame needs (stream, seq) pairs; got %zu values",
          WireFrameTypeToString(out->type), out->values.size()));
    }
    for (const Value& value : out->values) {
      if (value.type() != ValueType::kInt64) {
        return InvalidArgumentError(StrFormat(
            "%s frame values must all be int64",
            WireFrameTypeToString(out->type)));
      }
    }
  }
  return OkStatus();
}

}  // namespace

const char* WireFrameTypeToString(WireFrame::Type type) {
  switch (type) {
    case WireFrame::Type::kData:
      return "data";
    case WireFrame::Type::kPunctuation:
      return "punctuation";
    case WireFrame::Type::kHello:
      return "hello";
    case WireFrame::Type::kResumeState:
      return "resume-state";
    case WireFrame::Type::kResume:
      return "resume";
    case WireFrame::Type::kReject:
      return "reject";
  }
  return "unknown";
}

Status EncodeFrame(const WireFrame& frame, std::string* out) {
  if (frame.values.size() > 255) {
    return InvalidArgumentError(StrFormat(
        "frame has %zu values; the wire format carries at most 255",
        frame.values.size()));
  }
  if (frame.type == WireFrame::Type::kPunctuation) {
    if (!frame.timestamp.has_value()) {
      return InvalidArgumentError("punctuation frame needs a timestamp");
    }
    if (!frame.values.empty()) {
      return InvalidArgumentError("punctuation frame cannot carry values");
    }
  }
  if (IsControlFrame(frame.type)) {
    if (frame.timestamp.has_value() || frame.arrival_hint.has_value()) {
      return InvalidArgumentError(StrFormat(
          "%s frame cannot carry timestamps",
          WireFrameTypeToString(frame.type)));
    }
    if (frame.type == WireFrame::Type::kHello && !frame.values.empty()) {
      return InvalidArgumentError("hello frame cannot carry values");
    }
    if (frame.type == WireFrame::Type::kReject &&
        (frame.values.size() != 1 ||
         frame.values[0].type() != ValueType::kString)) {
      return InvalidArgumentError(
          "reject frame needs exactly one string reason");
    }
    if (frame.type == WireFrame::Type::kResumeState ||
        frame.type == WireFrame::Type::kResume) {
      if (frame.values.size() % 2 != 0) {
        return InvalidArgumentError(StrFormat(
            "%s frame needs (stream, seq) pairs",
            WireFrameTypeToString(frame.type)));
      }
      for (const Value& value : frame.values) {
        if (value.type() != ValueType::kInt64) {
          return InvalidArgumentError(StrFormat(
              "%s frame values must all be int64",
              WireFrameTypeToString(frame.type)));
        }
      }
    }
  }
  std::string body;
  body.push_back(static_cast<char>(kWireVersion));
  body.push_back(static_cast<char>(frame.type));
  uint8_t flags = 0;
  if (frame.timestamp.has_value()) flags |= kFlagHasTimestamp;
  if (frame.arrival_hint.has_value()) flags |= kFlagHasArrivalHint;
  body.push_back(static_cast<char>(flags));
  body.push_back(static_cast<char>(frame.values.size()));
  AppendU32(static_cast<uint32_t>(frame.stream_id), &body);
  if (frame.timestamp.has_value()) {
    AppendU64(static_cast<uint64_t>(*frame.timestamp), &body);
  }
  if (frame.arrival_hint.has_value()) {
    AppendU64(static_cast<uint64_t>(*frame.arrival_hint), &body);
  }
  for (const Value& value : frame.values) {
    body.push_back(static_cast<char>(value.type()));
    switch (value.type()) {
      case ValueType::kInt64:
        AppendU64(static_cast<uint64_t>(value.int64_value()), &body);
        break;
      case ValueType::kDouble: {
        uint64_t bits = 0;
        double d = value.double_value();
        std::memcpy(&bits, &d, sizeof(bits));
        AppendU64(bits, &body);
        break;
      }
      case ValueType::kString: {
        const std::string& s = value.string_value();
        if (s.size() > kMaxFrameBytes) {
          return InvalidArgumentError("string value exceeds max frame size");
        }
        AppendU32(static_cast<uint32_t>(s.size()), &body);
        body.append(s);
        break;
      }
      case ValueType::kBool:
        body.push_back(value.bool_value() ? 1 : 0);
        break;
    }
  }
  if (body.size() > kMaxFrameBytes) {
    return InvalidArgumentError(StrFormat(
        "encoded frame body of %zu bytes exceeds the %zu-byte cap",
        body.size(), kMaxFrameBytes));
  }
  AppendU32(static_cast<uint32_t>(body.size()), out);
  out->append(body);
  return OkStatus();
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(const void* data, size_t size) {
  if (size == 0) return;
  // Compact the consumed prefix before growing; amortized O(1) per byte.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), size);
}

Result<bool> FrameDecoder::Next(WireFrame* out) {
  if (!error_.ok()) return error_;
  const size_t available = buffer_.size() - consumed_;
  if (available < 4) return false;
  const char* p = buffer_.data() + consumed_;
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  if (length < kMinFrameBody) {
    error_ = InvalidArgumentError(
        StrFormat("undersized frame body (%u bytes)", length));
    return error_;
  }
  if (length > max_frame_bytes_) {
    error_ = OutOfRangeError(StrFormat(
        "oversized frame body (%u bytes; cap %zu)", length,
        max_frame_bytes_));
    return error_;
  }
  if (available < 4 + static_cast<size_t>(length)) return false;
  Status status = DecodeBody(p + 4, length, out);
  if (!status.ok()) {
    error_ = status;
    return error_;
  }
  consumed_ += 4 + static_cast<size_t>(length);
  ++frames_decoded_;
  return true;
}

}  // namespace dsms
