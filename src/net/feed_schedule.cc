#include "net/feed_schedule.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "common/random.h"
#include "common/strings.h"
#include "core/tuple.h"
#include "operators/source.h"
#include "sim/arrival_process.h"
#include "sim/event_queue.h"

namespace dsms {
namespace {

/// Mirror of Simulation::Feed, minus the executor coupling: everything that
/// determines the frame sequence, nothing that depends on engine load.
struct FeedState {
  const FeedSpec* spec = nullptr;
  Source* source = nullptr;
  std::unique_ptr<ArrivalProcess> process;
  Simulation::PayloadFn payload;
  Pcg32 jitter_rng;
  uint64_t seq = 0;
  Timestamp last_app_ts = kMinTimestamp;
};

}  // namespace

Result<std::vector<ScheduledFrame>> BuildFeedSchedule(
    const Experiment& experiment, Timestamp horizon) {
  if (!experiment.faults.empty()) {
    return InvalidArgumentError(
        "fault statements have no network replay; drive misbehaviour with "
        "the feeder's own knobs instead");
  }

  std::vector<std::unique_ptr<FeedState>> feeds;
  // The source's promised bound evolves as the replayed ingests and
  // heartbeats land; external feeds clamp their app timestamps against it,
  // exactly like Source::IngestExternal's caller in the simulation.
  std::map<const Source*, Timestamp> promised;

  EventQueue events;
  std::vector<ScheduledFrame> out;

  auto emit = [&out](Timestamp time, WireFrame frame) {
    frame.arrival_hint = time;
    out.push_back(ScheduledFrame{time, std::move(frame)});
  };

  // Self-rescheduling arrival events, one chain per feed — the same shape
  // (and therefore the same EventQueue tie-break order) as Simulation's
  // AddFeed/DeliverArrival.
  std::vector<std::unique_ptr<std::function<void(Timestamp)>>> ticks;

  auto schedule_arrival = [&events](FeedState* feed, Timestamp after,
                                    std::function<void(Timestamp)>* tick) {
    Duration gap = feed->process->NextGap();
    if (gap < 0) return;  // Trace exhausted.
    events.Schedule(after + gap, *tick);
  };

  for (const FeedSpec& spec : experiment.feeds) {
    auto* source =
        dynamic_cast<Source*>(experiment.plan.Find(spec.source));
    if (source == nullptr) {
      return InvalidArgumentError(StrFormat(
          "feed '%s' does not name a stream", spec.source.c_str()));
    }
    auto feed = std::make_unique<FeedState>();
    feed->spec = &spec;
    feed->source = source;
    Result<std::unique_ptr<ArrivalProcess>> process =
        MakeArrivalProcess(spec);
    if (!process.ok()) return process.status();
    feed->process = std::move(*process);
    feed->payload = MakeFeedPayload(spec);
    feed->jitter_rng = Pcg32(FeedJitterSeed(spec), /*stream=*/0x177e7);
    FeedState* raw = feed.get();
    feeds.push_back(std::move(feed));

    auto* tick = ticks
                     .emplace_back(std::make_unique<
                                   std::function<void(Timestamp)>>())
                     .get();
    *tick = [raw, tick, &emit, &promised, &schedule_arrival](Timestamp now) {
      Source* source = raw->source;
      WireFrame frame;
      frame.type = WireFrame::Type::kData;
      frame.stream_id = source->stream_id();
      frame.values = raw->payload(raw->seq, now);
      ++raw->seq;
      if (source->timestamp_kind() == TimestampKind::kExternal) {
        Duration skew = source->skew_bound();
        Duration jitter =
            skew > 0 ? raw->jitter_rng.NextInt(0, skew - 1) : 0;
        Timestamp app_ts = now - jitter;
        app_ts = std::max(app_ts, raw->last_app_ts);
        auto it = promised.find(source);
        if (it != promised.end()) app_ts = std::max(app_ts, it->second);
        raw->last_app_ts = app_ts;
        promised[source] = std::max(
            promised.count(source) ? promised[source] : kMinTimestamp,
            app_ts);
        frame.timestamp = app_ts;
      }
      emit(now, std::move(frame));
      schedule_arrival(raw, now, tick);
    };
    schedule_arrival(raw, /*after=*/0, tick);
  }

  for (const HeartbeatSpec& heartbeat : experiment.heartbeats) {
    auto* source =
        dynamic_cast<Source*>(experiment.plan.Find(heartbeat.source));
    if (source == nullptr) {
      return InvalidArgumentError(StrFormat(
          "heartbeat '%s' does not name a stream",
          heartbeat.source.c_str()));
    }
    Duration period = heartbeat.period;
    auto* tick = ticks
                     .emplace_back(std::make_unique<
                                   std::function<void(Timestamp)>>())
                     .get();
    *tick = [source, period, tick, &emit, &promised,
             &events](Timestamp now) {
      Timestamp bound = source->timestamp_kind() == TimestampKind::kExternal
                            ? now - source->skew_bound()
                            : now;
      WireFrame frame;
      frame.type = WireFrame::Type::kPunctuation;
      frame.stream_id = source->stream_id();
      frame.timestamp = bound;
      emit(now, std::move(frame));
      // InjectPunctuation never lowers the promise; track the clamp so a
      // later external data frame cannot regress below this bound.
      Timestamp prior =
          promised.count(source) ? promised[source] : kMinTimestamp;
      promised[source] = std::max(prior, bound);
      events.Schedule(now + period, *tick);
    };
    events.Schedule(heartbeat.phase + period, *tick);
  }

  // Drain the calendar in delivery order. Simulation::Run never fires an
  // event scheduled at or past the horizon, so neither do we.
  while (!events.empty()) {
    Timestamp next = events.NextTime();
    if (next >= horizon) break;
    events.FireDue(next);
  }
  return out;
}

}  // namespace dsms
