#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "obs/trace_wiring.h"
#include "obs/tracer.h"
#include "recovery/recovery_manager.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(
        StrFormat("fcntl(O_NONBLOCK): %s", strerror(errno)));
  }
  return OkStatus();
}

}  // namespace

IngestServer::IngestServer(QueryGraph* graph, Executor* executor,
                           VirtualClock* clock, IngestServerOptions options)
    : graph_(graph),
      executor_(executor),
      clock_(clock),
      options_(std::move(options)),
      ingest_clock_(clock, options_.clock_mode) {
  DSMS_CHECK(graph != nullptr);
  DSMS_CHECK(executor != nullptr);
  DSMS_CHECK(clock != nullptr);
  graph_->ReplaceBufferListeners(&queue_tracker_);
  graph_->AddBufferListener(&order_validator_);
  // Buffers restored from a checkpoint are repopulated before the server
  // (and its tracker) exists; seed the occupancy counters so the first pop
  // of a restored tuple does not underflow them. Fresh graphs are empty and
  // this is a no-op.
  for (int i = 0; i < graph_->num_buffers(); ++i) {
    const StreamBuffer* buffer = graph_->buffer(i);
    queue_tracker_.SeedOccupancy(static_cast<int64_t>(buffer->size()),
                                 static_cast<int64_t>(buffer->data_size()));
  }
}

IngestServer::~IngestServer() {
  for (auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  graph_->ReplaceBufferListeners(nullptr);
}

void IngestServer::AttachRecovery(RecoveryManager* recovery) {
  DSMS_CHECK(recovery != nullptr);
  DSMS_CHECK(recovery_ == nullptr);
  DSMS_CHECK_LT(listen_fd_, 0);  // before Start()
  recovery_ = recovery;
}

void IngestServer::AttachTracer(Tracer* tracer) {
  DSMS_CHECK(tracer != nullptr);
  DSMS_CHECK(tracer_ == nullptr);
  tracer_ = tracer;
  AnnotateTracks(*graph_, tracer);
  occupancy_tracer_ =
      std::make_unique<BufferOccupancyTracer>(tracer, graph_->num_buffers());
  graph_->AddBufferListener(occupancy_tracer_.get());
}

Status IngestServer::Start() {
  if (listen_fd_ >= 0) return FailedPreconditionError("already started");
  if (graph_ == nullptr || !graph_->validated()) {
    return FailedPreconditionError("server needs a validated plan");
  }
  for (Source* source : graph_->sources()) {
    auto [it, inserted] =
        sources_by_stream_.emplace(source->stream_id(), source);
    if (!inserted) {
      return InvalidArgumentError(StrFormat(
          "streams '%s' and '%s' share wire stream id %d",
          it->second->name().c_str(), source->name().c_str(),
          source->stream_id()));
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(StrFormat("socket: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(
        StrFormat("bad listen address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return InternalError(StrFormat("bind %s:%u: %s", options_.host.c_str(),
                                   options_.port, strerror(errno)));
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    return InternalError(StrFormat("listen: %s", strerror(errno)));
  }
  DSMS_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return InternalError(StrFormat("getsockname: %s", strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  return OkStatus();
}

void IngestServer::RejectConnection(int fd, const std::string& reason) {
  ++admission_rejects_;
  DSMS_LOG(Warning) << "rejecting connection: " << reason;
  WireFrame reject;
  reject.type = WireFrame::Type::kReject;
  reject.values.emplace_back(reason);
  std::string encoded;
  if (EncodeFrame(reject, &encoded).ok()) {
    // Best-effort single write on the still-blocking fresh socket: its send
    // buffer is empty so this never blocks meaningfully, and a peer that
    // cannot even take these bytes learns nothing worse from a bare close.
    ::send(fd, encoded.data(), encoded.size(), MSG_NOSIGNAL);
  }
  ::close(fd);
}

void IngestServer::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a transient error: retry next round.
    // Admission control runs before the fd ever becomes a Connection: an
    // overloaded server says WHY it refuses (kReject) instead of letting
    // the peer discover a silent close and retry into the same wall.
    if (options_.max_connections > 0) {
      int open_count = 0;
      for (const auto& c : connections_) {
        if (c->open) ++open_count;
      }
      if (open_count >= options_.max_connections) {
        RejectConnection(fd, StrFormat("connection limit %d reached",
                                       options_.max_connections));
        continue;
      }
    }
    if (options_.ingest_memory_budget > 0 &&
        MemoryFootprint() >= options_.ingest_memory_budget) {
      RejectConnection(
          fd, StrFormat("ingest memory budget %zu bytes exhausted",
                        options_.ingest_memory_budget));
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_connection_id_++;
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    conn->report.id = conn->id;
    conn->report.open = true;
    // The idle clock starts at accept: a peer that connects and never even
    // sends its HELLO is exactly what the sweep exists to shed.
    conn->last_activity = clock_->now();
    conn->accepted_at = clock_->now();
    conn->window_start = clock_->now();
    ++connections_accepted_;
    ++connections_this_process_;
    connections_.push_back(std::move(conn));
  }
}

void IngestServer::CloseConnection(Connection* conn) {
  if (!conn->open) return;
  conn->open = false;
  conn->report.open = false;
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  // The dropped peer's promises no longer hold the checkpoint frontier
  // back — unless another live connection is still feeding the stream.
  for (int32_t stream : conn->streams_fed) {
    bool still_fed = false;
    for (const auto& other : connections_) {
      if (other->open && other->streams_fed.count(stream) > 0) {
        still_fed = true;
        break;
      }
    }
    if (!still_fed) executor_->frontier()->Revoke(stream);
  }
}

void IngestServer::SweepIdle(Timestamp now) {
  // Handshake deadline: a peer that connected and never sent a single byte
  // is reaped well before the (usually much longer) idle timeout — the
  // half-open connection a crashed NAT or a SYN-only scanner leaves behind.
  if (options_.handshake_deadline > 0) {
    for (auto& conn : connections_) {
      if (!conn->open || conn->report.bytes > 0) continue;
      if (now - conn->accepted_at < options_.handshake_deadline) continue;
      conn->report.handshake_timed_out = true;
      ++handshake_timeouts_;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " sent nothing within the handshake deadline; "
                        << "closing";
      CloseConnection(conn.get());
    }
  }
  SweepSlowPeers(now);
  if (options_.idle_timeout <= 0) return;
  for (auto& conn : connections_) {
    if (!conn->open) continue;
    if (now - conn->last_activity < options_.idle_timeout) continue;
    conn->report.idle_closed = true;
    ++idle_closes_;
    DSMS_LOG(Warning) << "connection " << conn->id << " idle for "
                      << (now - conn->last_activity)
                      << "us (helloed=" << conn->report.helloed
                      << "); closing";
    CloseConnection(conn.get());
  }
}

void IngestServer::StrikeSlowPeer(Connection* conn) {
  ++conn->report.slow_strikes;
  ++conn->report.degradation;
  conn->report.degradation = std::min(conn->report.degradation, 3);
  switch (conn->report.degradation) {
    case 1:
      // Tier 1 — shed: whatever it already queued is dropped and further
      // frames are discarded on arrival; the peer costs decode cycles only.
      ++slow_peer_sheds_;
      conn->report.degraded_shed_frames += conn->pending.size();
      degraded_shed_frames_ += conn->pending.size();
      conn->pending.clear();
      conn->pending_bytes = 0;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " below byte-rate floor; shedding";
      break;
    case 2:
      // Tier 2 — quarantine: the frontier is told the peer misbehaves, so
      // its streams' promises are revoked and the participant enters the
      // quarantine lifecycle (hysteresis and re-admission live there).
      ++slow_peer_quarantines_;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " still below floor; quarantining its streams";
      for (int32_t stream : conn->streams_fed) {
        executor_->frontier()->ReportViolation(
            stream, FrontierViolation::kPeerMisbehavior);
        bool still_fed = false;
        for (const auto& other : connections_) {
          if (other.get() != conn && other->open &&
              other->streams_fed.count(stream) > 0) {
            still_fed = true;
            break;
          }
        }
        if (!still_fed) executor_->frontier()->Revoke(stream);
      }
      break;
    default:
      // Tier 3 — close: three consecutive starved windows is a dead or
      // hostile peer, not a slow network.
      ++slow_peer_closes_;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " starved three windows; closing";
      CloseConnection(conn);
      break;
  }
}

void IngestServer::SweepSlowPeers(Timestamp now) {
  if (options_.min_bytes_per_second == 0) return;
  const Duration window = options_.slow_peer_window > 0
                              ? options_.slow_peer_window
                              : kSecond;
  const uint64_t floor_bytes =
      options_.min_bytes_per_second * static_cast<uint64_t>(window) /
      static_cast<uint64_t>(kSecond);
  for (auto& conn : connections_) {
    if (!conn->open) continue;
    if (conn->window_start == kMinTimestamp) {
      conn->window_start = now;
      conn->window_bytes = 0;
      continue;
    }
    if (now - conn->window_start < window) continue;
    if (conn->window_bytes < floor_bytes) {
      StrikeSlowPeer(conn.get());
    } else if (conn->report.degradation > 0) {
      // Hysteresis: one clean window steps down exactly one tier, so a
      // peer flapping around the floor cannot oscillate shed/unshed every
      // sweep.
      --conn->report.degradation;
      DSMS_LOG(Info) << "connection " << conn->id
                     << " back above floor; degradation now "
                     << conn->report.degradation;
    }
    conn->window_start = now;
    conn->window_bytes = 0;
  }
}

void IngestServer::ReadFrom(Connection* conn) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->last_activity = clock_->now();
      conn->report.bytes += static_cast<uint64_t>(n);
      conn->window_bytes += static_cast<uint64_t>(n);
      bytes_received_ += static_cast<uint64_t>(n);
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: whatever was decoded still gets delivered; the
    // socket is done.
    CloseConnection(conn);
    break;
  }
  // Carve out complete frames now so NextPendingTime sees their hints.
  for (;;) {
    const size_t buffered_before = conn->decoder.buffered_bytes();
    WireFrame frame;
    Result<bool> got = conn->decoder.Next(&frame);
    if (!got.ok()) {
      ++conn->report.decode_errors;
      ++decode_errors_;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " decode error: " << got.status().message();
      CloseConnection(conn);
      break;
    }
    if (!*got) break;
    const size_t wire_bytes = buffered_before - conn->decoder.buffered_bytes();
    if (IsControlFrame(frame.type)) {
      HandleControl(conn, frame);
      if (!conn->open) break;
      continue;
    }
    if (conn->report.degradation >= 1) {
      // Tier >= 1: the slow-peer ladder is shedding this connection; its
      // frames are decoded (so the byte-rate window stays honest) and then
      // dropped before they can touch the engine.
      ++conn->report.degraded_shed_frames;
      ++degraded_shed_frames_;
      continue;
    }
    conn->pending_bytes += wire_bytes;
    conn->pending.push_back(
        PendingFrame{std::move(frame), static_cast<uint32_t>(wire_bytes)});
  }
  // Fail-stop on a decode-buffer overrun: a peer dripping an eternal
  // partial frame (or announcing a length it never finishes) is holding
  // memory hostage, and the only safe answer is to drop it.
  if (conn->open) {
    const size_t cap = options_.max_decode_buffer_bytes > 0
                           ? options_.max_decode_buffer_bytes
                           : 2 * options_.max_frame_bytes;
    if (conn->decoder.buffered_bytes() > cap) {
      CloseForOverrun(conn, "decode buffer", conn->decoder.buffered_bytes(),
                      cap);
    }
  }
}

void IngestServer::CloseForOverrun(Connection* conn, const char* what,
                                   size_t used, size_t cap) {
  conn->report.overrun_closed = true;
  ++overrun_closes_;
  DSMS_LOG(Warning) << "connection " << conn->id << " overran its " << what
                    << " (" << used << " > " << cap << " bytes); closing";
  CloseConnection(conn);
}

void IngestServer::SendResumeState(Connection* conn) {
  // Answer with the durable watermark. Without recovery attached the
  // watermark is legitimately empty: "nothing durable, send everything".
  WireFrame reply;
  reply.type = WireFrame::Type::kResumeState;
  if (recovery_ != nullptr) {
    for (const auto& [stream, seq] : recovery_->durable_seqs()) {
      reply.values.emplace_back(static_cast<int64_t>(stream));
      reply.values.emplace_back(static_cast<int64_t>(seq));
    }
  }
  Status encoded = EncodeFrame(reply, &conn->outbox);
  if (!encoded.ok()) {
    ++conn->report.protocol_errors;
    DSMS_LOG(Warning) << "connection " << conn->id
                      << " resume-state encode: " << encoded.message();
    CloseConnection(conn);
    return;
  }
  if (options_.max_outbox_bytes > 0 &&
      conn->outbox.size() > options_.max_outbox_bytes) {
    // The peer HELLOed but never drained earlier replies: a half-open
    // reader. Fail-stop before the outbox becomes their memory lease.
    CloseForOverrun(conn, "outbox", conn->outbox.size(),
                    options_.max_outbox_bytes);
    return;
  }
  FlushOutbox(conn);
}

bool IngestServer::AnyClosedConnectionPending() const {
  for (const auto& conn : connections_) {
    if (!conn->open && !conn->pending.empty()) return true;
  }
  return false;
}

void IngestServer::AnswerDeferredHellos() {
  if (AnyClosedConnectionPending()) return;
  for (auto& conn : connections_) {
    if (conn->open && conn->hello_deferred) {
      conn->hello_deferred = false;
      SendResumeState(conn.get());
    }
  }
}

void IngestServer::HandleControl(Connection* conn, const WireFrame& frame) {
  switch (frame.type) {
    case WireFrame::Type::kHello: {
      if (conn->report.helloed) {
        // A second HELLO mid-stream is a confused (or hostile) peer; the
        // resume accounting cannot be renegotiated on a live connection.
        ++conn->report.protocol_errors;
        DSMS_LOG(Warning) << "connection " << conn->id
                          << " sent a duplicate hello; closing";
        CloseConnection(conn);
        return;
      }
      conn->report.helloed = true;
      // Drain-before-ack: while a dead predecessor still has decoded
      // frames on the ingest runway, the durable watermark is about to
      // move. Answering now would hand the resuming feeder a stale count
      // and it would re-send frames that are already on their way in —
      // duplicates at the sink. Hold the reply until the runway is clear.
      if (recovery_ != nullptr && AnyClosedConnectionPending()) {
        conn->hello_deferred = true;
        return;
      }
      SendResumeState(conn);
      return;
    }
    case WireFrame::Type::kResume: {
      // The client echoes the (stream, seq) pairs it resumes from; a stale
      // token (e.g. from a server whose recovery directory was wiped) must
      // be refused loudly or the exactly-once accounting silently skews.
      std::vector<int32_t> mismatched;
      for (size_t i = 0; i + 1 < frame.values.size(); i += 2) {
        const int32_t stream =
            static_cast<int32_t>(frame.values[i].int64_value());
        const uint64_t seq =
            static_cast<uint64_t>(frame.values[i + 1].int64_value());
        uint64_t durable = 0;
        if (recovery_ != nullptr) {
          auto it = recovery_->durable_seqs().find(stream);
          if (it != recovery_->durable_seqs().end()) durable = it->second;
        }
        if (seq != durable) mismatched.push_back(stream);
      }
      if (!mismatched.empty()) {
        ++resume_rejects_;
        ++conn->report.protocol_errors;
        DSMS_LOG(Warning) << "connection " << conn->id
                          << " presented a stale resume token; dropping";
        // Stale tokens are wire-level evidence against the streams they
        // claim: route them through the frontier's one validation funnel
        // so a storm of replays drives the quarantine lifecycle.
        for (int32_t stream : mismatched) {
          executor_->frontier()->ReportViolation(
              stream, FrontierViolation::kPeerMisbehavior);
        }
        CloseConnection(conn);
      }
      return;
    }
    case WireFrame::Type::kResumeState:
    case WireFrame::Type::kReject:
      // Server-to-client only; a client sending them is confused.
      ++conn->report.protocol_errors;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " sent a server-side "
                        << WireFrameTypeToString(frame.type) << " frame";
      CloseConnection(conn);
      return;
    default:
      return;  // unreachable: callers gate on IsControlFrame
  }
}

void IngestServer::FlushOutbox(Connection* conn) {
  while (conn->open && !conn->outbox.empty()) {
    size_t chunk = conn->outbox.size();
    // Test shim: cap the bytes offered to one send so the partial-write
    // resume path (queued remainder + POLLOUT) is exercised on loopback
    // sockets whose buffers would otherwise swallow everything at once.
    if (options_.max_write_bytes > 0) {
      chunk = std::min(chunk, options_.max_write_bytes);
    }
    ssize_t n = ::send(conn->fd, conn->outbox.data(), chunk, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbox.erase(0, static_cast<size_t>(n));
      if (options_.max_write_bytes > 0) {
        return;  // one capped write per flush; POLLOUT drives the rest
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;  // POLLOUT in PollOnce resumes the flush.
    }
    // EPIPE/ECONNRESET and friends: the peer is gone; everything decoded
    // so far still delivers, the socket is done.
    CloseConnection(conn);
    return;
  }
}

bool IngestServer::IngestFrame(Connection* conn, WireFrame frame,
                               Timestamp now) {
  auto it = sources_by_stream_.find(frame.stream_id);
  if (it == sources_by_stream_.end()) {
    ++conn->report.protocol_errors;
    DSMS_LOG(Warning) << "connection " << conn->id
                      << " addressed unknown stream " << frame.stream_id;
    CloseConnection(conn);
    return false;
  }
  Source* source = it->second;
  const uint64_t shed_before = source->output()->shed_tuples();

  if (frame.type == WireFrame::Type::kPunctuation) {
    // The decoder guarantees punctuation frames carry a timestamp.
    source->InjectPunctuation(*frame.timestamp);
    ++conn->report.punct_frames;
  } else {
    switch (source->timestamp_kind()) {
      case TimestampKind::kExternal: {
        if (!frame.timestamp.has_value()) {
          ++conn->report.protocol_errors;
          DSMS_LOG(Warning)
              << "connection " << conn->id << " sent an unstamped frame to "
              << "external stream '" << source->name() << "'";
          CloseConnection(conn);
          return false;
        }
        Timestamp app_ts = *frame.timestamp;
        bool violation =
            conn->skew.Observe(app_ts, now, source->skew_bound());
        if (violation) ++conn->report.skew_violations;
        conn->report.max_skew =
            std::max(conn->report.max_skew, conn->skew.max_skew());
        // Order regressions (below the stream's promise) and skew-contract
        // breaches both go down the faulty path: network producers must
        // never be able to abort the engine, so the arc's ViolationPolicy —
        // count, drop, or quarantine — decides, exactly as for simulated
        // fault injection.
        bool regresses = source->promised_bound() != kMinTimestamp &&
                         app_ts < source->promised_bound();
        if (violation || regresses) {
          source->IngestFaulty(app_ts, std::move(frame.values), now);
        } else {
          source->IngestExternal(app_ts, std::move(frame.values), now);
        }
        break;
      }
      case TimestampKind::kInternal: {
        // Arrival stamping with the source's granularity. Quantization can
        // step behind a finer-grained promise (e.g. a heartbeat bound
        // between grid points); that is producer misbehaviour from the
        // buffer's viewpoint, so it too takes the faulty path instead of
        // tripping the source's monotonicity check.
        Duration g = source->timestamp_granularity();
        Timestamp stamped = g <= 1 ? now : (now / g) * g;
        if (source->promised_bound() != kMinTimestamp &&
            stamped < source->promised_bound()) {
          source->IngestFaulty(stamped, std::move(frame.values), now);
        } else {
          source->Ingest(std::move(frame.values), now);
        }
        break;
      }
      case TimestampKind::kLatent:
        source->Ingest(std::move(frame.values), now);
        break;
    }
    ++conn->report.data_frames;
  }

  ++conn->report.frames;
  ++frames_ingested_;
  conn->last_activity = now;
  // Frontier participation: this connection now vouches for the stream's
  // promise (and a reconnect reinstates a promise a disconnect revoked).
  conn->streams_fed.insert(frame.stream_id);
  executor_->frontier()->NoteConnectionActivity(frame.stream_id);
  conn->report.shed_tuples +=
      source->output()->shed_tuples() - shed_before;
  if (tracer_ != nullptr) {
    tracer_->RecordNetIngest(source->id(),
                             static_cast<uint8_t>(frame.type), conn->id);
  }
  return true;
}

bool IngestServer::DeliverDue() {
  bool delivered = false;
  for (auto& conn : connections_) {
    if (conn->retry_at != kMinTimestamp) {
      if (conn->retry_at > clock_->now()) continue;
      conn->retry_at = kMinTimestamp;
    }
    while (!conn->pending.empty()) {
      WireFrame& frame = conn->pending.front().frame;
      if (ingest_clock_.mode() == IngestClock::Mode::kFrameDriven &&
          frame.arrival_hint.has_value() &&
          *frame.arrival_hint > clock_->now()) {
        break;  // Future arrival; the idle branch advances the clock.
      }
      auto sit = sources_by_stream_.find(frame.stream_id);
      if (sit != sources_by_stream_.end()) {
        Source* source = sit->second;
        // Same producer-side backpressure as Simulation::DeliverArrival:
        // a full arc anywhere downstream parks this connection (reads
        // pause too — see Run's pollfd setup — so the peer's TCP window
        // eventually closes) and the frame retries shortly.
        if (source->output()->overload_policy() ==
                OverloadPolicy::kBlockSource &&
            source->output()->capacity_limit() > 0 &&
            graph_->DownstreamBlocked(source)) {
          conn->retry_at = clock_->now() + kMillisecond;
          break;
        }
      }
      Timestamp now = ingest_clock_.OnFrameArrival(frame.arrival_hint);
      WireFrame taken = std::move(frame);
      conn->pending_bytes -= conn->pending.front().wire_bytes;
      conn->pending.pop_front();
      delivered = true;
      if (recovery_ != nullptr && recovery_->wal_enabled()) {
        // Log the frame ahead of delivery: a crash between the append and
        // the ingest replays it (at-least-once into a deterministic
        // engine = exactly-once at the sink).
        std::string encoded;
        Status logged = EncodeFrame(taken, &encoded);
        if (logged.ok()) {
          logged = recovery_->AppendFrame(now, conn->id, taken.stream_id,
                                          encoded);
        }
        if (!logged.ok()) {
          // A write-ahead log that cannot be written voids the durability
          // contract; stop serving rather than silently degrade.
          wal_error_ = logged;
          stop_ = true;
          return delivered;
        }
      }
      if (!IngestFrame(conn.get(), std::move(taken), now)) break;
    }
  }
  return delivered;
}

Timestamp IngestServer::NextPendingTime() const {
  Timestamp next = kMaxTimestamp;
  for (const auto& conn : connections_) {
    if (conn->pending.empty()) continue;
    Timestamp t;
    if (conn->retry_at != kMinTimestamp) {
      t = conn->retry_at;
    } else if (ingest_clock_.mode() == IngestClock::Mode::kFrameDriven &&
               conn->pending.front().frame.arrival_hint.has_value()) {
      t = *conn->pending.front().frame.arrival_hint;
    } else {
      t = clock_->now();
    }
    next = std::min(next, t);
  }
  return next;
}

bool IngestServer::AnyOpenConnection() const {
  for (const auto& conn : connections_) {
    if (conn->open) return true;
  }
  return false;
}

bool IngestServer::AnyPendingFrame() const {
  for (const auto& conn : connections_) {
    if (!conn->pending.empty()) return true;
  }
  return false;
}

size_t IngestServer::MemoryFootprint() const {
  size_t total = 0;
  for (const auto& conn : connections_) {
    total += conn->decoder.buffered_bytes();
    total += conn->pending_bytes;
    total += conn->outbox.size();
  }
  return total;
}

Status IngestServer::PollOnce(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  std::vector<Connection*> polled;
  for (auto& conn : connections_) {
    if (!conn->open) continue;
    short events = 0;
    // Reads pause while parked on backpressure or while the decoded-frame
    // queue is full: the kernel buffer fills, the peer's send window
    // closes, and the producer genuinely slows down.
    if (conn->retry_at == kMinTimestamp &&
        conn->pending.size() < options_.max_pending_frames) {
      events |= POLLIN;
    }
    // Pending handshake bytes (a partial send left them queued) still flush
    // while reads are paused.
    if (!conn->outbox.empty()) events |= POLLOUT;
    if (events == 0) continue;
    fds.push_back(pollfd{conn->fd, events, 0});
    polled.push_back(conn.get());
  }
  int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) {
    return InternalError(StrFormat("poll: %s", strerror(errno)));
  }
  if (rc > 0) {
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    for (size_t i = 1; i < fds.size(); ++i) {
      Connection* conn = polled[i - 1];
      if ((fds[i].revents & POLLOUT) != 0) FlushOutbox(conn);
      if (conn->open &&
          (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ReadFrom(conn);
      }
    }
  }
  return OkStatus();
}

Status IngestServer::Run() {
  if (listen_fd_ < 0) return FailedPreconditionError("call Start() first");
  const Timestamp horizon = clock_->now() + options_.horizon;
  const auto wall_start = std::chrono::steady_clock::now();
  ingest_clock_.Start();

  auto wall_exceeded = [&]() {
    if (options_.wall_limit <= 0) return false;
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - wall_start);
    return elapsed.count() >= options_.wall_limit;
  };

  Status result = OkStatus();
  // Armed when the last connection closes; see the reconnect-grace exit.
  constexpr auto kNoPeerUnarmed = std::chrono::steady_clock::time_point::min();
  auto no_peer_since = kNoPeerUnarmed;
  while (!stop_ && clock_->now() < horizon) {
    if (options_.crash_at > 0 && clock_->now() >= options_.crash_at) {
      return AbortedError(StrFormat(
          "scheduled crash at virtual time %lld",
          static_cast<long long>(options_.crash_at)));
    }
    if (wall_exceeded()) {
      result = DeadlineExceededError("wall limit reached before horizon");
      break;
    }
    // Opportunistic socket drain, then the Simulation::Run shape: deliver
    // due arrivals, take one executor step, and only when the engine is
    // idle let time pass.
    DSMS_RETURN_IF_ERROR(PollOnce(/*timeout_ms=*/0));
    ingest_clock_.Tick();
    SweepIdle(clock_->now());
    DeliverDue();
    if (!wal_error_.ok()) break;
    // Deferred HELLO replies go out once dead connections' runways are
    // empty and the durable watermark is final (drain-before-ack).
    AnswerDeferredHellos();
    if (executor_->RunStep()) continue;

    // Engine idle: every source frontier is current, so this is the
    // punctuation-aligned instant a checkpoint may capture.
    MaybeCheckpointAtIdle();

    Timestamp next = NextPendingTime();
    if (next != kMaxTimestamp) {
      if (next >= horizon) break;
      if (next > clock_->now()) clock_->AdvanceTo(next);
      continue;
    }
    // Nothing buffered anywhere. In frame-driven mode a drained engine
    // with no peers left can never advance again — finish the run. In
    // wall mode (and while peers are connected) block in poll so real
    // time, not a busy loop, carries the clock toward the horizon.
    if (ingest_clock_.mode() == IngestClock::Mode::kFrameDriven &&
        connections_this_process_ > 0 && !AnyOpenConnection()) {
      // But not the instant the last socket closes: a resuming feeder
      // (chaos reconnect, rolling restart) is often mid-dial right now.
      // Linger for the reconnect grace; a new accept clears the timer.
      if (no_peer_since == kNoPeerUnarmed) {
        no_peer_since = std::chrono::steady_clock::now();
      }
      const auto lingered =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - no_peer_since)
              .count();
      if (lingered >= options_.reconnect_grace) break;
    } else {
      no_peer_since = kNoPeerUnarmed;
    }
    DSMS_RETURN_IF_ERROR(PollOnce(options_.poll_granularity_ms));
    ingest_clock_.Tick();
  }

  if (clock_->now() < horizon) clock_->AdvanceTo(horizon);
  // Same end-of-run drain as Simulation::Run: with lease expiry armed
  // (frontier tracker or legacy watchdog), the jump to the horizon is what
  // pushes a silent connection's source past its lease, so its idle-waiting
  // consumers get a fallback ETS instead of holding their tuples forever.
  if (executor_->liveness_enabled()) {
    executor_->RunUntilIdle();
  }
  if (!wal_error_.ok()) return wal_error_;
  return result;
}

void IngestServer::MaybeCheckpointAtIdle() {
  if (recovery_ == nullptr || !recovery_->checkpoint_enabled()) return;
  // The checkpoint frontier is the weakest promise any trusted source has
  // made: everything below it is closed, so operator state at or below the
  // frontier is final and the WAL prefix that produced it is droppable.
  // The frontier tracker answers (a quarantined or revoked source's stale
  // promise must not hold checkpoints back forever); with every source
  // healthy the answer equals the old min-over-all-sources scan.
  const Timestamp frontier = executor_->frontier()->CheckpointFrontier();
  if (!recovery_->ShouldCheckpoint(frontier)) return;
  Status status = recovery_->Checkpoint(graph_, executor_, clock_, frontier,
                                        SaveNetState());
  if (!status.ok()) {
    DSMS_LOG(Warning) << "checkpoint failed: " << status.message();
  }
}

Status IngestServer::CheckpointNow() {
  if (recovery_ == nullptr || !recovery_->checkpoint_enabled()) {
    return OkStatus();
  }
  return recovery_->Checkpoint(graph_, executor_, clock_,
                               executor_->frontier()->CheckpointFrontier(),
                               SaveNetState());
}

std::string IngestServer::SaveNetState() const {
  StateWriter w;
  w.U64(static_cast<uint64_t>(next_connection_id_));
  w.U64(connections_accepted_);
  w.U64(frames_ingested_);
  w.U64(bytes_received_);
  w.U64(decode_errors_);
  w.U64(resume_rejects_);
  w.U64(idle_closes_);
  w.U64(handshake_timeouts_);
  w.U64(admission_rejects_);
  w.U64(overrun_closes_);
  w.U64(slow_peer_sheds_);
  w.U64(slow_peer_quarantines_);
  w.U64(slow_peer_closes_);
  w.U64(degraded_shed_frames_);
  w.U32(static_cast<uint32_t>(connections_.size()));
  for (const auto& conn : connections_) {
    const ConnectionReport& r = conn->report;
    w.I64(r.id);
    w.U64(r.frames);
    w.U64(r.data_frames);
    w.U64(r.punct_frames);
    w.U64(r.bytes);
    w.U64(r.decode_errors);
    w.U64(r.protocol_errors);
    w.U64(r.skew_violations);
    w.U64(r.shed_tuples);
    w.Ts(r.max_skew);
    w.U64(r.slow_strikes);
    w.U64(r.degraded_shed_frames);
    w.U32(static_cast<uint32_t>(r.degradation));
    w.U64(conn->skew.observed());
    w.U64(conn->skew.violations());
    w.Ts(conn->skew.raw_max_skew());
    w.Ts(conn->skew.raw_min_skew());
  }
  const std::map<int, Timestamp> bounds = order_validator_.ExportBounds();
  w.U32(static_cast<uint32_t>(bounds.size()));
  for (const auto& [buffer_id, bound] : bounds) {
    w.I64(buffer_id);
    w.Ts(bound);
  }
  w.U64(order_validator_.violations());
  w.U64(order_validator_.dropped());
  w.U64(order_validator_.quarantined());
  return w.Take();
}

Status IngestServer::RestoreNetState(const std::string& blob) {
  if (blob.empty()) return OkStatus();
  if (listen_fd_ >= 0) {
    return FailedPreconditionError("restore net state before Start()");
  }
  StateReader r(blob);
  next_connection_id_ = static_cast<int64_t>(r.U64());
  connections_accepted_ = r.U64();
  frames_ingested_ = r.U64();
  bytes_received_ = r.U64();
  decode_errors_ = r.U64();
  resume_rejects_ = r.U64();
  idle_closes_ = r.U64();
  handshake_timeouts_ = r.U64();
  admission_rejects_ = r.U64();
  overrun_closes_ = r.U64();
  slow_peer_sheds_ = r.U64();
  slow_peer_quarantines_ = r.U64();
  slow_peer_closes_ = r.U64();
  degraded_shed_frames_ = r.U64();
  const uint32_t conn_count = r.U32();
  for (uint32_t i = 0; i < conn_count && r.ok(); ++i) {
    // Pre-crash connections come back as closed history: their sockets died
    // with the old process, but their reports (and skew extrema) keep
    // metrics continuous across the restart.
    auto conn = std::make_unique<Connection>();
    conn->fd = -1;
    conn->open = false;
    conn->report.id = conn->id = r.I64();
    conn->report.open = false;
    conn->report.frames = r.U64();
    conn->report.data_frames = r.U64();
    conn->report.punct_frames = r.U64();
    conn->report.bytes = r.U64();
    conn->report.decode_errors = r.U64();
    conn->report.protocol_errors = r.U64();
    conn->report.skew_violations = r.U64();
    conn->report.shed_tuples = r.U64();
    conn->report.max_skew = r.Ts();
    conn->report.slow_strikes = r.U64();
    conn->report.degraded_shed_frames = r.U64();
    conn->report.degradation = static_cast<int>(r.U32());
    const uint64_t observed = r.U64();
    const uint64_t violations = r.U64();
    const Duration max_skew = r.Ts();
    const Duration min_skew = r.Ts();
    conn->skew.RestoreState(observed, violations, max_skew, min_skew);
    if (r.ok()) connections_.push_back(std::move(conn));
  }
  const uint32_t bound_count = r.U32();
  for (uint32_t i = 0; i < bound_count && r.ok(); ++i) {
    const int buffer_id = static_cast<int>(r.I64());
    const Timestamp bound = r.Ts();
    if (r.ok() && buffer_id >= 0 && buffer_id < graph_->num_buffers()) {
      order_validator_.RestoreBound(graph_->buffer(buffer_id), bound);
    }
  }
  const uint64_t violations = r.U64();
  const uint64_t dropped = r.U64();
  const uint64_t quarantined = r.U64();
  if (!r.ok() || r.remaining() != 0) {
    return InvalidArgumentError("net-state blob version mismatch");
  }
  order_validator_.RestoreCounters(violations, dropped, quarantined);
  return OkStatus();
}

Status IngestServer::ReplayRecoveredWal() {
  if (recovery_ == nullptr) return OkStatus();
  if (listen_fd_ < 0) return FailedPreconditionError("call Start() first");
  for (const WalRecord& record : recovery_->recovered_records()) {
    FrameDecoder decoder(options_.max_frame_bytes);
    decoder.Feed(record.frame.data(), record.frame.size());
    WireFrame frame;
    Result<bool> got = decoder.Next(&frame);
    if (!got.ok()) {
      return InternalError(StrFormat(
          "WAL record %llu no longer decodes: %s",
          static_cast<unsigned long long>(record.index),
          got.status().message().c_str()));
    }
    if (!*got) {
      return InternalError(StrFormat(
          "WAL record %llu holds a truncated frame",
          static_cast<unsigned long long>(record.index)));
    }
    // Re-create the live interleaving: the executor ran until the clock
    // reached the recorded arrival, then the frame was delivered. The
    // engine is deterministic, so stepping from the restored state walks
    // the identical clock trajectory.
    while (clock_->now() < record.arrival) {
      if (!executor_->RunStep()) {
        clock_->AdvanceTo(record.arrival);
        break;
      }
    }
    // Route the frame through the connection it arrived on originally
    // (restored as closed history); synthesize an entry when the
    // connection was born after the checkpoint being replayed over.
    Connection* conn = nullptr;
    for (auto& c : connections_) {
      if (c->id == record.conn_id) {
        conn = c.get();
        break;
      }
    }
    if (conn == nullptr) {
      auto fresh = std::make_unique<Connection>();
      fresh->fd = -1;
      fresh->open = false;
      fresh->report.id = fresh->id = record.conn_id;
      fresh->report.open = false;
      conn = fresh.get();
      connections_.push_back(std::move(fresh));
      next_connection_id_ =
          std::max(next_connection_id_, record.conn_id + 1);
    }
    const int32_t stream_id = frame.stream_id;
    const Timestamp now = std::max(clock_->now(), record.arrival);
    // A protocol error takes the same path as live (counted, connection
    // close is a no-op on dead history); either way the record counts as
    // replayed so the durable watermark matches the WAL. No executor step
    // here: the catch-up loop above reproduces the live interleaving, and
    // same-arrival records deliver back-to-back just as one DeliverDue
    // pass did.
    IngestFrame(conn, std::move(frame), now);
    recovery_->NoteReplayed(stream_id);
  }
  return OkStatus();
}

std::vector<ConnectionReport> IngestServer::connection_reports() const {
  std::vector<ConnectionReport> reports;
  reports.reserve(connections_.size());
  for (const auto& conn : connections_) reports.push_back(conn->report);
  return reports;
}

void IngestServer::PublishTo(MetricsRegistry* registry) const {
  DSMS_CHECK(registry != nullptr);
  registry->SetCounter("net.connections_accepted", connections_accepted_);
  registry->SetCounter("net.frames", frames_ingested_);
  registry->SetCounter("net.bytes", bytes_received_);
  registry->SetCounter("net.decode_errors", decode_errors_);
  uint64_t protocol_errors = 0;
  uint64_t skew_violations = 0;
  uint64_t shed = 0;
  Duration max_skew = 0;
  for (const auto& conn : connections_) {
    const ConnectionReport& r = conn->report;
    protocol_errors += r.protocol_errors;
    skew_violations += r.skew_violations;
    shed += r.shed_tuples;
    max_skew = std::max(max_skew, r.max_skew);
    const std::string prefix = StrFormat("net.conn.%lld.",
                                         static_cast<long long>(r.id));
    registry->SetCounter(prefix + "frames", r.frames);
    registry->SetCounter(prefix + "bytes", r.bytes);
    registry->SetCounter(prefix + "decode_errors", r.decode_errors);
    registry->SetCounter(prefix + "shed_tuples", r.shed_tuples);
    registry->SetCounter(prefix + "skew_violations", r.skew_violations);
    registry->SetGauge(prefix + "max_skew_us",
                       static_cast<double>(r.max_skew));
    registry->SetGauge(prefix + "helloed", r.helloed ? 1.0 : 0.0);
    registry->SetGauge(prefix + "idle_closed", r.idle_closed ? 1.0 : 0.0);
    registry->SetGauge(prefix + "degradation",
                       static_cast<double>(r.degradation));
    registry->SetCounter(prefix + "slow_strikes", r.slow_strikes);
    registry->SetCounter(prefix + "degraded_shed_frames",
                         r.degraded_shed_frames);
  }
  registry->SetCounter("net.idle_closes", idle_closes_);
  registry->SetCounter("net.handshake_timeouts", handshake_timeouts_);
  registry->SetCounter("net.admission_rejects", admission_rejects_);
  registry->SetCounter("net.overrun_closes", overrun_closes_);
  registry->SetCounter("net.slow_peer_sheds", slow_peer_sheds_);
  registry->SetCounter("net.slow_peer_quarantines", slow_peer_quarantines_);
  registry->SetCounter("net.slow_peer_closes", slow_peer_closes_);
  registry->SetCounter("net.degraded_shed_frames", degraded_shed_frames_);
  registry->SetGauge("net.memory_footprint_bytes",
                     static_cast<double>(MemoryFootprint()));
  registry->SetCounter("net.protocol_errors", protocol_errors);
  registry->SetCounter("net.skew_violations", skew_violations);
  registry->SetCounter("net.shed_tuples", shed);
  registry->SetGauge("net.max_skew_us", static_cast<double>(max_skew));
  registry->SetCounter("recovery.resume_rejects", resume_rejects_);
}

}  // namespace dsms
