#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "obs/trace_wiring.h"
#include "obs/tracer.h"

namespace dsms {
namespace {

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(
        StrFormat("fcntl(O_NONBLOCK): %s", strerror(errno)));
  }
  return OkStatus();
}

}  // namespace

IngestServer::IngestServer(QueryGraph* graph, Executor* executor,
                           VirtualClock* clock, IngestServerOptions options)
    : graph_(graph),
      executor_(executor),
      clock_(clock),
      options_(std::move(options)),
      ingest_clock_(clock, options_.clock_mode) {
  DSMS_CHECK(graph != nullptr);
  DSMS_CHECK(executor != nullptr);
  DSMS_CHECK(clock != nullptr);
  graph_->ReplaceBufferListeners(&queue_tracker_);
  graph_->AddBufferListener(&order_validator_);
}

IngestServer::~IngestServer() {
  for (auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  graph_->ReplaceBufferListeners(nullptr);
}

void IngestServer::AttachTracer(Tracer* tracer) {
  DSMS_CHECK(tracer != nullptr);
  DSMS_CHECK(tracer_ == nullptr);
  tracer_ = tracer;
  AnnotateTracks(*graph_, tracer);
  occupancy_tracer_ =
      std::make_unique<BufferOccupancyTracer>(tracer, graph_->num_buffers());
  graph_->AddBufferListener(occupancy_tracer_.get());
}

Status IngestServer::Start() {
  if (listen_fd_ >= 0) return FailedPreconditionError("already started");
  if (graph_ == nullptr || !graph_->validated()) {
    return FailedPreconditionError("server needs a validated plan");
  }
  for (Source* source : graph_->sources()) {
    auto [it, inserted] =
        sources_by_stream_.emplace(source->stream_id(), source);
    if (!inserted) {
      return InvalidArgumentError(StrFormat(
          "streams '%s' and '%s' share wire stream id %d",
          it->second->name().c_str(), source->name().c_str(),
          source->stream_id()));
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(StrFormat("socket: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(
        StrFormat("bad listen address '%s'", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return InternalError(StrFormat("bind %s:%u: %s", options_.host.c_str(),
                                   options_.port, strerror(errno)));
  }
  if (::listen(listen_fd_, SOMAXCONN) < 0) {
    return InternalError(StrFormat("listen: %s", strerror(errno)));
  }
  DSMS_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return InternalError(StrFormat("getsockname: %s", strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  return OkStatus();
}

void IngestServer::AcceptPending() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN, or a transient error: retry next round.
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_connection_id_++;
    conn->decoder = FrameDecoder(options_.max_frame_bytes);
    conn->report.id = conn->id;
    conn->report.open = true;
    ++connections_accepted_;
    connections_.push_back(std::move(conn));
  }
}

void IngestServer::CloseConnection(Connection* conn) {
  if (!conn->open) return;
  conn->open = false;
  conn->report.open = false;
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void IngestServer::ReadFrom(Connection* conn) {
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->report.bytes += static_cast<uint64_t>(n);
      bytes_received_ += static_cast<uint64_t>(n);
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error: whatever was decoded still gets delivered; the
    // socket is done.
    CloseConnection(conn);
    break;
  }
  // Carve out complete frames now so NextPendingTime sees their hints.
  for (;;) {
    WireFrame frame;
    Result<bool> got = conn->decoder.Next(&frame);
    if (!got.ok()) {
      ++conn->report.decode_errors;
      ++decode_errors_;
      DSMS_LOG(Warning) << "connection " << conn->id
                        << " decode error: " << got.status().message();
      CloseConnection(conn);
      break;
    }
    if (!*got) break;
    conn->pending.push_back(std::move(frame));
  }
}

bool IngestServer::IngestFrame(Connection* conn, WireFrame frame,
                               Timestamp now) {
  auto it = sources_by_stream_.find(frame.stream_id);
  if (it == sources_by_stream_.end()) {
    ++conn->report.protocol_errors;
    DSMS_LOG(Warning) << "connection " << conn->id
                      << " addressed unknown stream " << frame.stream_id;
    CloseConnection(conn);
    return false;
  }
  Source* source = it->second;
  const uint64_t shed_before = source->output()->shed_tuples();

  if (frame.type == WireFrame::Type::kPunctuation) {
    // The decoder guarantees punctuation frames carry a timestamp.
    source->InjectPunctuation(*frame.timestamp);
    ++conn->report.punct_frames;
  } else {
    switch (source->timestamp_kind()) {
      case TimestampKind::kExternal: {
        if (!frame.timestamp.has_value()) {
          ++conn->report.protocol_errors;
          DSMS_LOG(Warning)
              << "connection " << conn->id << " sent an unstamped frame to "
              << "external stream '" << source->name() << "'";
          CloseConnection(conn);
          return false;
        }
        Timestamp app_ts = *frame.timestamp;
        bool violation =
            conn->skew.Observe(app_ts, now, source->skew_bound());
        if (violation) ++conn->report.skew_violations;
        conn->report.max_skew =
            std::max(conn->report.max_skew, conn->skew.max_skew());
        // Order regressions (below the stream's promise) and skew-contract
        // breaches both go down the faulty path: network producers must
        // never be able to abort the engine, so the arc's ViolationPolicy —
        // count, drop, or quarantine — decides, exactly as for simulated
        // fault injection.
        bool regresses = source->promised_bound() != kMinTimestamp &&
                         app_ts < source->promised_bound();
        if (violation || regresses) {
          source->IngestFaulty(app_ts, std::move(frame.values), now);
        } else {
          source->IngestExternal(app_ts, std::move(frame.values), now);
        }
        break;
      }
      case TimestampKind::kInternal: {
        // Arrival stamping with the source's granularity. Quantization can
        // step behind a finer-grained promise (e.g. a heartbeat bound
        // between grid points); that is producer misbehaviour from the
        // buffer's viewpoint, so it too takes the faulty path instead of
        // tripping the source's monotonicity check.
        Duration g = source->timestamp_granularity();
        Timestamp stamped = g <= 1 ? now : (now / g) * g;
        if (source->promised_bound() != kMinTimestamp &&
            stamped < source->promised_bound()) {
          source->IngestFaulty(stamped, std::move(frame.values), now);
        } else {
          source->Ingest(std::move(frame.values), now);
        }
        break;
      }
      case TimestampKind::kLatent:
        source->Ingest(std::move(frame.values), now);
        break;
    }
    ++conn->report.data_frames;
  }

  ++conn->report.frames;
  ++frames_ingested_;
  conn->report.shed_tuples +=
      source->output()->shed_tuples() - shed_before;
  if (tracer_ != nullptr) {
    tracer_->RecordNetIngest(source->id(),
                             static_cast<uint8_t>(frame.type), conn->id);
  }
  return true;
}

bool IngestServer::DeliverDue() {
  bool delivered = false;
  for (auto& conn : connections_) {
    if (conn->retry_at != kMinTimestamp) {
      if (conn->retry_at > clock_->now()) continue;
      conn->retry_at = kMinTimestamp;
    }
    while (!conn->pending.empty()) {
      WireFrame& frame = conn->pending.front();
      if (ingest_clock_.mode() == IngestClock::Mode::kFrameDriven &&
          frame.arrival_hint.has_value() &&
          *frame.arrival_hint > clock_->now()) {
        break;  // Future arrival; the idle branch advances the clock.
      }
      auto sit = sources_by_stream_.find(frame.stream_id);
      if (sit != sources_by_stream_.end()) {
        Source* source = sit->second;
        // Same producer-side backpressure as Simulation::DeliverArrival:
        // a full arc anywhere downstream parks this connection (reads
        // pause too — see Run's pollfd setup — so the peer's TCP window
        // eventually closes) and the frame retries shortly.
        if (source->output()->overload_policy() ==
                OverloadPolicy::kBlockSource &&
            source->output()->capacity_limit() > 0 &&
            graph_->DownstreamBlocked(source)) {
          conn->retry_at = clock_->now() + kMillisecond;
          break;
        }
      }
      Timestamp now = ingest_clock_.OnFrameArrival(frame.arrival_hint);
      WireFrame taken = std::move(frame);
      conn->pending.pop_front();
      delivered = true;
      if (!IngestFrame(conn.get(), std::move(taken), now)) break;
    }
  }
  return delivered;
}

Timestamp IngestServer::NextPendingTime() const {
  Timestamp next = kMaxTimestamp;
  for (const auto& conn : connections_) {
    if (conn->pending.empty()) continue;
    Timestamp t;
    if (conn->retry_at != kMinTimestamp) {
      t = conn->retry_at;
    } else if (ingest_clock_.mode() == IngestClock::Mode::kFrameDriven &&
               conn->pending.front().arrival_hint.has_value()) {
      t = *conn->pending.front().arrival_hint;
    } else {
      t = clock_->now();
    }
    next = std::min(next, t);
  }
  return next;
}

bool IngestServer::AnyOpenConnection() const {
  for (const auto& conn : connections_) {
    if (conn->open) return true;
  }
  return false;
}

bool IngestServer::AnyPendingFrame() const {
  for (const auto& conn : connections_) {
    if (!conn->pending.empty()) return true;
  }
  return false;
}

Status IngestServer::PollOnce(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  std::vector<Connection*> polled;
  for (auto& conn : connections_) {
    if (!conn->open) continue;
    // Reads pause while parked on backpressure or while the decoded-frame
    // queue is full: the kernel buffer fills, the peer's send window
    // closes, and the producer genuinely slows down.
    if (conn->retry_at != kMinTimestamp ||
        conn->pending.size() >= options_.max_pending_frames) {
      continue;
    }
    fds.push_back(pollfd{conn->fd, POLLIN, 0});
    polled.push_back(conn.get());
  }
  int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc < 0 && errno != EINTR) {
    return InternalError(StrFormat("poll: %s", strerror(errno)));
  }
  if (rc > 0) {
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
    for (size_t i = 1; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ReadFrom(polled[i - 1]);
      }
    }
  }
  return OkStatus();
}

Status IngestServer::Run() {
  if (listen_fd_ < 0) return FailedPreconditionError("call Start() first");
  const Timestamp horizon = clock_->now() + options_.horizon;
  const auto wall_start = std::chrono::steady_clock::now();
  ingest_clock_.Start();

  auto wall_exceeded = [&]() {
    if (options_.wall_limit <= 0) return false;
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - wall_start);
    return elapsed.count() >= options_.wall_limit;
  };

  Status result = OkStatus();
  while (!stop_ && clock_->now() < horizon) {
    if (wall_exceeded()) {
      result = DeadlineExceededError("wall limit reached before horizon");
      break;
    }
    // Opportunistic socket drain, then the Simulation::Run shape: deliver
    // due arrivals, take one executor step, and only when the engine is
    // idle let time pass.
    DSMS_RETURN_IF_ERROR(PollOnce(/*timeout_ms=*/0));
    ingest_clock_.Tick();
    DeliverDue();
    if (executor_->RunStep()) continue;

    Timestamp next = NextPendingTime();
    if (next != kMaxTimestamp) {
      if (next >= horizon) break;
      if (next > clock_->now()) clock_->AdvanceTo(next);
      continue;
    }
    // Nothing buffered anywhere. In frame-driven mode a drained engine
    // with no peers left can never advance again — finish the run. In
    // wall mode (and while peers are connected) block in poll so real
    // time, not a busy loop, carries the clock toward the horizon.
    if (ingest_clock_.mode() == IngestClock::Mode::kFrameDriven &&
        connections_accepted_ > 0 && !AnyOpenConnection()) {
      break;
    }
    DSMS_RETURN_IF_ERROR(PollOnce(options_.poll_granularity_ms));
    ingest_clock_.Tick();
  }

  if (clock_->now() < horizon) clock_->AdvanceTo(horizon);
  // Same end-of-run drain as Simulation::Run: with the watchdog armed, the
  // jump to the horizon is what pushes a silent connection's source past
  // the silence horizon, so its idle-waiting consumers get a fallback ETS
  // instead of holding their tuples forever.
  if (executor_->config().watchdog.silence_horizon > 0) {
    executor_->RunUntilIdle();
  }
  return result;
}

std::vector<ConnectionReport> IngestServer::connection_reports() const {
  std::vector<ConnectionReport> reports;
  reports.reserve(connections_.size());
  for (const auto& conn : connections_) reports.push_back(conn->report);
  return reports;
}

void IngestServer::PublishTo(MetricsRegistry* registry) const {
  DSMS_CHECK(registry != nullptr);
  registry->SetCounter("net.connections_accepted", connections_accepted_);
  registry->SetCounter("net.frames", frames_ingested_);
  registry->SetCounter("net.bytes", bytes_received_);
  registry->SetCounter("net.decode_errors", decode_errors_);
  uint64_t protocol_errors = 0;
  uint64_t skew_violations = 0;
  uint64_t shed = 0;
  Duration max_skew = 0;
  for (const auto& conn : connections_) {
    const ConnectionReport& r = conn->report;
    protocol_errors += r.protocol_errors;
    skew_violations += r.skew_violations;
    shed += r.shed_tuples;
    max_skew = std::max(max_skew, r.max_skew);
    const std::string prefix = StrFormat("net.conn.%lld.",
                                         static_cast<long long>(r.id));
    registry->SetCounter(prefix + "frames", r.frames);
    registry->SetCounter(prefix + "bytes", r.bytes);
    registry->SetCounter(prefix + "decode_errors", r.decode_errors);
    registry->SetCounter(prefix + "shed_tuples", r.shed_tuples);
    registry->SetCounter(prefix + "skew_violations", r.skew_violations);
    registry->SetGauge(prefix + "max_skew_us",
                       static_cast<double>(r.max_skew));
  }
  registry->SetCounter("net.protocol_errors", protocol_errors);
  registry->SetCounter("net.skew_violations", skew_violations);
  registry->SetCounter("net.shed_tuples", shed);
  registry->SetGauge("net.max_skew_us", static_cast<double>(max_skew));
}

}  // namespace dsms
