#ifndef DSMS_RECOVERY_RECOVERY_MANAGER_H_
#define DSMS_RECOVERY_RECOVERY_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/time.h"
#include "recovery/checkpoint.h"
#include "recovery/durable_sink.h"
#include "recovery/wal.h"

namespace dsms {

class Executor;
class MetricsRegistry;
class QueryGraph;
class Tracer;

struct RecoveryOptions {
  /// Directory holding WAL segments, checkpoint files, and durable sink
  /// output. Required when either feature is enabled.
  std::string dir;
  /// Write-ahead log every ingested wire frame.
  bool wal = false;
  WalSyncPolicy sync = WalSyncPolicy::kNone;
  uint64_t sync_interval_bytes = 64 * 1024;
  uint64_t segment_bytes = 4 * 1024 * 1024;
  /// Punctuation-aligned checkpoints (requires wal).
  bool checkpoint = false;
  /// Virtual-time distance the punctuation frontier must advance past the
  /// last checkpoint before the next one is taken.
  Duration checkpoint_horizon = 0;
  /// Checkpoint files retained after pruning.
  int keep = 2;
};

/// Orchestrates crash recovery: owns the WAL writer, the loaded checkpoint
/// image, durable sink files, and the per-stream durable sequence counters
/// that back the resume protocol. The ingest server drives it; restore
/// phases are split so state lands before the components that index it are
/// constructed:
///
///   RecoveryManager rm(options);
///   rm.Open();                       // load checkpoint, scan WAL tail
///   rm.RestoreGraph(graph, clock);   // BEFORE the executor is built
///   Executor exec(...);              //   (ctor seeds ready-queue from
///   rm.RestoreExecutor(&exec);       //    restored buffer contents)
///   rm.AttachSinks(graph);           // truncate + re-open sink files
///   ...server.Start(); server.ReplayRecoveredWal(); server.Run();
class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryOptions options);
  ~RecoveryManager();

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  bool wal_enabled() const { return options_.wal; }
  bool checkpoint_enabled() const { return options_.checkpoint; }

  /// Loads the newest valid checkpoint (if any) and scans the WAL tail past
  /// it, truncating torn bytes. Idempotence guard: call once, before any
  /// restore phase.
  Status Open();

  /// True when Open() found prior state (a checkpoint or WAL records).
  bool recovered() const { return has_image_ || !recovered_records_.empty(); }

  /// Virtual clock value captured by the loaded checkpoint (0 when none).
  Timestamp recovered_clock() const {
    return has_image_ ? image_.clock_now : 0;
  }

  /// Applies checkpointed operator state and buffer contents, and advances
  /// `clock` to the checkpointed instant. Must run after graph Validate()
  /// and before the executor is constructed.
  void RestoreGraph(QueryGraph* graph, VirtualClock* clock);

  /// Applies checkpointed executor state (stats, ETS gate, watchdog,
  /// strategy cursor). Must run after the executor is constructed.
  void RestoreExecutor(Executor* executor);

  /// Checkpointed IngestServer section (empty when none was saved).
  const std::string& recovered_net_blob() const {
    return has_image_ ? image_.net_blob : empty_blob_;
  }

  /// Creates one DurableSink per graph sink, truncated back to the
  /// checkpointed byte offset, and installs the emit callbacks.
  Status AttachSinks(QueryGraph* graph);

  /// WAL records past the checkpoint, in append order, for replay.
  const std::vector<WalRecord>& recovered_records() const {
    return recovered_records_;
  }

  /// Appends one delivered frame to the WAL and bumps the durable sequence
  /// of `stream_id`. No-op (OkStatus) when the WAL is disabled.
  Status AppendFrame(Timestamp arrival, int64_t conn_id, int32_t stream_id,
                     const std::string& frame);

  /// Accounts one replayed WAL record against `stream_id`'s durable
  /// sequence (replay must not re-append, but the replayed frames are
  /// already durable and count toward the resume acknowledgement).
  void NoteReplayed(int32_t stream_id);

  /// Durable frame counts per wire stream id — what HELLO answers with.
  const std::map<int32_t, uint64_t>& durable_seqs() const {
    return durable_seqs_;
  }

  /// True when the punctuation frontier has advanced far enough past the
  /// last checkpoint that a new one is due.
  bool ShouldCheckpoint(Timestamp frontier) const;

  /// Takes a checkpoint at `frontier`: syncs the WAL, flushes sinks, snaps
  /// graph + executor + `net_blob` state, writes the file atomically, then
  /// trims WAL segments the checkpoint covers. The caller guarantees the
  /// engine is idle (no buffered work mid-flight is a *policy* choice —
  /// buffers are serialized too, so this holds even with queued tuples).
  Status Checkpoint(QueryGraph* graph, Executor* executor,
                    VirtualClock* clock, Timestamp frontier,
                    const std::string& net_blob);

  /// Forces any buffered WAL bytes to disk (graceful shutdown).
  Status FlushWal();

  /// fsyncs sink files and surfaces deferred sink write errors.
  Status FlushSinks();

  uint64_t wal_appends() const { return wal_ ? wal_->appends() : 0; }
  uint64_t checkpoints_written() const { return checkpoints_written_; }
  uint64_t replayed_frames() const { return replayed_frames_; }
  uint64_t truncated_tail_bytes() const { return truncated_tail_bytes_; }
  uint64_t checkpoint_fallbacks() const { return checkpoint_fallbacks_; }

  /// Publishes recovery.* counters (resume_rejects is owned by the server).
  void PublishTo(MetricsRegistry* registry) const;

 private:
  RecoveryOptions options_;
  Tracer* tracer_ = nullptr;

  std::unique_ptr<WalWriter> wal_;
  CheckpointImage image_;
  bool has_image_ = false;
  bool opened_ = false;
  std::string empty_blob_;

  std::vector<WalRecord> recovered_records_;
  std::map<int32_t, uint64_t> durable_seqs_;
  std::vector<std::unique_ptr<DurableSink>> sinks_;

  uint64_t next_checkpoint_id_ = 1;
  Timestamp last_frontier_ = kMinTimestamp;
  uint64_t checkpoints_written_ = 0;
  uint64_t replayed_frames_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
  uint64_t checkpoint_fallbacks_ = 0;
};

}  // namespace dsms

#endif  // DSMS_RECOVERY_RECOVERY_MANAGER_H_
