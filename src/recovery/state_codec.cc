#include "recovery/state_codec.h"

#include <cstring>
#include <utility>

namespace dsms {

void StateWriter::U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

void StateWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void StateWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void StateWriter::F64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void StateWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void StateWriter::Val(const Value& value) {
  U8(static_cast<uint8_t>(value.type()));
  switch (value.type()) {
    case ValueType::kInt64:
      I64(value.int64_value());
      break;
    case ValueType::kDouble:
      F64(value.double_value());
      break;
    case ValueType::kString:
      Str(value.string_value());
      break;
    case ValueType::kBool:
      Bool(value.bool_value());
      break;
  }
}

void StateWriter::Tup(const Tuple& tuple) {
  U8(static_cast<uint8_t>(tuple.kind()));
  U8(static_cast<uint8_t>(tuple.timestamp_kind()));
  Bool(tuple.has_timestamp());
  Ts(tuple.has_timestamp() ? tuple.timestamp() : kMinTimestamp);
  Ts(tuple.arrival_time());
  I64(tuple.source_id());
  U64(tuple.sequence());
  U32(static_cast<uint32_t>(tuple.values().size()));
  for (const Value& v : tuple.values()) Val(v);
}

bool StateReader::Need(size_t n) {
  if (!ok_) return false;
  if (size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t StateReader::U8() {
  if (!Need(1)) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t StateReader::U32() {
  if (!Need(4)) return 0;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return r;
}

uint64_t StateReader::U64() {
  if (!Need(8)) return 0;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return r;
}

double StateReader::F64() {
  uint64_t bits = U64();
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::string StateReader::Str() {
  uint32_t len = U32();
  if (!Need(len)) return std::string();
  std::string s(data_ + pos_, len);
  pos_ += len;
  return s;
}

Value StateReader::Val() {
  uint8_t tag = U8();
  switch (tag) {
    case static_cast<uint8_t>(ValueType::kInt64):
      return Value(I64());
    case static_cast<uint8_t>(ValueType::kDouble):
      return Value(F64());
    case static_cast<uint8_t>(ValueType::kString):
      return Value(Str());
    case static_cast<uint8_t>(ValueType::kBool):
      return Value(Bool());
    default:
      Poison();
      return Value();
  }
}

Tuple StateReader::Tup() {
  uint8_t kind = U8();
  uint8_t ts_kind = U8();
  bool has_ts = Bool();
  Timestamp ts = Ts();
  Timestamp arrival = Ts();
  int64_t source_id = I64();
  uint64_t sequence = U64();
  uint32_t count = U32();
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count && ok(); ++i) values.push_back(Val());
  if (!ok()) return Tuple();

  Tuple t;
  if (kind == static_cast<uint8_t>(TupleKind::kPunctuation)) {
    // Punctuation is always internal-kind with a timestamp and no payload
    // (the only factory enforces it), so the remaining fields pin it down.
    if (!has_ts || !values.empty()) {
      Poison();
      return Tuple();
    }
    t = Tuple::MakePunctuation(ts);
  } else if (ts_kind == static_cast<uint8_t>(TimestampKind::kLatent)) {
    t = Tuple::MakeLatent(InlinedValues(std::move(values)));
    // A latent tuple an operator already stamped keeps its timestamp (and
    // its latent kind — set_timestamp does not change the discipline).
    if (has_ts) t.set_timestamp(ts);
  } else if (ts_kind <= static_cast<uint8_t>(TimestampKind::kLatent) &&
             has_ts) {
    t = Tuple::MakeData(ts, InlinedValues(std::move(values)),
                        static_cast<TimestampKind>(ts_kind));
  } else {
    Poison();
    return Tuple();
  }
  t.set_arrival_time(arrival);
  t.set_source_id(static_cast<int32_t>(source_id));
  t.set_sequence(sequence);
  return t;
}

}  // namespace dsms
