#ifndef DSMS_RECOVERY_WAL_H_
#define DSMS_RECOVERY_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace dsms {

/// When the write-ahead log fsyncs (durability/latency trade-off; see
/// docs/recovery.md):
///  - kNone:       never fsync explicitly — fastest, loses whatever the OS
///                 had not flushed at crash time;
///  - kInterval:   fsync once at least `sync_interval_bytes` have been
///                 appended since the last sync — bounded loss window;
///  - kEveryFrame: fsync after every append — zero loss, one disk round
///                 trip per frame.
enum class WalSyncPolicy {
  kNone = 0,
  kInterval = 1,
  kEveryFrame = 2,
};

const char* WalSyncPolicyToString(WalSyncPolicy policy);

struct WalOptions {
  std::string dir;
  WalSyncPolicy sync = WalSyncPolicy::kNone;
  /// kInterval only: bytes appended between fsyncs.
  uint64_t sync_interval_bytes = 64 * 1024;
  /// Segment rotation threshold: a segment that reaches this size is sealed
  /// (fsync + close) and a new one started, so TrimBelow can reclaim space
  /// at file granularity.
  uint64_t segment_bytes = 4 * 1024 * 1024;
};

/// One logged ingest event: a decoded-and-delivered wire frame, stored as
/// its original encoding (the PR-4 wire format is the record payload), plus
/// the virtual arrival time it was delivered at and the connection that
/// produced it — everything replay needs to re-run the delivery decision
/// deterministically.
struct WalRecord {
  /// Global append index (0-based, monotone across segments).
  uint64_t index = 0;
  Timestamp arrival = 0;
  int64_t conn_id = 0;
  /// Encoded wire frame, length prefix included.
  std::string frame;
};

/// Append side of the log. Segments are files named
/// `wal-<first_index>.seg`; each starts with the magic "DSMSWAL1" and the
/// u64 index of its first record, then records of the form
/// `[u32 payload_len][u32 crc32(payload)][payload]` with payload
/// `{i64 arrival, i64 conn_id, u32 frame_len, frame_bytes}`. The filename
/// encodes the first index so trimming never has to open a segment.
class WalWriter {
 public:
  explicit WalWriter(WalOptions options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the log for appending at global index `next_index` (0 for a
  /// fresh log; ReadWalTail's recovered next index after a restart).
  /// Creates the directory if missing; reopens the newest surviving
  /// segment in append mode when `next_index` falls inside it.
  Status Open(uint64_t next_index);

  /// Appends one record and applies the sync policy. `frame` is the
  /// encoded wire frame (EncodeFrame output).
  Status Append(Timestamp arrival, int64_t conn_id,
                const std::string& frame);

  /// Forces everything appended so far to disk.
  Status Sync();

  /// Deletes every sealed segment whose records all have index < `index`
  /// (safe after a checkpoint covering them). The active segment survives.
  Status TrimBelow(uint64_t index);

  uint64_t next_index() const { return next_index_; }
  uint64_t appends() const { return appends_; }
  uint64_t synced_bytes() const { return synced_bytes_; }

 private:
  Status RotateIfNeeded();
  Status OpenSegment(uint64_t first_index, bool fresh);
  Status WriteFully(const char* data, size_t size);

  WalOptions options_;
  int fd_ = -1;
  uint64_t next_index_ = 0;
  /// First record index of the currently open segment.
  uint64_t segment_first_ = 0;
  uint64_t segment_size_ = 0;
  uint64_t bytes_since_sync_ = 0;
  uint64_t appends_ = 0;
  uint64_t synced_bytes_ = 0;
};

/// Reads every record with index >= `from_index` from the log in `dir`,
/// tolerating a torn tail: the first record whose CRC or length fails marks
/// the end of the usable log — the file is physically truncated there, any
/// later segments are deleted, and the discarded byte count is reported in
/// `*truncated_tail_bytes`. `*next_index` receives the index the writer
/// should continue at. An empty or missing directory recovers to an empty
/// tail (next index = from_index).
Status ReadWalTail(const std::string& dir, uint64_t from_index,
                   std::vector<WalRecord>* out, uint64_t* next_index,
                   uint64_t* truncated_tail_bytes);

}  // namespace dsms

#endif  // DSMS_RECOVERY_WAL_H_
