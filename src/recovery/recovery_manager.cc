#include "recovery/recovery_manager.h"

#include <utility>

#include "common/strings.h"
#include "exec/executor.h"
#include "graph/query_graph.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "recovery/state_codec.h"
#include "storage/state_store.h"

namespace dsms {
namespace {

std::string SerializeBuffer(const StreamBuffer& buffer) {
  StateWriter w;
  w.U64(buffer.total_pushed());
  w.U64(buffer.data_pushed());
  w.U64(buffer.shed_tuples());
  w.U64(buffer.vetoed_pushes());
  w.U64(buffer.high_water_mark());
  std::vector<Tuple> tuples;
  buffer.SnapshotTuples(&tuples);
  w.U32(static_cast<uint32_t>(tuples.size()));
  for (const Tuple& t : tuples) w.Tup(t);
  return w.Take();
}

void RestoreBuffer(StreamBuffer* buffer, const std::string& blob) {
  StateReader r(blob);
  uint64_t total_pushed = r.U64();
  uint64_t data_pushed = r.U64();
  uint64_t shed = r.U64();
  uint64_t vetoed = r.U64();
  uint64_t high_water = r.U64();
  uint32_t n = r.U32();
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) tuples.push_back(r.Tup());
  if (!r.ok()) return;  // version mismatch: leave the buffer empty
  buffer->RestoreSnapshot(std::move(tuples), total_pushed, data_pushed, shed,
                          vetoed, static_cast<size_t>(high_water));
}

}  // namespace

RecoveryManager::RecoveryManager(RecoveryOptions options)
    : options_(std::move(options)) {}

RecoveryManager::~RecoveryManager() = default;

Status RecoveryManager::Open() {
  if (opened_) return FailedPreconditionError("recovery already opened");
  opened_ = true;
  if (!options_.wal) return OkStatus();

  if (options_.checkpoint) {
    Result<CheckpointImage> loaded =
        LoadLatestCheckpoint(options_.dir, &checkpoint_fallbacks_);
    if (loaded.ok()) {
      image_ = *std::move(loaded);
      has_image_ = true;
      next_checkpoint_id_ = image_.checkpoint_id + 1;
      last_frontier_ = image_.frontier;
      for (const auto& [stream, seq] : image_.durable_seqs) {
        durable_seqs_[stream] = seq;
      }
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  const uint64_t replay_from = has_image_ ? image_.wal_replay_from : 0;
  uint64_t next_index = replay_from;
  DSMS_RETURN_IF_ERROR(ReadWalTail(options_.dir, replay_from,
                                   &recovered_records_, &next_index,
                                   &truncated_tail_bytes_));

  WalOptions wal_options;
  wal_options.dir = options_.dir;
  wal_options.sync = options_.sync;
  wal_options.sync_interval_bytes = options_.sync_interval_bytes;
  wal_options.segment_bytes = options_.segment_bytes;
  wal_ = std::make_unique<WalWriter>(wal_options);
  DSMS_RETURN_IF_ERROR(wal_->Open(next_index));

  if (tracer_ != nullptr && recovered()) {
    tracer_->RecordRecovery(has_image_ ? image_.checkpoint_id : 0,
                            recovered_records_.size(), recovered_clock());
  }
  return OkStatus();
}

void RecoveryManager::RestoreGraph(QueryGraph* graph, VirtualClock* clock) {
  StateStore* store = graph->state_store();
  if (!has_image_) {
    // Fresh start: whatever spill files a previous incarnation left behind
    // are unreferenced — nothing will ever load them.
    if (store != nullptr) store->GcOrphanFiles();
    return;
  }
  // The manifest must land before operator LoadState: restored spilled-block
  // descriptors claim their files against it.
  if (store != nullptr && !image_.storage_blob.empty()) {
    StateReader r(image_.storage_blob);
    store->RestoreManifest(r);
  }
  for (const auto& [id, blob] : image_.operator_blobs) {
    if (id < 0 || id >= graph->num_operators()) continue;
    StateReader r(blob);
    graph->op(id)->LoadState(r);
  }
  // The restored image stays the durable fallback until the next checkpoint
  // is written: pin its spilled-block files so post-restore expiry defers
  // their unlink. Otherwise a second crash before that checkpoint would
  // restore descriptors whose files are gone and fail-stop on every
  // restart. Must precede GcOrphanFiles, which consumes the claim set.
  if (store != nullptr) store->PinRestoredClaims(image_.checkpoint_id);
  // Spill files not claimed by any restored descriptor belong to blocks the
  // checkpoint never saw (written after the cut, or already expired): GC.
  // Committing to this image may unlink files an older retained checkpoint
  // references — the fallback chain ends at the image we restored.
  if (store != nullptr) store->GcOrphanFiles();
  for (const auto& [id, blob] : image_.buffer_blobs) {
    if (id < 0 || id >= graph->num_buffers()) continue;
    RestoreBuffer(graph->buffer(id), blob);
  }
  if (image_.clock_now > clock->now()) clock->AdvanceTo(image_.clock_now);
}

void RecoveryManager::RestoreExecutor(Executor* executor) {
  if (!has_image_ || image_.executor_blob.empty()) return;
  StateReader r(image_.executor_blob);
  executor->LoadState(r);
}

Status RecoveryManager::AttachSinks(QueryGraph* graph) {
  std::map<std::string, uint64_t> offsets;
  if (has_image_) {
    for (const auto& [name, offset] : image_.sink_offsets) {
      offsets[name] = offset;
    }
  }
  for (Sink* sink : graph->sinks()) {
    auto durable = std::make_unique<DurableSink>(options_.dir, sink->name());
    auto it = offsets.find(sink->name());
    const uint64_t resume_offset = it == offsets.end() ? 0 : it->second;
    DSMS_RETURN_IF_ERROR(durable->Open(resume_offset));
    durable->Attach(sink);
    sinks_.push_back(std::move(durable));
  }
  return OkStatus();
}

Status RecoveryManager::AppendFrame(Timestamp arrival, int64_t conn_id,
                                    int32_t stream_id,
                                    const std::string& frame) {
  if (wal_ == nullptr) return OkStatus();
  DSMS_RETURN_IF_ERROR(wal_->Append(arrival, conn_id, frame));
  ++durable_seqs_[stream_id];
  return OkStatus();
}

void RecoveryManager::NoteReplayed(int32_t stream_id) {
  ++durable_seqs_[stream_id];
  ++replayed_frames_;
}

bool RecoveryManager::ShouldCheckpoint(Timestamp frontier) const {
  if (!options_.checkpoint || wal_ == nullptr) return false;
  if (frontier == kMinTimestamp) return false;  // no source promised yet
  const Timestamp last = last_frontier_ == kMinTimestamp ? 0 : last_frontier_;
  return frontier >= last + options_.checkpoint_horizon;
}

Status RecoveryManager::Checkpoint(QueryGraph* graph, Executor* executor,
                                   VirtualClock* clock, Timestamp frontier,
                                   const std::string& net_blob) {
  if (wal_ == nullptr) {
    return FailedPreconditionError("checkpoint requires the wal");
  }
  DSMS_RETURN_IF_ERROR(wal_->Sync());
  DSMS_RETURN_IF_ERROR(FlushSinks());

  CheckpointImage image;
  image.checkpoint_id = next_checkpoint_id_;
  image.clock_now = clock->now();
  image.frontier = frontier;
  image.wal_replay_from = wal_->next_index();
  for (int id = 0; id < graph->num_operators(); ++id) {
    StateWriter w;
    graph->op(id)->SaveState(w);
    image.operator_blobs.emplace_back(id, w.Take());
  }
  for (int id = 0; id < graph->num_buffers(); ++id) {
    image.buffer_blobs.emplace_back(id, SerializeBuffer(*graph->buffer(id)));
  }
  if (executor != nullptr) {
    StateWriter w;
    executor->SaveState(w);
    image.executor_blob = w.Take();
  }
  image.net_blob = net_blob;
  if (graph->state_store() != nullptr) {
    StateWriter w;
    graph->state_store()->SaveManifest(w);
    image.storage_blob = w.Take();
  }
  for (const auto& [stream, seq] : durable_seqs_) {
    image.durable_seqs.emplace_back(stream, seq);
  }
  for (const auto& sink : sinks_) {
    image.sink_offsets.emplace_back(sink->name(), sink->offset());
  }

  DSMS_RETURN_IF_ERROR(
      WriteCheckpointFile(options_.dir, image, options_.keep));
  DSMS_RETURN_IF_ERROR(wal_->TrimBelow(image.wal_replay_from));
  if (graph->state_store() != nullptr) {
    // The image is durable: pin its spilled blocks, release pins of pruned
    // checkpoints, and unlink files no retained checkpoint references.
    graph->state_store()->OnCheckpoint(image.checkpoint_id, options_.keep);
  }

  ++next_checkpoint_id_;
  ++checkpoints_written_;
  last_frontier_ = frontier;
  if (tracer_ != nullptr) {
    tracer_->RecordCheckpoint(image.checkpoint_id, frontier, clock->now());
  }
  return OkStatus();
}

Status RecoveryManager::FlushWal() {
  if (wal_ == nullptr) return OkStatus();
  return wal_->Sync();
}

Status RecoveryManager::FlushSinks() {
  for (const auto& sink : sinks_) {
    DSMS_RETURN_IF_ERROR(sink->Flush());
  }
  return OkStatus();
}

void RecoveryManager::PublishTo(MetricsRegistry* registry) const {
  registry->SetCounter("recovery.wal_appends", wal_appends());
  registry->SetCounter("recovery.wal_synced_bytes",
                       wal_ ? wal_->synced_bytes() : 0);
  registry->SetCounter("recovery.checkpoints_written", checkpoints_written_);
  registry->SetCounter("recovery.replayed_frames", replayed_frames_);
  registry->SetCounter("recovery.truncated_tail_bytes",
                       truncated_tail_bytes_);
  registry->SetCounter("recovery.checkpoint_fallbacks",
                       checkpoint_fallbacks_);
}

}  // namespace dsms
