#include "recovery/checkpoint.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "recovery/crc32.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

constexpr char kCkptMagic[8] = {'D', 'S', 'M', 'S', 'C', 'K', 'P', '1'};

std::string CheckpointName(uint64_t id) {
  return StrFormat("checkpoint-%020llu.ckpt",
                   static_cast<unsigned long long>(id));
}

bool ParseCheckpointName(const std::string& name, uint64_t* id) {
  // "checkpoint-" + 20 digits + ".ckpt"
  if (name.size() != 11 + 20 + 5) return false;
  if (name.compare(0, 11, "checkpoint-") != 0) return false;
  if (name.compare(31, 5, ".ckpt") != 0) return false;
  uint64_t v = 0;
  for (size_t i = 11; i < 31; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = v;
  return true;
}

Status ListCheckpoints(const std::string& dir,
                       std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return OkStatus();
    return InternalError(
        StrFormat("opendir %s: %s", dir.c_str(), strerror(errno)));
  }
  while (dirent* entry = ::readdir(d)) {
    uint64_t id = 0;
    if (ParseCheckpointName(entry->d_name, &id)) {
      out->emplace_back(id, dir + "/" + entry->d_name);
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return OkStatus();
}

std::string SerializeImage(const CheckpointImage& image) {
  StateWriter w;
  w.U64(image.checkpoint_id);
  w.Ts(image.clock_now);
  w.Ts(image.frontier);
  w.U64(image.wal_replay_from);
  w.U32(static_cast<uint32_t>(image.operator_blobs.size()));
  for (const auto& [id, blob] : image.operator_blobs) {
    w.I64(id);
    w.Blob(blob);
  }
  w.U32(static_cast<uint32_t>(image.buffer_blobs.size()));
  for (const auto& [id, blob] : image.buffer_blobs) {
    w.I64(id);
    w.Blob(blob);
  }
  w.Blob(image.executor_blob);
  w.Blob(image.net_blob);
  w.Blob(image.storage_blob);
  w.U32(static_cast<uint32_t>(image.durable_seqs.size()));
  for (const auto& [stream, seq] : image.durable_seqs) {
    w.I64(stream);
    w.U64(seq);
  }
  w.U32(static_cast<uint32_t>(image.sink_offsets.size()));
  for (const auto& [name, offset] : image.sink_offsets) {
    w.Str(name);
    w.U64(offset);
  }
  return w.Take();
}

bool DeserializeImage(const std::string& body, CheckpointImage* image) {
  StateReader r(body);
  image->checkpoint_id = r.U64();
  image->clock_now = r.Ts();
  image->frontier = r.Ts();
  image->wal_replay_from = r.U64();
  uint32_t n = r.U32();
  image->operator_blobs.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int32_t id = static_cast<int32_t>(r.I64());
    image->operator_blobs.emplace_back(id, r.Blob());
  }
  n = r.U32();
  image->buffer_blobs.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int32_t id = static_cast<int32_t>(r.I64());
    image->buffer_blobs.emplace_back(id, r.Blob());
  }
  image->executor_blob = r.Blob();
  image->net_blob = r.Blob();
  image->storage_blob = r.Blob();
  n = r.U32();
  image->durable_seqs.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    int32_t stream = static_cast<int32_t>(r.I64());
    image->durable_seqs.emplace_back(stream, r.U64());
  }
  n = r.U32();
  image->sink_offsets.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.Str();
    image->sink_offsets.emplace_back(std::move(name), r.U64());
  }
  return r.ok() && r.remaining() == 0;
}

}  // namespace

Status WriteCheckpointFile(const std::string& dir,
                           const CheckpointImage& image, int keep) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return InternalError(
        StrFormat("mkdir %s: %s", dir.c_str(), strerror(errno)));
  }
  const std::string body = SerializeImage(image);
  std::string bytes(kCkptMagic, sizeof(kCkptMagic));
  StateWriter header;
  header.U64(body.size());
  header.U32(Crc32(body.data(), body.size()));
  bytes += header.data();
  bytes += body;

  const std::string final_path =
      dir + "/" + CheckpointName(image.checkpoint_id);
  const std::string tmp_path = final_path + ".tmp";
  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
  if (fd < 0) {
    return InternalError(
        StrFormat("open %s: %s", tmp_path.c_str(), strerror(errno)));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return InternalError(
          StrFormat("write %s: %s", tmp_path.c_str(), strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  // The temp file must be fully durable BEFORE the rename makes it visible
  // under the final name — otherwise a crash could leave a complete-looking
  // checkpoint with unflushed contents.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return InternalError(StrFormat("fsync: %s", strerror(errno)));
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp_path.c_str());
    return InternalError(StrFormat("rename %s: %s", final_path.c_str(),
                                   strerror(errno)));
  }

  if (keep > 0) {
    std::vector<std::pair<uint64_t, std::string>> existing;
    DSMS_RETURN_IF_ERROR(ListCheckpoints(dir, &existing));
    while (existing.size() > static_cast<size_t>(keep)) {
      ::unlink(existing.front().second.c_str());
      existing.erase(existing.begin());
    }
  }
  return OkStatus();
}

Result<CheckpointImage> LoadLatestCheckpoint(const std::string& dir,
                                             uint64_t* fallbacks) {
  std::vector<std::pair<uint64_t, std::string>> checkpoints;
  DSMS_RETURN_IF_ERROR(ListCheckpoints(dir, &checkpoints));
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    int fd = ::open(it->second.c_str(), O_RDONLY);
    if (fd < 0) continue;
    std::string bytes;
    char buf[64 * 1024];
    bool read_ok = true;
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        bytes.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) read_ok = false;
      break;
    }
    ::close(fd);
    CheckpointImage image;
    bool valid = read_ok && bytes.size() >= 20 &&
                 memcmp(bytes.data(), kCkptMagic, sizeof(kCkptMagic)) == 0;
    if (valid) {
      StateReader header(bytes.data() + 8, 12);
      uint64_t body_len = header.U64();
      uint32_t crc = header.U32();
      valid = bytes.size() == 20 + body_len;
      if (valid) {
        valid = Crc32(bytes.data() + 20, body_len) == crc;
      }
      if (valid) {
        valid = DeserializeImage(bytes.substr(20), &image);
      }
    }
    if (valid) return image;
    if (fallbacks != nullptr) ++*fallbacks;
  }
  return NotFoundError(
      StrFormat("no valid checkpoint in %s", dir.c_str()));
}

}  // namespace dsms
