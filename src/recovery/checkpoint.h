#ifndef DSMS_RECOVERY_CHECKPOINT_H_
#define DSMS_RECOVERY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace dsms {

/// A complete, self-contained snapshot of engine state at a punctuation-
/// aligned cut. Sections are opaque length-prefixed blobs written by the
/// components that own the state (operators, buffers, executor, server), so
/// the checkpoint layer needs no knowledge of their internals.
struct CheckpointImage {
  uint64_t checkpoint_id = 0;
  /// Virtual clock at the instant the checkpoint was taken.
  Timestamp clock_now = 0;
  /// The punctuation frontier (minimum promised bound across sources) that
  /// triggered this checkpoint.
  Timestamp frontier = kMinTimestamp;
  /// WAL index replay starts from after loading this checkpoint.
  uint64_t wal_replay_from = 0;
  /// Operator state blobs keyed by operator id.
  std::vector<std::pair<int32_t, std::string>> operator_blobs;
  /// Buffer content blobs keyed by buffer id.
  std::vector<std::pair<int32_t, std::string>> buffer_blobs;
  /// Executor state (ExecStats, EtsGate, watchdog, strategy cursor).
  std::string executor_blob;
  /// IngestServer state (connection reports, skew trackers, validator).
  std::string net_blob;
  /// StateStore manifest (block-id allocator; spilled block *contents* are
  /// referenced by id from operator blobs, not copied — see
  /// docs/state_store.md). Empty when no state store is configured.
  std::string storage_blob;
  /// Frames made durable per wire stream id (the resume protocol's acks).
  std::vector<std::pair<int32_t, uint64_t>> durable_seqs;
  /// Durable sink byte offsets keyed by sink name.
  std::vector<std::pair<std::string, uint64_t>> sink_offsets;
};

/// Atomically writes `image` as `checkpoint-<id>.ckpt` in `dir`
/// (write-temp + fsync + rename — a crash mid-write leaves only an ignored
/// .tmp file), then prunes old checkpoints keeping the newest `keep`.
/// File layout: magic "DSMSCKP1", u64 body length, u32 crc32(body), body.
Status WriteCheckpointFile(const std::string& dir,
                           const CheckpointImage& image, int keep);

/// Loads the newest checkpoint in `dir` whose CRC validates, falling back
/// to earlier ones when the newest is corrupt (`*fallbacks` counts how many
/// were rejected on the way; pass nullptr to ignore). NotFound when the
/// directory holds no valid checkpoint.
Result<CheckpointImage> LoadLatestCheckpoint(const std::string& dir,
                                             uint64_t* fallbacks);

}  // namespace dsms

#endif  // DSMS_RECOVERY_CHECKPOINT_H_
