#ifndef DSMS_RECOVERY_CRC32_H_
#define DSMS_RECOVERY_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dsms {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
/// guarding every WAL record and checkpoint body. Chosen over anything
/// fancier because torn writes and bit rot are the threat model, not an
/// adversary: a frame that fails its CRC marks the torn tail of the log.
inline uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dsms

#endif  // DSMS_RECOVERY_CRC32_H_
