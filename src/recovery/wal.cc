#include "recovery/wal.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/strings.h"
#include "recovery/crc32.h"
#include "recovery/state_codec.h"

namespace dsms {
namespace {

constexpr char kWalMagic[8] = {'D', 'S', 'M', 'S', 'W', 'A', 'L', '1'};
constexpr size_t kSegmentHeaderBytes = 16;  // magic + u64 first_index
constexpr size_t kRecordHeaderBytes = 8;    // u32 len + u32 crc

std::string SegmentName(uint64_t first_index) {
  return StrFormat("wal-%020llu.seg",
                   static_cast<unsigned long long>(first_index));
}

/// Parses "wal-<decimal>.seg"; returns false for anything else.
bool ParseSegmentName(const std::string& name, uint64_t* first_index) {
  if (name.size() != 4 + 20 + 4) return false;
  if (name.compare(0, 4, "wal-") != 0) return false;
  if (name.compare(24, 4, ".seg") != 0) return false;
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *first_index = v;
  return true;
}

Status ListSegments(const std::string& dir,
                    std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return OkStatus();
    return InternalError(
        StrFormat("opendir %s: %s", dir.c_str(), strerror(errno)));
  }
  while (dirent* entry = ::readdir(d)) {
    uint64_t first = 0;
    if (ParseSegmentName(entry->d_name, &first)) {
      out->emplace_back(first, dir + "/" + entry->d_name);
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return OkStatus();
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return OkStatus();
  return InternalError(
      StrFormat("mkdir %s: %s", dir.c_str(), strerror(errno)));
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return InternalError(
        StrFormat("open %s: %s", path.c_str(), strerror(errno)));
  }
  out->clear();
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out->append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd);
    if (n < 0) {
      return InternalError(
          StrFormat("read %s: %s", path.c_str(), strerror(errno)));
    }
    return OkStatus();
  }
}

}  // namespace

const char* WalSyncPolicyToString(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kInterval:
      return "interval";
    case WalSyncPolicy::kEveryFrame:
      return "every_frame";
  }
  return "unknown";
}

WalWriter::WalWriter(WalOptions options) : options_(std::move(options)) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Status WalWriter::WriteFully(const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd_, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return InternalError(StrFormat("wal write: %s", strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return OkStatus();
}

Status WalWriter::OpenSegment(uint64_t first_index, bool fresh) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path = options_.dir + "/" + SegmentName(first_index);
  int flags = fresh ? (O_WRONLY | O_CREAT | O_TRUNC) : (O_WRONLY | O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0666);
  if (fd_ < 0) {
    return InternalError(
        StrFormat("open %s: %s", path.c_str(), strerror(errno)));
  }
  segment_first_ = first_index;
  if (fresh) {
    std::string bytes(kWalMagic, sizeof(kWalMagic));
    StateWriter idx;
    idx.U64(first_index);
    bytes += idx.data();
    DSMS_RETURN_IF_ERROR(WriteFully(bytes.data(), bytes.size()));
    segment_size_ = bytes.size();
    bytes_since_sync_ += bytes.size();
  } else {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return InternalError(StrFormat("fstat: %s", strerror(errno)));
    }
    segment_size_ = static_cast<uint64_t>(st.st_size);
  }
  return OkStatus();
}

Status WalWriter::Open(uint64_t next_index) {
  if (fd_ >= 0) return FailedPreconditionError("wal already open");
  DSMS_RETURN_IF_ERROR(EnsureDir(options_.dir));
  next_index_ = next_index;
  std::vector<std::pair<uint64_t, std::string>> segments;
  DSMS_RETURN_IF_ERROR(ListSegments(options_.dir, &segments));
  // Reopen the newest segment iff the continuation index falls inside it
  // (the normal post-recovery case: ReadWalTail just truncated its tail).
  if (!segments.empty() && segments.back().first <= next_index) {
    return OpenSegment(segments.back().first, /*fresh=*/false);
  }
  return OpenSegment(next_index, /*fresh=*/true);
}

Status WalWriter::RotateIfNeeded() {
  if (segment_size_ < options_.segment_bytes) return OkStatus();
  // Seal the full segment: its bytes must be durable before the name of
  // the next segment claims the continuation.
  if (::fsync(fd_) != 0) {
    return InternalError(StrFormat("wal fsync: %s", strerror(errno)));
  }
  synced_bytes_ += bytes_since_sync_;
  bytes_since_sync_ = 0;
  return OpenSegment(next_index_, /*fresh=*/true);
}

Status WalWriter::Append(Timestamp arrival, int64_t conn_id,
                         const std::string& frame) {
  if (fd_ < 0) return FailedPreconditionError("call Open() first");
  DSMS_RETURN_IF_ERROR(RotateIfNeeded());

  StateWriter payload;
  payload.Ts(arrival);
  payload.I64(conn_id);
  payload.U32(static_cast<uint32_t>(frame.size()));
  std::string body = payload.Take();
  body += frame;

  StateWriter record;
  record.U32(static_cast<uint32_t>(body.size()));
  record.U32(Crc32(body.data(), body.size()));
  std::string bytes = record.Take();
  bytes += body;

  DSMS_RETURN_IF_ERROR(WriteFully(bytes.data(), bytes.size()));
  segment_size_ += bytes.size();
  bytes_since_sync_ += bytes.size();
  ++appends_;
  ++next_index_;

  switch (options_.sync) {
    case WalSyncPolicy::kNone:
      break;
    case WalSyncPolicy::kInterval:
      if (bytes_since_sync_ >= options_.sync_interval_bytes) {
        DSMS_RETURN_IF_ERROR(Sync());
      }
      break;
    case WalSyncPolicy::kEveryFrame:
      DSMS_RETURN_IF_ERROR(Sync());
      break;
  }
  return OkStatus();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return OkStatus();
  if (bytes_since_sync_ == 0) return OkStatus();
  if (::fsync(fd_) != 0) {
    return InternalError(StrFormat("wal fsync: %s", strerror(errno)));
  }
  synced_bytes_ += bytes_since_sync_;
  bytes_since_sync_ = 0;
  return OkStatus();
}

Status WalWriter::TrimBelow(uint64_t index) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  DSMS_RETURN_IF_ERROR(ListSegments(options_.dir, &segments));
  // Segment i holds indices [first_i, first_{i+1}); it is reclaimable when
  // the next segment starts at or below the checkpoint frontier. The
  // filename carries first_i, so no segment needs to be opened.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first > index) break;
    if (segments[i].first == segment_first_) break;  // never the active one
    ::unlink(segments[i].second.c_str());
  }
  return OkStatus();
}

Status ReadWalTail(const std::string& dir, uint64_t from_index,
                   std::vector<WalRecord>* out, uint64_t* next_index,
                   uint64_t* truncated_tail_bytes) {
  out->clear();
  *next_index = from_index;
  *truncated_tail_bytes = 0;
  std::vector<std::pair<uint64_t, std::string>> segments;
  DSMS_RETURN_IF_ERROR(ListSegments(dir, &segments));
  if (segments.empty()) return OkStatus();

  bool torn = false;
  for (size_t si = 0; si < segments.size(); ++si) {
    const std::string& path = segments[si].second;
    if (torn) {
      // Everything after the torn point is unreachable: a record is only
      // meaningful if every earlier record exists.
      struct stat st;
      if (::stat(path.c_str(), &st) == 0) {
        *truncated_tail_bytes += static_cast<uint64_t>(st.st_size);
      }
      ::unlink(path.c_str());
      continue;
    }
    std::string bytes;
    DSMS_RETURN_IF_ERROR(ReadWholeFile(path, &bytes));

    uint64_t index = segments[si].first;
    size_t good_end = 0;  // offset just past the last valid record
    if (bytes.size() >= kSegmentHeaderBytes &&
        memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) == 0) {
      StateReader header(bytes.data() + sizeof(kWalMagic), 8);
      uint64_t declared = header.U64();
      if (declared == segments[si].first) {
        good_end = kSegmentHeaderBytes;
        size_t pos = kSegmentHeaderBytes;
        while (pos + kRecordHeaderBytes <= bytes.size()) {
          StateReader rh(bytes.data() + pos, kRecordHeaderBytes);
          uint32_t len = rh.U32();
          uint32_t crc = rh.U32();
          if (pos + kRecordHeaderBytes + len > bytes.size()) break;
          const char* body = bytes.data() + pos + kRecordHeaderBytes;
          if (Crc32(body, len) != crc) break;
          StateReader pr(body, len);
          WalRecord record;
          record.index = index;
          record.arrival = pr.Ts();
          record.conn_id = pr.I64();
          uint32_t frame_len = pr.U32();
          if (!pr.ok() || pr.remaining() != frame_len) break;
          record.frame.assign(body + (len - frame_len), frame_len);
          pos += kRecordHeaderBytes + len;
          good_end = pos;
          ++index;
          if (record.index >= from_index) out->push_back(std::move(record));
        }
      }
    }
    if (good_end < bytes.size()) {
      // Torn tail (or a corrupt header): drop the unusable suffix on disk
      // too, so the writer can append right after the last valid record.
      torn = true;
      *truncated_tail_bytes += bytes.size() - good_end;
      if (good_end == 0) {
        ::unlink(path.c_str());
      } else if (::truncate(path.c_str(),
                            static_cast<off_t>(good_end)) != 0) {
        return InternalError(StrFormat("truncate %s: %s", path.c_str(),
                                       strerror(errno)));
      }
    }
    if (good_end > 0) *next_index = index;
  }
  if (*next_index < from_index) *next_index = from_index;
  return OkStatus();
}

}  // namespace dsms
