#ifndef DSMS_RECOVERY_STATE_CODEC_H_
#define DSMS_RECOVERY_STATE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/time.h"
#include "core/tuple.h"
#include "core/value.h"

namespace dsms {

/// Append-only little-endian serializer for checkpoint state. Mirrors the
/// wire format's conventions (u32 lengths, i64 timestamps, tagged values) so
/// the two codecs stay mentally interchangeable; checkpoint blobs are
/// integrity-guarded by the enclosing file's CRC, not per-field.
class StateWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void Ts(Timestamp t) { I64(t); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Str(const std::string& s);
  void Val(const Value& value);
  void Tup(const Tuple& tuple);
  /// Nests a complete sub-blob as one length-prefixed string, so sections
  /// written by different components cannot bleed into each other.
  void Blob(const std::string& bytes) { Str(bytes); }

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Matching reader. Failure discipline: any short or malformed read poisons
/// the reader (ok() turns false) and every subsequent read returns a zero
/// value — the caller checks ok() once after decoding a whole section. The
/// enclosing checkpoint CRC already vouches for integrity, so a poisoned
/// reader means a version/logic mismatch, not corruption.
class StateReader {
 public:
  StateReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit StateReader(const std::string& bytes)
      : StateReader(bytes.data(), bytes.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  Timestamp Ts() { return I64(); }
  double F64();
  bool Bool() { return U8() != 0; }
  std::string Str();
  Value Val();
  Tuple Tup();
  std::string Blob() { return Str(); }

  bool ok() const { return ok_; }
  size_t remaining() const { return size_ - pos_; }
  /// Marks the reader failed from the outside (e.g. an impossible enum
  /// value decoded by the caller).
  void Poison() { ok_ = false; }

 private:
  bool Need(size_t n);

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dsms

#endif  // DSMS_RECOVERY_STATE_CODEC_H_
