#ifndef DSMS_RECOVERY_DURABLE_SINK_H_
#define DSMS_RECOVERY_DURABLE_SINK_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "operators/sink.h"

namespace dsms {

/// Durable sink output: every data tuple a Sink delivers is appended as one
/// `Tuple::ToString()` line to `<dir>/sink-<name>.out`. The byte offset is
/// checkpointed; on recovery the file is truncated back to the checkpointed
/// offset and deterministic replay regenerates the suffix — which is what
/// makes recovered output exactly-once: bytes past the cut are discarded,
/// bytes before it are never rewritten.
class DurableSink {
 public:
  DurableSink(std::string dir, std::string name);
  ~DurableSink();

  DurableSink(const DurableSink&) = delete;
  DurableSink& operator=(const DurableSink&) = delete;

  /// Truncates the output file to `resume_offset` (0 starts fresh) and
  /// opens it for appending.
  Status Open(uint64_t resume_offset);

  /// Installs this sink's emit callback on `sink`. Must be called after
  /// Open; replaces any existing callback.
  void Attach(Sink* sink);

  /// Appends one rendered tuple line (the callback path; public for tests).
  void Write(const Tuple& tuple);

  /// fsyncs everything appended so far; surfaces any write error the
  /// callback path swallowed (callbacks cannot return Status).
  Status Flush();

  uint64_t offset() const { return offset_; }
  const std::string& name() const { return name_; }
  std::string path() const;

 private:
  std::string dir_;
  std::string name_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  Status deferred_error_;
};

}  // namespace dsms

#endif  // DSMS_RECOVERY_DURABLE_SINK_H_
