#ifndef DSMS_METRICS_IDLE_WAIT_TRACKER_H_
#define DSMS_METRICS_IDLE_WAIT_TRACKER_H_

#include <cstdint>

#include "common/time.h"

namespace dsms {

/// Accumulates the time an IWP operator spends idle-waiting: intervals
/// during which the operator holds at least one pending *data* tuple on some
/// input but its (relaxed) `more` condition is false, so it cannot make
/// progress. Section 6 of the paper reports this as a percentage of total
/// time (A: 99%, B@100/s: 15%, C: <0.1%).
///
/// The executor drives the state machine: MarkBlocked when a step finds the
/// operator blocked with pending data, MarkUnblocked when a step consumes or
/// emits. Repeated marks in the same state are idempotent.
class IdleWaitTracker {
 public:
  IdleWaitTracker() = default;

  void MarkBlocked(Timestamp now);
  void MarkUnblocked(Timestamp now);

  bool blocked() const { return blocked_; }

  /// Total idle-waiting accumulated up to `now` (includes the current open
  /// interval if the operator is still blocked).
  Duration total_idle(Timestamp now) const;

  /// Convenience: idle fraction of the observation window [start, now].
  double IdleFraction(Timestamp start, Timestamp now) const;

  /// Number of distinct blocked intervals entered.
  int64_t blocked_intervals() const { return blocked_intervals_; }

  void Reset();

 private:
  bool blocked_ = false;
  Timestamp blocked_since_ = 0;
  Duration accumulated_ = 0;
  int64_t blocked_intervals_ = 0;
};

}  // namespace dsms

#endif  // DSMS_METRICS_IDLE_WAIT_TRACKER_H_
