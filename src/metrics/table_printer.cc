#include "metrics/table_printer.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DSMS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(StrFormat("%.6g", v));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  os << StrJoin(headers_, ",") << "\n";
  for (const auto& row : rows_) os << StrJoin(row, ",") << "\n";
}

namespace {

/// Non-finite cells (AddNumericRow's %.6g renders them "nan"/"inf"/"-inf")
/// have no JSON number representation; they become null rather than a string
/// so consumers can keep treating the column as numeric.
bool IsNonFiniteCell(const std::string& s) {
  return s == "nan" || s == "-nan" || s == "inf" || s == "-inf";
}

}  // namespace

void TablePrinter::PrintJson(std::ostream& os) const {
  os << "[\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      os << JsonQuote(headers_[c]) << ": ";
      if (IsNonFiniteCell(rows_[r][c])) {
        os << "null";
      } else if (IsStrictJsonNumber(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        os << JsonQuote(rows_[r][c]);
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

}  // namespace dsms
