#include "metrics/table_printer.h"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DSMS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(StrFormat("%.6g", v));
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  os << StrJoin(headers_, ",") << "\n";
  for (const auto& row : rows_) os << StrJoin(row, ",") << "\n";
}

namespace {

bool IsJsonNumber(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  // strtod accepts "inf"/"nan", which are not valid JSON numbers.
  for (char ch : s) {
    if ((ch < '0' || ch > '9') && ch != '.' && ch != '-' && ch != '+' &&
        ch != 'e' && ch != 'E') {
      return false;
    }
  }
  return true;
}

void EmitJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

void TablePrinter::PrintJson(std::ostream& os) const {
  os << "[\n";
  for (size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      EmitJsonString(os, headers_[c]);
      os << ": ";
      if (IsJsonNumber(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        EmitJsonString(os, rows_[r][c]);
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

}  // namespace dsms
