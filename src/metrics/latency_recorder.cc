#include "metrics/latency_recorder.h"

#include "common/time.h"
#include "core/tuple.h"

namespace dsms {

void LatencyRecorder::RecordEmission(const Tuple& tuple, Timestamp emit_time) {
  if (!tuple.is_data()) return;
  histogram_.Record(emit_time - tuple.arrival_time());
}

}  // namespace dsms
