#ifndef DSMS_METRICS_QUEUE_SIZE_TRACKER_H_
#define DSMS_METRICS_QUEUE_SIZE_TRACKER_H_

#include <algorithm>
#include <cstdint>

#include "core/stream_buffer.h"
#include "core/tuple.h"

namespace dsms {

/// Maintains the instantaneous and peak *total* number of tuples across all
/// buffers it listens to — "peak total buffer size, in terms of total number
/// of tuples in the buffers" (Figure 8). Data and punctuation tuples are
/// tracked together (punctuation occupies buffer space; the paper's line B
/// grows at high heartbeat rates exactly because of this) and also broken out
/// separately for analysis.
class QueueSizeTracker : public BufferListener {
 public:
  QueueSizeTracker() = default;

  void OnPush(const StreamBuffer& buffer, const Tuple& tuple) override;
  void OnPop(const StreamBuffer& buffer, const Tuple& tuple) override;

  int64_t current_total() const { return current_total_; }
  int64_t peak_total() const { return peak_total_; }
  int64_t current_data() const { return current_data_; }
  int64_t peak_data() const { return peak_data_; }
  int64_t current_punctuation() const {
    return current_total_ - current_data_;
  }

  void Reset();

  /// Accounts for tuples that were already in a buffer when the tracker
  /// attached (crash recovery restores buffer contents before the server —
  /// and therefore the tracker — exists). Without this the first pop of a
  /// restored tuple would underflow the occupancy counters.
  void SeedOccupancy(int64_t total, int64_t data) {
    current_total_ += total;
    peak_total_ = std::max(peak_total_, current_total_);
    current_data_ += data;
    peak_data_ = std::max(peak_data_, current_data_);
  }

  /// Restarts peak tracking from the current occupancy (used when a warmup
  /// period ends and steady-state peaks are wanted).
  void ResetPeak() {
    peak_total_ = current_total_;
    peak_data_ = current_data_;
  }

 private:
  int64_t current_total_ = 0;
  int64_t peak_total_ = 0;
  int64_t current_data_ = 0;
  int64_t peak_data_ = 0;
};

}  // namespace dsms

#endif  // DSMS_METRICS_QUEUE_SIZE_TRACKER_H_
