#include "metrics/queue_size_tracker.h"

#include <algorithm>

#include "common/check.h"

namespace dsms {

void QueueSizeTracker::OnPush(const StreamBuffer& buffer, const Tuple& tuple) {
  (void)buffer;
  ++current_total_;
  peak_total_ = std::max(peak_total_, current_total_);
  if (tuple.is_data()) {
    ++current_data_;
    peak_data_ = std::max(peak_data_, current_data_);
  }
}

void QueueSizeTracker::OnPop(const StreamBuffer& buffer, const Tuple& tuple) {
  (void)buffer;
  DSMS_CHECK_GT(current_total_, 0);
  --current_total_;
  if (tuple.is_data()) {
    DSMS_CHECK_GT(current_data_, 0);
    --current_data_;
  }
}

void QueueSizeTracker::Reset() {
  current_total_ = 0;
  peak_total_ = 0;
  current_data_ = 0;
  peak_data_ = 0;
}

}  // namespace dsms
