#ifndef DSMS_METRICS_TABLE_PRINTER_H_
#define DSMS_METRICS_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace dsms {

/// Renders benchmark results as an aligned text table (for terminals) and as
/// CSV (for plotting). Every bench/ binary reports through this so the
/// series that regenerate the paper's figures have one consistent format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.6g.
  void AddNumericRow(const std::vector<double>& cells);

  int num_rows() const { return static_cast<int>(rows_.size()); }

  /// Aligned, pipe-separated table with a header rule.
  void Print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void PrintCsv(std::ostream& os) const;

  /// JSON array of row objects keyed by header; cells that parse fully as
  /// numbers are emitted as JSON numbers, everything else as strings.
  void PrintJson(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsms

#endif  // DSMS_METRICS_TABLE_PRINTER_H_
