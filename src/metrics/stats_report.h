#ifndef DSMS_METRICS_STATS_REPORT_H_
#define DSMS_METRICS_STATS_REPORT_H_

#include <ostream>
#include <string>

#include "graph/query_graph.h"

namespace dsms {

/// Renders a per-operator table of lifetime counters (data/punctuation in
/// and out, steps) plus current buffer occupancy — the "EXPLAIN ANALYZE" of
/// this little DSMS. Used by examples and handy in tests.
void PrintOperatorStats(const QueryGraph& graph, std::ostream& os);

/// Same, as a string.
std::string OperatorStatsString(const QueryGraph& graph);

}  // namespace dsms

#endif  // DSMS_METRICS_STATS_REPORT_H_
