#ifndef DSMS_METRICS_STATS_REPORT_H_
#define DSMS_METRICS_STATS_REPORT_H_

#include <ostream>
#include <string>

#include "graph/query_graph.h"
#include "metrics/order_validator.h"

namespace dsms {

class MetricsRegistry;

/// Renders a per-operator table of lifetime counters (data/punctuation in
/// and out, steps) plus current buffer occupancy, per-arc high-water marks
/// and shed counts — the "EXPLAIN ANALYZE" of this little DSMS. Used by
/// examples and handy in tests.
void PrintOperatorStats(const QueryGraph& graph, std::ostream& os);

/// Same, as a string.
std::string OperatorStatsString(const QueryGraph& graph);

/// Publishes the same per-operator counters into `registry` under
/// "op.<name>.<counter>" names (point-in-time copies) — the unified
/// snapshot path shared with ExecStats / ScenarioResult / ExperimentReport.
void PublishOperatorStats(const QueryGraph& graph, MetricsRegistry* registry);

/// Renders the graph's degraded-mode activity: sources running on watchdog
/// fallback bounds, shed/vetoed pushes, and (when `validator` is non-null)
/// the order-violation tally with its dead-letter sample. Empty string when
/// nothing degraded — callers can print it unconditionally.
std::string RobustnessReportString(const QueryGraph& graph,
                                   const OrderValidator* validator);

}  // namespace dsms

#endif  // DSMS_METRICS_STATS_REPORT_H_
