#ifndef DSMS_METRICS_ORDER_VALIDATOR_H_
#define DSMS_METRICS_ORDER_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/time.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"

namespace dsms {

/// Watches every arc it is attached to and checks the library's central
/// invariant: each stream is timestamp-ordered, and a punctuation's promise
/// ("no future tuple below my timestamp") is never broken by a later push.
/// Violations are counted per buffer rather than aborting, so tests can
/// assert zero while benches can surface regressions without dying.
///
/// Attach with StreamBuffer::AddListener (or QueryGraph::ReplaceBufferListeners
/// in single-listener setups). Latent tuples (no timestamp) are skipped.
class OrderValidator : public BufferListener {
 public:
  OrderValidator() = default;

  void OnPush(const StreamBuffer& buffer, const Tuple& tuple) override;
  void OnPop(const StreamBuffer& buffer, const Tuple& tuple) override {
    (void)buffer;
    (void)tuple;
  }

  /// Total pushes whose timestamp was below the same buffer's running bound.
  uint64_t violations() const { return violations_; }

  /// Description of the first violation seen (empty if none).
  const std::string& first_violation() const { return first_violation_; }

  void Reset();

 private:
  std::map<const StreamBuffer*, Timestamp> bound_;  // per-buffer high water
  uint64_t violations_ = 0;
  std::string first_violation_;
};

}  // namespace dsms

#endif  // DSMS_METRICS_ORDER_VALIDATOR_H_
