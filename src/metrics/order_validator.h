#ifndef DSMS_METRICS_ORDER_VALIDATOR_H_
#define DSMS_METRICS_ORDER_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "core/stream_buffer.h"
#include "core/tuple.h"

namespace dsms {

/// What to do with a tuple that violates an arc's timestamp order (its
/// timestamp lies below the arc's running bound).
enum class ViolationPolicy {
  /// Count and let it through — the original passive behaviour (tests assert
  /// zero; benches surface regressions without dying). The default.
  kCount = 0,
  /// Veto the push: the late tuple is dropped at the arc where the violation
  /// first materializes, so downstream order invariants survive.
  kDropLate = 1,
  /// Veto the push and move the tuple to a dead-letter buffer (bounded
  /// sample retained, full count kept) surfaced in StatsReport.
  kQuarantine = 2,
};

const char* ViolationPolicyToString(ViolationPolicy policy);

/// Watches every arc it is attached to and checks the library's central
/// invariant: each stream is timestamp-ordered, and a punctuation's promise
/// ("no future tuple below my timestamp") is never broken by a later push.
///
/// The validator is both a counter and — under kDropLate/kQuarantine — an
/// enforcement point: validation runs in the OnBeforePush hook, so a
/// violating tuple can be vetoed before it enters the buffer. Under kCount
/// (the default) behaviour is byte-identical to the original passive
/// validator: everything is admitted and merely counted.
///
/// Attach with StreamBuffer::AddListener (or QueryGraph::ReplaceBufferListeners
/// in single-listener setups). Latent tuples (no timestamp) are skipped.
class OrderValidator : public BufferListener {
 public:
  OrderValidator() = default;

  bool OnBeforePush(const StreamBuffer& buffer, const Tuple& tuple) override;
  void OnPush(const StreamBuffer& buffer, const Tuple& tuple) override {
    (void)buffer;
    (void)tuple;
  }
  void OnPop(const StreamBuffer& buffer, const Tuple& tuple) override {
    (void)buffer;
    (void)tuple;
  }

  void set_policy(ViolationPolicy policy) { policy_ = policy; }
  ViolationPolicy policy() const { return policy_; }

  /// Total pushes whose timestamp was below the same buffer's running bound.
  uint64_t violations() const { return violations_; }

  /// Violating tuples vetoed (kDropLate) or quarantined (kQuarantine).
  uint64_t dropped() const { return dropped_; }
  uint64_t quarantined() const { return quarantined_; }

  /// Dead-letter sample: the first kMaxQuarantineSample quarantined tuples
  /// (quarantined() has the full count).
  const std::vector<Tuple>& dead_letter() const { return dead_letter_; }

  /// Description of the first violation seen (empty if none). Names the arc
  /// (producer->consumer buffer name and id) and the offending tuple's
  /// source/sequence so the report is actionable.
  const std::string& first_violation() const { return first_violation_; }

  void Reset();

  // --- checkpoint support (recovery/) ---
  /// Behavior-affecting state: under kDropLate/kQuarantine the per-arc
  /// running bounds decide which pushes are vetoed, so they must survive a
  /// restart. Exported keyed by buffer id (pointers don't serialize). The
  /// dead-letter sample and first-violation text are diagnostics and
  /// deliberately not exported (docs/recovery.md).
  std::map<int, Timestamp> ExportBounds() const;
  void RestoreBound(const StreamBuffer* buffer, Timestamp bound) {
    bound_[buffer] = bound;
  }
  void RestoreCounters(uint64_t violations, uint64_t dropped,
                       uint64_t quarantined) {
    violations_ = violations;
    dropped_ = dropped;
    quarantined_ = quarantined;
  }

  static constexpr size_t kMaxQuarantineSample = 64;

 private:
  ViolationPolicy policy_ = ViolationPolicy::kCount;
  std::map<const StreamBuffer*, Timestamp> bound_;  // per-buffer high water
  uint64_t violations_ = 0;
  uint64_t dropped_ = 0;
  uint64_t quarantined_ = 0;
  std::vector<Tuple> dead_letter_;
  std::string first_violation_;
};

}  // namespace dsms

#endif  // DSMS_METRICS_ORDER_VALIDATOR_H_
