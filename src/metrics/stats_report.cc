#include "metrics/stats_report.h"

#include <ostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "metrics/table_printer.h"
#include "obs/metrics_registry.h"
#include "operators/operator.h"

namespace dsms {

void PrintOperatorStats(const QueryGraph& graph, std::ostream& os) {
  TablePrinter table({"operator", "data_in", "punct_in", "data_out",
                      "punct_out", "steps", "buffered_in", "hwm", "shed"});
  for (const auto& op : graph.operators()) {
    size_t buffered = 0;
    size_t hwm = 0;
    uint64_t shed = 0;
    for (int i = 0; i < op->num_inputs(); ++i) {
      const StreamBuffer* in = op->input(i);
      buffered += in->size();
      if (in->high_water_mark() > hwm) hwm = in->high_water_mark();
      shed += in->shed_tuples();
    }
    const OperatorStats& s = op->stats();
    table.AddRow(
        {op->name(),
         StrFormat("%llu", static_cast<unsigned long long>(s.data_in)),
         StrFormat("%llu", static_cast<unsigned long long>(s.punctuation_in)),
         StrFormat("%llu", static_cast<unsigned long long>(s.data_out)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(s.punctuation_out)),
         StrFormat("%llu", static_cast<unsigned long long>(s.steps)),
         StrFormat("%zu", buffered), StrFormat("%zu", hwm),
         StrFormat("%llu", static_cast<unsigned long long>(shed))});
  }
  table.Print(os);
}

std::string OperatorStatsString(const QueryGraph& graph) {
  std::ostringstream os;
  PrintOperatorStats(graph, os);
  return os.str();
}

void PublishOperatorStats(const QueryGraph& graph,
                          MetricsRegistry* registry) {
  for (const auto& op : graph.operators()) {
    size_t buffered = 0;
    size_t hwm = 0;
    uint64_t shed = 0;
    for (int i = 0; i < op->num_inputs(); ++i) {
      const StreamBuffer* in = op->input(i);
      buffered += in->size();
      if (in->high_water_mark() > hwm) hwm = in->high_water_mark();
      shed += in->shed_tuples();
    }
    const OperatorStats& s = op->stats();
    const std::string prefix = "op." + op->name();
    registry->SetCounter(prefix + ".data_in", s.data_in);
    registry->SetCounter(prefix + ".punct_in", s.punctuation_in);
    registry->SetCounter(prefix + ".data_out", s.data_out);
    registry->SetCounter(prefix + ".punct_out", s.punctuation_out);
    registry->SetCounter(prefix + ".steps", s.steps);
    registry->SetCounter(prefix + ".buffered_in", buffered);
    registry->SetCounter(prefix + ".hwm", hwm);
    registry->SetCounter(prefix + ".shed", shed);
  }
}

std::string RobustnessReportString(const QueryGraph& graph,
                                   const OrderValidator* validator) {
  std::ostringstream os;
  for (Source* source : graph.sources()) {
    if (!source->degraded()) continue;
    os << StrFormat("degraded source '%s': %llu watchdog fallback ETS\n",
                    source->name().c_str(),
                    static_cast<unsigned long long>(
                        source->watchdog_fallbacks()));
  }
  const uint64_t shed = graph.TotalShedTuples();
  const uint64_t vetoed = graph.TotalVetoedPushes();
  if (shed > 0 || vetoed > 0) {
    os << StrFormat("overload: %llu tuples shed, %llu pushes vetoed\n",
                    static_cast<unsigned long long>(shed),
                    static_cast<unsigned long long>(vetoed));
  }
  if (validator != nullptr && validator->violations() > 0) {
    os << StrFormat(
        "order violations: %llu (%s policy, %llu dropped, %llu "
        "quarantined)\n",
        static_cast<unsigned long long>(validator->violations()),
        ViolationPolicyToString(validator->policy()),
        static_cast<unsigned long long>(validator->dropped()),
        static_cast<unsigned long long>(validator->quarantined()));
    os << "  first: " << validator->first_violation() << "\n";
    size_t shown = 0;
    for (const Tuple& tuple : validator->dead_letter()) {
      if (shown++ == 4) {
        os << StrFormat("  dead-letter: ... (%zu sampled)\n",
                        validator->dead_letter().size());
        break;
      }
      os << "  dead-letter: " << tuple.ToString() << "\n";
    }
  }
  return os.str();
}

}  // namespace dsms
