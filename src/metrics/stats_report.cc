#include "metrics/stats_report.h"

#include <ostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "metrics/table_printer.h"
#include "operators/operator.h"

namespace dsms {

void PrintOperatorStats(const QueryGraph& graph, std::ostream& os) {
  TablePrinter table({"operator", "data_in", "punct_in", "data_out",
                      "punct_out", "steps", "buffered_in"});
  for (const auto& op : graph.operators()) {
    size_t buffered = 0;
    for (int i = 0; i < op->num_inputs(); ++i) buffered += op->input(i)->size();
    const OperatorStats& s = op->stats();
    table.AddRow(
        {op->name(),
         StrFormat("%llu", static_cast<unsigned long long>(s.data_in)),
         StrFormat("%llu", static_cast<unsigned long long>(s.punctuation_in)),
         StrFormat("%llu", static_cast<unsigned long long>(s.data_out)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(s.punctuation_out)),
         StrFormat("%llu", static_cast<unsigned long long>(s.steps)),
         StrFormat("%zu", buffered)});
  }
  table.Print(os);
}

std::string OperatorStatsString(const QueryGraph& graph) {
  std::ostringstream os;
  PrintOperatorStats(graph, os);
  return os.str();
}

}  // namespace dsms
