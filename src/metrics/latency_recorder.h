#ifndef DSMS_METRICS_LATENCY_RECORDER_H_
#define DSMS_METRICS_LATENCY_RECORDER_H_

#include <cstdint>

#include "common/time.h"
#include "core/tuple.h"
#include "metrics/histogram.h"

namespace dsms {

/// Records per-tuple output latency at a sink: the difference between the
/// (virtual) time a data tuple is delivered to the sink and the time it
/// entered the DSMS. This is the metric of Figure 7.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  /// Records the latency of `tuple` emitted at `emit_time`. Punctuation
  /// tuples are ignored (they are bookkeeping, not results).
  void RecordEmission(const Tuple& tuple, Timestamp emit_time);

  const Histogram& histogram() const { return histogram_; }
  uint64_t count() const { return histogram_.count(); }
  double mean_us() const { return histogram_.mean(); }
  double mean_ms() const { return histogram_.mean() / 1000.0; }
  double p99_us() const { return histogram_.Quantile(0.99); }
  int64_t max_us() const { return histogram_.max(); }

  void Reset() { histogram_.Reset(); }

 private:
  Histogram histogram_;
};

}  // namespace dsms

#endif  // DSMS_METRICS_LATENCY_RECORDER_H_
