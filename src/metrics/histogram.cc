#include "metrics/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace dsms {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  if (value < kSubBucketsPerOctave) return static_cast<int>(value);
  // Octave = position of the highest set bit; sub-bucket = next 5 bits.
  int octave = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  int sub_shift = octave - 5;  // 2^5 == kSubBucketsPerOctave
  int sub = static_cast<int>((static_cast<uint64_t>(value) >> sub_shift) &
                             (kSubBucketsPerOctave - 1));
  int index = (octave - 4) * kSubBucketsPerOctave + sub;
  return std::min(index, kNumBuckets - 1);
}

double Histogram::BucketValue(int index) {
  if (index < kSubBucketsPerOctave) return static_cast<double>(index);
  int octave = index / kSubBucketsPerOctave + 4;
  int sub = index % kSubBucketsPerOctave;
  double base = std::ldexp(1.0, octave);           // 2^octave
  double step = std::ldexp(1.0, octave - 5);       // bucket width
  return base + (static_cast<double>(sub) + 0.5) * step;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
}

int64_t Histogram::min() const { return count_ == 0 ? 0 : min_; }
int64_t Histogram::max() const { return count_ == 0 ? 0 : max_; }

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return static_cast<double>(min_);
  if (q >= 1.0) return static_cast<double>(max_);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative > rank) {
      double v = BucketValue(i);
      // Clamp the representative into the observed range for fidelity at the
      // extremes.
      return std::clamp(v, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

void Histogram::Merge(const Histogram& other) {
  DSMS_CHECK_EQ(buckets_.size(), other.buckets_.size());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

std::string Histogram::ToString() const {
  return StrFormat(
      "count=%llu mean=%.3f p50=%.0f p99=%.0f min=%lld max=%lld",
      static_cast<unsigned long long>(count_), mean(), Quantile(0.5),
      Quantile(0.99), static_cast<long long>(min()),
      static_cast<long long>(max()));
}

}  // namespace dsms
