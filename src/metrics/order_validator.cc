#include "metrics/order_validator.h"

#include <algorithm>

#include "common/strings.h"

namespace dsms {

const char* ViolationPolicyToString(ViolationPolicy policy) {
  switch (policy) {
    case ViolationPolicy::kCount:
      return "count";
    case ViolationPolicy::kDropLate:
      return "drop-late";
    case ViolationPolicy::kQuarantine:
      return "quarantine";
  }
  return "unknown";
}

bool OrderValidator::OnBeforePush(const StreamBuffer& buffer,
                                  const Tuple& tuple) {
  if (!tuple.has_timestamp()) return true;  // Latent tuples carry no order.
  Timestamp ts = tuple.timestamp();
  auto [it, inserted] = bound_.try_emplace(&buffer, ts);
  if (inserted) return true;
  if (ts >= it->second) {
    it->second = ts;
    return true;
  }
  ++violations_;
  if (first_violation_.empty()) {
    first_violation_ = StrFormat(
        "arc '%s' (buffer %d): %s from source %d seq %llu pushed at ts=%lld "
        "after bound %lld",
        buffer.name().c_str(), buffer.id(),
        tuple.is_punctuation() ? "punctuation" : "data",
        static_cast<int>(tuple.source_id()),
        static_cast<unsigned long long>(tuple.sequence()),
        static_cast<long long>(ts), static_cast<long long>(it->second));
  }
  switch (policy_) {
    case ViolationPolicy::kCount:
      return true;
    case ViolationPolicy::kDropLate:
      ++dropped_;
      return false;
    case ViolationPolicy::kQuarantine:
      ++quarantined_;
      if (dead_letter_.size() < kMaxQuarantineSample) {
        dead_letter_.push_back(tuple);
      }
      return false;
  }
  return true;
}

std::map<int, Timestamp> OrderValidator::ExportBounds() const {
  std::map<int, Timestamp> by_id;
  for (const auto& [buffer, bound] : bound_) {
    by_id[buffer->id()] = bound;
  }
  return by_id;
}

void OrderValidator::Reset() {
  bound_.clear();
  violations_ = 0;
  dropped_ = 0;
  quarantined_ = 0;
  dead_letter_.clear();
  first_violation_.clear();
}

}  // namespace dsms
