#include "metrics/order_validator.h"

#include <algorithm>

#include "common/strings.h"

namespace dsms {

void OrderValidator::OnPush(const StreamBuffer& buffer, const Tuple& tuple) {
  if (!tuple.has_timestamp()) return;  // Latent tuples carry no order.
  Timestamp ts = tuple.timestamp();
  auto [it, inserted] = bound_.try_emplace(&buffer, ts);
  if (!inserted) {
    if (ts < it->second) {
      ++violations_;
      if (first_violation_.empty()) {
        first_violation_ = StrFormat(
            "buffer '%s': %s pushed at ts=%lld after bound %lld",
            buffer.name().c_str(),
            tuple.is_punctuation() ? "punctuation" : "data",
            static_cast<long long>(ts), static_cast<long long>(it->second));
      }
    }
    it->second = std::max(it->second, ts);
  }
}

void OrderValidator::Reset() {
  bound_.clear();
  violations_ = 0;
  first_violation_.clear();
}

}  // namespace dsms
