#include "metrics/idle_wait_tracker.h"

#include "common/check.h"
#include "common/time.h"

namespace dsms {

void IdleWaitTracker::MarkBlocked(Timestamp now) {
  if (blocked_) return;
  blocked_ = true;
  blocked_since_ = now;
  ++blocked_intervals_;
}

void IdleWaitTracker::MarkUnblocked(Timestamp now) {
  if (!blocked_) return;
  DSMS_CHECK_GE(now, blocked_since_);
  accumulated_ += now - blocked_since_;
  blocked_ = false;
}

Duration IdleWaitTracker::total_idle(Timestamp now) const {
  Duration total = accumulated_;
  if (blocked_ && now > blocked_since_) total += now - blocked_since_;
  return total;
}

double IdleWaitTracker::IdleFraction(Timestamp start, Timestamp now) const {
  Duration window = now - start;
  if (window <= 0) return 0.0;
  return static_cast<double>(total_idle(now)) / static_cast<double>(window);
}

void IdleWaitTracker::Reset() {
  blocked_ = false;
  blocked_since_ = 0;
  accumulated_ = 0;
  blocked_intervals_ = 0;
}

}  // namespace dsms
