#ifndef DSMS_METRICS_HISTOGRAM_H_
#define DSMS_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dsms {

/// A log-bucketed histogram of non-negative int64 samples (latencies in
/// microseconds, queue sizes, ...). Buckets are geometric with 32 sub-buckets
/// per octave, giving ~2% relative quantile error across the full range while
/// keeping memory constant. Mean/min/max are exact.
class Histogram {
 public:
  Histogram();

  /// Records one sample. Negative samples are clamped to zero (latency can
  /// round to zero in virtual time, never below).
  void Record(int64_t value);

  uint64_t count() const { return count_; }
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  double sum() const { return sum_; }

  /// Approximate quantile in [0, 1]; exact for min (q=0 with any samples
  /// recorded) and max (q=1). Returns 0 when empty.
  double Quantile(double q) const;

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  /// Debug summary, e.g. "count=100 mean=12.3us p50=11 p99=40 max=55".
  std::string ToString() const;

 private:
  static constexpr int kSubBucketsPerOctave = 32;
  static constexpr int kNumOctaves = 63;
  static constexpr int kNumBuckets = kSubBucketsPerOctave * kNumOctaves + 1;

  static int BucketIndex(int64_t value);
  /// Representative (geometric-ish midpoint) value of a bucket.
  static double BucketValue(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace dsms

#endif  // DSMS_METRICS_HISTOGRAM_H_
