#include "frontier/frontier_tracker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "operators/source.h"
#include "recovery/state_codec.h"

namespace dsms {

const char* SourceHealthToString(SourceHealth health) {
  switch (health) {
    case SourceHealth::kHealthy:
      return "healthy";
    case SourceHealth::kSuspect:
      return "suspect";
    case SourceHealth::kQuarantined:
      return "quarantined";
    case SourceHealth::kReadmitted:
      return "readmitted";
  }
  return "unknown";
}

const char* FrontierViolationToString(FrontierViolation violation) {
  switch (violation) {
    case FrontierViolation::kPunctuationRegression:
      return "punct-regression";
    case FrontierViolation::kSkewViolation:
      return "skew-violation";
    case FrontierViolation::kTimestampDisorder:
      return "disorder";
    case FrontierViolation::kFlappingRevival:
      return "flap-revival";
    case FrontierViolation::kPeerMisbehavior:
      return "peer-misbehavior";
  }
  return "unknown";
}

const char* FrontierEventKindToString(FrontierEventKind kind) {
  switch (kind) {
    case FrontierEventKind::kStateChange:
      return "state";
    case FrontierEventKind::kLeaseExpired:
      return "lease_expired";
    case FrontierEventKind::kRevival:
      return "revival";
    case FrontierEventKind::kViolation:
      return "violation";
    case FrontierEventKind::kRevoked:
      return "revoked";
  }
  return "unknown";
}

FrontierTracker::Participant& FrontierTracker::Entry(int32_t stream_id) {
  auto it = participants_.find(stream_id);
  if (it == participants_.end()) {
    it = participants_.emplace(stream_id, Participant{}).first;
    it->second.stream_id = stream_id;
  }
  return it->second;
}

void FrontierTracker::Register(Source* source) {
  Participant& p = Entry(source->stream_id());
  p.source = source;
}

std::optional<Timestamp> FrontierTracker::ProposeEts(const Source* source,
                                                     Timestamp now) {
  ++ets_queries_;
  // The participant's promise IS the source's state — one authority, so the
  // frontier-served bound is identical to the legacy DFS-path computation
  // (the byte-identity the oracle test enforces).
  return source->ComputeEts(now);
}

Timestamp FrontierTracker::CheckpointFrontier() const {
  Timestamp trusted = kMaxTimestamp;
  Timestamp all = kMaxTimestamp;
  bool any = false;
  bool any_trusted = false;
  for (const auto& [stream, p] : participants_) {
    if (p.source == nullptr) continue;
    const Timestamp bound = p.source->promised_bound();
    any = true;
    all = std::min(all, bound);
    if (p.health != SourceHealth::kQuarantined && !p.revoked) {
      any_trusted = true;
      trusted = std::min(trusted, bound);
    }
  }
  if (any_trusted) return trusted;
  if (any) return all;
  return kMinTimestamp;
}

void FrontierTracker::SubscribeCouldResultIn(int op_id,
                                             std::vector<int32_t> streams) {
  could_result_in_[op_id] = std::move(streams);
}

Timestamp FrontierTracker::CouldResultInBound(int op_id) const {
  auto it = could_result_in_.find(op_id);
  if (it == could_result_in_.end()) return kMinTimestamp;
  Timestamp trusted = kMaxTimestamp;
  Timestamp all = kMaxTimestamp;
  bool any = false;
  bool any_trusted = false;
  for (int32_t stream : it->second) {
    auto pit = participants_.find(stream);
    if (pit == participants_.end() || pit->second.source == nullptr) continue;
    const Participant& p = pit->second;
    const Timestamp bound = p.source->promised_bound();
    any = true;
    all = std::min(all, bound);
    if (p.health != SourceHealth::kQuarantined && !p.revoked) {
      any_trusted = true;
      trusted = std::min(trusted, bound);
    }
  }
  if (any_trusted) return trusted;
  if (any) return all;
  return kMinTimestamp;
}

const std::vector<int32_t>& FrontierTracker::subscription(int op_id) const {
  static const std::vector<int32_t> kEmpty;
  auto it = could_result_in_.find(op_id);
  return it == could_result_in_.end() ? kEmpty : it->second;
}

Timestamp FrontierTracker::GlobalFrontier() const {
  Timestamp frontier = kMaxTimestamp;
  bool any = false;
  for (const auto& [stream, p] : participants_) {
    if (p.source == nullptr) continue;
    any = true;
    frontier = std::min(frontier, p.source->promised_bound());
  }
  return any ? frontier : kMinTimestamp;
}

bool FrontierTracker::LeaseExpired(const Source* source, Timestamp now) {
  if (policy_.duration <= 0) return false;
  Participant& p = Entry(source->stream_id());
  // A source that never produced anything counts as silent since t=0 —
  // the legacy watchdog's cold-start rule, kept bit for bit.
  const Timestamp last = source->last_activity() == kMinTimestamp
                             ? 0
                             : source->last_activity();
  if (now - last < policy_.duration) {
    // The fallback punctuation the tracker itself emits refreshes the
    // source's activity stamp (it flows through the same output path as a
    // real heartbeat). Only activity strictly newer than our last
    // intervention is the producer speaking — anything at or before the
    // fire time is our own echo, not a revival.
    if (p.lease_expired_open && source->last_activity() > p.last_lease_fire) {
      // The aged-out source produced again: one death/revive cycle. Count
      // the revival and report it as flap damping — repeated cycles walk
      // the participant into quarantine instead of thrashing the frontier.
      p.lease_expired_open = false;
      ++p.revivals;
      ++revivals_;
      if (tracer_ != nullptr && p.source != nullptr) {
        tracer_->RecordFrontier(
            p.source->id(), static_cast<uint8_t>(FrontierEventKind::kRevival),
            p.stream_id);
      }
      ReportViolation(p.stream_id, FrontierViolation::kFlappingRevival);
    }
    return false;
  }
  if (p.last_lease_fire != kMinTimestamp &&
      now - p.last_lease_fire < policy_.duration) {
    return false;  // Already intervened this horizon; don't spin.
  }
  return true;
}

void FrontierTracker::NoteLeaseFire(const Source* source, Timestamp now) {
  Participant& p = Entry(source->stream_id());
  p.last_lease_fire = now;
  p.lease_expired_open = true;
  ++p.lease_expiries;
  ++lease_expiries_;
}

void FrontierTracker::NoteLeaseExpiredEts(const Source* source,
                                          Timestamp now) {
  (void)now;
  ++lease_expired_ets_;
  if (tracer_ != nullptr) {
    tracer_->RecordFrontier(
        source->id(), static_cast<uint8_t>(FrontierEventKind::kLeaseExpired),
        source->stream_id());
  }
}

void FrontierTracker::ReportViolation(int32_t stream_id,
                                      FrontierViolation violation) {
  const Timestamp now = Now();
  Participant& p = Entry(stream_id);
  ++violations_;
  ++p.violations;
  p.last_violation = now;
  if (tracer_ != nullptr && p.source != nullptr) {
    tracer_->RecordFrontier(p.source->id(),
                            static_cast<uint8_t>(FrontierEventKind::kViolation),
                            static_cast<int64_t>(violation));
  }
  ++p.strikes;
  switch (p.health) {
    case SourceHealth::kHealthy:
      if (static_cast<int>(p.strikes) >= policy_.suspect_after) {
        Transition(p, SourceHealth::kSuspect, now);
      }
      break;
    case SourceHealth::kSuspect:
      if (static_cast<int>(p.strikes) >= policy_.quarantine_after) {
        Transition(p, SourceHealth::kQuarantined, now);
      }
      break;
    case SourceHealth::kQuarantined:
      break;  // Already distrusted; the re-admission clock restarts.
    case SourceHealth::kReadmitted:
      if (static_cast<int>(p.strikes) >= policy_.probation_strike_limit) {
        Transition(p, SourceHealth::kQuarantined, now);
      }
      break;
  }
}

void FrontierTracker::ReportBenign(int32_t stream_id) {
  (void)Entry(stream_id);
  ++benign_reports_;
}

void FrontierTracker::NoteConnectionActivity(int32_t stream_id) {
  Participant& p = Entry(stream_id);
  p.revoked = false;
}

void FrontierTracker::Revoke(int32_t stream_id) {
  Participant& p = Entry(stream_id);
  if (p.revoked) return;
  p.revoked = true;
  ++revocations_;
  if (tracer_ != nullptr && p.source != nullptr) {
    tracer_->RecordFrontier(p.source->id(),
                            static_cast<uint8_t>(FrontierEventKind::kRevoked),
                            stream_id);
  }
}

void FrontierTracker::Poll(Timestamp now) {
  for (auto& [stream, p] : participants_) {
    const Timestamp since = std::max(p.state_since, p.last_violation);
    if (p.health == SourceHealth::kQuarantined) {
      if (now - since >= policy_.readmit_after) {
        Transition(p, SourceHealth::kReadmitted, now);
      }
    } else if (p.health == SourceHealth::kReadmitted) {
      if (now - since >= policy_.probation) {
        Transition(p, SourceHealth::kHealthy, now);
      }
    }
  }
}

void FrontierTracker::Transition(Participant& p, SourceHealth to,
                                 Timestamp now) {
  p.health = to;
  p.strikes = 0;
  p.state_since = now;
  ++transitions_;
  if (to == SourceHealth::kQuarantined) ++quarantines_;
  if (tracer_ != nullptr && p.source != nullptr) {
    tracer_->RecordFrontier(
        p.source->id(), static_cast<uint8_t>(FrontierEventKind::kStateChange),
        static_cast<int64_t>(to));
  }
}

const FrontierTracker::Participant* FrontierTracker::participant(
    int32_t stream_id) const {
  auto it = participants_.find(stream_id);
  return it == participants_.end() ? nullptr : &it->second;
}

SourceHealth FrontierTracker::health(int32_t stream_id) const {
  const Participant* p = participant(stream_id);
  return p == nullptr ? SourceHealth::kHealthy : p->health;
}

size_t FrontierTracker::CountInState(SourceHealth health) const {
  size_t n = 0;
  for (const auto& [stream, p] : participants_) {
    if (p.health == health) ++n;
  }
  return n;
}

void FrontierTracker::SaveState(StateWriter& w) const {
  w.U64(violations_);
  w.U64(benign_reports_);
  w.U64(ets_queries_);
  w.U64(lease_expired_ets_);
  w.U64(lease_expiries_);
  w.U64(revivals_);
  w.U64(revocations_);
  w.U64(quarantines_);
  w.U64(transitions_);
  w.U32(static_cast<uint32_t>(participants_.size()));
  for (const auto& [stream, p] : participants_) {
    w.I64(stream);
    w.U8(static_cast<uint8_t>(p.health));
    w.U32(p.strikes);
    w.U64(p.violations);
    w.Ts(p.last_violation);
    w.Ts(p.state_since);
    w.Ts(p.last_lease_fire);
    w.Bool(p.lease_expired_open);
    w.Bool(p.revoked);
    w.U64(p.lease_expiries);
    w.U64(p.revivals);
  }
}

void FrontierTracker::LoadState(StateReader& r) {
  violations_ = r.U64();
  benign_reports_ = r.U64();
  ets_queries_ = r.U64();
  lease_expired_ets_ = r.U64();
  lease_expiries_ = r.U64();
  revivals_ = r.U64();
  revocations_ = r.U64();
  quarantines_ = r.U64();
  transitions_ = r.U64();
  const uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    const int32_t stream = static_cast<int32_t>(r.I64());
    Participant& p = Entry(stream);
    const uint8_t health = r.U8();
    if (health > static_cast<uint8_t>(SourceHealth::kReadmitted)) {
      r.Poison();
      return;
    }
    p.health = static_cast<SourceHealth>(health);
    p.strikes = r.U32();
    p.violations = r.U64();
    p.last_violation = r.Ts();
    p.state_since = r.Ts();
    p.last_lease_fire = r.Ts();
    p.lease_expired_open = r.Bool();
    p.revoked = r.Bool();
    p.lease_expiries = r.U64();
    p.revivals = r.U64();
  }
}

void FrontierTracker::PublishTo(MetricsRegistry* registry,
                                const std::string& prefix) const {
  registry->SetGauge(prefix + ".bound",
                     static_cast<double>(GlobalFrontier()));
  registry->SetGauge(prefix + ".checkpoint_bound",
                     static_cast<double>(CheckpointFrontier()));
  registry->SetGauge(prefix + ".participants",
                     static_cast<double>(participants_.size()));
  registry->SetGauge(prefix + ".healthy",
                     static_cast<double>(CountInState(SourceHealth::kHealthy)));
  registry->SetGauge(prefix + ".suspect",
                     static_cast<double>(CountInState(SourceHealth::kSuspect)));
  registry->SetGauge(
      prefix + ".quarantined",
      static_cast<double>(CountInState(SourceHealth::kQuarantined)));
  registry->SetGauge(
      prefix + ".readmitted",
      static_cast<double>(CountInState(SourceHealth::kReadmitted)));
  registry->SetCounter(prefix + ".violations", violations_);
  registry->SetCounter(prefix + ".benign_reports", benign_reports_);
  registry->SetCounter(prefix + ".ets_queries", ets_queries_);
  registry->SetCounter(prefix + ".lease_expired_ets", lease_expired_ets_);
  registry->SetCounter(prefix + ".lease_expiries", lease_expiries_);
  registry->SetCounter(prefix + ".revivals", revivals_);
  registry->SetCounter(prefix + ".revocations", revocations_);
  registry->SetCounter(prefix + ".quarantines", quarantines_);
  registry->SetCounter(prefix + ".transitions", transitions_);
  registry->SetGauge(prefix + ".subscriptions",
                     static_cast<double>(could_result_in_.size()));
  for (const auto& [stream, p] : participants_) {
    const std::string sp = StrFormat("%s.stream.%d", prefix.c_str(), stream);
    registry->SetGauge(sp + ".state", static_cast<double>(p.health));
    registry->SetCounter(sp + ".violations", p.violations);
    registry->SetCounter(sp + ".lease_expiries", p.lease_expiries);
    registry->SetCounter(sp + ".revivals", p.revivals);
    registry->SetGauge(sp + ".revoked", p.revoked ? 1.0 : 0.0);
  }
}

}  // namespace dsms
