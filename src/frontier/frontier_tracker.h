#ifndef DSMS_FRONTIER_FRONTIER_TRACKER_H_
#define DSMS_FRONTIER_FRONTIER_TRACKER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/time.h"

namespace dsms {

class MetricsRegistry;
class Source;
class StateReader;
class StateWriter;
class Tracer;

/// Health lifecycle of a frontier participant. Transitions are driven by the
/// centralized validation point (ReportViolation) and by elapsed clean time
/// (Poll); the hysteresis thresholds live in LeasePolicy. A participant's
/// health never changes what the executor does with its tuples — it changes
/// what the engine *trusts*: quarantined promises are excluded from the
/// checkpoint frontier and surfaced in frontier.* metrics.
enum class SourceHealth : uint8_t {
  kHealthy = 0,
  /// Accumulated violations, not yet enough to distrust the stream.
  kSuspect = 1,
  /// The stream lied (regressed punctuation, broke its skew contract) or
  /// flapped repeatedly; its promise no longer holds the frontier back.
  kQuarantined = 2,
  /// Probation after a clean quarantine window: trusted again, but a single
  /// further violation re-quarantines immediately (hysteresis).
  kReadmitted = 3,
};

const char* SourceHealthToString(SourceHealth health);

/// What the validation point was told about a participant.
enum class FrontierViolation : uint8_t {
  /// A punctuation carried a bound below the stream's standing promise.
  kPunctuationRegression = 0,
  /// An external tuple's app timestamp lagged the wall clock beyond the
  /// declared δ, invalidating every bound derived from the skew contract.
  kSkewViolation = 1,
  /// A tuple's timestamp moved backwards past the promise (disorder).
  kTimestampDisorder = 2,
  /// The source went silent past its lease, was aged out, then came back —
  /// one death/revive cycle of a flapping producer.
  kFlappingRevival = 3,
  /// Wire-level misbehavior by the peer feeding the stream: a stale resume
  /// token replayed after the server advanced its durable watermark, or a
  /// slow-drip connection that fell below the ingest byte-rate floor.
  kPeerMisbehavior = 4,
};

const char* FrontierViolationToString(FrontierViolation violation);

/// Payload tags of kFrontier trace events (TraceEvent::detail).
enum class FrontierEventKind : uint8_t {
  /// Participant changed health state; arg = new SourceHealth.
  kStateChange = 0,
  /// Lease expired and a fallback ETS aged the promise out; arg = stream id.
  kLeaseExpired = 1,
  /// A previously aged-out source produced again; arg = stream id.
  kRevival = 2,
  /// Validation point recorded a violation; arg = FrontierViolation.
  kViolation = 3,
  /// A connection dropped and its stream's promise was revoked; arg =
  /// stream id.
  kRevoked = 4,
};

const char* FrontierEventKindToString(FrontierEventKind kind);

/// Lease and lifecycle configuration of the frontier tracker. The defaults
/// keep every mechanism off or forgiving; `duration` is aliased from the
/// deprecated WatchdogPolicy::silence_horizon so existing configs keep
/// working (see docs/frontier.md, "Migration from the watchdog").
struct LeasePolicy {
  /// Virtual time a participant's promise stays trusted without renewal
  /// (data, heartbeat, or punctuation activity renews it). When the lease
  /// expires the tracker ages the promise out via a fallback ETS so the
  /// global frontier advances without the silent source. 0 = leases never
  /// expire (exactly the old "watchdog off").
  Duration duration = 0;
  /// Violations that move a healthy participant to kSuspect.
  int suspect_after = 1;
  /// Further violations that move a suspect to kQuarantined.
  int quarantine_after = 3;
  /// Clean virtual time in quarantine before probation (kReadmitted).
  Duration readmit_after = 20 * kSecond;
  /// Clean probation time before full re-admission (kHealthy).
  Duration probation = 20 * kSecond;
  /// Violations on probation that re-quarantine immediately.
  int probation_strike_limit = 1;
};

/// Which liveness/ETS machinery the executor runs.
enum class FrontierMode {
  /// Lease-based FrontierTracker (the default): ETS fallbacks, liveness,
  /// and violation accounting all flow through the central tracker.
  kTracker = 0,
  /// The PR-2 per-executor watchdog, byte-for-byte. Kept as the oracle for
  /// tests/frontier_test.cc, exactly like SchedulerMode::kScanReference.
  kLegacyWatchdog = 1,
};

/// Frontier coordination policy carried in ExecConfig.
struct FrontierPolicy {
  FrontierMode mode = FrontierMode::kTracker;
  LeasePolicy lease;
};

/// Central frontier authority: every source (and, through it, every ingest
/// connection) is a participant publishing a promised timestamp lower bound
/// (Source::promised_bound) under a renewable lease. The tracker is the one
/// place that:
///
///  - answers frontier queries: ProposeEts (the on-demand ETS bound the
///    EtsGate asks for) and CheckpointFrontier (the punctuation-aligned
///    checkpoint bound, excluding quarantined/revoked promises);
///  - ages out silent participants: LeaseExpired/NoteLeaseFire reproduce the
///    legacy watchdog's decisions exactly (same silence test, same
///    once-per-horizon refire throttle), so with all sources healthy the
///    tracker path is byte-identical to the PR-2 engine;
///  - validates behavior: ReportViolation is the single funnel for
///    punctuation regressions, skew violations, disorder, and flapping,
///    driving the healthy → suspect → quarantined → re-admitted lifecycle
///    with hysteresis (Poll advances the time-based transitions).
///
/// Determinism: promises and activity are *pulled* from the Source (zero
/// healthy-path overhead); only violations are *pushed*, and healthy sources
/// never take those paths. Lifecycle state influences metrics, traces, and
/// the checkpoint frontier — never which tuples move — so runs with and
/// without misbehaving-source bookkeeping stay trace-equivalent.
class FrontierTracker {
 public:
  struct Participant {
    Source* source = nullptr;  // Null only for state restored pre-register.
    int32_t stream_id = 0;
    SourceHealth health = SourceHealth::kHealthy;
    /// Violations accumulated in the current state (reset on transition).
    uint32_t strikes = 0;
    uint64_t violations = 0;
    Timestamp last_violation = kMinTimestamp;
    /// When the current health state was entered.
    Timestamp state_since = 0;
    /// Last lease-expiry intervention (refire throttle), kMinTimestamp if
    /// never.
    Timestamp last_lease_fire = kMinTimestamp;
    /// True between a lease expiry and the source's next sign of life; the
    /// transition back to false is one revival (flap detection).
    bool lease_expired_open = false;
    /// A connection feeding this stream dropped; the promise no longer
    /// holds the checkpoint frontier back. Cleared by new activity.
    bool revoked = false;
    uint64_t lease_expiries = 0;
    uint64_t revivals = 0;
  };

  FrontierTracker() = default;

  FrontierTracker(const FrontierTracker&) = delete;
  FrontierTracker& operator=(const FrontierTracker&) = delete;

  void set_policy(const LeasePolicy& policy) { policy_ = policy; }
  const LeasePolicy& policy() const { return policy_; }
  /// kFrontier trace events; null = off (the default).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  /// Clock stamping lifecycle times for push-style reports (violations
  /// arrive without an explicit `now`); must outlive the tracker.
  void set_clock(const VirtualClock* clock) { clock_ = clock; }

  /// Registers `source` as a participant (idempotent; keyed by stream id).
  /// Does not take ownership; the source must outlive the tracker or be
  /// detached via Source::set_frontier(nullptr) first.
  void Register(Source* source);

  // --- frontier queries ---

  /// The on-demand ETS bound the participant can promise right now —
  /// exactly Source::ComputeEts, served centrally so ETS generation is a
  /// frontier query rather than a DFS side effect.
  std::optional<Timestamp> ProposeEts(const Source* source, Timestamp now);

  /// Minimum promised bound over participants whose promise is still
  /// trusted (not quarantined, not revoked) — what a punctuation-aligned
  /// checkpoint may rely on. Falls back to the minimum over all
  /// participants when none are trusted; kMinTimestamp with no
  /// participants. Never regresses relative to earlier calls' inputs since
  /// promises are monotone.
  Timestamp CheckpointFrontier() const;

  /// Minimum promised bound over all participants (metrics view).
  Timestamp GlobalFrontier() const;

  // --- leases ---

  /// True when `source`'s lease has expired at `now`: it has been silent
  /// for at least the lease duration and no intervention fired within the
  /// current horizon. As a side effect, detects revivals: a source seen
  /// active again after an expiry is counted (and, as flap damping,
  /// reported to the validation point).
  bool LeaseExpired(const Source* source, Timestamp now);

  /// Records a lease-expiry intervention at `now` (refire throttle),
  /// whether or not the fallback ETS ends up emitted — mirroring the
  /// legacy watchdog, which stamped its fire time before attempting.
  void NoteLeaseFire(const Source* source, Timestamp now);

  /// A fallback ETS actually aged the participant's promise out.
  void NoteLeaseExpiredEts(const Source* source, Timestamp now);

  // --- centralized validation ---

  /// The one funnel for misbehavior. Advances the participant's lifecycle
  /// per the hysteresis thresholds and records a kFrontier trace event.
  void ReportViolation(int32_t stream_id, FrontierViolation violation);

  /// A benign oddity (duplicate punctuation restating the promise):
  /// counted, never a strike.
  void ReportBenign(int32_t stream_id);

  // --- connection participation (net/ingest_server) ---

  /// A live connection delivered a frame for `stream_id`; reinstates a
  /// revoked promise (reconnect).
  void NoteConnectionActivity(int32_t stream_id);

  /// The connection feeding `stream_id` dropped: its promise is revoked
  /// and no longer holds the checkpoint frontier back.
  void Revoke(int32_t stream_id);

  /// Advances the time-based lifecycle transitions (quarantine →
  /// re-admission after a clean window, probation → healthy). Safe to call
  /// from any idle point; bookkeeping only.
  void Poll(Timestamp now);

  // --- per-operator could-result-in subscriptions (sharded execution) ---

  /// Declares that the streams in `streams` could result in input for
  /// operator `op_id` — its ancestor sources under the shard plan
  /// (ShardPlan::upstream_streams). Replaces any previous subscription for
  /// that operator. Structural state: the sharded executor rebuilds
  /// subscriptions from the plan at construction, so they are not
  /// checkpointed. Purely advisory — subscriptions shape
  /// CouldResultInBound and frontier.* metrics, never which tuples move.
  void SubscribeCouldResultIn(int op_id, std::vector<int32_t> streams);

  /// The per-operator view of CheckpointFrontier: minimum promised bound
  /// over `op_id`'s subscribed streams, applying the same trust rules
  /// (quarantined/revoked promises excluded, falling back to all subscribed
  /// participants when none are trusted). kMinTimestamp for an operator
  /// with no subscription or whose streams are not registered.
  Timestamp CouldResultInBound(int op_id) const;

  /// Operators with a standing could-result-in subscription.
  size_t num_subscriptions() const { return could_result_in_.size(); }
  /// Subscribed streams of `op_id`; empty when not subscribed.
  const std::vector<int32_t>& subscription(int op_id) const;

  // --- inspection ---

  const Participant* participant(int32_t stream_id) const;
  SourceHealth health(int32_t stream_id) const;
  size_t num_participants() const { return participants_.size(); }
  size_t CountInState(SourceHealth health) const;

  uint64_t violations() const { return violations_; }
  uint64_t benign_reports() const { return benign_reports_; }
  uint64_t ets_queries() const { return ets_queries_; }
  /// Fallback ETS emitted on lease expiry (the frontier.lease_expired_ets
  /// metric; equals ExecStats::watchdog_ets in tracker mode).
  uint64_t lease_expired_ets() const { return lease_expired_ets_; }
  uint64_t lease_expiries() const { return lease_expiries_; }
  uint64_t revivals() const { return revivals_; }
  uint64_t revocations() const { return revocations_; }
  /// Lifetime count of transitions into kQuarantined.
  uint64_t quarantines() const { return quarantines_; }
  uint64_t transitions() const { return transitions_; }

  /// Checkpoint support: lifecycle state and counters, so a restart
  /// restores quarantine decisions instead of re-trusting a known liar.
  /// LoadState merges by stream id into the registered participants.
  void SaveState(StateWriter& w) const;
  void LoadState(StateReader& r);

  /// Publishes frontier.* metrics under `prefix`: the global and
  /// checkpoint frontiers, per-state participant counts, violation and
  /// lease counters, and per-stream state gauges.
  void PublishTo(MetricsRegistry* registry, const std::string& prefix) const;

 private:
  Participant& Entry(int32_t stream_id);
  void Transition(Participant& p, SourceHealth to, Timestamp now);
  Timestamp Now() const { return clock_ != nullptr ? clock_->now() : 0; }

  LeasePolicy policy_;
  Tracer* tracer_ = nullptr;
  const VirtualClock* clock_ = nullptr;
  std::map<int32_t, Participant> participants_;
  /// Operator id -> ascending stream ids that could result in its input.
  std::map<int, std::vector<int32_t>> could_result_in_;

  uint64_t violations_ = 0;
  uint64_t benign_reports_ = 0;
  uint64_t ets_queries_ = 0;
  uint64_t lease_expired_ets_ = 0;
  uint64_t lease_expiries_ = 0;
  uint64_t revivals_ = 0;
  uint64_t revocations_ = 0;
  uint64_t quarantines_ = 0;
  uint64_t transitions_ = 0;
};

}  // namespace dsms

#endif  // DSMS_FRONTIER_FRONTIER_TRACKER_H_
